#include "verify/choreography.hh"

#include <deque>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/snapshot.hh"
#include "core/translation_table.hh"
#include "dram/dram_system.hh"
#include "fault/sim_error.hh"

namespace hmm::verify {

namespace {

/// Owner sentinel for machine sub-blocks that hold no page's live data
/// (canonicalization target — see Explorer::canonicalize).
constexpr std::uint8_t kStale = 0xFF;

/// One node of the explored graph. The table is kept in its snapshot
/// encoding (deterministic: maps are serialized sorted), so the encoding
/// doubles as the dedup key component.
struct State {
  std::vector<std::uint8_t> table;
  std::vector<std::uint8_t> mem;  ///< owner page id per machine sub-block
  std::vector<CopyStep> plan;     ///< remaining steps, front = current
  std::uint32_t progress = 0;     ///< sub-blocks copied of the front step
};

void append_u32(std::string& k, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    k.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::string encode(const State& s) {
  std::string k;
  k.reserve(s.table.size() + s.mem.size() + 64 * s.plan.size() + 16);
  append_u32(k, static_cast<std::uint32_t>(s.table.size()));
  k.append(s.table.begin(), s.table.end());
  k.append(s.mem.begin(), s.mem.end());
  append_u32(k, static_cast<std::uint32_t>(s.plan.size()));
  for (const CopyStep& st : s.plan) {
    append_u32(k, static_cast<std::uint32_t>(st.src));
    append_u32(k, static_cast<std::uint32_t>(st.dst));
    append_u32(k, static_cast<std::uint32_t>(st.bytes));
    k.push_back(st.live_fill ? 1 : 0);
    append_u32(k, st.fill_slot);
    append_u32(k, static_cast<std::uint32_t>(st.fill_page));
    append_u32(k, static_cast<std::uint32_t>(st.fill_old_base));
    append_u32(k, st.start_sub_block);
    append_u32(k, static_cast<std::uint32_t>(st.after.size()));
    for (const TableMutation& m : st.after) {
      k.push_back(static_cast<char>(m.kind));
      append_u32(k, m.row);
      append_u32(k, static_cast<std::uint32_t>(m.page));
      append_u32(k, static_cast<std::uint32_t>(m.machine));
    }
  }
  append_u32(k, s.progress);
  return k;
}

class Explorer {
 public:
  explicit Explorer(const CheckerConfig& cfg)
      : cfg_(cfg),
        mode_(cfg.design == MigrationDesign::N ? TableMode::FunctionalN
              : cfg.design == MigrationDesign::Nomad
                  ? TableMode::Shadow
                  : TableMode::HardwareNMinus1),
        table_(cfg.geom, mode_),
        on_(DramSystem::make(Region::OnPackage)),
        off_(DramSystem::make(Region::OffPackage)),
        engine_(table_, on_, off_, engine_config(cfg)) {
    report_.design = cfg.design;
  }

  CheckerReport run() {
    if (!model_bounds_ok()) return report_;
    State init = initial_state();
    load_table(init);
    canonicalize(init);
    push(init);
    while (!queue_.empty() &&
           report_.violations.size() < cfg_.max_violations) {
      if (report_.states_explored >= cfg_.max_states) {
        violation("state-space cap (" + std::to_string(cfg_.max_states) +
                  ") exceeded: the exhaustiveness claim no longer holds");
        break;
      }
      State s = std::move(queue_.front());
      queue_.pop_front();
      ++report_.states_explored;
      expand(s);
    }
    finalize();
    return report_;
  }

 private:
  static MigrationEngine::Config engine_config(const CheckerConfig& cfg) {
    MigrationEngine::Config ec;
    ec.design = cfg.design;
    ec.critical_first = true;
    return ec;
  }

  bool model_bounds_ok() {
    const Geometry& g = cfg_.geom;
    if (!g.valid()) {
      violation("model geometry is invalid");
      return false;
    }
    if (g.total_pages() > 64 || g.sub_blocks_per_page() > 64) {
      violation("model geometry too large for exhaustive exploration "
                "(keep it to <= 64 pages x <= 64 sub-blocks)");
      return false;
    }
    if (g.slots() < 3 && cfg_.design != MigrationDesign::Nomad) {
      // Fig 8(c)/(d) needs hot slot, cold slot and empty slot distinct.
      // Nomad has no slot choreography (the hole is the only moving
      // part), so 2 slots already reach every transactional case.
      violation("model geometry needs >= 3 on-package slots to reach "
                "every Fig-8 case");
      return false;
    }
    return true;
  }

  // --- state <-> scratch ----------------------------------------------------

  [[nodiscard]] std::vector<std::uint8_t> save_table() {
    snap::Writer w;
    table_.save(w);
    return w.take();
  }

  void load_table(const State& s) {
    snap::Reader r(s.table.data(), s.table.size());
    table_.restore(r);
  }

  State initial_state() {
    // A freshly constructed table *is* the boot state; ground truth
    // matches: identity placement, with the ghost page's data parked at Ω
    // by the boot-time driver in the N-1 designs.
    TranslationTable boot(cfg_.geom, mode_);
    snap::Writer w;
    boot.save(w);
    State s;
    s.table = w.take();
    s.mem.assign(total_sub_blocks(), 0);
    const std::uint32_t sb = cfg_.geom.sub_blocks_per_page();
    for (PageId p = 0; p < cfg_.geom.total_pages(); ++p)
      for (std::uint32_t b = 0; b < sb; ++b)
        s.mem[p * sb + b] = static_cast<std::uint8_t>(p);
    if (mode_ == TableMode::HardwareNMinus1) {
      const auto ghost = static_cast<PageId>(cfg_.geom.slots() - 1);
      for (std::uint32_t b = 0; b < sb; ++b)
        s.mem[cfg_.geom.omega() * sb + b] = static_cast<std::uint8_t>(ghost);
    }
    return s;
  }

  [[nodiscard]] std::size_t total_sub_blocks() const {
    return static_cast<std::size_t>(cfg_.geom.total_pages()) *
           cfg_.geom.sub_blocks_per_page();
  }

  [[nodiscard]] std::size_t ms_index(MachAddr a) const {
    return static_cast<std::size_t>(a / cfg_.geom.sub_block_bytes);
  }

  // --- invariant checks -----------------------------------------------------

  void violation(std::string what) {
    if (report_.violations.size() < cfg_.max_violations)
      report_.violations.push_back(std::move(what));
  }

  [[nodiscard]] std::string describe(const State& s) const {
    std::ostringstream os;
    os << "[design " << to_string(cfg_.design) << ", "
       << (s.plan.empty() ? "quiescent" : "in-flight") << ", "
       << s.plan.size() << " steps left, progress " << s.progress << "]";
    return os.str();
  }

  /// Probed pages: every OS-visible macro page. Ω is reserved by the
  /// hardware driver (Section III-A), so the OS never issues demand
  /// accesses to it and it is excluded from the demand probes.
  [[nodiscard]] PageId probe_limit() const {
    return cfg_.geom.total_pages() - 1;
  }

  /// Invariants 1-3 of the header comment; table_ must hold s's table.
  void check_state(const State& s) {
    const std::string err = table_.validate();
    if (!err.empty())
      violation("table.validate(): " + err + " " + describe(s));

    const bool stalled =
        cfg_.design == MigrationDesign::N && !s.plan.empty();
    if (stalled) {
      // The basic design holds all demand until the swap finishes — the
      // paper's documented cost. Nothing reads mid-swap, so the routing
      // probes are skipped (and counted, so a report shows the hole).
      ++report_.stall_states;
      return;
    }

    const Geometry& g = cfg_.geom;
    const std::uint32_t sb = g.sub_blocks_per_page();
    claimed_.assign(total_sub_blocks(), 0);
    for (PageId p = 0; p < probe_limit(); ++p) {
      for (std::uint32_t b = 0; b < sb; ++b) {
        ++report_.demand_checks;
        const PhysAddr addr = g.machine_base(p) + b * g.sub_block_bytes;
        const Route r = table_.translate(addr);
        if (r.mach >= g.total_bytes) {
          violation("translation escaped the machine address space " +
                    describe(s));
          return;
        }
        const std::size_t home = ms_index(r.mach);
        if (s.mem[home] != static_cast<std::uint8_t>(p)) {
          violation("page " + std::to_string(p) + " sub-block " +
                    std::to_string(b) +
                    " routed to a home that does not hold its data "
                    "(machine sub-block " +
                    std::to_string(home) + " holds " +
                    (s.mem[home] == kStale
                         ? std::string("stale bytes")
                         : "page " + std::to_string(s.mem[home])) +
                    ") " + describe(s));
          return;
        }
        if (claimed_[home] != 0) {
          violation("two pages share machine sub-block " +
                    std::to_string(home) +
                    " — a datum must have exactly one home " + describe(s));
          return;
        }
        claimed_[home] = 1;
      }
    }
  }

  // --- canonicalization -----------------------------------------------------

  /// Rewrites every *dead* mem cell to kStale. A cell is live iff some
  /// probed page currently translates to it, or a remaining plan step will
  /// still read (src) or write (dst) its machine page. Dead cells can
  /// never influence a future probe or copy, so collapsing them keeps the
  /// state space finite without losing any distinguishable behaviour.
  /// table_ must hold s's table.
  void canonicalize(State& s) {
    const Geometry& g = cfg_.geom;
    const std::uint32_t sb = g.sub_blocks_per_page();
    keep_.assign(total_sub_blocks(), 0);
    for (PageId p = 0; p < probe_limit(); ++p)
      for (std::uint32_t b = 0; b < sb; ++b) {
        const PhysAddr addr = g.machine_base(p) + b * g.sub_block_bytes;
        const Route r = table_.translate(addr);
        if (r.mach < g.total_bytes) keep_[ms_index(r.mach)] = 1;
      }
    for (const CopyStep& st : s.plan)
      for (std::uint32_t b = 0; b < sb; ++b) {
        keep_[ms_index(st.src) + b] = 1;
        keep_[ms_index(st.dst) + b] = 1;
      }
    for (std::size_t i = 0; i < s.mem.size(); ++i)
      if (keep_[i] == 0) s.mem[i] = kStale;
  }

  void push(State& s) {
    std::string key = encode(s);
    if (seen_.insert(std::move(key)).second) queue_.push_back(std::move(s));
  }

  // --- transitions ----------------------------------------------------------

  void enter_step(const CopyStep& st) {
    if (st.live_fill)
      table_.begin_fill(st.fill_slot, st.fill_page, st.fill_old_base);
    if (cfg_.sabotage == Sabotage::ApplyMutationsEarly)
      for (const TableMutation& m : st.after)
        MigrationEngine::apply_mutation(table_, m);
  }

  void apply_step_mutations(const CopyStep& st) {
    if (cfg_.sabotage == Sabotage::ApplyMutationsEarly) return;  // done
    for (const TableMutation& m : st.after) {
      if (cfg_.sabotage == Sabotage::DropClearPending &&
          m.kind == TableMutation::Kind::ClearPending)
        continue;
      MigrationEngine::apply_mutation(table_, m);
    }
  }

  void expand(const State& s) {
    load_table(s);
    try {
      check_state(s);
    } catch (const fault::SimError& e) {
      violation(std::string("invariant check threw: ") + e.what() + " " +
                describe(s));
      return;
    }
    if (s.plan.empty())
      expand_quiescent(s);
    else
      expand_in_flight(s);
  }

  void expand_quiescent(const State& s) {
    ++report_.quiescent_states;
    if (cfg_.design == MigrationDesign::Nomad) {
      expand_quiescent_nomad(s);
      return;
    }
    if (mode_ == TableMode::HardwareNMinus1 &&
        !table_.empty_slot().has_value()) {
      // An abort after the hot page consumed the empty slot: the N-1
      // choreography cannot start again (MigrationEngine enters degraded
      // mode). Demand is still served — check_state proved it — so this
      // is a valid terminal, not a wedge.
      ++report_.degraded_states;
      return;
    }
    const Geometry& g = cfg_.geom;
    const std::uint32_t starts =
        cfg_.design == MigrationDesign::LiveMigration
            ? g.sub_blocks_per_page()
            : 1;  // hot_sub_block only steers the live-fill rotation
    for (PageId hot = 0; hot < probe_limit(); ++hot) {
      for (SlotId cold = 0; cold < g.slots(); ++cold) {
        load_table(s);  // a prior successor left its state in the scratch
        if (!engine_.can_swap(hot, cold)) continue;
        for (std::uint32_t start = 0; start < starts; ++start) {
          ++report_.swaps_started;
          ++report_.transitions;
          try {
            load_table(s);
            State t;
            t.mem = s.mem;
            t.plan = engine_.plan_swap(hot, start, cold);
            t.progress = 0;
            enter_step(t.plan.front());
            t.table = save_table();
            canonicalize(t);
            push(t);
          } catch (const fault::SimError& e) {
            violation(std::string("start_swap transition threw: ") +
                      e.what() + " " + describe(s));
          }
        }
      }
    }
  }

  void expand_in_flight(const State& s) {
    ++report_.in_flight_states;
    if (cfg_.design == MigrationDesign::Nomad) {
      advance_nomad(s);
      if (cfg_.explore_aborts) abort_nomad(s);
      return;
    }
    advance(s);
    if (cfg_.explore_aborts) abort_swap(s);
  }

  /// Nomad `start` transitions: a transaction can begin on every page a
  /// cross-boundary move makes sense for. The begin goes through
  /// apply_mutation() like everything else, and — deliberately — changes
  /// no routing: the committed home keeps serving.
  void expand_quiescent_nomad(const State& s) {
    for (PageId p = 0; p < probe_limit(); ++p) {
      load_table(s);  // a prior successor left its state in the scratch
      if (!engine_.can_migrate(p)) continue;
      ++report_.swaps_started;
      ++report_.transitions;
      try {
        load_table(s);
        State t;
        t.mem = s.mem;
        t.plan = engine_.plan_txn(p);
        t.progress = 0;
        MigrationEngine::apply_mutation(
            table_, MigrationEngine::begin_shadow_mutation(p, table_.hole()));
        t.table = save_table();
        canonicalize(t);
        push(t);
      } catch (const fault::SimError& e) {
        violation(std::string("start_migration transition threw: ") +
                  e.what() + " " + describe(s));
      }
    }
  }

  /// Nomad transitions from an in-flight (shadow-active) state:
  ///   copy    — stream the first sub-block still unfilled or dirty into
  ///             the hole (a re-copy clears the dirty bit, exactly like
  ///             MigrationEngine's pass loop);
  ///   commit  — only once every sub-block is filled and clean (the
  ///             CommitDespiteDirty sabotage commits with dirt left);
  ///   write   — a demand write can hit any sub-block at any boundary:
  ///             it lands at the committed home, dirties the sub-block,
  ///             and stales an already-filled shadow copy.
  void advance_nomad(const State& s) {
    const std::uint32_t nsb = cfg_.geom.sub_blocks_per_page();
    const CopyStep st = s.plan.front();
    load_table(s);
    bool all_filled = true;
    bool any_dirty = false;
    std::uint32_t next = nsb;
    for (std::uint32_t b = 0; b < nsb; ++b) {
      const bool filled = table_.shadow_filled(b);
      const bool dirty = table_.shadow_dirty(b);
      all_filled = all_filled && filled;
      any_dirty = any_dirty || dirty;
      if (next == nsb && (!filled || dirty)) next = b;
    }
    const bool clean = next == nsb;
    const bool sabotaged_commit =
        cfg_.sabotage == Sabotage::CommitDespiteDirty && all_filled &&
        any_dirty;

    if (clean || sabotaged_commit) {
      ++report_.transitions;
      try {
        load_table(s);
        State t;
        t.mem = s.mem;
        t.progress = 0;
        for (const TableMutation& m : st.after)
          MigrationEngine::apply_mutation(table_, m);
        t.table = save_table();
        canonicalize(t);
        push(t);
      } catch (const fault::SimError& e) {
        violation(std::string("commit transition threw: ") + e.what() + " " +
                  describe(s));
      }
    }
    if (!clean) {
      ++report_.transitions;
      try {
        load_table(s);
        State t;
        t.mem = s.mem;
        t.plan = s.plan;
        t.progress = 0;
        t.mem[ms_index(st.dst) + next] = t.mem[ms_index(st.src) + next];
        table_.shadow_clear_dirty(next);
        table_.shadow_mark_filled(next);
        t.table = save_table();
        canonicalize(t);
        push(t);
      } catch (const fault::SimError& e) {
        violation(std::string("copy transition threw: ") + e.what() + " " +
                  describe(s));
      }
    }
    for (std::uint32_t b = 0; b < nsb; ++b) {
      load_table(s);
      if (table_.shadow_dirty(b)) continue;  // re-dirty: same state
      ++report_.transitions;
      try {
        State t;
        t.mem = s.mem;
        t.plan = s.plan;
        t.progress = 0;
        table_.shadow_mark_dirty(b);
        if (table_.shadow_filled(b))
          t.mem[ms_index(st.dst) + b] = kStale;
        t.table = save_table();
        canonicalize(t);
        push(t);
      } catch (const fault::SimError& e) {
        violation(std::string("demand-write transition threw: ") + e.what() +
                  " " + describe(s));
      }
    }
  }

  /// The transaction dies at this boundary. One AbortShadow mutation is
  /// the whole rollback: the table returns to its pre-begin state, the
  /// partially-filled hole becomes dead bytes (canonicalized away), and
  /// — unlike N-1 — nothing is ever lost, so there is no degraded
  /// terminal here.
  void abort_nomad(const State& s) {
    ++report_.aborts_injected;
    ++report_.transitions;
    try {
      load_table(s);
      State t;
      t.mem = s.mem;
      t.progress = 0;
      MigrationEngine::apply_mutation(
          table_, MigrationEngine::abort_shadow_mutation());
      t.table = save_table();
      canonicalize(t);
      push(t);
    } catch (const fault::SimError& e) {
      violation(std::string("abort transition threw: ") + e.what() + " " +
                describe(s));
    }
  }

  /// Copy the next sub-block in the engine's fill order; on step
  /// completion, apply the attached mutations exactly as
  /// MigrationEngine::finish_step() does (mutations first, then end_fill).
  void advance(const State& s) {
    ++report_.transitions;
    try {
      load_table(s);
      const CopyStep st = s.plan.front();
      const auto nsb =
          static_cast<std::uint32_t>(st.bytes / cfg_.geom.sub_block_bytes);
      const std::uint32_t idx =
          st.live_fill ? (st.start_sub_block + s.progress) % nsb
                       : s.progress;
      State t;
      t.mem = s.mem;
      t.plan = s.plan;
      t.progress = s.progress + 1;
      if (cfg_.design == MigrationDesign::N) {
        // The N plan's src/dst sequence is a *traffic* model of the
        // buffered exchange (reading a location the previous step already
        // overwrote); demand is stalled for the whole swap, so the only
        // observable data movement is the exchange committed at the end —
        // applied below from the NoteData mutations.
      } else if (cfg_.sabotage == Sabotage::MarkSubBlockEarly &&
                 st.live_fill) {
        table_.mark_sub_block(idx);  // claims it ready; data never moves
      } else {
        t.mem[ms_index(st.dst) + idx] = t.mem[ms_index(st.src) + idx];
        if (st.live_fill) table_.mark_sub_block(idx);
      }
      if (t.progress == nsb) {
        apply_step_mutations(st);
        if (cfg_.design == MigrationDesign::N) {
          const std::uint32_t sb = cfg_.geom.sub_blocks_per_page();
          for (const TableMutation& m : st.after)
            if (m.kind == TableMutation::Kind::NoteData)
              for (std::uint32_t b = 0; b < sb; ++b)
                t.mem[m.machine * sb + b] = static_cast<std::uint8_t>(m.page);
        }
        if (st.live_fill) table_.end_fill();
        t.plan.erase(t.plan.begin());
        t.progress = 0;
        if (!t.plan.empty()) enter_step(t.plan.front());
      }
      t.table = save_table();
      canonicalize(t);
      push(t);
    } catch (const fault::SimError& e) {
      violation(std::string("advance transition threw: ") + e.what() + " " +
                describe(s));
    }
  }

  /// The swap dies at this boundary. N-1/Live roll back exactly like
  /// MigrationEngine::abort_swap(): table mutations only ever apply at
  /// step completions, so discarding the unfinished remainder *is* the
  /// rollback; a still-set P bit keeps routing its left page to Ω, where
  /// that page's data genuinely lives. Design N has no recovery
  /// choreography and wedges — the documented stall.
  void abort_swap(const State& s) {
    ++report_.aborts_injected;
    ++report_.transitions;
    if (cfg_.design == MigrationDesign::N) {
      ++report_.wedge_states;  // terminal: demand can never resume
      return;
    }
    try {
      load_table(s);
      if (table_.fill_active()) table_.end_fill();
      State t;
      t.mem = s.mem;
      t.progress = 0;
      t.table = save_table();
      canonicalize(t);
      push(t);
    } catch (const fault::SimError& e) {
      violation(std::string("abort transition threw: ") + e.what() + " " +
                describe(s));
    }
  }

  void finalize() {
    if (cfg_.design == MigrationDesign::N) {
      if (cfg_.explore_aborts && report_.wedge_states == 0 &&
          report_.violations.empty())
        violation("design N never reached its documented stall — the "
                  "model lost abort coverage");
    } else if (report_.wedge_states != 0) {
      violation("a non-N design wedged " +
                std::to_string(report_.wedge_states) + " time(s)");
    }
  }

  CheckerConfig cfg_;
  TableMode mode_;
  TranslationTable table_;  ///< scratch, overwritten per state
  DramSystem on_;           ///< engine constructor plumbing only
  DramSystem off_;
  MigrationEngine engine_;  ///< used for can_swap()/plan_swap() only
  CheckerReport report_;
  std::deque<State> queue_;
  std::unordered_set<std::string> seen_;
  std::vector<std::uint8_t> claimed_;
  std::vector<std::uint8_t> keep_;
};

}  // namespace

CheckerReport check_choreography(const CheckerConfig& cfg) {
  return Explorer(cfg).run();
}

std::string format_report(const CheckerReport& r) {
  std::ostringstream os;
  os << "design " << to_string(r.design) << ": "
     << (r.ok() ? "PASS" : "FAIL") << "\n"
     << "  states explored    " << r.states_explored << " ("
     << r.quiescent_states << " quiescent, " << r.in_flight_states
     << " in-flight)\n"
     << "  transitions        " << r.transitions << " ("
     << r.swaps_started << " swap starts, " << r.aborts_injected
     << " aborts injected)\n"
     << "  demand probes      " << r.demand_checks << "\n";
  if (r.design == MigrationDesign::N)
    os << "  documented stalls  " << r.stall_states << " stall states, "
       << r.wedge_states << " wedge points (expected for design N)\n";
  else
    os << "  terminal outcomes  " << r.degraded_states
       << " degraded, " << r.wedge_states << " wedged (must be 0)\n";
  for (const std::string& v : r.violations) os << "  VIOLATION: " << v << "\n";
  return os.str();
}

}  // namespace hmm::verify
