// Exhaustive model checker for the Fig-8 swap choreography.
//
// The paper's safety argument — "the data under movement always has a
// valid physical home, so execution never halts" (Section III-A) — is an
// invariant over every *intermediate* state of the swap state machine,
// not just its endpoints. The runtime InvariantAuditor and the fuzz tests
// only sample that space; this checker enumerates it.
//
// Method: explicit-state breadth-first search over a small (but complete)
// model geometry. A state is
//     (translation table, ground-truth data placement, remaining plan,
//      copy progress within the current step)
// where the table is the *real* TranslationTable class, plans come from
// the *real* MigrationEngine::plan_swap(), and table mutations are applied
// through MigrationEngine::apply_mutation() — the checker shares the
// production choreography code and can therefore not diverge from what it
// is proving. Only the data movement itself is abstracted: the ground
// truth records, per machine sub-block, whose page's data it currently
// holds; a copy step moves ownership one sub-block at a time in the
// engine's fill order (critical-data-first rotation for live fills).
//
// Transitions explored from each state:
//   * start  — every (hot page, cold slot) pair the engine's can_swap()
//              accepts, at every critical-first start sub-block;
//   * advance — copy the next sub-block of the current step; step/plan
//              completion applies the attached table mutations exactly as
//              the engine's finish_step() does;
//   * abort  — the swap dies at this boundary (covers every Fig-8 step
//              boundary and every intra-step chunk boundary). Designs
//              N-1/Live roll back to the last step boundary like
//              MigrationEngine::abort_swap(); design N wedges, which the
//              checker flags as the paper's documented stall.
//
// Invariants checked in every reachable state:
//   1. TranslationTable::validate() is clean (encoding/placement/CAM/
//      P-bit structural legality);
//   2. single valid home — every macro page's translation, at every
//      sub-block, resolves to a machine sub-block that actually holds
//      that page's data, and no two pages resolve to the same machine
//      sub-block;
//   3. the live-fill bitmap never claims a sub-block whose data has not
//      landed in the filling slot (P/F-vs-bitmap consistency);
//   4. no reachable state wedges, except design N's documented stall,
//      which must be *reached* (a run of design N with aborts enabled
//      that never wedges means the model lost coverage, and is reported
//      as a failure too).
//
// Design N stalls demand for the whole swap, so invariant 2 is asserted
// only in its quiescent states (the checker counts the stall states it
// skipped). Demand accesses are modelled as reads; write-forwarding
// during migration is hardware-level and orthogonal to the routing
// invariants checked here (see DESIGN.md §8).
//
// Design Nomad (DESIGN.md §10) explores the transactional choreography
// instead of Fig 8: begin/copy/commit/abort driven through the same
// apply_mutation() path, with a crash/abort and a demand *write* (which
// dirties the written sub-block and stales its shadow copy) injected at
// every copy and commit boundary. Invariant 2 is the transactional
// reading of single-valid-home: reads are served consistently from
// exactly one committed home — the old one until the commit point, the
// hole after it, never a mix.
//
// The `sabotage` knob deliberately mis-applies the choreography so tests
// can prove the checker actually detects violations (non-vacuity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/geometry.hh"
#include "core/migration.hh"

namespace hmm::verify {

/// Deliberate choreography corruptions used to self-test the checker.
enum class Sabotage : std::uint8_t {
  None,
  /// Apply a step's table mutations when the step *starts* instead of when
  /// its copy completes — the classic lost-home bug the Fig-8 ordering
  /// exists to prevent.
  ApplyMutationsEarly,
  /// Drop every ClearPending mutation — the P bit outlives the relocation
  /// it covers, so the row's left page is routed to Ω after its data left.
  DropClearPending,
  /// Mark a live-fill sub-block ready *before* its data lands — the F-bit
  /// bitmap serves stale bytes from the filling slot.
  MarkSubBlockEarly,
  /// Nomad: commit a transaction while dirty sub-blocks remain — the new
  /// home serves bytes that demand writes already superseded.
  CommitDespiteDirty,
};

[[nodiscard]] constexpr const char* to_string(Sabotage s) noexcept {
  switch (s) {
    case Sabotage::None: return "none";
    case Sabotage::ApplyMutationsEarly: return "apply-mutations-early";
    case Sabotage::DropClearPending: return "drop-clear-pending";
    case Sabotage::MarkSubBlockEarly: return "mark-sub-block-early";
    case Sabotage::CommitDespiteDirty: return "commit-despite-dirty";
  }
  return "?";
}

struct CheckerConfig {
  MigrationDesign design = MigrationDesign::NMinus1;
  /// Model geometry. The default (4 slots, 8 macro pages, 4 sub-blocks)
  /// is the smallest geometry that exercises every Fig-8 case: OS/MS hot
  /// pages, OF/MF victims, the ghost page refilling its own slot, and a
  /// non-trivial critical-first rotation. For design Nomad use 2 slots
  /// (16 KiB / 8 KiB): the hole wanders over every machine page, so the
  /// placement count is factorial in total_pages and 4 slots would blow
  /// past max_states.
  Geometry geom{/*total_bytes=*/32 * KiB, /*on_package_bytes=*/16 * KiB,
                /*page_bytes=*/4 * KiB, /*sub_block_bytes=*/1 * KiB};
  /// Explore the abort/crash transition at every copy boundary.
  bool explore_aborts = true;
  /// Safety valve: exceeding this is reported as a verification failure
  /// (the exhaustiveness claim would otherwise silently become sampling).
  std::uint64_t max_states = 4'000'000;
  /// Cap on collected violation messages (exploration stops at the cap).
  std::size_t max_violations = 16;
  Sabotage sabotage = Sabotage::None;
};

struct CheckerReport {
  MigrationDesign design = MigrationDesign::NMinus1;
  std::uint64_t states_explored = 0;   ///< distinct states visited
  std::uint64_t transitions = 0;       ///< edges taken (incl. duplicates)
  std::uint64_t quiescent_states = 0;  ///< engine idle
  std::uint64_t in_flight_states = 0;  ///< mid-choreography
  std::uint64_t swaps_started = 0;     ///< `start` transitions
  std::uint64_t aborts_injected = 0;   ///< `abort` transitions
  std::uint64_t wedge_states = 0;      ///< design N terminal stalls
  std::uint64_t degraded_states = 0;   ///< N-1 empty-slot-lost terminals
  std::uint64_t stall_states = 0;      ///< design N mid-swap (demand held)
  std::uint64_t demand_checks = 0;     ///< page x sub-block read probes
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Runs the exhaustive exploration for one design. Deterministic: the
/// same config always visits the same states in the same order.
[[nodiscard]] CheckerReport check_choreography(const CheckerConfig& cfg);

/// Human-readable one-design summary (multi-line, trailing newline).
[[nodiscard]] std::string format_report(const CheckerReport& r);

}  // namespace hmm::verify
