#include "fault/auditor.hh"

#include <string>

#include "core/controller.hh"
#include "core/translation_table.hh"

namespace hmm::fault {

InvariantAuditor::InvariantAuditor(const TranslationTable& table,
                                   const HeteroMemoryController* controller,
                                   std::uint64_t interval)
    : table_(&table),
      controller_(controller),
      subject_(nullptr),
      interval_(interval) {}

InvariantAuditor::InvariantAuditor(const Auditable* subject,
                                   std::uint64_t interval)
    : table_(nullptr),
      controller_(nullptr),
      subject_(subject),
      interval_(interval) {}

void InvariantAuditor::audit() {
  ++audits_;

  const TranslationTable* t =
      subject_ != nullptr ? subject_->audited_table() : table_;
  if (t != nullptr) {
    const std::string table_err = t->validate();
    if (!table_err.empty())
      throw SimError(SimErrorKind::AuditFailed,
                     "translation table: " + table_err);

    if (t->fill_active() && t->fill_page() == last_fill_page_) {
      const std::uint32_t ready = t->fill_ready_count();
      if (ready < last_fill_ready_)
        throw SimError(SimErrorKind::AuditFailed,
                       "fill bitmap lost sub-blocks mid-fill");
      last_fill_ready_ = ready;
    } else if (t->fill_active()) {
      last_fill_page_ = t->fill_page();
      last_fill_ready_ = t->fill_ready_count();
    } else {
      last_fill_page_ = kInvalidPage;
      last_fill_ready_ = 0;
    }
  }

  std::string err;
  if (subject_ != nullptr)
    err = subject_->audit_check();
  else if (controller_ != nullptr)
    err = controller_->audit();
  if (!err.empty()) throw SimError(SimErrorKind::AuditFailed, err);

  if (extra_check_) {
    const std::string extra = extra_check_();
    if (!extra.empty()) throw SimError(SimErrorKind::AuditFailed, extra);
  }
}

}  // namespace hmm::fault
