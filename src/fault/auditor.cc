#include "fault/auditor.hh"

#include <string>

#include "core/controller.hh"
#include "core/translation_table.hh"

namespace hmm::fault {

InvariantAuditor::InvariantAuditor(const TranslationTable& table,
                                   const HeteroMemoryController* controller,
                                   std::uint64_t interval)
    : table_(table), controller_(controller), interval_(interval) {}

void InvariantAuditor::audit() {
  ++audits_;

  const std::string table_err = table_.validate();
  if (!table_err.empty())
    throw SimError(SimErrorKind::AuditFailed,
                   "translation table: " + table_err);

  if (table_.fill_active() && table_.fill_page() == last_fill_page_) {
    const std::uint32_t ready = table_.fill_ready_count();
    if (ready < last_fill_ready_)
      throw SimError(SimErrorKind::AuditFailed,
                     "fill bitmap lost sub-blocks mid-fill");
    last_fill_ready_ = ready;
  } else if (table_.fill_active()) {
    last_fill_page_ = table_.fill_page();
    last_fill_ready_ = table_.fill_ready_count();
  } else {
    last_fill_page_ = kInvalidPage;
    last_fill_ready_ = 0;
  }

  if (controller_ != nullptr) {
    const std::string ctl_err = controller_->audit();
    if (!ctl_err.empty())
      throw SimError(SimErrorKind::AuditFailed, ctl_err);
  }
}

}  // namespace hmm::fault
