// Periodic full-state invariant audit (the deep end of
// TranslationTable::validate()).
//
// MemSim calls on_access() once per demand access; every `interval`
// accesses the auditor sweeps the translation table (bidirectional
// RAM/CAM consistency, P/F-bit protocol legality, encoding-vs-placement
// agreement), checks fill-bitmap monotonicity against the previous
// observation, and runs the controller's tracker self-checks. Any
// violation throws SimError(AuditFailed) — injected corruption surfaces
// as a structured, attributable error instead of a silently wrong run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/snapshot.hh"
#include "common/types.hh"
#include "fault/sim_error.hh"

namespace hmm {
class TranslationTable;
class HeteroMemoryController;
}  // namespace hmm

namespace hmm::fault {

/// What the auditor needs from any subject it sweeps: an optional
/// translation table (validated + fill-bitmap-checked when present) and a
/// subject-internal invariant sweep. MemoryScheme implementations derive
/// from this so one auditor serves every scheme in the zoo.
class Auditable {
 public:
  virtual ~Auditable() = default;
  /// The translation table to validate, or nullptr when the subject has
  /// none (cache-style schemes keep tags, not a P2M table).
  [[nodiscard]] virtual const TranslationTable* audited_table()
      const noexcept = 0;
  /// Subject-internal invariant sweep; error description or empty string.
  [[nodiscard]] virtual std::string audit_check() const = 0;
};

class InvariantAuditor {
 public:
  /// `interval` == 0 disables the periodic audit entirely (audit() can
  /// still be called directly). `controller` may be null.
  InvariantAuditor(const TranslationTable& table,
                   const HeteroMemoryController* controller,
                   std::uint64_t interval);

  /// Scheme-generic form: audits whatever table/state the subject exposes.
  /// `subject` is not owned and must outlive the auditor.
  InvariantAuditor(const Auditable* subject, std::uint64_t interval);

  /// Fast path: counts the access, audits when the interval elapses.
  void on_access() {
    if (interval_ == 0) return;
    if (++since_audit_ >= interval_) {
      since_audit_ = 0;
      audit();
    }
  }

  /// Full sweep; throws SimError(AuditFailed) on any violation.
  void audit();

  /// Optional extra invariant run on every audit (e.g. MemSim's RAS
  /// retired-route sweep). Returns an error description or empty string.
  void set_extra_check(std::function<std::string()> check) {
    extra_check_ = std::move(check);
  }

  [[nodiscard]] std::uint64_t audits() const noexcept { return audits_; }

  void save(snap::Writer& w) const {
    w.begin_section(snap::tag('A', 'U', 'D', 'T'));
    w.u64(since_audit_);
    w.u64(audits_);
    w.u64(last_fill_page_);
    w.u32(last_fill_ready_);
    w.end_section();
  }
  void restore(snap::Reader& r) {
    r.begin_section(snap::tag('A', 'U', 'D', 'T'));
    since_audit_ = r.u64();
    audits_ = r.u64();
    last_fill_page_ = r.u64();
    last_fill_ready_ = r.u32();
    r.end_section();
  }

 private:
  const TranslationTable* table_;  ///< not owned; may be null
  const HeteroMemoryController* controller_;  ///< not owned; may be null
  const Auditable* subject_;  ///< not owned; may be null
  // no-snapshot(re-attached by the owner after restore)
  std::function<std::string()> extra_check_;
  std::uint64_t interval_;  // no-snapshot(construction-time config)
  std::uint64_t since_audit_ = 0;
  std::uint64_t audits_ = 0;
  // Fill-bitmap monotonicity: within one fill of the same page, the number
  // of landed sub-blocks must never decrease.
  PageId last_fill_page_ = kInvalidPage;
  std::uint32_t last_fill_ready_ = 0;
};

}  // namespace hmm::fault
