// Structured simulator errors and the always-on invariant check macro.
//
// The paper's robustness claim — the N-1 choreography keeps every datum
// addressable "so execution never halts" — is only worth something if a
// violated invariant surfaces as a diagnosable error in *every* build
// type. Release builds compile `assert()` away, so the core and DRAM
// layers use HMM_CHECK instead: the condition is always evaluated and a
// failure throws SimError carrying file:line context. Watchdogs, the
// invariant auditor, and the runner's per-cell deadline all raise the
// same type, so one catch site in the runner can classify any outcome.
#pragma once

#include <stdexcept>
#include <string>

namespace hmm::fault {

enum class SimErrorKind : unsigned char {
  CheckFailed,  ///< an HMM_CHECK condition was false
  AuditFailed,  ///< the periodic invariant audit found corruption
  Watchdog,     ///< simulated time can no longer advance (wedged swap)
  Timeout,      ///< the cell exceeded its wall-clock budget
  Snapshot,     ///< a checkpoint failed to encode, decode, or verify
  CapacityExhausted,  ///< page retirement ate past the capacity floor
  Io,           ///< a trace file failed to open, read, or write
};

[[nodiscard]] constexpr const char* to_string(SimErrorKind k) noexcept {
  switch (k) {
    case SimErrorKind::CheckFailed: return "check";
    case SimErrorKind::AuditFailed: return "audit";
    case SimErrorKind::Watchdog: return "watchdog";
    case SimErrorKind::Timeout: return "timeout";
    case SimErrorKind::Snapshot: return "snapshot";
    case SimErrorKind::CapacityExhausted: return "capacity-exhausted";
    case SimErrorKind::Io: return "io";
  }
  return "?";
}

class SimError : public std::runtime_error {
 public:
  SimError(SimErrorKind kind, const std::string& message,
           const char* file = nullptr, int line = 0)
      : std::runtime_error(format(kind, message, file, line)), kind_(kind) {}

  [[nodiscard]] SimErrorKind kind() const noexcept { return kind_; }

 private:
  [[nodiscard]] static std::string format(SimErrorKind kind,
                                          const std::string& message,
                                          const char* file, int line) {
    std::string s = "[";
    s += to_string(kind);
    s += "] ";
    s += message;
    if (file != nullptr) {
      s += " (";
      s += file;
      s += ":";
      s += std::to_string(line);
      s += ")";
    }
    return s;
  }

  SimErrorKind kind_;
};

}  // namespace hmm::fault

/// Always-on invariant check: evaluated in every build type; a failure
/// throws SimError with file:line context instead of silently vanishing
/// the way release-mode assert() does. Use only in functions that may
/// throw (never in noexcept paths).
#define HMM_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::hmm::fault::SimError(::hmm::fault::SimErrorKind::CheckFailed, \
                                   std::string(msg) + " [" #cond "]",     \
                                   __FILE__, __LINE__);                   \
    }                                                                     \
  } while (false)
