// Deterministic fault injection for the migration pipeline.
//
// A FaultPlan is a list of {site, rate, after, max_fires} rules; the
// FaultInjector evaluates them with one PCG32 stream *per site*, seeded
// from (plan seed, site index). Because each site's decisions depend only
// on that site's own opportunity counter, the fault sequence is a pure
// function of the plan — identical across thread counts, platforms, and
// unrelated code motion, which is what makes fault runs replayable.
//
// An empty plan is free: fires() returns immediately without touching any
// RNG, so a fault-rate-0 run is bit-identical to a build without the
// hooks. Sites (where the hooks live):
//   MigrationChunkDrop   engine: a copy chunk's completion is lost
//   MigrationChunkDelay  engine: a copy chunk must be re-streamed later
//   SwapAbort            engine: the in-flight swap aborts mid-step
//   ChannelStall         dram:   transient stall delays a request's arrival
//   TableBitFlip         memsim: a P/occupant bit of the table flips
//   HotnessCorrupt       controller: an access is recorded for a wrong page
//   MediaTransient       ras: a transient bit flip in a machine frame
//   MediaStuckAt         ras: a permanent stuck-at cell in a machine frame
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/random.hh"
#include "common/snapshot.hh"
#include "common/types.hh"

namespace hmm::fault {

enum class FaultSite : std::uint8_t {
  MigrationChunkDrop,
  MigrationChunkDelay,
  SwapAbort,
  ChannelStall,
  TableBitFlip,
  HotnessCorrupt,
  MediaTransient,
  MediaStuckAt,
};
inline constexpr unsigned kFaultSiteCount = 8;

[[nodiscard]] constexpr const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::MigrationChunkDrop: return "chunk-drop";
    case FaultSite::MigrationChunkDelay: return "chunk-delay";
    case FaultSite::SwapAbort: return "swap-abort";
    case FaultSite::ChannelStall: return "channel-stall";
    case FaultSite::TableBitFlip: return "table-bit-flip";
    case FaultSite::HotnessCorrupt: return "hotness-corrupt";
    case FaultSite::MediaTransient: return "media-transient";
    case FaultSite::MediaStuckAt: return "media-stuck-at";
  }
  return "?";
}

/// Parse a site name as printed by to_string(); returns false on no match.
[[nodiscard]] inline bool site_from_name(std::string_view name,
                                         FaultSite& out) noexcept {
  for (unsigned i = 0; i < kFaultSiteCount; ++i) {
    const auto s = static_cast<FaultSite>(i);
    if (name == to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

/// One injection rule. `rate >= 1` fires at every opportunity; otherwise
/// each opportunity fires with probability `rate`. The first `after`
/// opportunities never fire (arming delay, for targeting a specific chunk
/// or access), and at most `max_fires` faults are injected in total.
struct FaultRule {
  FaultSite site = FaultSite::MigrationChunkDrop;
  double rate = 0.0;
  std::uint64_t after = 0;
  std::uint64_t max_fires = UINT64_MAX;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 0x5eedfau;
  Cycle stall_cycles = 500;  ///< ChannelStall: arrival push-back
  Cycle delay_cycles = 400;  ///< MigrationChunkDelay: re-stream delay

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
  FaultPlan& add(FaultSite site, double rate, std::uint64_t after = 0,
                 std::uint64_t max_fires = UINT64_MAX) {
    rules.push_back({site, rate, after, max_fires});
    return *this;
  }
};

/// One injected fault, recorded for the results artifact (bounded log).
struct FaultEvent {
  FaultSite site = FaultSite::MigrationChunkDrop;
  std::uint64_t opportunity = 0;  ///< site-local opportunity index
  std::uint64_t detail = 0;       ///< site-specific (chunk index, page id...)
};

class FaultInjector {
 public:
  static constexpr std::size_t kMaxEvents = 4096;

  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {
    for (const FaultRule& r : plan.rules) {
      SiteState& st = sites_[index(r.site)];
      st.rule = r;  // one rule per site; last one wins
      st.armed = r.rate > 0.0 && r.max_fires > 0;
    }
    for (unsigned i = 0; i < kFaultSiteCount; ++i)
      sites_[i].rng = Pcg32(plan.seed, /*stream=*/i + 1);
    payload_rng_ = Pcg32(plan.seed, /*stream=*/kFaultSiteCount + 1);
    enabled_ = !plan.rules.empty();
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// One opportunity at `site`; returns true when the fault fires (and
  /// records it). Deterministic: depends only on the plan and the number
  /// of prior opportunities at this same site.
  bool fires(FaultSite site, std::uint64_t detail = 0) {
    if (!enabled_) return false;
    SiteState& st = sites_[index(site)];
    if (!st.armed) return false;
    const std::uint64_t op = st.opportunities++;
    if (op < st.rule.after) return false;
    if (st.fires >= st.rule.max_fires) return false;
    const bool hit = st.rule.rate >= 1.0 || st.rng.chance(st.rule.rate);
    if (!hit) return false;
    ++st.fires;
    ++total_fires_;
    if (events_.size() < kMaxEvents) {
      events_.push_back({site, op, detail});
    } else {
      ++events_dropped_;  // bounded log overflowed; keep an honest count
    }
    return true;
  }

  /// Site-independent randomness for fault *payloads* (which bit to flip,
  /// which page id to scramble) — separate stream so payload draws never
  /// perturb the fire/no-fire sequences.
  [[nodiscard]] Pcg32& payload_rng() noexcept { return payload_rng_; }

  [[nodiscard]] std::uint64_t opportunities(FaultSite s) const noexcept {
    return sites_[index(s)].opportunities;
  }
  [[nodiscard]] std::uint64_t fires_count(FaultSite s) const noexcept {
    return sites_[index(s)].fires;
  }
  [[nodiscard]] std::uint64_t total_fires() const noexcept {
    return total_fires_;
  }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  /// Fired faults that could not be logged because the bounded event log
  /// was full. Nonzero means events() is a truncated record.
  [[nodiscard]] std::uint64_t events_dropped() const noexcept {
    return events_dropped_;
  }

  /// Checkpoint/restore of the dynamic state (opportunity counters, fire
  /// counts, site RNG streams, event log). The plan itself is not
  /// serialized — the restoring side constructs with the same FaultPlan.
  void save(snap::Writer& w) const {
    w.begin_section(snap::tag('F', 'I', 'N', 'J'));
    w.u32(kFaultSiteCount);
    for (const SiteState& st : sites_) {
      w.u64(st.opportunities);
      w.u64(st.fires);
      const Pcg32::Raw raw = st.rng.raw();
      w.u64(raw.state);
      w.u64(raw.inc);
    }
    const Pcg32::Raw p = payload_rng_.raw();
    w.u64(p.state);
    w.u64(p.inc);
    w.u64(total_fires_);
    w.u64(events_dropped_);
    w.u64(events_.size());
    for (const FaultEvent& e : events_) {
      w.u8(static_cast<std::uint8_t>(e.site));
      w.u64(e.opportunity);
      w.u64(e.detail);
    }
    w.end_section();
  }
  void restore(snap::Reader& r) {
    r.begin_section(snap::tag('F', 'I', 'N', 'J'));
    if (r.u32() != kFaultSiteCount)
      snap::snapshot_error("fault-site count mismatch in checkpoint");
    for (SiteState& st : sites_) {
      st.opportunities = r.u64();
      st.fires = r.u64();
      Pcg32::Raw raw;
      raw.state = r.u64();
      raw.inc = r.u64();
      st.rng.set_raw(raw);
    }
    Pcg32::Raw p;
    p.state = r.u64();
    p.inc = r.u64();
    payload_rng_.set_raw(p);
    total_fires_ = r.u64();
    events_dropped_ = r.u64();
    events_.assign(r.u64(), FaultEvent{});
    for (FaultEvent& e : events_) {
      e.site = static_cast<FaultSite>(r.u8());
      e.opportunity = r.u64();
      e.detail = r.u64();
    }
    r.end_section();
  }

 private:
  struct SiteState {
    FaultRule rule;
    bool armed = false;
    std::uint64_t opportunities = 0;
    std::uint64_t fires = 0;
    Pcg32 rng;
  };

  [[nodiscard]] static constexpr unsigned index(FaultSite s) noexcept {
    return static_cast<unsigned>(s);
  }

  FaultPlan plan_;  // no-snapshot(construction-time config)
  std::array<SiteState, kFaultSiteCount> sites_;
  Pcg32 payload_rng_;
  bool enabled_ = false;  // no-snapshot(derived from plan_ in ctor)
  std::uint64_t total_fires_ = 0;
  std::uint64_t events_dropped_ = 0;
  std::vector<FaultEvent> events_;
};

}  // namespace hmm::fault
