// Memory-system energy model (Section IV-D):
//   DRAM core access:        5 pJ/bit (both regions)
//   on-package interconnect: 1.66 pJ/bit (12.5Gb/s transceiver class [21])
//   off-package interconnect: 13 pJ/bit
//
// Migration traffic crosses (at least one) interconnect twice — a read on
// the source region and a write on the destination — and both directions
// are already accounted as Background bytes in the channel models.
#pragma once

#include <cstdint>

#include "common/params.hh"
#include "common/types.hh"

namespace hmm {

struct EnergyBreakdown {
  double demand_on_pj = 0;
  double demand_off_pj = 0;
  double migration_pj = 0;

  [[nodiscard]] double total_pj() const noexcept {
    return demand_on_pj + demand_off_pj + migration_pj;
  }
};

class EnergyModel {
 public:
  /// Energy of moving `bytes` through one region's core + link.
  [[nodiscard]] static double access_pj(Region r,
                                        std::uint64_t bytes) noexcept {
    const double bits = static_cast<double>(bytes) * 8.0;
    const double link = r == Region::OnPackage
                            ? params::kOnPackageLinkPjPerBit
                            : params::kOffPackageLinkPjPerBit;
    return bits * (params::kDramCorePjPerBit + link);
  }

  /// Energy for the hybrid system given per-region traffic counters.
  [[nodiscard]] static EnergyBreakdown hybrid(
      std::uint64_t demand_on_bytes, std::uint64_t demand_off_bytes,
      std::uint64_t migration_on_bytes,
      std::uint64_t migration_off_bytes) noexcept {
    EnergyBreakdown e;
    e.demand_on_pj = access_pj(Region::OnPackage, demand_on_bytes);
    e.demand_off_pj = access_pj(Region::OffPackage, demand_off_bytes);
    e.migration_pj = access_pj(Region::OnPackage, migration_on_bytes) +
                     access_pj(Region::OffPackage, migration_off_bytes);
    return e;
  }

  /// Reference system: the same demand traffic served by off-package DRAM
  /// only (Fig 16's denominator).
  [[nodiscard]] static double off_only_pj(
      std::uint64_t total_demand_bytes) noexcept {
    return access_pj(Region::OffPackage, total_demand_bytes);
  }
};

}  // namespace hmm
