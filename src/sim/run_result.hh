// Aggregated results of one trace replay, with the paper's derived metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/params.hh"
#include "common/types.hh"
#include "fault/fault_injector.hh"
#include "ras/ras.hh"

namespace hmm {

struct RunResult {
  std::uint64_t accesses = 0;
  double avg_latency = 0;        ///< demand cycles, request to last beat
  double avg_read_latency = 0;
  double avg_write_latency = 0;
  double avg_on_latency = 0;     ///< accesses served on-package
  double avg_off_latency = 0;
  double p99_latency = 0;

  double on_package_fraction = 0;  ///< share of accesses routed on-package
  double off_row_hit_rate = 0;
  double on_queue_delay = 0;
  double off_queue_delay = 0;

  std::uint64_t swaps = 0;
  std::uint64_t migrated_bytes = 0;
  std::uint64_t demand_bytes_on = 0;
  std::uint64_t demand_bytes_off = 0;
  std::uint64_t os_stall_cycles = 0;
  Cycle end_time = 0;

  // Fault-injection & resilience outcomes (all zero in a fault-free run).
  std::uint64_t faults_injected = 0;
  /// Fire events not individually recorded because the injector's bounded
  /// event log overflowed (the counters above still include them).
  std::uint64_t faults_dropped = 0;
  std::uint64_t chunk_retries = 0;
  std::uint64_t chunks_dropped = 0;
  std::uint64_t swap_aborts = 0;
  std::uint64_t audits = 0;
  bool degraded = false;       ///< engine froze the table (DegradedMode)
  Cycle degraded_at = 0;
  /// The first injected faults, in order (bounded; see kMaxReportedFaults),
  /// for the per-cell `fault_events` array in the results JSON.
  std::vector<fault::FaultEvent> fault_events;
  static constexpr std::size_t kMaxReportedFaults = 64;

  // RAS outcomes (the block is absent from the JSON when RAS is off).
  bool ras_enabled = false;
  ras::RasMetrics ras;
  std::uint64_t ras_frames_pending = 0;  ///< flagged, not yet evacuated
  std::uint64_t ras_spares_left = 0;
  std::uint64_t ras_healthy_frames = 0;
  /// Capacity-vs-time curve: the first retirements, in order (bounded by
  /// RasEngine::kMaxRetirementLog).
  std::vector<ras::RetirementEvent> ras_retirements;

  double energy_pj = 0;
  double energy_off_only_pj = 0;

  /// Fig 16: hybrid power normalized to the off-package-only system.
  [[nodiscard]] double normalized_power() const noexcept {
    return energy_off_only_pj > 0 ? energy_pj / energy_off_only_pj : 0.0;
  }

  /// The paper's effectiveness metric (Section IV-B):
  ///   η = (Lat_nomig − Lat_mig) / (Lat_nomig − DRAM core latency).
  [[nodiscard]] static double effectiveness(double lat_no_migration,
                                            double with_migration) noexcept {
    const double denom =
        lat_no_migration - static_cast<double>(params::kDramCoreLatency);
    if (denom <= 0) return 0.0;
    return (lat_no_migration - with_migration) / denom;
  }
};

}  // namespace hmm
