#include "sim/system.hh"

#include "cache/stack_distance.hh"
#include "common/stats.hh"

namespace hmm {

SystemSim::SystemSim(const Config& cfg)
    : cfg_(cfg),
      hierarchy_(params::kNumCores),
      l4_(cfg.on_package_bytes, params::kOnPackageFixedLatency) {}

Cycle SystemSim::memory_latency(PhysAddr addr, AccessType type) {
  switch (cfg_.option) {
    case MemOption::Baseline:
      return params::kOffPackageFixedLatency;
    case MemOption::AllOnPackage:
      return params::kOnPackageFixedLatency;
    case MemOption::StaticHetero:
      return addr < cfg_.on_package_bytes ? params::kOnPackageFixedLatency
                                          : params::kOffPackageFixedLatency;
    case MemOption::L4Cache: {
      const DramCache::Result r = l4_.access(addr, type);
      return r.hit ? r.latency
                   : r.latency + params::kOffPackageFixedLatency;
    }
  }
  return params::kOffPackageFixedLatency;
}

Sec2Result SystemSim::run(SyntheticWorkload& w, std::uint64_t n,
                          std::uint64_t warmup) {
  RunningStat mem_latency;
  double stall_cycles = 0;
  std::uint64_t l3_accesses = 0;
  std::uint64_t l3_misses = 0;

  for (std::uint64_t i = 0; i < warmup; ++i) {
    const TraceRecord r = w.next();
    const HierarchyResult h = hierarchy_.access(r.cpu, r.addr, r.type);
    if (h.memory_access) (void)memory_latency(r.addr, r.type);
  }

  for (std::uint64_t i = 0; i < n; ++i) {
    const TraceRecord r = w.next();
    const HierarchyResult h = hierarchy_.access(r.cpu, r.addr, r.type);
    if (h.hit_level >= 3) ++l3_accesses;
    double stall =
        static_cast<double>(h.lookup_latency) - params::kL1Latency;
    if (h.memory_access) {
      ++l3_misses;
      const Cycle m = memory_latency(r.addr, r.type);
      mem_latency.add(static_cast<double>(m));
      // Stores retire through the store buffer; loads stall the core.
      if (r.type == AccessType::Read) stall += static_cast<double>(m);
    }
    if (r.type == AccessType::Read) stall_cycles += stall;
  }

  Sec2Result out;
  out.instructions =
      static_cast<std::uint64_t>(static_cast<double>(n) /
                                 cfg_.core.mem_ref_fraction);
  const double cycles =
      static_cast<double>(out.instructions) * cfg_.core.base_cpi +
      stall_cycles / cfg_.core.mlp;
  // Aggregate IPC over the whole chip (4 cores run in parallel).
  out.ipc = static_cast<double>(out.instructions) / cycles *
            static_cast<double>(params::kNumCores);
  out.l3_misses = l3_misses;
  out.l3_miss_rate = l3_accesses == 0
                         ? 0.0
                         : static_cast<double>(l3_misses) /
                               static_cast<double>(l3_accesses);
  out.l4_miss_rate = l4_.misses() + l4_.hits() == 0 ? 0.0 : l4_.miss_rate();
  out.avg_memory_latency = mem_latency.mean();
  return out;
}

std::vector<double> llc_miss_rate_curve(
    SyntheticWorkload& w, std::uint64_t n,
    const std::vector<std::uint64_t>& capacities_bytes,
    std::uint64_t footprint_bytes) {
  std::vector<std::uint64_t> lines;
  lines.reserve(capacities_bytes.size());
  for (const std::uint64_t c : capacities_bytes)
    lines.push_back(c / params::kCacheLine);

  // Private L1/L2s filter the stream down to what the shared LLC would
  // actually see; the profiler then yields every capacity in one pass.
  StackDistanceProfiler profiler(lines, params::kCacheLine);
  std::vector<Cache> l1s;
  std::vector<Cache> l2s;
  for (unsigned c = 0; c < params::kNumCores; ++c) {
    l1s.emplace_back(CacheConfig{"L1", params::kL1Size, params::kL1Ways,
                                 params::kCacheLine, params::kL1Latency,
                                 ReplacementPolicy::Lru});
    l2s.emplace_back(CacheConfig{"L2", params::kL2Size, params::kL2Ways,
                                 params::kCacheLine, params::kL2Latency,
                                 ReplacementPolicy::Lru});
  }

  for (std::uint64_t i = 0; i < n; ++i) {
    const TraceRecord r = w.next();
    if (l1s[r.cpu].access(r.addr, r.type).hit) continue;
    if (l2s[r.cpu].access(r.addr, r.type).hit) continue;
    profiler.access(r.addr & ~(params::kCacheLine - 1));
  }

  // Compulsory misses: in steady state a first-touch line is a capacity
  // miss iff the cache cannot hold the workload's whole footprint, so
  // count cold misses as misses only below that capacity (scaled traces
  // otherwise over- or under-state the plateau; see EXPERIMENTS.md).
  std::vector<double> rates;
  rates.reserve(lines.size());
  const double accesses = static_cast<double>(profiler.accesses());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    double misses = profiler.miss_ratio(i) * accesses;
    if (footprint_bytes != 0 && capacities_bytes[i] >= footprint_bytes)
      misses -= static_cast<double>(profiler.cold_misses());
    rates.push_back(accesses == 0 ? 0.0 : std::max(0.0, misses) / accesses);
  }
  return rates;
}

}  // namespace hmm
