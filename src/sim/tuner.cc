#include "sim/tuner.hh"

#include <algorithm>

namespace hmm {

ProbeResult GranularityTuner::probe(const WorkloadFactory& make,
                                    std::uint64_t page, std::uint64_t window,
                                    std::uint64_t seed) const {
  MemSimConfig cfg;
  cfg.controller.geom = cfg_.base_geometry;
  cfg.controller.geom.page_bytes = page;
  cfg.controller.geom.sub_block_bytes =
      std::min<std::uint64_t>(cfg_.base_geometry.sub_block_bytes, page);
  cfg.controller.design = cfg_.design;
  cfg.controller.swap_interval = cfg_.swap_interval;

  MemSim sim(cfg);
  auto w = make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(window) * cfg_.warmup_fraction);
  if (warm > 0) {
    sim.set_instant_migration(true);
    sim.run(*w, warm);
    sim.set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*w, window - warm);
  sim.finish();

  const RunResult r = sim.result();
  return ProbeResult{page, r.avg_latency, r.on_package_fraction};
}

TunerOutcome GranularityTuner::tune(const WorkloadFactory& make,
                                    std::uint64_t seed) const {
  HMM_CHECK(!cfg_.candidate_pages.empty(),
            "granularity tuner needs at least one candidate page size");
  TunerOutcome out;
  std::vector<std::uint64_t> survivors = cfg_.candidate_pages;
  std::uint64_t window = cfg_.probe_accesses;

  for (unsigned round = 0; round <= cfg_.rounds && survivors.size() > 1;
       ++round) {
    std::vector<ProbeResult> results;
    results.reserve(survivors.size());
    for (const std::uint64_t page : survivors) {
      const ProbeResult r = probe(make, page, window, seed + round);
      results.push_back(r);
      out.probes.push_back(r);
    }
    std::sort(results.begin(), results.end(),
              [](const ProbeResult& a, const ProbeResult& b) {
                return a.avg_latency < b.avg_latency;
              });
    // Keep the better half (at least one).
    const std::size_t keep = std::max<std::size_t>(1, results.size() / 2);
    survivors.clear();
    for (std::size_t i = 0; i < keep; ++i)
      survivors.push_back(results[i].page_bytes);
    window *= 2;
  }

  // Final confirmation run on the last survivor.
  const ProbeResult final =
      probe(make, survivors.front(), window, seed + 100);
  out.probes.push_back(final);
  out.best_page_bytes = final.page_bytes;
  out.best_latency = final.avg_latency;
  return out;
}

}  // namespace hmm
