// Section II full-system path: CPU reference stream -> private L1/L2 +
// shared L3 -> one of four main-memory options, with a simple in-order
// core model for IPC (the paper's Simics substitute; see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/dram_cache.hh"
#include "cache/hierarchy.hh"
#include "common/params.hh"
#include "trace/generator.hh"

namespace hmm {

/// The four Fig 5 configurations.
enum class MemOption : std::uint8_t {
  Baseline,      ///< all memory off-package (200-cycle)
  L4Cache,       ///< + 1GB on-package DRAM L4 (hit 140 / miss 70 + 200)
  StaticHetero,  ///< first 1GB of physical memory mapped on-package
  AllOnPackage,  ///< ideal: every access 70-cycle
};

[[nodiscard]] constexpr const char* to_string(MemOption o) noexcept {
  switch (o) {
    case MemOption::Baseline: return "Baseline";
    case MemOption::L4Cache: return "L4 Cache 1GB";
    case MemOption::StaticHetero: return "On-Chip Memory 1GB";
    case MemOption::AllOnPackage: return "All Memory On-Chip";
  }
  return "?";
}

struct CoreModelParams {
  double base_cpi = 0.7;          ///< i7-class core, no memory stalls
  double mem_ref_fraction = 0.25; ///< memory references per instruction
  double mlp = 1.5;               ///< overlap factor on memory stalls
};

struct Sec2Result {
  double ipc = 0;                 ///< aggregate IPC over all cores
  double l3_miss_rate = 0;
  double l4_miss_rate = 0;        ///< L4Cache option only
  double avg_memory_latency = 0;  ///< per L3 miss
  std::uint64_t instructions = 0;
  std::uint64_t l3_misses = 0;
};

class SystemSim {
 public:
  struct Config {
    MemOption option = MemOption::Baseline;
    std::uint64_t on_package_bytes = params::kSec2OnPackageCapacity;
    CoreModelParams core;
  };

  explicit SystemSim(const Config& cfg);

  /// Replays `n` CPU references, returns IPC and memory statistics.
  /// `warmup` references are executed first without being accounted
  /// (fills the caches; essential for the L4, whose multi-GB capacity
  /// otherwise only sees compulsory misses at scaled trace lengths).
  Sec2Result run(SyntheticWorkload& w, std::uint64_t n,
                 std::uint64_t warmup = 0);

 private:
  [[nodiscard]] Cycle memory_latency(PhysAddr addr, AccessType type);

  Config cfg_;
  CacheHierarchy hierarchy_;
  DramCache l4_;
};

/// Fig 4: LLC miss rate for each capacity in `capacities_bytes` (one
/// stack-distance pass over the L2-miss stream of `n` CPU references).
/// Compulsory misses count as misses only for capacities below
/// `footprint_bytes` (0 = always count them).
[[nodiscard]] std::vector<double> llc_miss_rate_curve(
    SyntheticWorkload& w, std::uint64_t n,
    const std::vector<std::uint64_t>& capacities_bytes,
    std::uint64_t footprint_bytes = 0);

}  // namespace hmm
