#include "sim/checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <vector>

namespace hmm {

namespace {
constexpr std::uint32_t kMagic = snap::tag('H', 'M', 'M', 'K');
constexpr std::uint32_t kFormatVersion = 1;
}  // namespace

std::uint64_t checkpoint_fingerprint(const std::string& key,
                                     std::uint64_t seed,
                                     std::uint64_t accesses) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  mix(seed);
  mix(accesses);
  return h;
}

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, p + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void save_checkpoint(const std::string& path, const CheckpointMeta& meta,
                     const SyntheticWorkload& workload, const MemSim& sim) {
  snap::Writer w;
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u64(meta.fingerprint);
  w.begin_section(snap::tag('M', 'E', 'T', 'A'));
  w.u64(meta.accesses_done);
  w.b(meta.stats_reset_done);
  w.end_section();
  workload.save(w);
  sim.save(w);
  w.begin_section(snap::tag('D', 'O', 'N', 'E'));
  w.end_section();
  const std::vector<std::uint8_t>& buf = w.buffer();
  if (!atomic_write_file(path, buf.data(), buf.size()))
    snap::snapshot_error("cannot write checkpoint file " + path);
}

std::optional<CheckpointMeta> load_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint,
    SyntheticWorkload& workload, MemSim& sim) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::vector<std::uint8_t> buf(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  snap::Reader r(buf);
  if (buf.size() < 16 || r.u32() != kMagic)
    snap::snapshot_error(path + " is not a checkpoint file");
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    snap::snapshot_error("checkpoint format version " +
                         std::to_string(version) + " is not supported");
  const std::uint64_t fp = r.u64();
  if (fp != expected_fingerprint)
    snap::snapshot_error(
        "checkpoint fingerprint mismatch: " + path +
        " belongs to a different cell (key/seed/access budget changed)");
  CheckpointMeta meta;
  meta.fingerprint = fp;
  r.begin_section(snap::tag('M', 'E', 'T', 'A'));
  meta.accesses_done = r.u64();
  meta.stats_reset_done = r.b();
  r.end_section();
  workload.restore(r);
  sim.restore(r);
  r.begin_section(snap::tag('D', 'O', 'N', 'E'));
  r.end_section();
  return meta;
}

void remove_checkpoint(const std::string& path) noexcept {
  std::remove(path.c_str());
}

}  // namespace hmm
