// Adaptive migration-granularity tuning (Section IV-B: "it is necessary
// for the memory controller to adaptively change the migration
// granularity according to different types of workloads" — proposed by
// the paper, implemented here as an extension).
//
// The tuner plays the role of the OS daemon the paper sketches: it probes
// candidate macro-page sizes with short measurement windows on the live
// reference stream (successive halving: cheap windows eliminate weak
// candidates, survivors get longer windows) and settles on the
// granularity with the lowest average memory latency.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/memsim.hh"
#include "trace/generator.hh"

namespace hmm {

struct TunerConfig {
  std::vector<std::uint64_t> candidate_pages = {
      4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB};
  std::uint64_t probe_accesses = 60'000;  ///< first-round window
  unsigned rounds = 2;          ///< halvings (window doubles per round)
  double warmup_fraction = 0.5; ///< instant-migration warm-up per probe
  MigrationDesign design = MigrationDesign::LiveMigration;
  std::uint64_t swap_interval = 1'000;
  Geometry base_geometry{4 * GiB, 512 * MiB, 4 * MiB, 4 * KiB};
};

struct ProbeResult {
  std::uint64_t page_bytes = 0;
  double avg_latency = 0;
  double on_package_fraction = 0;
};

struct TunerOutcome {
  std::uint64_t best_page_bytes = 0;
  double best_latency = 0;
  /// Every probe run, in evaluation order (for reporting/plotting).
  std::vector<ProbeResult> probes;
};

class GranularityTuner {
 public:
  using WorkloadFactory =
      std::function<std::unique_ptr<SyntheticWorkload>(std::uint64_t seed)>;

  explicit GranularityTuner(const TunerConfig& cfg) : cfg_(cfg) {}

  /// Successive-halving search over candidate granularities.
  [[nodiscard]] TunerOutcome tune(const WorkloadFactory& make,
                                  std::uint64_t seed = 1) const;

 private:
  [[nodiscard]] ProbeResult probe(const WorkloadFactory& make,
                                  std::uint64_t page, std::uint64_t window,
                                  std::uint64_t seed) const;

  TunerConfig cfg_;
};

}  // namespace hmm
