// Trace-driven main-memory simulator (Section IV).
//
// Replays a reference stream through a pluggable MemoryScheme (the paper's
// swap designs wrap the heterogeneity-aware controller; the zoo adds
// cache-style alternatives): translation + hotness/tag tracking + swap or
// fill triggering, demand requests into the per-region cycle-level DRAM
// models, background copy traffic interleaved with demand, and (design N)
// full stalls during swaps.
//
// The replay is open-loop on trace timestamps with a bounded-outstanding
// throttle: when a region's demand backlog exceeds the limit (finite MSHRs
// / request queue), time slips forward until the queue drains — the same
// back-pressure a real CPU would see.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/stats.hh"
#include "core/controller.hh"
#include "fault/auditor.hh"
#include "fault/fault_injector.hh"
#include "power/energy_model.hh"
#include "ras/ras.hh"
#include "schemes/scheme.hh"
#include "sim/run_result.hh"
#include "trace/generator.hh"

namespace hmm {

struct MemSimConfig {
  ControllerConfig controller;
  /// Registry name of the memory scheme to simulate ("N", "N-1", "Live",
  /// "Alloy", "flat-HMA", "MemCache"); "" derives the swap scheme from
  /// `controller.design` (the pre-zoo behaviour, bit-identical).
  std::string scheme;
  /// MemCache knob: on-package fraction operated as a cache.
  double cache_fraction = 0.5;
  SchedulerPolicy policy = SchedulerPolicy::FrFcfs;
  std::size_t max_demand_backlog = 48;
  /// Reference modes for the Fig 11 guide lines.
  enum class Force : std::uint8_t { None, AllOffPackage, AllOnPackage };
  Force force = Force::None;
  /// Fault-injection plan (empty = no faults, zero overhead, bit-identical
  /// to a build without the hooks).
  fault::FaultPlan fault;
  /// RAS layer (media-error model, scrub, page retirement); disabled by
  /// default — every hook is absent and runs are bit-identical to pre-RAS.
  ras::RasConfig ras;
  /// Full invariant audit every this many accesses (0 = disabled).
  std::uint64_t audit_interval = 0;
  /// Wall-clock budget for this simulation, measured from construction;
  /// exceeded => SimError(Timeout). 0 = no deadline.
  double max_wall_seconds = 0;
};

class MemSim {
 public:
  explicit MemSim(const MemSimConfig& cfg);

  /// Replays `n` references from the generator; callable repeatedly.
  void run(SyntheticWorkload& workload, std::uint64_t n);
  /// Like run() but without the implicit finish(): replays exactly `n`
  /// references and returns. run(w, n) == run_chunk(w, n) + finish(), so a
  /// run interleaved with checkpoints replays the same step sequence as an
  /// uninterrupted one.
  void run_chunk(SyntheticWorkload& workload, std::uint64_t n);
  /// Single-record entry point (tests / custom drivers).
  void step(const TraceRecord& r);
  /// Completes all in-flight work; call before reading results.
  void finish();

  /// Clears measurement state (latency stats, traffic counters) while
  /// keeping all architectural state — call after a warm-up run.
  void reset_stats();

  [[nodiscard]] RunResult result() const;

  /// The simulated scheme (always valid).
  [[nodiscard]] schemes::MemoryScheme& scheme() noexcept { return *scheme_; }
  [[nodiscard]] const schemes::MemoryScheme& scheme() const noexcept {
    return *scheme_;
  }
  /// Warm-up fast-forward, scheme-generic (see MemoryScheme::set_instant).
  void set_instant_migration(bool on) { scheme_->set_instant(on); }
  /// The swap designs' controller. Throws SimError(CheckFailed) when the
  /// configured scheme is not one of N / N-1 / Live — cache-style schemes
  /// have no HeteroMemoryController.
  [[nodiscard]] HeteroMemoryController& controller();
  [[nodiscard]] DramSystem& on_package() noexcept { return on_; }
  [[nodiscard]] DramSystem& off_package() noexcept { return off_; }
  [[nodiscard]] const fault::FaultInjector& injector() const noexcept {
    return injector_;
  }
  [[nodiscard]] const fault::InvariantAuditor& auditor() const noexcept {
    return auditor_;
  }
  /// The RAS engine, or nullptr when `cfg.ras.enabled` is false.
  [[nodiscard]] const ras::RasEngine* ras_engine() const noexcept {
    return ras_.get();
  }
  /// Mutable form, for tests that flag frames deterministically.
  [[nodiscard]] ras::RasEngine* mutable_ras() noexcept { return ras_.get(); }

  /// Checkpoint/restore of the complete simulator state. The restoring
  /// side must construct MemSim with the same MemSimConfig; save() covers
  /// everything that evolves after construction (controller + table +
  /// engine + trackers, both DRAM systems, injector, auditor, demand
  /// bookkeeping, pacing clocks, latency stats). The wall-clock deadline
  /// intentionally restarts at restore time: a resumed cell gets a fresh
  /// budget rather than inheriting elapsed time from a dead process.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

  /// Demand bookkeeping: system-unique request id -> issue context.
  /// (Public only so the checkpoint codec can name the type.)
  struct Outstanding {
    Cycle issued = 0;
    Cycle extra = 0;
    bool is_read = true;
  };

 private:
  void pump(Cycle now);
  Cycle force_migration_idle(Cycle now);
  void handle_completion(const DramCompletion& c, Region region);
  void throttle(DramSystem& sys, Cycle& now);
  void check_deadline() const;
  /// Raises SimError(Watchdog) when simulated time can no longer advance:
  /// the engine holds an unfinished swap but nothing is in flight anywhere.
  void check_wedged() const;
  /// Auditor deep sweep: no OS page may route to a retired frame.
  [[nodiscard]] std::string ras_route_sweep() const;

  MemSimConfig cfg_;  // no-snapshot(construction-time config)
  DramSystem on_;
  DramSystem off_;
  std::unique_ptr<schemes::MemoryScheme> scheme_;
  fault::FaultInjector injector_;
  /// Present only when cfg.ras.enabled; serialized after the auditor.
  std::unique_ptr<ras::RasEngine> ras_;
  fault::InvariantAuditor auditor_;
  // analyze: allow(determinism): watchdog clock, never simulated state
  std::chrono::steady_clock::time_point started_;  // no-snapshot(wall-clock)

  std::uint64_t deadline_check_ = 0;

  std::unordered_map<RequestId, Outstanding> demand_on_;
  std::unordered_map<RequestId, Outstanding> demand_off_;

  Cycle slip_ = 0;       ///< accumulated back-pressure shift
  Cycle last_now_ = 0;   ///< arrival pacing (trace-time, monotone)
  Cycle end_time_ = 0;   ///< includes post-trace drain
  Cycle blocked_until_ = 0;  ///< design N: end of the current halting swap
  RunningStat latency_;
  RunningStat read_latency_;
  RunningStat write_latency_;
  RunningStat on_latency_;
  RunningStat off_latency_;
  Log2Histogram latency_hist_;
};

}  // namespace hmm
