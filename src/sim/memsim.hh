// Trace-driven main-memory simulator (Section IV).
//
// Replays a reference stream through the heterogeneity-aware controller:
// translation + hotness monitoring + swap triggering, demand requests into
// the per-region cycle-level DRAM models, background migration traffic
// interleaved by the engine, and (design N) full stalls during swaps.
//
// The replay is open-loop on trace timestamps with a bounded-outstanding
// throttle: when a region's demand backlog exceeds the limit (finite MSHRs
// / request queue), time slips forward until the queue drains — the same
// back-pressure a real CPU would see.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "core/controller.hh"
#include "power/energy_model.hh"
#include "sim/run_result.hh"
#include "trace/generator.hh"

namespace hmm {

struct MemSimConfig {
  ControllerConfig controller;
  SchedulerPolicy policy = SchedulerPolicy::FrFcfs;
  std::size_t max_demand_backlog = 48;
  /// Reference modes for the Fig 11 guide lines.
  enum class Force : std::uint8_t { None, AllOffPackage, AllOnPackage };
  Force force = Force::None;
};

class MemSim {
 public:
  explicit MemSim(const MemSimConfig& cfg);

  /// Replays `n` references from the generator; callable repeatedly.
  void run(SyntheticWorkload& workload, std::uint64_t n);
  /// Single-record entry point (tests / custom drivers).
  void step(const TraceRecord& r);
  /// Completes all in-flight work; call before reading results.
  void finish();

  /// Clears measurement state (latency stats, traffic counters) while
  /// keeping all architectural state — call after a warm-up run.
  void reset_stats();

  [[nodiscard]] RunResult result() const;

  [[nodiscard]] HeteroMemoryController& controller() noexcept { return ctl_; }
  [[nodiscard]] DramSystem& on_package() noexcept { return on_; }
  [[nodiscard]] DramSystem& off_package() noexcept { return off_; }

 private:
  void pump(Cycle now);
  Cycle force_migration_idle(Cycle now);
  void handle_completion(const DramCompletion& c, Region region);
  void throttle(DramSystem& sys, Cycle& now);

  MemSimConfig cfg_;
  DramSystem on_;
  DramSystem off_;
  HeteroMemoryController ctl_;

  /// Demand bookkeeping: system-unique request id -> issue context.
  struct Outstanding {
    Cycle issued = 0;
    Cycle extra = 0;
    bool is_read = true;
  };
  std::unordered_map<RequestId, Outstanding> demand_on_;
  std::unordered_map<RequestId, Outstanding> demand_off_;

  Cycle slip_ = 0;       ///< accumulated back-pressure shift
  Cycle last_now_ = 0;   ///< arrival pacing (trace-time, monotone)
  Cycle end_time_ = 0;   ///< includes post-trace drain
  Cycle blocked_until_ = 0;  ///< design N: end of the current halting swap
  RunningStat latency_;
  RunningStat read_latency_;
  RunningStat write_latency_;
  RunningStat on_latency_;
  RunningStat off_latency_;
  Log2Histogram latency_hist_;
};

}  // namespace hmm
