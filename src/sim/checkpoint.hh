// Checkpoint files: atomic persistence of a mid-flight simulation.
//
// A checkpoint captures (workload generator cursor, complete MemSim state,
// replay progress) at an access boundary — which the N-1 choreography
// guarantees is also a table-consistent boundary (DESIGN.md maps the
// Fig 8 step cases). Restoring into a freshly constructed MemSim+workload
// pair and replaying the remaining accesses yields final stats
// bit-identical to an uninterrupted run.
//
// File layout: [magic u32 "HMMK"][format version u32][fingerprint u64]
// followed by the snap:: sections of the workload and the simulator, then
// a trailing "DONE" section. The fingerprint binds a checkpoint to the
// exact cell (key, seed, access budget) that wrote it, so a stale file
// from a renamed sweep can never be resumed silently.
//
// Writes are crash-atomic: the rendered buffer goes to `<path>.tmp`, is
// fsync'd, and is renamed over `<path>` — a reader sees either the old
// complete checkpoint or the new complete checkpoint, never a torn one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/snapshot.hh"
#include "sim/memsim.hh"
#include "trace/generator.hh"

namespace hmm {

/// Progress record stored in (and recovered from) a checkpoint file.
struct CheckpointMeta {
  std::uint64_t fingerprint = 0;
  std::uint64_t accesses_done = 0;   ///< measured-phase accesses replayed
  bool stats_reset_done = false;     ///< warm-up finished, stats cleared
};

/// Binds a checkpoint to one experiment cell: FNV-1a over the cell key,
/// seed, and total access budget.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(const std::string& key,
                                                   std::uint64_t seed,
                                                   std::uint64_t accesses);

/// Serializes workload + sim + meta and writes the file atomically.
/// Throws SimError(Snapshot) if the file cannot be written.
void save_checkpoint(const std::string& path, const CheckpointMeta& meta,
                     const SyntheticWorkload& workload, const MemSim& sim);

/// Loads `path` into a freshly built (same-config) workload + sim pair.
/// Returns nullopt when the file does not exist; throws SimError(Snapshot)
/// on corruption, version skew, or a fingerprint mismatch against
/// `expected_fingerprint`.
[[nodiscard]] std::optional<CheckpointMeta> load_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint,
    SyntheticWorkload& workload, MemSim& sim);

/// Best-effort removal of a checkpoint file (cell completed).
void remove_checkpoint(const std::string& path) noexcept;

/// Atomic whole-file write used by checkpoints, the journal, and the
/// ResultSink: write `<path>.tmp`, fsync, rename over `<path>`. Returns
/// false (and cleans up the temp file) on any I/O error.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     const void* data, std::size_t size);

}  // namespace hmm
