#include "sim/memsim.hh"

#include <algorithm>

#include "schemes/registry.hh"
#include "schemes/swap_scheme.hh"

namespace hmm {

MemSim::MemSim(const MemSimConfig& cfg)
    : cfg_(cfg),
      on_(DramSystem::make(Region::OnPackage, cfg.policy)),
      off_(DramSystem::make(Region::OffPackage, cfg.policy)),
      scheme_(schemes::make_scheme(
          cfg.scheme.empty() ? to_string(cfg.controller.design)
                             : cfg.scheme,
          schemes::SchemeConfig{cfg.controller, cfg.cache_fraction}, on_,
          off_)),
      injector_(cfg.fault),
      auditor_(scheme_.get(), cfg.audit_interval),
      // analyze: allow(determinism): watchdog clock, never simulated state
      started_(std::chrono::steady_clock::now()) {
  if (injector_.enabled()) {
    scheme_->set_fault_injector(&injector_);
    on_.set_fault_injector(&injector_);
    off_.set_fault_injector(&injector_);
  }
  if (cfg.ras.enabled) {
    ras_ = std::make_unique<ras::RasEngine>(
        cfg.ras, cfg.controller.geom,
        injector_.enabled() ? &injector_ : nullptr);
    scheme_->set_ras(ras_.get());
    auditor_.set_extra_check([this] { return ras_route_sweep(); });
  }
}

std::string MemSim::ras_route_sweep() const {
  // Every OS-visible page must translate to a live frame right now —
  // retired frames are blacklisted and must never serve demand. Ω and
  // the identity pages of the boot-reserved spares are not OS-visible.
  const Geometry& g = cfg_.controller.geom;
  const PageId first_reserved = g.omega() - cfg_.ras.spare_frames;
  for (PageId p = 0; p < first_reserved; ++p) {
    const Route r = scheme_->translate(g.machine_base(p));
    const PageId frame = g.page_of(r.mach);
    if (ras_->retired(frame))
      return "RAS sweep: page " + std::to_string(p) +
             " routes to retired frame " + std::to_string(frame);
  }
  return {};
}

HeteroMemoryController& MemSim::controller() {
  auto* swap = dynamic_cast<schemes::SwapScheme*>(scheme_.get());
  HMM_CHECK(swap != nullptr,
            std::string("scheme '") + scheme_->name() +
                "' has no HeteroMemoryController (swap designs only)");
  return swap->controller();
}

void MemSim::check_deadline() const {
  if (cfg_.max_wall_seconds <= 0) return;
  // analyze: allow(determinism): watchdog clock, never simulated state
  const auto now_wall = std::chrono::steady_clock::now();
  const std::chrono::duration<double> elapsed = now_wall - started_;
  if (elapsed.count() > cfg_.max_wall_seconds)
    throw fault::SimError(
        fault::SimErrorKind::Timeout,
        "simulation exceeded its wall-clock budget of " +
            std::to_string(cfg_.max_wall_seconds) + "s");
}

void MemSim::check_wedged() const {
  if (scheme_->background_idle()) return;
  if (scheme_->in_flight_chunks() != 0) return;
  if (on_.backlog() != 0 || off_.backlog() != 0) return;
  // No copy chunk in flight, both regions drained, yet the swap is not
  // finished: no future event can ever advance it.
  throw fault::SimError(
      fault::SimErrorKind::Watchdog,
      std::string("migration engine wedged mid-swap (design ") +
          scheme_->name() + "): simulated time cannot advance");
}

void MemSim::handle_completion(const DramCompletion& c, Region region) {
  if (c.priority == Priority::Background) {
    scheme_->on_background_completion(c, region);
    return;
  }
  auto& map = region == Region::OnPackage ? demand_on_ : demand_off_;
  const auto it = map.find(c.id);
  if (it == map.end()) return;  // not a tracked demand access
  const Outstanding o = it->second;
  map.erase(it);

  const DramSystem& sys = region == Region::OnPackage ? on_ : off_;
  // c.finish already includes the extra pre-issue latency (translation,
  // OS stalls, design-N blocking) because the request's arrival was
  // shifted by it; only the fixed wire ledger is added here.
  const double lat =
      static_cast<double>(c.finish - o.issued + sys.wire_overhead());
  latency_.add(lat);
  latency_hist_.add(static_cast<std::uint64_t>(lat));
  (o.is_read ? read_latency_ : write_latency_).add(lat);
  (region == Region::OnPackage ? on_latency_ : off_latency_).add(lat);
}

void MemSim::pump(Cycle now) {
  // Background completions can trigger further submissions with arrivals
  // <= now, so iterate to a fixed point.
  for (int guard = 0; guard < 1000; ++guard) {
    on_.drain_until(now);
    off_.drain_until(now);
    const auto a = on_.take_completions();
    const auto b = off_.take_completions();
    if (a.empty() && b.empty()) return;
    for (const auto& c : a) handle_completion(c, Region::OnPackage);
    for (const auto& c : b) handle_completion(c, Region::OffPackage);
  }
}

Cycle MemSim::force_migration_idle(Cycle now) {
  int guard = 0;
  while (!scheme_->background_idle() && ++guard < 1'000'000) {
    const Cycle t = std::max(on_.drain_all(now), off_.drain_all(now));
    const auto a = on_.take_completions();
    const auto b = off_.take_completions();
    for (const auto& c : a) handle_completion(c, Region::OnPackage);
    for (const auto& c : b) handle_completion(c, Region::OffPackage);
    now = std::max(now, t);
    if (a.empty() && b.empty()) {
      // Nothing completed though the engine is still busy: either a wedge
      // (watchdog throws) or an external event must advance it.
      check_wedged();
      break;
    }
  }
  if (!scheme_->background_idle() && guard >= 1'000'000)
    throw fault::SimError(fault::SimErrorKind::Watchdog,
                          "swap did not finish within the event budget");
  return now;
}

void MemSim::throttle(DramSystem& sys, Cycle& now) {
  int guard = 0;
  while (sys.demand_backlog() >= cfg_.max_demand_backlog &&
         ++guard < 1'000'000) {
    // Finite request queues: slip time forward until the region drains.
    const Cycle step = 200;
    slip_ += step;
    now += step;
    pump(now);
  }
  if (sys.demand_backlog() >= cfg_.max_demand_backlog)
    throw fault::SimError(fault::SimErrorKind::Watchdog,
                          "demand backlog refuses to drain");
}

void MemSim::step(const TraceRecord& r) {
  Cycle now = std::max(r.timestamp + slip_, last_now_);
  pump(now);

  // The TableBitFlip site only exists for schemes that carry a
  // translation table; cache-style schemes expose HotnessCorrupt instead.
  if (injector_.enabled() && scheme_->mutable_table() != nullptr &&
      injector_.fires(fault::FaultSite::TableBitFlip)) {
    // A transient flips a bit in the translation hardware; the periodic
    // audit must detect the resulting encoding/placement disagreement.
    TranslationTable& t = *scheme_->mutable_table();
    const auto row = static_cast<SlotId>(
        injector_.payload_rng().bounded64(t.geometry().slots()));
    if (injector_.payload_rng().chance(0.5))
      t.flip_pending_bit(row);
    else
      t.flip_occupant_bit(row, injector_.payload_rng().bounded(32));
  }

  // Latency is charged from the moment the access was made, so a design-N
  // blocking swap shows up in the average memory access time (Fig 11).
  const Cycle issue_time = now;

  schemes::SchemeDecision d = scheme_->on_access(r.addr, r.type, now);

  if (d.stall_until_idle) {
    // Design N halts execution for the whole swap: every access arriving
    // before the swap completes waits until it does.
    blocked_until_ = std::max(blocked_until_, force_migration_idle(now));
    // The swap completed while we waited: route with the updated table.
    d.route = scheme_->translate(r.addr);
  }
  if (blocked_until_ > now) {
    d.extra_latency += blocked_until_ - now;
  }

  // Reference-mode overrides (Fig 11's all-on / all-off guide lines).
  Region region = d.route.region;
  MachAddr mach = d.route.mach;
  if (cfg_.force == MemSimConfig::Force::AllOffPackage) {
    region = Region::OffPackage;
    mach = r.addr;
    d.extra_latency = 0;
  } else if (cfg_.force == MemSimConfig::Force::AllOnPackage) {
    region = Region::OnPackage;
    mach = r.addr;
    d.extra_latency = 0;
  }

  if (ras_ != nullptr) {
    // Media-error model: probe the frame actually served (ECC penalties
    // land in extra_latency), and hard-stop if the scheme ever routed a
    // demand access into a blacklisted frame. Force modes bypass the
    // scheme's routing, so the retired check is meaningless there.
    const PageId frame = cfg_.controller.geom.page_of(mach);
    if (cfg_.force == MemSimConfig::Force::None && ras_->retired(frame))
      throw fault::SimError(
          fault::SimErrorKind::AuditFailed,
          "demand access served from retired frame " +
              std::to_string(frame));
    d.extra_latency += ras_->on_demand_access(frame, now);
  }

  DramSystem& sys = region == Region::OnPackage ? on_ : off_;
  throttle(sys, now);

  const RequestId id = sys.submit(mach, 64, r.type, Priority::Demand,
                                  now + d.extra_latency);
  auto& map = region == Region::OnPackage ? demand_on_ : demand_off_;
  map.emplace(id, Outstanding{issue_time, d.extra_latency,
                              r.type == AccessType::Read});
  last_now_ = now;
  auditor_.on_access();
}

void MemSim::run(SyntheticWorkload& workload, std::uint64_t n) {
  run_chunk(workload, n);
  finish();
}

void MemSim::run_chunk(SyntheticWorkload& workload, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    step(workload.next());
    if ((++deadline_check_ & 1023u) == 0) check_deadline();
  }
}

void MemSim::finish() {
  // Drain demand, then let any in-flight migration complete. Note: this
  // advances only end_time_, never last_now_ — arrival pacing must keep
  // following trace timestamps, or everything after a mid-trace drain
  // would arrive in one burst and saturate the queues artificially.
  int guard = 0;
  Cycle end = std::max(last_now_, end_time_);
  for (;;) {
    const Cycle t = std::max(on_.drain_all(end), off_.drain_all(end));
    end = std::max(end, t);
    const auto a = on_.take_completions();
    const auto b = off_.take_completions();
    for (const auto& c : a) handle_completion(c, Region::OnPackage);
    for (const auto& c : b) handle_completion(c, Region::OffPackage);
    if ((a.empty() && b.empty()) || ++guard > 1'000'000) break;
  }
  end_time_ = end;
  // Everything drained: a swap the engine still holds can never complete.
  check_wedged();
}

void MemSim::reset_stats() {
  // In-flight requests stay in flight; their completions land in the new
  // measurement window with correct latencies.
  on_.reset_stats();
  off_.reset_stats();
  latency_.reset();
  read_latency_.reset();
  write_latency_.reset();
  on_latency_.reset();
  off_latency_.reset();
  latency_hist_.reset();
}

RunResult MemSim::result() const {
  RunResult r;
  const schemes::SchemeMetrics m = scheme_->metrics();
  r.accesses = latency_.count();
  r.avg_latency = latency_.mean();
  r.avg_read_latency = read_latency_.mean();
  r.avg_write_latency = write_latency_.mean();
  r.avg_on_latency = on_latency_.mean();
  r.avg_off_latency = off_latency_.mean();
  r.p99_latency = static_cast<double>(latency_hist_.quantile(0.99));
  r.on_package_fraction = m.on_package_fraction;
  r.off_row_hit_rate = off_.row_hit_rate();
  r.on_queue_delay = on_.mean_queue_delay();
  r.off_queue_delay = off_.mean_queue_delay();
  r.swaps = m.swaps;
  r.migrated_bytes = m.migrated_bytes;
  r.demand_bytes_on = on_.demand_bytes();
  r.demand_bytes_off = off_.demand_bytes();
  r.os_stall_cycles = m.os_stall_cycles;
  r.end_time = std::max(end_time_, last_now_);

  r.faults_injected = injector_.total_fires();
  r.faults_dropped = injector_.events_dropped();
  r.chunk_retries = m.chunk_retries;
  r.chunks_dropped = m.chunks_dropped;
  r.swap_aborts = m.swap_aborts;
  r.audits = auditor_.audits();
  r.degraded = m.degraded;
  r.degraded_at = m.degraded_at;
  const auto& events = injector_.events();
  r.fault_events.assign(
      events.begin(),
      events.begin() +
          std::min(events.size(), RunResult::kMaxReportedFaults));

  if (ras_ != nullptr) {
    r.ras_enabled = true;
    r.ras = ras_->metrics();
    r.ras_frames_pending = ras_->pending_count();
    r.ras_spares_left = ras_->spares_left();
    r.ras_healthy_frames = ras_->healthy_frames();
    r.ras_retirements = ras_->retirement_log();
  }

  const EnergyBreakdown e = EnergyModel::hybrid(
      on_.demand_bytes(), off_.demand_bytes(), on_.background_bytes(),
      off_.background_bytes());
  r.energy_pj = e.total_pj();
  r.energy_off_only_pj =
      EnergyModel::off_only_pj(on_.demand_bytes() + off_.demand_bytes());
  return r;
}

namespace {
void save_demand_map(
    snap::Writer& w,
    const std::unordered_map<RequestId, MemSim::Outstanding>& m) {
  std::vector<std::pair<RequestId, MemSim::Outstanding>> v(m.begin(),
                                                           m.end());
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(v.size());
  for (const auto& [id, o] : v) {
    w.u64(id);
    w.u64(o.issued);
    w.u64(o.extra);
    w.b(o.is_read);
  }
}

void load_demand_map(snap::Reader& r,
                     std::unordered_map<RequestId, MemSim::Outstanding>& m) {
  m.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const RequestId id = r.u64();
    MemSim::Outstanding o;
    o.issued = r.u64();
    o.extra = r.u64();
    o.is_read = r.b();
    m.emplace(id, o);
  }
}

void save_stat(snap::Writer& w, const RunningStat& s) {
  const RunningStat::Raw raw = s.raw();
  w.u64(raw.count);
  w.f64(raw.sum);
  w.f64(raw.min);
  w.f64(raw.max);
}

void load_stat(snap::Reader& r, RunningStat& s) {
  RunningStat::Raw raw;
  raw.count = r.u64();
  raw.sum = r.f64();
  raw.min = r.f64();
  raw.max = r.f64();
  s.set_raw(raw);
}
}  // namespace

void MemSim::save(snap::Writer& w) const {
  on_.save(w);
  off_.save(w);
  scheme_->save(w);
  injector_.save(w);
  auditor_.save(w);
  if (ras_ != nullptr) ras_->save(w);
  w.begin_section(snap::tag('M', 'S', 'I', 'M'));
  w.u64(deadline_check_);
  save_demand_map(w, demand_on_);
  save_demand_map(w, demand_off_);
  w.u64(slip_);
  w.u64(last_now_);
  w.u64(end_time_);
  w.u64(blocked_until_);
  save_stat(w, latency_);
  save_stat(w, read_latency_);
  save_stat(w, write_latency_);
  save_stat(w, on_latency_);
  save_stat(w, off_latency_);
  for (unsigned i = 0; i < Log2Histogram::kBuckets; ++i)
    w.u64(latency_hist_.bucket(i));
  w.u64(latency_hist_.total());
  w.end_section();
}

void MemSim::restore(snap::Reader& r) {
  on_.restore(r);
  off_.restore(r);
  scheme_->restore(r);
  injector_.restore(r);
  auditor_.restore(r);
  if (ras_ != nullptr) ras_->restore(r);
  r.begin_section(snap::tag('M', 'S', 'I', 'M'));
  deadline_check_ = r.u64();
  load_demand_map(r, demand_on_);
  load_demand_map(r, demand_off_);
  slip_ = r.u64();
  last_now_ = r.u64();
  end_time_ = r.u64();
  blocked_until_ = r.u64();
  load_stat(r, latency_);
  load_stat(r, read_latency_);
  load_stat(r, write_latency_);
  load_stat(r, on_latency_);
  load_stat(r, off_latency_);
  for (unsigned i = 0; i < Log2Histogram::kBuckets; ++i)
    latency_hist_.set_bucket(i, r.u64());
  latency_hist_.set_total(r.u64());
  r.end_section();
  // analyze: allow(determinism): watchdog clock, never simulated state
  started_ = std::chrono::steady_clock::now();
}

}  // namespace hmm
