// Memory-request plumbing shared by the channel model and its clients.
#pragma once

#include <cstdint>

#include "common/types.hh"

namespace hmm {

using RequestId = std::uint64_t;
inline constexpr RequestId kInvalidRequest = ~0ull;

/// Scheduling class: demand traffic always beats background migration copies
/// (the migration engine works in the gaps, as Section III's overlap of
/// "data migration with computation" requires).
enum class Priority : std::uint8_t { Demand, Background };

/// One transfer submitted to a DRAM channel. `bytes` is usually one cache
/// line for demand traffic; migration copies submit larger streaming chunks
/// that occupy the data bus for bytes/64 consecutive bursts.
struct DramRequest {
  MachAddr addr = 0;
  std::uint32_t bytes = 64;
  AccessType type = AccessType::Read;
  Priority priority = Priority::Demand;
  Cycle arrival = 0;
  RequestId id = kInvalidRequest;
};

/// Completion record handed back to the submitter.
struct DramCompletion {
  RequestId id = kInvalidRequest;
  Cycle arrival = 0;
  Cycle start = 0;    ///< first command issue (end of queueing)
  Cycle finish = 0;   ///< last data beat on the bus
  bool row_hit = false;
  Priority priority = Priority::Demand;
};

}  // namespace hmm
