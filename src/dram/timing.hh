// DRAM device timing parameters, expressed in CPU clock cycles (3.2 GHz).
//
// Off-package: Micron DDR3-1333 (CL9-9-9), 64-bit channel, BL8 => 64B/burst.
// On-package:  same DRAM core (the paper deliberately reuses a commodity
// array design), but a many-bank structure (128 banks) and a much faster
// in-package I/O interface (>= 2 Tbps die-to-die per ITRS [3]), so a 64B
// burst occupies the data bus for only a few CPU cycles.
#pragma once

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace hmm {

struct DramTiming {
  // Bank-core timings (CPU cycles).
  Cycle tRCD;  ///< ACT -> CAS
  Cycle tRP;   ///< PRE -> ACT
  Cycle tCAS;  ///< CAS -> first data (CL)
  Cycle tRAS;  ///< ACT -> PRE (minimum row open time)
  Cycle tWR;   ///< end of write burst -> PRE
  Cycle tRTP;  ///< read CAS -> PRE
  Cycle tCCD;  ///< CAS -> CAS, same bank group
  Cycle tBurst;  ///< data-bus occupancy of one 64B cache-line burst
  Cycle tCmd;    ///< command-bus slot per transaction (scheduler decision)

  // Geometry.
  unsigned banks;          ///< banks per channel
  std::uint64_t rowBytes;  ///< DRAM row (page) size per bank

  /// DDR3-1333 @ 666.7MHz bus; 1 DRAM cycle = 4.8 CPU cycles (rounded).
  [[nodiscard]] static constexpr DramTiming off_package_ddr3_1333() noexcept {
    return DramTiming{
        .tRCD = 43,   // 9 * 4.8
        .tRP = 43,    // 9 * 4.8
        .tCAS = 43,   // 9 * 4.8
        .tRAS = 115,  // 24 * 4.8
        .tWR = 48,    // 15 ns
        .tRTP = 24,   // 7.5 ns
        .tCCD = 19,   // 4 * 4.8
        .tBurst = 19,  // BL8 on a 64-bit bus = 4 DRAM cycles
        .tCmd = 5,     // one DDR3 command cycle
        .banks = 8,
        .rowBytes = 8 * KiB,
    };
  }

  /// On-package SiP DRAM: identical array core, 128 banks, ~2Tbps interface
  /// (64B in < 1 ns, i.e. ~3 CPU cycles of bus occupancy).
  [[nodiscard]] static constexpr DramTiming on_package_sip() noexcept {
    return DramTiming{
        .tRCD = 43,
        .tRP = 43,
        .tCAS = 43,
        .tRAS = 115,
        .tWR = 48,
        .tRTP = 24,
        .tCCD = 5,
        .tBurst = 3,
        .tCmd = 1,     // high-speed in-package command signalling
        .banks = 128,
        .rowBytes = 8 * KiB,
    };
  }
};

}  // namespace hmm
