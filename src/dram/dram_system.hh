// A memory region (on-package SiP DRAM or off-package DIMMs): a set of
// channels behind one scheduler clock, plus the region's fixed wire/pin
// latency ledger from Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "common/params.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "fault/fault_injector.hh"

namespace hmm {

class DramSystem {
 public:
  /// Builds the paper's configuration for the given region:
  /// off-package = 4 channels x 8 banks of DDR3-1333;
  /// on-package  = 1 wide channel x 128 banks behind the interposer.
  static DramSystem make(Region region,
                         SchedulerPolicy policy = SchedulerPolicy::FrFcfs);

  DramSystem(Region region, const DramTiming& timing, unsigned channels,
             SchedulerPolicy policy);

  /// `channel_hint` >= 0 overrides address-based channel routing — used by
  /// the migration engine, whose streaming chunks physically stripe across
  /// all channels (line interleaving) and are modelled as rotating whole
  /// chunks channel by channel.
  RequestId submit(MachAddr addr, std::uint32_t bytes, AccessType type,
                   Priority priority, Cycle arrival, int channel_hint = -1);

  void drain_until(Cycle now);
  Cycle drain_all(Cycle upto);

  /// Completions from all channels since the last call (unordered across
  /// channels; ordered per channel).
  [[nodiscard]] std::vector<DramCompletion> take_completions();

  [[nodiscard]] Region region() const noexcept { return region_; }

  /// Attach a fault injector (nullptr detaches). Not owned. Site
  /// ChannelStall: a submitted request's arrival is pushed back by the
  /// plan's stall_cycles (a transient bus/retraining stall).
  void set_fault_injector(fault::FaultInjector* inj) noexcept {
    injector_ = inj;
  }
  [[nodiscard]] unsigned channel_of(MachAddr addr) const noexcept;
  [[nodiscard]] std::size_t backlog() const noexcept;
  [[nodiscard]] std::size_t demand_backlog() const noexcept;

  /// Fixed per-access latency outside the DRAM device (controller pipeline,
  /// pins, board/interposer wires) — Table II ledger.
  [[nodiscard]] Cycle wire_overhead() const noexcept {
    return region_ == Region::OnPackage ? params::kOnPackageWireOverhead
                                        : params::kOffPackageWireOverhead;
  }

  [[nodiscard]] const DramTiming& timing() const noexcept { return timing_; }
  [[nodiscard]] unsigned num_channels() const noexcept {
    return static_cast<unsigned>(channels_.size());
  }
  [[nodiscard]] DramChannel& channel(unsigned i) noexcept {
    return channels_[i];
  }
  [[nodiscard]] const DramChannel& channel(unsigned i) const noexcept {
    return channels_[i];
  }

  // Aggregated demand statistics across channels.
  [[nodiscard]] double mean_queue_delay() const;
  [[nodiscard]] double row_hit_rate() const;
  [[nodiscard]] std::uint64_t demand_bytes() const;
  [[nodiscard]] std::uint64_t background_bytes() const;
  void reset_stats();

  /// Checkpoint/restore: the id counter plus every channel's state. The
  /// region/timing/mapping are construction-time constants and are only
  /// cross-checked, not restored.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  Region region_;
  DramTiming timing_;      // no-snapshot(construction-time config)
  AddressMapping mapping_;  // no-snapshot(construction-time config)
  std::vector<DramChannel> channels_;
  RequestId next_id_ = 0;
  fault::FaultInjector* injector_ = nullptr;  ///< not owned; may be null
};

}  // namespace hmm
