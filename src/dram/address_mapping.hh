// Machine-address -> (channel, bank, row, column) decomposition.
//
// Default interleaving (from LSB): [line offset][channel][column][bank][row],
// i.e. consecutive cache lines rotate across channels, consecutive
// channel-local lines fill a DRAM row (giving streams open-row hits), and
// rows rotate across banks.
#pragma once

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"
#include "dram/timing.hh"

namespace hmm {

struct DramCoordinates {
  unsigned channel = 0;
  unsigned bank = 0;
  std::uint64_t row = 0;
  std::uint64_t column = 0;  ///< line index within the row
};

class AddressMapping {
 public:
  /// Interleave order for the bank bits relative to the row bits.
  enum class Scheme {
    RowBankColChan,  ///< default described above
    RowColBankChan,  ///< banks rotate every line: more bank parallelism,
                     ///< fewer open-row hits for streams
  };

  /// `xor_fold`: permutation-based interleaving — XORs row bits into the
  /// channel and bank selection so power-of-two strides spread over all
  /// banks/channels instead of degenerating onto one (standard practice
  /// in real memory controllers; bijective, so no aliasing).
  AddressMapping(unsigned channels, const DramTiming& t,
                 Scheme scheme = Scheme::RowBankColChan,
                 std::uint64_t line_bytes = 64, bool xor_fold = true) noexcept
      : line_shift_(log2_exact(line_bytes)),
        chan_bits_(log2_exact(channels)),
        col_bits_(log2_exact(t.rowBytes / line_bytes)),
        bank_bits_(log2_exact(t.banks)),
        scheme_(scheme),
        xor_fold_(xor_fold) {}

  [[nodiscard]] DramCoordinates decode(MachAddr addr) const noexcept {
    std::uint64_t v = addr >> line_shift_;
    DramCoordinates c;
    c.channel = static_cast<unsigned>(v & mask(chan_bits_));
    v >>= chan_bits_;
    if (scheme_ == Scheme::RowBankColChan) {
      c.column = v & mask(col_bits_);
      v >>= col_bits_;
      c.bank = static_cast<unsigned>(v & mask(bank_bits_));
      v >>= bank_bits_;
    } else {
      c.bank = static_cast<unsigned>(v & mask(bank_bits_));
      v >>= bank_bits_;
      c.column = v & mask(col_bits_);
      v >>= col_bits_;
    }
    c.row = v;
    if (xor_fold_) {
      // Fold several row-bit groups so that any power-of-two address
      // alignment (heap bases, array strides) still spreads across banks.
      const std::uint64_t fold =
          c.row ^ (c.row >> bank_bits_) ^ (c.row >> (2 * bank_bits_));
      c.bank = static_cast<unsigned>((c.bank ^ fold) & mask(bank_bits_));
      c.channel = static_cast<unsigned>(
          (c.channel ^ fold ^ (fold >> chan_bits_)) & mask(chan_bits_));
    }
    return c;
  }

  [[nodiscard]] unsigned channels() const noexcept { return 1u << chan_bits_; }
  [[nodiscard]] unsigned line_shift() const noexcept { return line_shift_; }

 private:
  static constexpr std::uint64_t mask(unsigned bits) noexcept {
    return (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  }

  unsigned line_shift_;
  unsigned chan_bits_;
  unsigned col_bits_;
  unsigned bank_bits_;
  Scheme scheme_;
  bool xor_fold_;
};

}  // namespace hmm
