#include "dram/dram_system.hh"

#include <algorithm>

namespace hmm {

DramSystem DramSystem::make(Region region, SchedulerPolicy policy) {
  if (region == Region::OnPackage) {
    return DramSystem(region, DramTiming::on_package_sip(),
                      params::kOnPackageChannels, policy);
  }
  return DramSystem(region, DramTiming::off_package_ddr3_1333(),
                    params::kOffPackageChannels, policy);
}

DramSystem::DramSystem(Region region, const DramTiming& timing,
                       unsigned channels, SchedulerPolicy policy)
    : region_(region), timing_(timing), mapping_(channels, timing) {
  channels_.reserve(channels);
  for (unsigned i = 0; i < channels; ++i)
    channels_.emplace_back(timing, mapping_, policy);
}

unsigned DramSystem::channel_of(MachAddr addr) const noexcept {
  return mapping_.decode(addr).channel;
}

RequestId DramSystem::submit(MachAddr addr, std::uint32_t bytes,
                             AccessType type, Priority priority,
                             Cycle arrival, int channel_hint) {
  DramRequest req;
  req.addr = addr;
  req.bytes = bytes;
  req.type = type;
  req.priority = priority;
  req.arrival = arrival;
  if (injector_ != nullptr &&
      injector_->fires(fault::FaultSite::ChannelStall, addr))
    req.arrival += injector_->plan().stall_cycles;
  req.id = next_id_++;  // system-wide unique id
  const unsigned ch = channel_hint >= 0
                          ? static_cast<unsigned>(channel_hint) %
                                num_channels()
                          : channel_of(addr);
  return channels_[ch].submit(req);
}

void DramSystem::drain_until(Cycle now) {
  for (auto& c : channels_) c.drain_until(now);
}

Cycle DramSystem::drain_all(Cycle upto) {
  Cycle last = upto;
  for (auto& c : channels_) last = std::max(last, c.drain_all(upto));
  return last;
}

std::vector<DramCompletion> DramSystem::take_completions() {
  std::vector<DramCompletion> out;
  for (auto& c : channels_) {
    auto v = c.take_completions();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::size_t DramSystem::backlog() const noexcept {
  std::size_t n = 0;
  for (const auto& c : channels_) n += c.backlog();
  return n;
}

std::size_t DramSystem::demand_backlog() const noexcept {
  std::size_t n = 0;
  for (const auto& c : channels_) n += c.demand_backlog();
  return n;
}

double DramSystem::mean_queue_delay() const {
  RunningStat s;
  for (const auto& c : channels_) s.merge(c.queue_delay());
  return s.mean();
}

double DramSystem::row_hit_rate() const {
  std::uint64_t hits = 0, total = 0;
  for (const auto& c : channels_) {
    hits += c.row_hits();
    total += c.row_hits() + c.row_misses();
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) /
                                static_cast<double>(total);
}

std::uint64_t DramSystem::demand_bytes() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) n += c.demand_bytes();
  return n;
}

std::uint64_t DramSystem::background_bytes() const {
  std::uint64_t n = 0;
  for (const auto& c : channels_) n += c.background_bytes();
  return n;
}

void DramSystem::reset_stats() {
  for (auto& c : channels_) c.reset_stats();
}

void DramSystem::save(snap::Writer& w) const {
  w.begin_section(snap::tag('D', 'S', 'Y', 'S'));
  w.u8(static_cast<std::uint8_t>(region_));
  w.u64(channels_.size());
  w.u64(next_id_);
  w.end_section();
  for (const DramChannel& c : channels_) c.save(w);
}

void DramSystem::restore(snap::Reader& r) {
  r.begin_section(snap::tag('D', 'S', 'Y', 'S'));
  const auto region = static_cast<Region>(r.u8());
  const std::uint64_t n = r.u64();
  if (region != region_ || n != channels_.size())
    snap::snapshot_error(
        "DRAM system shape mismatch: checkpoint was taken on a different "
        "configuration");
  next_id_ = r.u64();
  r.end_section();
  for (DramChannel& c : channels_) c.restore(r);
}

}  // namespace hmm
