// One DRAM channel: per-bank state machines, a shared data bus, and a
// FR-FCFS transaction scheduler with open-page row-buffer policy.
//
// The model is transaction-level: each request is scheduled atomically
// (PRE/ACT/CAS collapsed into start/finish times that respect tRP/tRCD/
// tCAS/tRAS/tRTP/tWR/tCCD and data-bus occupancy). This reproduces the two
// effects the paper depends on — queueing delay that grows with bank
// conflicts (8-bank DIMM vs 128-bank SiP DRAM) and open-row locality —
// without simulating individual command slots.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/address_mapping.hh"
#include "dram/request.hh"
#include "dram/timing.hh"

namespace hmm {

/// Scheduling policy selector (FR-FCFS is the paper's assumption [11];
/// plain FCFS is kept as an ablation baseline).
enum class SchedulerPolicy : std::uint8_t { FrFcfs, Fcfs };

class DramChannel {
 public:
  DramChannel(const DramTiming& timing, const AddressMapping& mapping,
              SchedulerPolicy policy = SchedulerPolicy::FrFcfs);

  /// Queue a request. Completion is reported via take_completions().
  /// Coordinates are decoded with the channel's mapping; the caller must
  /// have routed the request to the right channel already.
  RequestId submit(const DramRequest& req);

  /// Issue every request whose scheduling decision falls at or before `now`.
  void drain_until(Cycle now);

  /// Issue everything still queued; returns the finish time of the last
  /// request (or `upto` if the queue was empty).
  Cycle drain_all(Cycle upto);

  /// Completions accumulated since the last call (in issue order).
  [[nodiscard]] std::vector<DramCompletion> take_completions();

  [[nodiscard]] std::size_t backlog() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t demand_backlog() const noexcept {
    return demand_queued_;
  }

  /// Time at which the data bus is past all current reservations.
  [[nodiscard]] Cycle bus_free_at() const noexcept {
    return bus_busy_.empty() ? clock_ : bus_busy_.back().second;
  }

  // --- statistics (demand traffic only unless noted) -----------------------
  [[nodiscard]] const RunningStat& queue_delay() const noexcept {
    return queue_delay_;
  }
  [[nodiscard]] const RunningStat& service_time() const noexcept {
    return service_time_;
  }
  [[nodiscard]] std::uint64_t row_hits() const noexcept { return row_hits_; }
  [[nodiscard]] std::uint64_t row_misses() const noexcept {
    return row_misses_;
  }
  [[nodiscard]] std::uint64_t demand_bytes() const noexcept {
    return demand_bytes_;
  }
  [[nodiscard]] std::uint64_t background_bytes() const noexcept {
    return background_bytes_;
  }
  [[nodiscard]] std::uint64_t busy_cycles() const noexcept {
    return busy_cycles_;
  }
  void reset_stats();

  /// Checkpoint/restore of all timing state: banks, queue (with decoded
  /// coordinates), bus reservations, clocks, pending completions, stats.
  /// Nothing is quiesced — in-flight work resumes exactly where it was.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  struct Bank {
    bool open = false;
    std::uint64_t open_row = 0;
    Cycle ready_for_cas = 0;  ///< earliest next CAS to the open row
    Cycle ready_for_pre = 0;  ///< earliest next PRE
    Cycle act_time = 0;       ///< when the current row was activated
  };

  struct Queued {
    DramRequest req;
    DramCoordinates coord;
  };

  /// True if the request at queue index i would hit the open row.
  [[nodiscard]] bool is_row_hit(const Queued& q) const noexcept;

  /// Earliest bank-side CAS time if this request were issued at t.
  [[nodiscard]] Cycle bank_ready_estimate(const Queued& q,
                                          Cycle t) const noexcept;

  /// Pick the next request per policy among entries with arrival <= t.
  /// Returns queue index or npos.
  [[nodiscard]] std::size_t pick(Cycle t) const noexcept;

  /// Issue queue entry i with decision time t; records the completion.
  void issue(std::size_t i, Cycle t);

  /// One scheduling step bounded by `limit`; returns false when nothing
  /// can be issued at or before `limit`.
  bool step(Cycle limit);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  /// Max time a request may be bypassed by younger row hits (~4 x tRC).
  static constexpr Cycle kStarvationLimit = 640;

  DramTiming timing_;      // no-snapshot(construction-time config)
  AddressMapping mapping_;  // no-snapshot(construction-time config)
  SchedulerPolicy policy_;  // no-snapshot(construction-time config)
  std::vector<Bank> banks_;
  /// Reserve `span` cycles of data bus no earlier than `earliest`; the bus
  /// is a gap-aware schedule (data slots are assigned out of issue order),
  /// so a transfer booked far in the future never blocks near-term ones.
  Cycle reserve_bus(Cycle earliest, Cycle span);

  std::deque<Queued> queue_;
  std::size_t demand_queued_ = 0;
  /// Disjoint busy intervals [start, end), sorted; pruned below clock_.
  std::vector<std::pair<Cycle, Cycle>> bus_busy_;
  Cycle clock_ = 0;  ///< next command-bus decision slot
  Cycle last_finish_ = 0;
  RequestId next_id_ = 0;
  std::vector<DramCompletion> completions_;

  RunningStat queue_delay_;
  RunningStat service_time_;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  std::uint64_t demand_bytes_ = 0;
  std::uint64_t background_bytes_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace hmm
