#include "dram/channel.hh"

#include <algorithm>
#include <cstdio>

#include "fault/sim_error.hh"

namespace hmm {

DramChannel::DramChannel(const DramTiming& timing,
                         const AddressMapping& mapping, SchedulerPolicy policy)
    : timing_(timing),
      mapping_(mapping),
      policy_(policy),
      banks_(timing.banks) {}

RequestId DramChannel::submit(const DramRequest& req) {
  Queued q{req, mapping_.decode(req.addr)};
  if (q.req.id == kInvalidRequest) q.req.id = next_id_++;
  if (q.req.priority == Priority::Demand) ++demand_queued_;
  queue_.push_back(q);
  return q.req.id;
}

bool DramChannel::is_row_hit(const Queued& q) const noexcept {
  const Bank& b = banks_[q.coord.bank];
  return b.open && b.open_row == q.coord.row;
}

Cycle DramChannel::bank_ready_estimate(const Queued& q,
                                       Cycle t) const noexcept {
  const Bank& b = banks_[q.coord.bank];
  if (b.open && b.open_row == q.coord.row)
    return std::max(t, b.ready_for_cas);
  if (b.open) {
    const Cycle pre = std::max({t, b.ready_for_pre, b.act_time + timing_.tRAS});
    return pre + timing_.tRP + timing_.tRCD;
  }
  return t + timing_.tRCD;
}

std::size_t DramChannel::pick(Cycle t) const noexcept {
  // FR-FCFS: demand beats background; within a class, the request whose
  // bank can deliver data soonest goes first ("first-ready" — row hits
  // naturally win), oldest on ties. Issuing a request whose bank is still
  // busy would reserve the data bus ahead of younger, ready requests and
  // create head-of-line blocking the real scheduler does not have.
  // Starvation control: once the oldest demand request has waited past
  // kStarvationLimit, it wins regardless (real FR-FCFS caps reordering).
  std::size_t best = npos;
  bool best_demand = false;
  Cycle best_ready = 0;
  Cycle best_arrival = 0;
  std::size_t oldest_demand = npos;
  Cycle oldest_arrival = kNeverCycle;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Queued& q = queue_[i];
    if (q.req.arrival > t) continue;
    const bool demand = q.req.priority == Priority::Demand;
    if (demand && q.req.arrival < oldest_arrival) {
      oldest_arrival = q.req.arrival;
      oldest_demand = i;
    }
    const Cycle ready = policy_ == SchedulerPolicy::FrFcfs
                            ? bank_ready_estimate(q, t)
                            : q.req.arrival;
    const bool better =
        best == npos ||
        (demand != best_demand
             ? demand
             : (ready != best_ready ? ready < best_ready
                                    : q.req.arrival < best_arrival));
    if (better) {
      best = i;
      best_demand = demand;
      best_ready = ready;
      best_arrival = q.req.arrival;
    }
  }
  if (policy_ == SchedulerPolicy::FrFcfs && oldest_demand != npos &&
      t - oldest_arrival > kStarvationLimit)
    return oldest_demand;
  return best;
}

void DramChannel::issue(std::size_t i, Cycle t) {
  const Queued q = queue_[i];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
  if (q.req.priority == Priority::Demand) --demand_queued_;

  Bank& bank = banks_[q.coord.bank];
  const bool hit = bank.open && bank.open_row == q.coord.row;
  const bool bank_was_open = bank.open;

  // Bank-side earliest CAS. Bank preparation (PRE/ACT) overlaps data-bus
  // occupancy of other banks, so bank state is advanced from the
  // bank-constrained CAS time, never from bus-induced delays — otherwise
  // bus congestion would write itself into bank timing and compound.
  Cycle cas_ready;
  if (hit) {
    cas_ready = std::max(t, bank.ready_for_cas);
  } else if (bank.open) {
    // Row conflict: precharge (respecting tRAS from activation), activate.
    const Cycle pre = std::max({t, bank.ready_for_pre,
                                bank.act_time + timing_.tRAS});
    const Cycle act = pre + timing_.tRP;
    cas_ready = act + timing_.tRCD;
    bank.act_time = act;
  } else {
    const Cycle act = t;
    cas_ready = act + timing_.tRCD;
    bank.act_time = act;
  }

  // Streaming chunk: bytes/64 back-to-back bursts on the data bus.
  const std::uint64_t bursts = std::max<std::uint64_t>(1, q.req.bytes / 64);
  const Cycle burst_span = timing_.tBurst * bursts;

  // Book the first free data-bus window at or after the bank-side data
  // time. Migration chunks are small (<= a few hundred cycles), so demand
  // waiting behind an already-booked chunk matches the burst-granularity
  // interleaving a real controller would do.
  const Cycle data_start = reserve_bus(cas_ready + timing_.tCAS, burst_span);
  const Cycle cas = data_start - timing_.tCAS;  // actual (possibly delayed)
  const Cycle finish = data_start + burst_span;

  bank.open = true;
  bank.open_row = q.coord.row;
  // All bank state anchors on the bank-side CAS time (not the bus-delayed
  // one): under transient bus congestion the bank pipeline keeps running
  // at array speed, which is what lets the backlog drain.
  const Cycle bank_data_end = cas_ready + timing_.tCAS + burst_span;
  bank.ready_for_cas = cas_ready + timing_.tCCD * bursts;
  bank.ready_for_pre =
      q.req.type == AccessType::Read
          ? std::max(bank.ready_for_pre, cas_ready + timing_.tRTP)
          : std::max(bank.ready_for_pre, bank_data_end + timing_.tWR);
  busy_cycles_ += burst_span;
  last_finish_ = std::max(last_finish_, finish);
#ifdef HMM_DEBUG_ISSUE
  if (cas - q.req.arrival > 3000) {
    static int dbg_count = 0;
    if (dbg_count++ < 20)
      std::fprintf(stderr,
        "BIGWAIT t=%llu arr=%llu casr=%llu ds=%llu bank=%u row=%llu hit=%d "
        "rfp=%llu act=%llu rfc=%llu\n",
        (unsigned long long)t, (unsigned long long)q.req.arrival,
        (unsigned long long)cas_ready, (unsigned long long)data_start,
        q.coord.bank, (unsigned long long)q.coord.row, (int)hit,
        (unsigned long long)bank.ready_for_pre,
        (unsigned long long)bank.act_time,
        (unsigned long long)bank.ready_for_cas);
  }
#endif

  DramCompletion done;
  done.id = q.req.id;
  done.arrival = q.req.arrival;
  done.start = cas;
  done.finish = finish;
  done.row_hit = hit;
  done.priority = q.req.priority;
  completions_.push_back(done);

  if (q.req.priority == Priority::Demand) {
    // Queueing = time before service not attributable to this request's
    // own row activation/precharge.
    const Cycle own_cost =
        hit ? 0 : (timing_.tRCD + (bank_was_open ? timing_.tRP : 0));
    const Cycle total_wait = cas - q.req.arrival;
    queue_delay_.add(
        static_cast<double>(total_wait > own_cost ? total_wait - own_cost
                                                  : 0));
    service_time_.add(static_cast<double>(finish - cas));
    hit ? ++row_hits_ : ++row_misses_;
    demand_bytes_ += q.req.bytes;
  } else {
    background_bytes_ += q.req.bytes;
  }
}

Cycle DramChannel::reserve_bus(Cycle earliest, Cycle span) {
  // Prune intervals that can no longer interact with future requests
  // (every future data time is > clock_).
  std::size_t keep = 0;
  while (keep < bus_busy_.size() && bus_busy_[keep].second <= clock_) ++keep;
  if (keep > 0)
    bus_busy_.erase(bus_busy_.begin(),
                    bus_busy_.begin() + static_cast<std::ptrdiff_t>(keep));

  Cycle cur = earliest;
  std::size_t pos = 0;
  for (; pos < bus_busy_.size(); ++pos) {
    const auto [s, e] = bus_busy_[pos];
    if (cur + span <= s) break;  // fits in the gap before this interval
    cur = std::max(cur, e);
  }
  bus_busy_.insert(bus_busy_.begin() + static_cast<std::ptrdiff_t>(pos),
                   {cur, cur + span});
  return cur;
}

bool DramChannel::step(Cycle limit) {
  if (queue_.empty()) return false;
  Cycle earliest = kNeverCycle;
  for (const Queued& q : queue_) earliest = std::min(earliest, q.req.arrival);
  // One scheduling decision per command-bus slot (~1 DRAM cycle). Banks
  // pipeline freely; only the command and data buses serialize, inside
  // issue(). The scheduler sees everything that has arrived by t (the
  // FR-FCFS reorder window).
  Cycle t = std::max(earliest, clock_);
  if (t > limit) return false;

  // If the best candidate's bank is stalled well beyond normal row
  // preparation and another request will arrive before that bank frees,
  // defer the decision once to that arrival: the newcomer may be ready
  // sooner and should not queue behind a bus reservation made for a
  // stalled bank.
  std::size_t i = pick(t);
  HMM_CHECK(i != npos, "scheduler picked no request from a non-empty queue");
  const Cycle ready = bank_ready_estimate(queue_[i], t);
  if (ready > t + timing_.tRP + timing_.tRCD) {
    Cycle next_arrival = kNeverCycle;
    for (const Queued& q : queue_)
      if (q.req.arrival > t)
        next_arrival = std::min(next_arrival, q.req.arrival);
    if (next_arrival < ready && next_arrival <= limit) {
      t = next_arrival;
      i = pick(t);
    }
  }
  issue(i, t);
  clock_ = std::max(clock_, t) + timing_.tCmd;
  return true;
}

void DramChannel::drain_until(Cycle now) {
  while (step(now)) {
  }
}

Cycle DramChannel::drain_all(Cycle upto) {
  while (step(kNeverCycle - 1)) {
  }
  return std::max(upto, last_finish_);
}

std::vector<DramCompletion> DramChannel::take_completions() {
  std::vector<DramCompletion> out;
  out.swap(completions_);
  return out;
}

void DramChannel::reset_stats() {
  queue_delay_.reset();
  service_time_.reset();
  row_hits_ = row_misses_ = 0;
  demand_bytes_ = background_bytes_ = 0;
  busy_cycles_ = 0;
}

namespace {
void save_stat(snap::Writer& w, const RunningStat& s) {
  const RunningStat::Raw raw = s.raw();
  w.u64(raw.count);
  w.f64(raw.sum);
  w.f64(raw.min);
  w.f64(raw.max);
}

void load_stat(snap::Reader& r, RunningStat& s) {
  RunningStat::Raw raw;
  raw.count = r.u64();
  raw.sum = r.f64();
  raw.min = r.f64();
  raw.max = r.f64();
  s.set_raw(raw);
}
}  // namespace

void DramChannel::save(snap::Writer& w) const {
  w.begin_section(snap::tag('D', 'C', 'H', 'N'));
  w.u64(banks_.size());
  for (const Bank& b : banks_) {
    w.b(b.open);
    w.u64(b.open_row);
    w.u64(b.ready_for_cas);
    w.u64(b.ready_for_pre);
    w.u64(b.act_time);
  }
  w.u64(queue_.size());
  for (const Queued& q : queue_) {
    w.u64(q.req.addr);
    w.u32(q.req.bytes);
    w.u8(static_cast<std::uint8_t>(q.req.type));
    w.u8(static_cast<std::uint8_t>(q.req.priority));
    w.u64(q.req.arrival);
    w.u64(q.req.id);
    w.u32(q.coord.channel);
    w.u32(q.coord.bank);
    w.u64(q.coord.row);
    w.u64(q.coord.column);
  }
  w.u64(demand_queued_);
  w.u64(bus_busy_.size());
  for (const auto& [start, end] : bus_busy_) {
    w.u64(start);
    w.u64(end);
  }
  w.u64(clock_);
  w.u64(last_finish_);
  w.u64(next_id_);
  w.u64(completions_.size());
  for (const DramCompletion& c : completions_) {
    w.u64(c.id);
    w.u64(c.arrival);
    w.u64(c.start);
    w.u64(c.finish);
    w.b(c.row_hit);
    w.u8(static_cast<std::uint8_t>(c.priority));
  }
  save_stat(w, queue_delay_);
  save_stat(w, service_time_);
  w.u64(row_hits_);
  w.u64(row_misses_);
  w.u64(demand_bytes_);
  w.u64(background_bytes_);
  w.u64(busy_cycles_);
  w.end_section();
}

void DramChannel::restore(snap::Reader& r) {
  r.begin_section(snap::tag('D', 'C', 'H', 'N'));
  banks_.assign(r.u64(), Bank{});
  for (Bank& b : banks_) {
    b.open = r.b();
    b.open_row = r.u64();
    b.ready_for_cas = r.u64();
    b.ready_for_pre = r.u64();
    b.act_time = r.u64();
  }
  queue_.assign(r.u64(), Queued{});
  for (Queued& q : queue_) {
    q.req.addr = r.u64();
    q.req.bytes = r.u32();
    q.req.type = static_cast<AccessType>(r.u8());
    q.req.priority = static_cast<Priority>(r.u8());
    q.req.arrival = r.u64();
    q.req.id = r.u64();
    q.coord.channel = r.u32();
    q.coord.bank = r.u32();
    q.coord.row = r.u64();
    q.coord.column = r.u64();
  }
  demand_queued_ = r.u64();
  bus_busy_.assign(r.u64(), {});
  for (auto& [start, end] : bus_busy_) {
    start = r.u64();
    end = r.u64();
  }
  clock_ = r.u64();
  last_finish_ = r.u64();
  next_id_ = r.u64();
  completions_.assign(r.u64(), DramCompletion{});
  for (DramCompletion& c : completions_) {
    c.id = r.u64();
    c.arrival = r.u64();
    c.start = r.u64();
    c.finish = r.u64();
    c.row_hit = r.b();
    c.priority = static_cast<Priority>(r.u8());
  }
  load_stat(r, queue_delay_);
  load_stat(r, service_time_);
  row_hits_ = r.u64();
  row_misses_ = r.u64();
  demand_bytes_ = r.u64();
  background_bytes_ = r.u64();
  busy_cycles_ = r.u64();
  r.end_section();
}

}  // namespace hmm
