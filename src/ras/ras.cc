#include "ras/ras.hh"

#include <algorithm>
#include <string>

#include "fault/sim_error.hh"

namespace hmm::ras {

RasEngine::RasEngine(const RasConfig& cfg, const Geometry& geom,
                     fault::FaultInjector* injector)
    : cfg_(cfg), geom_(geom), injector_(injector) {
  const PageId total = geom_.total_pages();
  HMM_CHECK(cfg_.spare_frames + 1 < total - geom_.slots(),
            "RAS spare pool must fit below omega in the off-package region");
  HMM_CHECK(cfg_.capacity_floor >= 0.0 && cfg_.capacity_floor <= 1.0,
            "RAS capacity floor must be a fraction in [0, 1]");
  floor_frames_ = static_cast<std::uint64_t>(
      cfg_.capacity_floor * static_cast<double>(total));
  // Spares sit just below the ghost page: omega-spare .. omega-1.
  for (PageId f = geom_.omega() - cfg_.spare_frames; f < geom_.omega(); ++f) {
    spare_set_.insert(f);
    pool_.push_back(f);
  }
  next_scrub_at_ = cfg_.scrub_interval;
}

bool RasEngine::retired(PageId frame) const noexcept {
  return retired_.count(frame) != 0;
}

bool RasEngine::quarantined(PageId frame) const noexcept {
  return retired_.count(frame) != 0 || pending_.count(frame) != 0 ||
         pinned_.count(frame) != 0;
}

bool RasEngine::reserved_spare(PageId frame) const noexcept {
  return spare_set_.count(frame) != 0;
}

Cycle RasEngine::on_demand_access(PageId frame, Cycle now) {
  scrub_to(now);
  Cycle penalty = probe(frame, now, /*scrub=*/false);
  const auto it = health_.find(frame);
  if (it != health_.end() && it->second.last_scrub != 0 &&
      it->second.last_scrub + cfg_.scrub_busy > now) {
    // The patrol scrubber holds this frame busy; the demand access waits.
    penalty += it->second.last_scrub + cfg_.scrub_busy - now;
    ++metrics_.scrub_collisions;
  }
  return penalty;
}

bool RasEngine::has_pending() const noexcept { return !pending_.empty(); }

PageId RasEngine::next_pending() const noexcept {
  PageId best = kInvalidPage;
  // analyze: allow(determinism): tie-broken min-scan
  for (const PageId f : pending_)
    if (best == kInvalidPage || f < best) best = f;
  return best;
}

std::vector<PageId> RasEngine::pending_frames() const {
  std::vector<PageId> out(pending_.begin(), pending_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void RasEngine::complete_retirement(PageId frame, Cycle now) {
  HMM_CHECK(pending_.erase(frame) == 1,
            "complete_retirement on a frame that was not pending");
  retired_.insert(frame);
  ++metrics_.frames_retired;
  log_retirement(frame, now);
}

void RasEngine::pin_frame(PageId frame) {
  HMM_CHECK(pending_.erase(frame) == 1,
            "pin_frame on a frame that was not pending");
  pinned_.insert(frame);
  ++metrics_.frames_pinned;
}

PageId RasEngine::peek_spare() const noexcept {
  return pool_.empty() ? kInvalidPage : pool_.front();
}

void RasEngine::consume_spare(PageId frame) {
  const auto it = std::find(pool_.begin(), pool_.end(), frame);
  HMM_CHECK(it != pool_.end(), "consume_spare on a frame not in the pool");
  pool_.erase(it);
  ++metrics_.spares_used;
}

std::optional<PageId> RasEngine::remap_frame(PageId frame, Cycle now) {
  HMM_CHECK(pending_.count(frame) != 0,
            "remap_frame on a frame that was not pending");
  const PageId spare = peek_spare();
  if (spare == kInvalidPage) return std::nullopt;
  consume_spare(spare);
  remap_[frame] = spare;
  ++metrics_.evacuations;
  metrics_.evacuation_bytes += geom_.page_bytes;
  complete_retirement(frame, now);
  return spare;
}

std::optional<PageId> RasEngine::assign_spare_for(PageId frame, Cycle now) {
  (void)now;
  HMM_CHECK(retired_.count(frame) != 0 && remap_.count(frame) == 0,
            "assign_spare_for needs a retired frame with no stand-in");
  const PageId spare = peek_spare();
  if (spare == kInvalidPage) return std::nullopt;
  consume_spare(spare);
  remap_[frame] = spare;
  ++metrics_.evacuations;
  metrics_.evacuation_bytes += geom_.page_bytes;
  return spare;
}

PageId RasEngine::remap_of(PageId frame) const noexcept {
  const auto it = remap_.find(frame);
  return it == remap_.end() ? kInvalidPage : it->second;
}

PageId RasEngine::resolve(PageId frame) const noexcept {
  PageId f = frame;
  for (auto it = remap_.find(f); it != remap_.end(); it = remap_.find(f))
    f = it->second;
  return f;
}

std::vector<PageId> RasEngine::retired_frames() const {
  std::vector<PageId> out(retired_.begin(), retired_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t RasEngine::healthy_frames() const noexcept {
  const std::uint64_t lost =
      retired_.size() + pinned_.size() + pending_.size();
  return geom_.total_pages() - lost + metrics_.spares_used;
}

Cycle RasEngine::probe(PageId frame, Cycle now, bool scrub) {
  if (retired_.count(frame) != 0) return 0;
  if (injector_ == nullptr || !injector_->enabled()) {
    if (scrub) health_[frame].last_scrub = now;
    return 0;
  }
  Cycle penalty = 0;
  FrameHealth& h = health_[frame];
  if (injector_->fires(fault::FaultSite::MediaStuckAt, frame)) {
    ++h.stuck;
    ++metrics_.stuck_faults;
  }
  bool due = false;
  bool corrected = false;
  if (injector_->fires(fault::FaultSite::MediaTransient, frame)) {
    ++h.transients;
    if (payload_draw(h, frame) < cfg_.due_fraction)
      due = true;  // double-bit: detected but uncorrectable
    else
      corrected = true;  // single-bit: ECC corrects in-line
  }
  // A stuck cell is a latent error: SEC corrects it on every probe, which
  // is exactly how the patrol scrubber surfaces it before a demand read.
  if (!due && !corrected && h.stuck > 0) corrected = true;
  if (corrected) {
    ++h.corrected;
    penalty += cfg_.ce_penalty;
    ++(scrub ? metrics_.scrub_corrected : metrics_.demand_corrected);
  }
  if (due) {
    penalty += cfg_.due_penalty;
    ++(scrub ? metrics_.scrub_uncorrectable : metrics_.demand_uncorrectable);
    flag(frame, now);
  }
  if (h.stuck >= cfg_.stuck_retire_threshold ||
      h.corrected >= cfg_.ce_retire_threshold)
    flag(frame, now);
  if (scrub) h.last_scrub = now;
  return penalty;
}

void RasEngine::scrub_to(Cycle now) {
  if (cfg_.scrub_interval == 0) return;
  const PageId total = geom_.total_pages();
  while (next_scrub_at_ <= now) {
    const Cycle at = next_scrub_at_;
    next_scrub_at_ += cfg_.scrub_interval;
    PageId f = scrub_cursor_ % total;
    for (PageId tries = 0; tries < total && retired_.count(f) != 0; ++tries)
      f = (f + 1) % total;
    scrub_cursor_ = (f + 1) % total;
    if (retired_.count(f) != 0) continue;  // everything retired (degenerate)
    ++metrics_.scrub_probes;
    probe(f, at, /*scrub=*/true);
  }
}

void RasEngine::flag(PageId frame, Cycle now) {
  if (quarantined(frame)) return;
  const auto it = std::find(pool_.begin(), pool_.end(), frame);
  if (it != pool_.end()) {
    // An unconsumed spare failed: it is data-free by construction, so it
    // retires directly — it just never gets pressed into service.
    pool_.erase(it);
    retired_.insert(frame);
    ++metrics_.frames_retired;
    log_retirement(frame, now);
    return;
  }
  pending_.insert(frame);
  check_capacity();
}

void RasEngine::log_retirement(PageId frame, Cycle now) {
  if (retire_log_.size() < kMaxRetirementLog)
    retire_log_.push_back({now, frame});
}

void RasEngine::check_capacity() const {
  const std::uint64_t healthy = healthy_frames();
  if (healthy >= floor_frames_) return;
  throw fault::SimError(
      fault::SimErrorKind::CapacityExhausted,
      "healthy capacity " + std::to_string(healthy) + "/" +
          std::to_string(geom_.total_pages()) + " frames fell below the " +
          std::to_string(floor_frames_) + "-frame retirement floor (" +
          std::to_string(retired_.size()) + " retired, " +
          std::to_string(pinned_.size()) + " pinned, " +
          std::to_string(pending_.size()) + " pending)");
}

double RasEngine::payload_draw(FrameHealth& h, PageId frame) {
  const std::uint64_t seed =
      injector_ != nullptr ? injector_->plan().seed : 0;
  // A fresh generator per draw keeps the outcome a pure function of
  // (plan seed, frame, draw index) — independent of probe interleaving.
  Pcg32 rng(seed ^ (frame * 0x9e3779b97f4a7c15ull), h.draws + 1);
  ++h.draws;
  return rng.uniform();
}

void RasEngine::save(snap::Writer& w) const {
  w.begin_section(snap::tag('R', 'A', 'S', 'E'));
  std::vector<PageId> keys;
  keys.reserve(health_.size());
  // analyze: allow(determinism): keys collected then sorted below
  for (const auto& [f, h] : health_) keys.push_back(f);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const PageId f : keys) {
    const FrameHealth& h = health_.at(f);
    w.u64(f);
    w.u64(h.transients);
    w.u64(h.corrected);
    w.u64(h.stuck);
    w.u64(h.draws);
    w.u64(h.last_scrub);
  }
  const auto write_set = [&w](const std::unordered_set<PageId>& s) {
    std::vector<PageId> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    w.u64(v.size());
    for (const PageId f : v) w.u64(f);
  };
  write_set(pending_);
  write_set(retired_);
  write_set(pinned_);
  w.u64(pool_.size());
  for (const PageId f : pool_) w.u64(f);
  std::vector<PageId> rk;
  rk.reserve(remap_.size());
  // analyze: allow(determinism): keys collected then sorted below
  for (const auto& [f, s] : remap_) rk.push_back(f);
  std::sort(rk.begin(), rk.end());
  w.u64(rk.size());
  for (const PageId f : rk) {
    w.u64(f);
    w.u64(remap_.at(f));
  }
  w.u64(scrub_cursor_);
  w.u64(next_scrub_at_);
  w.u64(retire_log_.size());
  for (const RetirementEvent& e : retire_log_) {
    w.u64(e.at);
    w.u64(e.frame);
  }
  w.u64(metrics_.demand_corrected);
  w.u64(metrics_.demand_uncorrectable);
  w.u64(metrics_.scrub_probes);
  w.u64(metrics_.scrub_corrected);
  w.u64(metrics_.scrub_uncorrectable);
  w.u64(metrics_.scrub_collisions);
  w.u64(metrics_.stuck_faults);
  w.u64(metrics_.frames_retired);
  w.u64(metrics_.frames_pinned);
  w.u64(metrics_.evacuations);
  w.u64(metrics_.evacuation_bytes);
  w.u64(metrics_.spares_used);
  w.end_section();
}

void RasEngine::restore(snap::Reader& r) {
  r.begin_section(snap::tag('R', 'A', 'S', 'E'));
  health_.clear();
  for (std::uint64_t n = r.u64(); n > 0; --n) {
    const PageId f = r.u64();
    FrameHealth h;
    h.transients = r.u64();
    h.corrected = r.u64();
    h.stuck = r.u64();
    h.draws = r.u64();
    h.last_scrub = r.u64();
    health_.emplace(f, h);
  }
  const auto read_set = [&r](std::unordered_set<PageId>& s) {
    s.clear();
    for (std::uint64_t n = r.u64(); n > 0; --n) s.insert(r.u64());
  };
  read_set(pending_);
  read_set(retired_);
  read_set(pinned_);
  pool_.assign(r.u64(), PageId{0});
  for (PageId& f : pool_) f = r.u64();
  remap_.clear();
  for (std::uint64_t n = r.u64(); n > 0; --n) {
    const PageId f = r.u64();
    remap_[f] = r.u64();
  }
  scrub_cursor_ = r.u64();
  next_scrub_at_ = r.u64();
  retire_log_.assign(r.u64(), RetirementEvent{});
  for (RetirementEvent& e : retire_log_) {
    e.at = r.u64();
    e.frame = r.u64();
  }
  metrics_.demand_corrected = r.u64();
  metrics_.demand_uncorrectable = r.u64();
  metrics_.scrub_probes = r.u64();
  metrics_.scrub_corrected = r.u64();
  metrics_.scrub_uncorrectable = r.u64();
  metrics_.scrub_collisions = r.u64();
  metrics_.stuck_faults = r.u64();
  metrics_.frames_retired = r.u64();
  metrics_.frames_pinned = r.u64();
  metrics_.evacuations = r.u64();
  metrics_.evacuation_bytes = r.u64();
  metrics_.spares_used = r.u64();
  r.end_section();
}

}  // namespace hmm::ras
