// RAS (reliability/availability/serviceability) layer: a deterministic
// media-error model under both memory tiers, SEC-DED ECC outcomes, a
// patrol scrubber, and the page-retirement state machine (DESIGN.md §11).
//
// Error model. Two fault sites drive everything, evaluated through the
// session's FaultInjector so error sequences are a pure function of the
// fault plan:
//   * MediaTransient — a transient multi/single-bit upset on an access or
//     scrub probe of a frame. A deterministic per-frame payload draw
//     splits it SEC-DED style: with probability `due_fraction` it is a
//     double-bit detected-uncorrectable error (DUE — flags the frame for
//     retirement), otherwise a corrected single-bit error (CE — charged
//     `ce_penalty` cycles).
//   * MediaStuckAt — a cell in the frame fails permanently. One stuck
//     cell is corrected by SEC on every subsequent read (a latent error
//     until something *probes* the frame — exactly what the patrol
//     scrubber exists to surface); reaching `stuck_retire_threshold`
//     stuck cells risks uncorrectable combinations and flags the frame.
//   Repeat offenders escalate: a frame accumulating `ce_retire_threshold`
//   corrected errors is flagged even without a hard fault.
//
// Retirement is evacuate-then-blacklist: a flagged frame is only
// *pending* until the owning scheme moves its occupant off through its
// own machinery (design N bulk-copies to a spare, N-1/Live park the
// empty slot, nomad runs a shadow transaction, the static schemes remap
// to a spare); only then does the frame enter the retired set that
// validate(), can_swap(), and the auditor enforce. Placements a scheme
// cannot express are *pinned*: served in place forever, never written
// anew. Capacity degrades gracefully — spares (reserved at boot like
// DRAM sparing / post-package repair) absorb retirements — until healthy
// capacity drops below `capacity_floor`, which raises a structured
// SimError(CapacityExhausted) instead of wedging.
//
// Determinism: fire/no-fire decisions come from the injector's per-site
// streams; ECC payload draws are a pure function of (plan seed, frame,
// per-frame draw index), so outcomes are independent of the order in
// which *other* frames are probed. With no media rules in the fault plan
// every hook is a no-op and runs are bit-identical to a RAS-less build.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.hh"
#include "common/snapshot.hh"
#include "common/types.hh"
#include "core/geometry.hh"
#include "core/ras_view.hh"
#include "fault/fault_injector.hh"

namespace hmm::ras {

struct RasConfig {
  bool enabled = false;
  /// SEC-DED split: fraction of transient media events that are
  /// double-bit (detected-uncorrectable); the rest are corrected.
  double due_fraction = 0.05;
  /// Corrected-error count at which a frame is declared failing.
  std::uint64_t ce_retire_threshold = 16;
  /// Stuck-at fault count at which a frame is declared failing.
  std::uint64_t stuck_retire_threshold = 2;
  /// Cycles between patrol probes (one frame per probe); 0 disables.
  Cycle scrub_interval = 20'000;
  /// Cycles a probed frame stays busy; a colliding demand access pays it.
  Cycle scrub_busy = 200;
  Cycle ce_penalty = 50;      ///< ECC correction latency on a demand hit
  Cycle due_penalty = 2'000;  ///< detected-uncorrectable recovery cost
  /// Frames reserved data-free at boot, just below Ω. Their identity
  /// pages are invisible to the OS — workloads must not address them.
  unsigned spare_frames = 4;
  /// Healthy-capacity floor as a fraction of total frames; dropping
  /// below raises SimError(CapacityExhausted).
  double capacity_floor = 0.75;
};

struct RasMetrics {
  std::uint64_t demand_corrected = 0;
  std::uint64_t demand_uncorrectable = 0;
  std::uint64_t scrub_probes = 0;
  std::uint64_t scrub_corrected = 0;
  std::uint64_t scrub_uncorrectable = 0;
  std::uint64_t scrub_collisions = 0;  ///< demand paid scrub_busy
  std::uint64_t stuck_faults = 0;      ///< stuck cells that developed
  std::uint64_t frames_retired = 0;
  std::uint64_t frames_pinned = 0;
  std::uint64_t evacuations = 0;       ///< remap-service relocations
  std::uint64_t evacuation_bytes = 0;  ///< bytes moved by the remap path
  std::uint64_t spares_used = 0;
};

/// One retirement, for the availability bench's capacity-vs-time curve.
struct RetirementEvent {
  Cycle at = 0;
  PageId frame = kInvalidPage;
};

class RasEngine final : public RasService {
 public:
  static constexpr std::size_t kMaxRetirementLog = 64;

  RasEngine(const RasConfig& cfg, const Geometry& geom,
            fault::FaultInjector* injector);

  [[nodiscard]] const RasConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const RasMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const std::vector<RetirementEvent>& retirement_log()
      const noexcept {
    return retire_log_;
  }

  // --- RasFrameView / RasService -------------------------------------------
  [[nodiscard]] bool retired(PageId frame) const noexcept override;
  [[nodiscard]] bool quarantined(PageId frame) const noexcept override;
  [[nodiscard]] bool reserved_spare(PageId frame) const noexcept override;
  Cycle on_demand_access(PageId frame, Cycle now) override;
  [[nodiscard]] bool has_pending() const noexcept override;
  [[nodiscard]] PageId next_pending() const noexcept override;
  [[nodiscard]] std::vector<PageId> pending_frames() const override;
  void complete_retirement(PageId frame, Cycle now) override;
  void pin_frame(PageId frame) override;
  [[nodiscard]] PageId peek_spare() const noexcept override;
  void consume_spare(PageId frame) override;

  // --- remap service (schemes without relocation machinery) ----------------
  /// Permanently remap `frame` onto a spare (a bulk copy is charged) and
  /// retire it. Returns the spare, or nullopt when the pool is dry (the
  /// caller pins the frame instead).
  std::optional<PageId> remap_frame(PageId frame, Cycle now);
  /// Assign a spare stand-in for a frame that was retired *without* one
  /// (stale at retirement time) but must now receive data again — e.g. a
  /// flat-HMA page evicted from a failing slot back to its retired home.
  /// Returns the spare, or nullopt when the pool is dry.
  std::optional<PageId> assign_spare_for(PageId frame, Cycle now);
  /// The spare standing in for `frame` (kInvalidPage when unremapped).
  [[nodiscard]] PageId remap_of(PageId frame) const noexcept;
  /// Follow the remap chain from `frame` to the frame actually serving it
  /// (a spare standing in for a spare when a consumed spare fails too).
  [[nodiscard]] PageId resolve(PageId frame) const noexcept;
  /// All retired frames, ascending (for scheme audit sweeps).
  [[nodiscard]] std::vector<PageId> retired_frames() const;

  // --- capacity bookkeeping ------------------------------------------------
  [[nodiscard]] std::uint64_t retired_count() const noexcept {
    return retired_.size();
  }
  [[nodiscard]] std::uint64_t pinned_count() const noexcept {
    return pinned_.size();
  }
  [[nodiscard]] std::uint64_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::uint64_t spares_left() const noexcept {
    return pool_.size();
  }
  /// Frames currently able to hold data: total minus lost frames, plus
  /// the spares already standing in for lost ones.
  [[nodiscard]] std::uint64_t healthy_frames() const noexcept;

  /// Test hook: flag `frame` as failing without a media event (drives the
  /// mid-swap retirement choreography tests deterministically).
  void flag_frame_for_test(PageId frame) { flag(frame, 0); }

  // --- checkpoint/restore --------------------------------------------------
  // Serialized only when RAS is enabled (MemSim gates the call), so the
  // pre-RAS snapshot layout is unchanged. Sets and maps are written
  // sorted so the encoding is independent of hash iteration order.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  /// Per-frame health record (sparse: only frames with history).
  struct FrameHealth {
    std::uint64_t transients = 0;  ///< MediaTransient events observed
    std::uint64_t corrected = 0;   ///< CEs (incl. stuck-cell corrections)
    std::uint64_t stuck = 0;       ///< permanently failed cells
    std::uint64_t draws = 0;       ///< ECC payload draws consumed
    Cycle last_scrub = 0;          ///< when the scrubber last held it
  };

  /// One media probe of `frame` (demand access or patrol scrub). Returns
  /// the latency penalty; flags the frame when it crosses a threshold.
  Cycle probe(PageId frame, Cycle now, bool scrub);
  /// Run the patrol scrubber up to `now` (one frame per interval).
  void scrub_to(Cycle now);
  void flag(PageId frame, Cycle now);
  void log_retirement(PageId frame, Cycle now);
  /// Raises SimError(CapacityExhausted) once health is below the floor.
  void check_capacity() const;
  /// Deterministic ECC payload for this frame's next media event: a pure
  /// function of (plan seed, frame, draw index).
  [[nodiscard]] double payload_draw(FrameHealth& h, PageId frame);

  RasConfig cfg_;   // no-snapshot(construction-time config)
  Geometry geom_;   // no-snapshot(construction-time config)
  // no-snapshot(not owned; the injector serializes itself)
  fault::FaultInjector* injector_ = nullptr;
  // no-snapshot(derived from cfg_ in the ctor)
  std::uint64_t floor_frames_ = 0;

  std::unordered_map<PageId, FrameHealth> health_;
  std::unordered_set<PageId> pending_;  ///< flagged, awaiting evacuation
  std::unordered_set<PageId> retired_;  ///< evacuated and blacklisted
  std::unordered_set<PageId> pinned_;   ///< failing but inexpressible
  // no-snapshot(derived from cfg_/geom_ in the ctor; pool_ tracks use)
  std::unordered_set<PageId> spare_set_;  ///< every boot-reserved spare
  std::vector<PageId> pool_;  ///< unconsumed spares, ascending ids
  std::unordered_map<PageId, PageId> remap_;  ///< frame -> spare stand-in
  PageId scrub_cursor_ = 0;
  Cycle next_scrub_at_ = 0;
  std::vector<RetirementEvent> retire_log_;
  RasMetrics metrics_;
};

}  // namespace hmm::ras
