// Versioned binary snapshot encoding with per-section CRC32 integrity.
//
// The durability layer (sim/checkpoint.hh, runner journal/supervisor)
// serializes simulator state through these two classes. Goals:
//   * platform-independent: explicit little-endian byte order, doubles as
//     IEEE-754 bit patterns — a checkpoint restores bit-identically;
//   * tamper/truncation evident: every section is [tag][size][payload][crc]
//     and the reader verifies the CRC before handing out a single byte, so
//     a torn write or flipped bit surfaces as SimError(Snapshot), never as
//     a silently wrong simulation;
//   * dependency-free: no third-party serialization library (the container
//     must not grow deps), just a CRC32 table built at compile time.
//
// Sections are flat (no nesting) and must be read back in write order —
// the format is a checkpoint, not an archive.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "fault/sim_error.hh"

namespace hmm::snap {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
namespace detail {
[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();
}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* data,
                                         std::size_t len,
                                         std::uint32_t seed = 0) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = detail::kCrcTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

/// Section tag: four printable bytes, e.g. "TTBL" for the translation table.
[[nodiscard]] constexpr std::uint32_t tag(char a, char b, char c,
                                          char d) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

[[nodiscard]] inline std::string tag_name(std::uint32_t t) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((t >> (8 * i)) & 0xFF);
    s[static_cast<std::size_t>(i)] = (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return s;
}

[[noreturn]] inline void snapshot_error(const std::string& what) {
  throw fault::SimError(fault::SimErrorKind::Snapshot, what);
}

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }

  /// Opens a section; all writes until end_section() become its payload.
  void begin_section(std::uint32_t section_tag) {
    if (open_) snapshot_error("nested snapshot sections are not supported");
    open_ = true;
    u32(section_tag);
    size_pos_ = buf_.size();
    u64(0);  // payload size, patched by end_section()
  }

  void end_section() {
    if (!open_) snapshot_error("end_section without begin_section");
    open_ = false;
    const std::size_t payload_start = size_pos_ + 8;
    const std::uint64_t payload_size = buf_.size() - payload_start;
    for (int i = 0; i < 8; ++i)
      buf_[size_pos_ + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((payload_size >> (8 * i)) & 0xFF);
    u32(crc32(buf_.data() + payload_start, payload_size));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i)
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }

  std::vector<std::uint8_t> buf_;
  bool open_ = false;
  std::size_t size_pos_ = 0;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    return static_cast<std::uint16_t>(le(2));
  }
  [[nodiscard]] std::uint32_t u32() {
    return static_cast<std::uint32_t>(le(4));
  }
  [[nodiscard]] std::uint64_t u64() { return le(8); }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Reads and validates the next section header; the CRC of the whole
  /// payload is verified up front so later reads cannot see corrupt bytes.
  void begin_section(std::uint32_t expected_tag) {
    if (section_end_ != 0)
      snapshot_error("begin_section inside an open section");
    const std::uint32_t t = u32();
    if (t != expected_tag)
      snapshot_error("snapshot section mismatch: expected '" +
                     tag_name(expected_tag) + "', found '" + tag_name(t) +
                     "' (incompatible or reordered checkpoint)");
    const std::uint64_t size = u64();
    need(size + 4);
    const std::uint32_t want =
        crc32(data_ + pos_, static_cast<std::size_t>(size));
    std::uint32_t got = 0;
    for (int i = 0; i < 4; ++i)
      got |= static_cast<std::uint32_t>(data_[pos_ + size +
                                              static_cast<std::size_t>(i)])
             << (8 * i);
    if (want != got)
      snapshot_error("CRC mismatch in section '" + tag_name(t) +
                     "': checkpoint is corrupt or truncated");
    section_end_ = pos_ + static_cast<std::size_t>(size);
  }

  void end_section() {
    if (section_end_ == 0) snapshot_error("end_section without a section");
    if (pos_ != section_end_)
      snapshot_error("section payload not fully consumed (version skew)");
    pos_ += 4;  // the already-verified CRC
    section_end_ = 0;
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= len_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::uint64_t n) const {
    if (pos_ + n > len_ || pos_ + n < pos_)
      snapshot_error("snapshot truncated: need " + std::to_string(n) +
                     " bytes at offset " + std::to_string(pos_));
    if (section_end_ != 0 && pos_ + n > section_end_)
      snapshot_error("read past the end of the current section");
  }

  std::uint64_t le(int n) {
    need(static_cast<std::uint64_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;  ///< 0 = no section open
};

}  // namespace hmm::snap
