// Paper constants (Table II / Table III of Dong et al., SC'10), in one place.
//
// The scraped paper text dropped trailing zeros from several numbers; the
// values below are reconstructed so that the latency ledger is internally
// consistent (see DESIGN.md §2 "OCR-damage reconstruction"):
//
//   off-package = core 50 + queue 116 + MC 5 + ctl<->core 2*4 + pin 2*5
//                 + PCB 11 (round trip)                         = 200 cycles
//   on-package  = core 50 + MC 5 + ctl<->core 2*4 + interposer 2*3
//                 + in-package wire 1 (round trip)              =  70 cycles
//   L4 DRAM-cache hit  = 2 * 70 = 140 (sequential tag, then data)
//   L4 miss determination = 70
#pragma once

#include "common/types.hh"
#include "common/units.hh"

namespace hmm::params {

// --- Microprocessor (Table II) ---------------------------------------------
inline constexpr unsigned kNumCores = 4;
inline constexpr double kCpuGHz = 3.2;

// --- Cache hierarchy latencies (CPU cycles) --------------------------------
inline constexpr Cycle kL1Latency = 2;    // 32KB, 8-way, private
inline constexpr Cycle kL2Latency = 5;    // 256KB, 8-way, private
inline constexpr Cycle kL3Latency = 25;   // 8MB, 16-way, shared inclusive
inline constexpr std::uint64_t kL1Size = 32 * KiB;
inline constexpr std::uint64_t kL2Size = 256 * KiB;
inline constexpr std::uint64_t kL3Size = 8 * MiB;
inline constexpr unsigned kL1Ways = 8;
inline constexpr unsigned kL2Ways = 8;
inline constexpr unsigned kL3Ways = 16;
inline constexpr std::uint64_t kCacheLine = 64;

// --- Fixed latency ledger (CPU cycles, Table II) ----------------------------
inline constexpr Cycle kMcProcessing = 5;        // memory controller pipeline
inline constexpr Cycle kCtlToCoreOneWay = 4;     // controller <-> core
inline constexpr Cycle kPackagePinOneWay = 5;    // CPU package pins
inline constexpr Cycle kPcbWireRoundTrip = 11;   // board traces to DIMM
inline constexpr Cycle kInterposerPinOneWay = 3; // silicon interposer
inline constexpr Cycle kInPackageWireRoundTrip = 1;
inline constexpr Cycle kDramCoreLatency = 50;    // array access, both regions
inline constexpr Cycle kOffPackageQueueNominal = 116;  // Simics fixed model

/// Simics-style fixed off-package latency (Section II's "200-cycle memory").
inline constexpr Cycle kOffPackageFixedLatency =
    kDramCoreLatency + kOffPackageQueueNominal + kMcProcessing +
    2 * kCtlToCoreOneWay + 2 * kPackagePinOneWay + kPcbWireRoundTrip;  // 200
static_assert(kOffPackageFixedLatency == 200);

/// Simics-style fixed on-package latency ("70-cycle memory").
inline constexpr Cycle kOnPackageFixedLatency =
    kDramCoreLatency + kMcProcessing + 2 * kCtlToCoreOneWay +
    2 * kInterposerPinOneWay + kInPackageWireRoundTrip;  // 70
static_assert(kOnPackageFixedLatency == 70);

/// Non-core, non-queue overhead added on top of the detailed DRAM timing.
inline constexpr Cycle kOffPackageWireOverhead =
    kMcProcessing + 2 * kCtlToCoreOneWay + 2 * kPackagePinOneWay +
    kPcbWireRoundTrip;  // 34
inline constexpr Cycle kOnPackageWireOverhead =
    kMcProcessing + 2 * kCtlToCoreOneWay + 2 * kInterposerPinOneWay +
    kInPackageWireRoundTrip;  // 20

/// L4 DRAM cache: tag and data are read sequentially from the same arrays
/// (15-way data + 1 tag line per 16-line row), so a hit costs two accesses.
inline constexpr Cycle kL4HitLatency = 2 * kOnPackageFixedLatency;   // 140
inline constexpr Cycle kL4MissDetermination = kOnPackageFixedLatency;  // 70
inline constexpr unsigned kL4Ways = 15;  // 15-way in a 16-way data array

// --- Translation layer ------------------------------------------------------
/// RAM+CAM translation table adds two pipeline cycles per access (Sec III-B).
inline constexpr Cycle kTranslationTableLatency = 2;
/// OS-assisted table update: user/kernel switch, ~TLB-update class cost [19].
inline constexpr Cycle kOsUpdateOverhead = 127;

// --- Section II experiment geometry -----------------------------------------
inline constexpr std::uint64_t kSec2OnPackageCapacity = 1 * GiB;

// --- Section IV (Table III) geometry ----------------------------------------
inline constexpr std::uint64_t kTotalMemory = 4 * GiB;
inline constexpr std::uint64_t kSec4OnPackageCapacity = 512 * MiB;
inline constexpr std::uint64_t kSubBlockSize = 4 * KiB;
inline constexpr std::uint64_t kMinMacroPage = 4 * KiB;
inline constexpr std::uint64_t kMaxMacroPage = 4 * MiB;
/// Pure-hardware tracking is considered feasible only at >= 1MB granularity.
inline constexpr std::uint64_t kPureHardwareMinPage = 1 * MiB;

// --- DRAM organisation -------------------------------------------------------
inline constexpr unsigned kOffPackageChannels = 4;   // four DDR3 channels
inline constexpr unsigned kOffPackageBanksPerChannel = 8;
inline constexpr unsigned kOnPackageChannels = 1;    // wide SiP interface
inline constexpr unsigned kOnPackageBanks = 128;     // many-bank structure

// --- Hotness trackers (Section III-B) ----------------------------------------
inline constexpr unsigned kMultiQueueLevels = 3;
inline constexpr unsigned kMultiQueueEntriesPerLevel = 10;

// --- Energy (Section IV-D, [21]) ---------------------------------------------
inline constexpr double kDramCorePjPerBit = 5.0;
inline constexpr double kOnPackageLinkPjPerBit = 1.66;
inline constexpr double kOffPackageLinkPjPerBit = 13.0;

}  // namespace hmm::params
