// Minimal fixed-width ASCII table printer used by the bench harnesses to
// emit the paper's tables/figure series in a grep-friendly layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hmm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 1);
  /// Convenience: percentage with one decimal ("83.0%").
  static std::string pct(double fraction, int prec = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hmm
