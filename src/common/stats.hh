// Lightweight statistics: counters, running means, and log-scale histograms.
//
// Every simulator component exposes its behaviour through these, and the
// bench harnesses read them back to print the paper's tables.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace hmm {

/// Streaming mean/min/max over a sequence of samples (no storage).
class RunningStat {
 public:
  void add(double x, std::uint64_t weight = 1) noexcept {
    count_ += weight;
    sum_ += x * static_cast<double>(weight);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStat& o) noexcept {
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  void reset() noexcept { *this = RunningStat{}; }

  /// Raw accumulator state for checkpoint/restore. min_/max_ sentinels are
  /// preserved verbatim so a restored stat is bit-identical, not merely
  /// equal under the count_==0 accessor masking.
  struct Raw {
    std::uint64_t count;
    double sum, min, max;
  };
  [[nodiscard]] Raw raw() const noexcept { return {count_, sum_, min_, max_}; }
  void set_raw(const Raw& r) noexcept {
    count_ = r.count;
    sum_ = r.sum;
    min_ = r.min;
    max_ = r.max;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 1e308;
  double max_ = -1e308;
};

/// Power-of-two-bucketed histogram for latency/queue-depth distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept {
    unsigned b = 0;
    while ((1ull << (b + 1)) <= value && b + 1 < kBuckets) ++b;
    if (value == 0) b = 0;
    ++buckets_[b];
    ++total_;
  }

  /// Bucket-wise sum with another histogram (parallel result aggregation:
  /// per-job histograms combine into one distribution, order-independent).
  void merge(const Log2Histogram& o) noexcept {
    for (unsigned i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    total_ += o.total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(unsigned i) const noexcept {
    return i < kBuckets ? buckets_[i] : 0;
  }

  /// Inclusive value at the given quantile q in [0,1], bucket-resolution.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) return 1ull << i;
    }
    return 1ull << (kBuckets - 1);
  }

  void reset() noexcept {
    buckets_.assign(kBuckets, 0);
    total_ = 0;
  }

  /// Checkpoint/restore access to the raw bucket counts.
  void set_bucket(unsigned i, std::uint64_t v) noexcept {
    if (i < kBuckets) buckets_[i] = v;
  }
  void set_total(std::uint64_t t) noexcept { total_ = t; }

  static constexpr unsigned kBuckets = 40;

 private:
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t total_ = 0;
};

}  // namespace hmm
