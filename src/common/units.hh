// Byte-size units and small helpers for powers of two.
#pragma once

#include "fault/sim_error.hh"
#include <cstdint>
#include <string>

namespace hmm {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/// True iff `x` is a (nonzero) power of two.
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x != 0.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  unsigned n = 0;
  while (x >>= 1) ++n;
  return n;
}

/// log2 of a power of two; throws SimError if x is not one.
[[nodiscard]] constexpr unsigned log2_exact(std::uint64_t x) {
  HMM_CHECK(is_pow2(x), "log2_exact needs a power of two");
  return log2_floor(x);
}

/// Smallest power of two >= x (x <= 2^63).
[[nodiscard]] constexpr std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  return 1ull << (log2_floor(x - 1) + 1);
}

/// Integer division rounding up.
[[nodiscard]] constexpr std::uint64_t div_ceil(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// "4KB", "512MB", "1GB", "640B" — human-readable size for reports.
[[nodiscard]] inline std::string format_size(std::uint64_t bytes) {
  if (bytes >= GiB && bytes % GiB == 0)
    return std::to_string(bytes / GiB) + "GB";
  if (bytes >= MiB && bytes % MiB == 0)
    return std::to_string(bytes / MiB) + "MB";
  if (bytes >= KiB && bytes % KiB == 0)
    return std::to_string(bytes / KiB) + "KB";
  return std::to_string(bytes) + "B";
}

}  // namespace hmm
