// Fundamental vocabulary types shared by every subsystem.
//
// All quantities that cross module boundaries use these aliases so that a
// reader can tell a CPU-cycle count from a byte count from a macro-page id
// at a glance, and so unit mistakes show up in review.
#pragma once

#include <cstdint>
#include <limits>

namespace hmm {

/// Absolute time and durations, in CPU clock cycles (3.2 GHz in the paper).
using Cycle = std::uint64_t;

/// A physical (program-visible) byte address.
using PhysAddr = std::uint64_t;

/// A machine (DRAM-device) byte address produced by the translation layer.
using MachAddr = std::uint64_t;

/// Macro-page index within the physical address space (addr >> log2(page)).
using PageId = std::uint64_t;

/// Index of an on-package memory slot (row of the translation table).
using SlotId = std::uint32_t;

/// Hardware thread / CPU id as recorded in traces.
using CpuId = std::uint16_t;

inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

/// Which side of the package boundary a machine address lives on.
enum class Region : std::uint8_t { OnPackage, OffPackage };

[[nodiscard]] constexpr const char* to_string(Region r) noexcept {
  return r == Region::OnPackage ? "on-package" : "off-package";
}

/// Read/write direction of a memory reference.
enum class AccessType : std::uint8_t { Read, Write };

[[nodiscard]] constexpr const char* to_string(AccessType t) noexcept {
  return t == AccessType::Read ? "read" : "write";
}

}  // namespace hmm
