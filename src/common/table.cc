#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hmm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int prec) {
  return num(fraction * 100.0, prec) + "%";
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace hmm
