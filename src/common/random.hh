// Deterministic, fast pseudo-random number generation for workload synthesis.
//
// PCG32 (O'Neill, 2014): small state, excellent statistical quality, and —
// crucially for a simulator — fully reproducible across platforms, unlike
// the unspecified std::default_random_engine.
#pragma once

#include "fault/sim_error.hh"
#include <cmath>
#include <cstdint>

namespace hmm {

class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bull,
                 std::uint64_t stream = 0xda3e39cb94b95bdbull) noexcept {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  /// Uniform 32-bit value.
  std::uint32_t next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

  /// Uniform in [0, bound), bound > 0. Lemire-style rejection for no bias.
  std::uint32_t bounded(std::uint32_t bound) {
    HMM_CHECK(bound > 0, "Pcg32::bounded requires bound > 0");
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [0, bound), 64-bit bound > 0.
  std::uint64_t bounded64(std::uint64_t bound) {
    HMM_CHECK(bound > 0, "Pcg32::bounded64 requires bound > 0");
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint64_t r = next64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1), 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish positive integer with mean `mean` (>=1).
  std::uint64_t geometric(double mean) noexcept {
    if (mean <= 1.0) return 1;
    const double p = 1.0 / mean;
    double u = uniform();
    if (u <= 0.0) u = 1e-12;
    const double v = std::log(u) / std::log(1.0 - p);
    return 1 + static_cast<std::uint64_t>(v);
  }

  /// Raw generator state, for checkpoint/restore. Restoring Raw resumes
  /// the stream exactly where it was captured.
  struct Raw {
    std::uint64_t state;
    std::uint64_t inc;
  };
  [[nodiscard]] Raw raw() const noexcept { return {state_, inc_}; }
  void set_raw(Raw r) noexcept {
    state_ = r.state;
    inc_ = r.inc;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace hmm
