// Zipf(s) sampler over {0, ..., n-1} by rejection inversion (Hörmann &
// Derflinger), O(1) time and memory for arbitrary n — no CDF table, which
// matters when the "items" are the millions of macro pages of a multi-GB
// footprint.
#pragma once

#include "fault/sim_error.hh"
#include <cmath>
#include <cstdint>

#include "common/random.hh"

namespace hmm {

class ZipfSampler {
 public:
  /// n >= 1 items, exponent s > 0 (s ~ 0.8-1.2 covers typical workloads).
  ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
    HMM_CHECK(n >= 1 && s > 0.0,
              "ZipfSampler needs n >= 1 items and exponent s > 0");
    h_x1_ = h_integral(1.5) - 1.0;
    h_n_ = h_integral(static_cast<double>(n) + 0.5);
    threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double s() const noexcept { return s_; }

  /// Sample a 0-based rank (0 = hottest item).
  std::uint64_t operator()(Pcg32& rng) const {
    for (;;) {
      const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
      const double x = h_integral_inverse(u);
      std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      const double kd = static_cast<double>(k);
      if (kd - x <= threshold_ || u >= h_integral(kd + 0.5) - h(kd)) {
        return k - 1;
      }
    }
  }

 private:
  // H(x) = integral of h(x) = x^-s.
  [[nodiscard]] double h_integral(double x) const {
    const double lx = std::log(x);
    return helper2((1.0 - s_) * lx) * lx;
  }
  [[nodiscard]] double h(double x) const { return std::exp(-s_ * std::log(x)); }
  [[nodiscard]] double h_integral_inverse(double x) const {
    double t = x * (1.0 - s_);
    if (t < -1.0) t = -1.0;  // numerical guard
    return std::exp(helper1(t) * x);
  }
  // helper1(x) = log1p(x)/x, helper2(x) = expm1(x)/x (stable near 0).
  [[nodiscard]] static double helper1(double x) {
    return std::fabs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x * 0.5;
  }
  [[nodiscard]] static double helper2(double x) {
    return std::fabs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x * 0.5;
  }

  std::uint64_t n_;
  double s_;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double threshold_ = 0.0;
};

}  // namespace hmm
