// Synthetic workload generator: a weighted mixture of access patterns with
// phase behaviour, per-CPU attribution, read/write mix, and geometric
// inter-arrival gaps. This is the trace substitute for the paper's
// COTSon-collected workload traces (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/patterns.hh"
#include "trace/record.hh"

namespace hmm {

struct MixtureComponent {
  std::unique_ptr<Pattern> pattern;
  double weight = 1.0;
  /// CPU this component is attributed to; -1 = rotate across all CPUs.
  int cpu = -1;
};

class SyntheticWorkload {
 public:
  struct Params {
    std::string name;
    std::string description;
    std::uint64_t footprint_bytes = 0;
    double read_fraction = 0.7;
    /// Mean cycles between successive main-memory references (aggregate
    /// over all cores); sets memory intensity and hence queueing.
    double mean_gap_cycles = 40.0;
    unsigned cpus = 4;
    /// Accesses per phase; 0 = no phase behaviour.
    std::uint64_t phase_length = 0;
    std::uint64_t seed = 1;
  };

  SyntheticWorkload(Params p, std::vector<MixtureComponent> components);

  TraceRecord next();

  [[nodiscard]] const std::string& name() const noexcept { return p_.name; }
  [[nodiscard]] const std::string& description() const noexcept {
    return p_.description;
  }
  [[nodiscard]] std::uint64_t footprint() const noexcept {
    return p_.footprint_bytes;
  }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

  /// Checkpoint/restore of the generator cursor (RNG, clock, emit count)
  /// and each component pattern's mutable state. The mixture itself must
  /// be rebuilt identically (same workload + seed) before restoring.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  Params p_;  // no-snapshot(construction-time config)
  std::vector<MixtureComponent> comps_;
  // no-snapshot(derived from the component weights in the ctor)
  std::vector<double> cum_weight_;
  Pcg32 rng_;
  Cycle now_ = 0;
  std::uint64_t emitted_ = 0;
  unsigned rr_cpu_ = 0;
};

}  // namespace hmm
