// Binary trace file format: fixed little-endian header followed by packed
// 20-byte records. Lets users capture a synthetic (or external) reference
// stream once and replay it across many simulator configurations.
//
// Layout:
//   [0..8)   magic "HMMTRACE"
//   [8..12)  version (u32, currently 1)
//   [12..20) record count (u64)
//   [20..84) workload name, NUL-padded
//   then per record: addr u64 | timestamp u64 | cpu u16 | type u8 | pad u8
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "trace/record.hh"

namespace hmm {

class TraceWriter {
 public:
  /// Throws std::runtime_error if the file cannot be created.
  TraceWriter(const std::string& path, const std::string& workload_name);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const TraceRecord& r);
  /// Finalizes the header (record count); called by the destructor too.
  void close();

  [[nodiscard]] std::uint64_t written() const noexcept { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

class TraceReader {
 public:
  /// Throws std::runtime_error on missing file or bad magic/version.
  explicit TraceReader(const std::string& path);

  /// nullopt at end of stream.
  [[nodiscard]] std::optional<TraceRecord> next();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] const std::string& workload_name() const noexcept {
    return name_;
  }

 private:
  std::ifstream in_;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
  std::string name_;
};

}  // namespace hmm
