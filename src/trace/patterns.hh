// Reusable access-pattern primitives. Each pattern emits absolute byte
// addresses inside its region; workloads are weighted mixtures of patterns
// (see workloads.cc for how each paper workload is composed).
#pragma once

#include <cstdint>
#include <memory>

#include "common/random.hh"
#include "common/snapshot.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "trace/zipf.hh"

namespace hmm {

class Pattern {
 public:
  virtual ~Pattern() = default;
  /// Next address to touch.
  virtual PhysAddr next(Pcg32& rng) = 0;
  /// Phase boundary: patterns with time-varying hot sets drift here.
  virtual void on_phase(Pcg32& rng) { (void)rng; }

  /// Checkpoint/restore of the pattern's mutable cursor state. Stateless
  /// patterns (UniformPattern) keep the no-op default. Construction-time
  /// parameters are not serialized — the restoring side rebuilds the same
  /// workload first, then overlays the cursors.
  virtual void save_state(snap::Writer& w) const { (void)w; }
  virtual void restore_state(snap::Reader& r) { (void)r; }
};

/// Linear stream: start, start+stride, ... wrapping inside the region.
/// With `slab_bytes` > 0 the stream is confined to a slab-sized window
/// that advances through the region on every phase — the working-set
/// behaviour of blocked/plane-by-plane HPC kernels (FFT slabs, multigrid
/// sweeps): dense reuse inside the slab, slab rotation across phases.
class SequentialPattern final : public Pattern {
 public:
  SequentialPattern(PhysAddr base, std::uint64_t bytes,
                    std::uint64_t stride = 64, std::uint64_t slab_bytes = 0)
      : base_(base),
        bytes_(bytes),
        stride_(stride),
        slab_(slab_bytes == 0 ? bytes : std::min(slab_bytes, bytes)) {}

  PhysAddr next(Pcg32&) override {
    const PhysAddr a = base_ + slab_index_ * slab_ + cursor_;
    cursor_ += stride_;
    if (cursor_ >= slab_) cursor_ %= slab_;
    return a;
  }

  void on_phase(Pcg32&) override {
    slab_index_ = (slab_index_ + 1) % (bytes_ / slab_);
    cursor_ = 0;
  }

  void save_state(snap::Writer& w) const override {
    w.u64(slab_index_);
    w.u64(cursor_);
  }
  void restore_state(snap::Reader& r) override {
    slab_index_ = r.u64();
    cursor_ = r.u64();
  }

 private:
  PhysAddr base_;
  std::uint64_t bytes_;
  std::uint64_t stride_;
  std::uint64_t slab_;
  std::uint64_t slab_index_ = 0;
  std::uint64_t cursor_ = 0;
};

/// Uniform random lines over the region.
class UniformPattern final : public Pattern {
 public:
  UniformPattern(PhysAddr base, std::uint64_t bytes)
      : base_(base), lines_(bytes / 64) {}

  PhysAddr next(Pcg32& rng) override {
    return base_ + rng.bounded64(lines_) * 64;
  }

 private:
  PhysAddr base_;
  std::uint64_t lines_;
};

/// Zipf-popular granules scattered over the region by a (bijective) odd-
/// multiplier permutation, so the hot set is not address-contiguous — the
/// situation dynamic migration exists for. `drift` granules are re-seated
/// on every phase (hot-set churn).
class ZipfPattern final : public Pattern {
 public:
  ZipfPattern(PhysAddr base, std::uint64_t bytes, std::uint64_t granule,
              double s, bool scatter = true, std::uint64_t drift = 0)
      : base_(base),
        granule_(granule),
        granules_(bytes / granule),
        zipf_(granules_ ? granules_ : 1, s),
        scatter_(scatter),
        drift_(drift),
        // Salt the permutation by the region base so co-located regions
        // (e.g. per-core heaps) do not place their rank-k hot granules at
        // identical in-region offsets — real OS page allocation has no
        // such alignment either.
        offset_((base >> 12) % (granules_ ? granules_ : 1)) {}

  PhysAddr next(Pcg32& rng) override {
    const std::uint64_t rank = zipf_(rng);
    const std::uint64_t g = scatter_ ? permute(rank) : rank;
    return base_ + g * granule_ + rng.bounded64(granule_ / 64) * 64;
  }

  void on_phase(Pcg32& rng) override {
    if (drift_ == 0) return;
    // Rotate the permutation: the hottest ranks land on new granules.
    offset_ = (offset_ + drift_) % granules_;
    (void)rng;
  }

  void save_state(snap::Writer& w) const override { w.u64(offset_); }
  void restore_state(snap::Reader& r) override { offset_ = r.u64(); }

 private:
  [[nodiscard]] std::uint64_t permute(std::uint64_t rank) const noexcept {
    // granules_ need not be a power of two; use mod of an odd multiplier,
    // bijective when gcd(mult, granules_) == 1 (enforced in ctor use).
    const unsigned __int128 x =
        static_cast<unsigned __int128>(rank + offset_) * kMult;
    return static_cast<std::uint64_t>(x % granules_);
  }

  static constexpr std::uint64_t kMult = 2654435761ull;  // odd, gcd-safe

  PhysAddr base_;
  std::uint64_t granule_;
  std::uint64_t granules_;
  ZipfSampler zipf_;
  bool scatter_;
  std::uint64_t drift_;
  std::uint64_t offset_;
};

/// Random walk with short straight runs — pointer-chasing codes (mcf, UA).
class ChasePattern final : public Pattern {
 public:
  ChasePattern(PhysAddr base, std::uint64_t bytes, std::uint64_t run_mean = 4)
      : base_(base), lines_(bytes / 64), run_mean_(run_mean) {}

  PhysAddr next(Pcg32& rng) override {
    if (run_left_ == 0) {
      cursor_ = rng.bounded64(lines_);
      run_left_ = rng.geometric(static_cast<double>(run_mean_));
    }
    const PhysAddr a = base_ + cursor_ * 64;
    cursor_ = (cursor_ + 1) % lines_;
    --run_left_;
    return a;
  }

  void save_state(snap::Writer& w) const override {
    w.u64(cursor_);
    w.u64(run_left_);
  }
  void restore_state(snap::Reader& r) override {
    cursor_ = r.u64();
    run_left_ = r.u64();
  }

 private:
  PhysAddr base_;
  std::uint64_t lines_;
  std::uint64_t run_mean_;
  std::uint64_t cursor_ = 0;
  std::uint64_t run_left_ = 0;
};

/// Strided sweep with per-phase stride changes (FFT transposes). Supports
/// the same slab confinement as SequentialPattern: the sweep covers one
/// slab per phase, rotating through the region.
class StridedPattern final : public Pattern {
 public:
  StridedPattern(PhysAddr base, std::uint64_t bytes, std::uint64_t min_stride,
                 std::uint64_t max_stride, std::uint64_t slab_bytes = 0)
      : base_(base),
        bytes_(bytes),
        min_stride_(min_stride),
        max_stride_(max_stride),
        slab_(slab_bytes == 0 ? bytes : std::min(slab_bytes, bytes)),
        stride_(min_stride) {}

  PhysAddr next(Pcg32&) override {
    const PhysAddr a = base_ + slab_index_ * slab_ + cursor_;
    cursor_ += stride_;
    if (cursor_ >= slab_) cursor_ = (cursor_ + 64) % slab_;
    return a;
  }

  void on_phase(Pcg32& rng) override {
    // Pick a new power-of-two stride in [min, max] and move to the next
    // slab (the next FFT dimension / plane).
    std::uint64_t s = min_stride_;
    const unsigned span = log2_floor(max_stride_ / min_stride_) + 1;
    s <<= rng.bounded(span);
    stride_ = s;
    slab_index_ = (slab_index_ + 1) % (bytes_ / slab_);
    cursor_ = 0;
  }

  void save_state(snap::Writer& w) const override {
    w.u64(stride_);
    w.u64(slab_index_);
    w.u64(cursor_);
  }
  void restore_state(snap::Reader& r) override {
    stride_ = r.u64();
    slab_index_ = r.u64();
    cursor_ = r.u64();
  }

 private:
  PhysAddr base_;
  std::uint64_t bytes_;
  std::uint64_t min_stride_;
  std::uint64_t max_stride_;
  std::uint64_t slab_;
  std::uint64_t stride_;
  std::uint64_t slab_index_ = 0;
  std::uint64_t cursor_ = 0;
};

}  // namespace hmm
