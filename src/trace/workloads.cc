#include "trace/workloads.hh"

#include <algorithm>
#include <map>

#include "common/params.hh"
#include "common/units.hh"

namespace hmm {

namespace {

// Section IV geometry: 4GB total memory (Table III). Footprints above 4GB
// in the paper are clipped to the usable space; the top 64MB (including
// the reserved page Ω) is never touched by a workload.
constexpr std::uint64_t kUsableTop = 4 * GiB - 64 * MiB;

std::unique_ptr<SyntheticWorkload> build(
    SyntheticWorkload::Params p, std::vector<MixtureComponent> comps) {
  return std::make_unique<SyntheticWorkload>(std::move(p), std::move(comps));
}

MixtureComponent comp(std::unique_ptr<Pattern> pat, double w, int cpu = -1) {
  MixtureComponent c;
  c.pattern = std::move(pat);
  c.weight = w;
  c.cpu = cpu;
  return c;
}

}  // namespace

// FT.C — 3D FFT spectral kernel. The FFT works plane by plane: each phase
// (one dimension of one array) sweeps a few-hundred-MB slab repeatedly —
// sequential butterfly passes and strided transposes — then moves to the
// next slab. Phase-local slab reuse is what migration can capture; the
// constant slab turnover is why the paper measures its *lowest*
// effectiveness here (69.1%).
std::unique_ptr<SyntheticWorkload> make_ft(std::uint64_t seed) {
  SyntheticWorkload::Params p;
  p.name = "FT";
  p.description = "computational kernel of a 3D FFT-based spectral method";
  p.footprint_bytes = kUsableTop;  // 5147MB clipped into the 4GB space
  p.read_fraction = 0.65;
  p.mean_gap_cycles = 11;
  p.phase_length = 400'000;
  p.seed = seed;
  const std::uint64_t region = 3584ull * MiB;  // array space, slab-divisible
  std::vector<MixtureComponent> c;
  c.push_back(comp(std::make_unique<StridedPattern>(0, region, 64, 16 * KiB,
                                                    256 * MiB),
                   0.18));
  c.push_back(comp(std::make_unique<SequentialPattern>(0, region, 64,
                                                       256 * MiB),
                   0.30));
  // Stable per-run hot set: twiddle factors, index tables, and the
  // currently-transformed array's re-read planes.
  c.push_back(comp(std::make_unique<ZipfPattern>(region, 448 * MiB, 64 * KiB,
                                                 0.9, true, 0),
                   0.52));
  return build(std::move(p), std::move(c));
}

// MG.C — V-cycle multigrid on a 3D Poisson problem. The grid hierarchy
// gives nested working sets: each coarser level is 8x smaller but visited
// every cycle, so a large share of references lands in regions that fit
// on-package once migrated (paper: 84.3%).
std::unique_ptr<SyntheticWorkload> make_mg(std::uint64_t seed) {
  SyntheticWorkload::Params p;
  p.name = "MG";
  p.description = "V-cycle MultiGrid solver for a 3D scalar Poisson equation";
  p.footprint_bytes = 3426 * MiB;
  p.read_fraction = 0.7;
  p.mean_gap_cycles = 11;
  p.phase_length = 120'000;
  p.seed = seed;
  const std::uint64_t l0 = p.footprint_bytes;      // finest grid
  const std::uint64_t l1 = l0 / 8;                 // coarser levels
  const std::uint64_t l2 = l1 / 8;
  const std::uint64_t l3 = l2 / 8;
  std::vector<MixtureComponent> c;
  // The finest grid is swept in slabs; the coarser levels (which together
  // fit on-package) take the majority of the references — a V-cycle visits
  // every coarse level twice per iteration.
  c.push_back(comp(std::make_unique<SequentialPattern>(0, l0, 64, 256 * MiB),
                   0.22));
  c.push_back(comp(std::make_unique<SequentialPattern>(l0 - l1, l1, 64), 0.30));
  c.push_back(comp(std::make_unique<SequentialPattern>(l0 - l1 - l2, l2, 64),
                   0.24));
  c.push_back(comp(std::make_unique<ZipfPattern>(l0 - l1 - l2 - l3, l3,
                                                 16 * KiB, 0.9, true, 0),
                   0.24));
  return build(std::move(p), std::move(c));
}

// pgbench — TPC-B-like PostgreSQL 8.3, scale factor 100. Transaction
// processing: strongly zipf-skewed 8KB buffer-pool pages (accounts table),
// a sequential WAL region, and scattered index walks. The concentrated
// hot set is ideal for migration (paper: 92.2%).
std::unique_ptr<SyntheticWorkload> make_pgbench(std::uint64_t seed) {
  SyntheticWorkload::Params p;
  p.name = "pgbench";
  p.description = "TPC-B like benchmark on PostgreSQL 8.3, scale factor 100";
  p.footprint_bytes = 3 * GiB;
  p.read_fraction = 0.6;
  p.mean_gap_cycles = 13;
  p.phase_length = 400'000;
  p.seed = seed;
  std::vector<MixtureComponent> c;
  c.push_back(comp(std::make_unique<ZipfPattern>(
                       0, p.footprint_bytes - 256 * MiB, 8 * KiB, 1.05,
                       true, 16),
                   0.78));
  c.push_back(comp(std::make_unique<SequentialPattern>(
                       p.footprint_bytes - 256 * MiB, 256 * MiB, 64),
                   0.15));
  c.push_back(comp(std::make_unique<UniformPattern>(0, p.footprint_bytes -
                                                           256 * MiB),
                   0.07));
  return build(std::move(p), std::move(c));
}

// indexer — Nutch 0.9.1 + HDFS on one disk: sequential document scans,
// zipf-skewed posting-list updates, and hash-table chasing (paper: 86.1%).
std::unique_ptr<SyntheticWorkload> make_indexer(std::uint64_t seed) {
  SyntheticWorkload::Params p;
  p.name = "indexer";
  p.description = "Nutch 0.9.1 indexer, Sun JDK 1.6.0, HDFS on one disk";
  p.footprint_bytes = 2560 * MiB;
  p.read_fraction = 0.62;
  p.mean_gap_cycles = 13;
  p.phase_length = 250'000;
  p.seed = seed;
  std::vector<MixtureComponent> c;
  c.push_back(comp(
      std::make_unique<SequentialPattern>(0, p.footprint_bytes, 64), 0.28));
  c.push_back(comp(std::make_unique<ZipfPattern>(512 * MiB, 1536 * MiB,
                                                 16 * KiB, 1.0, true, 32),
                   0.56));
  c.push_back(comp(std::make_unique<ChasePattern>(2048ull * MiB, 512 * MiB, 3),
                   0.16));
  return build(std::move(p), std::move(c));
}

// SPECjbb 2005 — four JVM copies with 16 warehouses each: one moderately
// skewed object heap per copy plus periodic GC-like linear sweeps. The
// four heaps together overwhelm the on-package capacity, which is why the
// paper's effectiveness is mid-pack (72.2%).
std::unique_ptr<SyntheticWorkload> make_specjbb(std::uint64_t seed) {
  SyntheticWorkload::Params p;
  p.name = "SPECjbb";
  p.description = "4 copies of SPECjbb2005, 16 warehouses each, JDK 1.6.0";
  p.footprint_bytes = 3584ull * MiB;
  p.read_fraction = 0.68;
  p.mean_gap_cycles = 12;
  p.phase_length = 300'000;
  p.seed = seed;
  std::vector<MixtureComponent> c;
  const std::uint64_t heap = 896 * MiB;
  for (int j = 0; j < 4; ++j) {
    const PhysAddr base = static_cast<PhysAddr>(j) * heap;
    c.push_back(comp(std::make_unique<ZipfPattern>(base, heap, 4 * KiB, 0.85,
                                                   true, 48),
                     0.20, j));
    c.push_back(comp(std::make_unique<SequentialPattern>(base, heap, 64),
                     0.05, j));
  }
  return build(std::move(p), std::move(c));
}

// SPEC2006 mixture — gcc + mcf + perl + zeusmp, one per core (the paper
// combines their traces). perl/gcc have compact hot sets, mcf is a skewed
// pointer-chaser, zeusmp streams over a bounded grid; the aggregate hot
// set fits on-package almost entirely, matching the paper's near-ideal
// 99.1% effectiveness.
std::unique_ptr<SyntheticWorkload> make_spec2006_mixture(std::uint64_t seed) {
  SyntheticWorkload::Params p;
  p.name = "SPEC2006";
  p.description = "multi-programmed mix: gcc, mcf, perl, zeusmp";
  p.footprint_bytes = 3840ull * MiB;
  p.read_fraction = 0.72;
  p.mean_gap_cycles = 13;
  p.phase_length = 500'000;
  p.seed = seed;
  std::vector<MixtureComponent> c;
  // gcc: 850MB image, strongly skewed.
  c.push_back(comp(std::make_unique<ZipfPattern>(0, 850 * MiB, 16 * KiB, 1.3,
                                                 true, 8),
                   0.22, 0));
  // mcf: 1.6GB arcs/nodes, skewed chase.
  c.push_back(comp(std::make_unique<ZipfPattern>(896 * MiB, 1600 * MiB,
                                                 4 * KiB, 1.25, true, 8),
                   0.38, 1));
  // perl: small hot interpreter state.
  c.push_back(comp(std::make_unique<ZipfPattern>(2560ull * MiB, 64 * MiB,
                                                 4 * KiB, 1.1, true, 0),
                   0.12, 2));
  // zeusmp: repeated sweeps over a 192MB grid slab.
  c.push_back(comp(std::make_unique<SequentialPattern>(2688ull * MiB,
                                                       192 * MiB, 64),
                   0.28, 3));
  return build(std::move(p), std::move(c));
}

const std::vector<WorkloadInfo>& section4_workloads() {
  static const std::vector<WorkloadInfo> kList = [] {
    std::vector<WorkloadInfo> v;
    v.push_back({"FT", "3D FFT spectral kernel (NPB CLASS C)", kUsableTop,
                 [](std::uint64_t s) { return make_ft(s); }});
    v.push_back({"MG", "V-cycle MultiGrid (NPB CLASS C)", 3426 * MiB,
                 [](std::uint64_t s) { return make_mg(s); }});
    v.push_back({"pgbench", "TPC-B like PostgreSQL 8.3", 3 * GiB,
                 [](std::uint64_t s) { return make_pgbench(s); }});
    v.push_back({"indexer", "Nutch 0.9.1 indexer", 2560 * MiB,
                 [](std::uint64_t s) { return make_indexer(s); }});
    v.push_back({"SPECjbb", "4x SPECjbb2005", 3584ull * MiB,
                 [](std::uint64_t s) { return make_specjbb(s); }});
    v.push_back({"SPEC2006", "gcc+mcf+perl+zeusmp mixture", 3840ull * MiB,
                 [](std::uint64_t s) { return make_spec2006_mixture(s); }});
    return v;
  }();
  return kList;
}

// ---------------------------------------------------------------------------
// Section II: NPB 3.3 CLASS-C models at CPU reference level.
//
// Table I footprints. The scraped paper text dropped trailing zeros from
// some entries; values marked (r) are reconstructed against the published
// NPB CLASS-C sizes so that exactly seven workloads stay below 1GB, as
// Section II states.
namespace {

struct NpbSpec {
  std::uint64_t footprint;
  double hot_weight;     // cache-resident zipf share
  std::uint64_t hot_mb;  // hot region size
  double mid_weight;     // L3-capacity-scale zipf share
  std::uint64_t mid_mb;
  double stream_weight;  // whole-footprint streaming share
  double chase_weight;   // irregular share
};

const std::map<std::string, NpbSpec>& npb_specs() {
  static const std::map<std::string, NpbSpec> kSpecs = {
      // name      footprint     hot          mid          stream chase
      {"BT", {760 * MiB /*r*/, 0.55, 4, 0.18, 96, 0.25, 0.02}},
      {"CG", {920 * MiB /*r*/, 0.58, 4, 0.20, 128, 0.07, 0.15}},
      {"DC", {5876ull * MiB, 0.45, 8, 0.28, 256, 0.17, 0.10}},
      {"EP", {16 * MiB, 0.90, 8, 0.10, 16, 0.00, 0.00}},
      {"FT", {5147ull * MiB, 0.42, 8, 0.12, 256, 0.44, 0.02}},
      {"IS", {164 * MiB, 0.50, 4, 0.20, 64, 0.15, 0.15}},
      {"LU", {615 * MiB, 0.60, 4, 0.15, 64, 0.23, 0.02}},
      {"MG", {3426ull * MiB, 0.48, 8, 0.22, 428, 0.28, 0.02}},
      {"SP", {758 * MiB, 0.55, 4, 0.18, 96, 0.25, 0.02}},
      {"UA", {510 * MiB /*r*/, 0.50, 4, 0.20, 64, 0.15, 0.15}},
  };
  return kSpecs;
}

}  // namespace

std::unique_ptr<SyntheticWorkload> make_npb(const std::string& name,
                                            std::uint64_t seed) {
  const auto it = npb_specs().find(name);
  HMM_CHECK(it != npb_specs().end(),
            "unknown NPB workload name: " + name);
  const NpbSpec& s = it->second;

  // CLASS C is unavailable for DC in NPB 3.3; the paper substitutes CLASS B.
  const std::string cls = name == "DC" ? ".B" : ".C";
  SyntheticWorkload::Params p;
  p.name = name + cls;
  p.description = "NPB 3.3 CLASS" + cls + " model (" + name + ")";
  p.footprint_bytes = s.footprint;
  p.read_fraction = 0.7;
  p.mean_gap_cycles = 4;  // CPU reference level: dense
  p.phase_length = 200'000;
  p.seed = seed;

  std::vector<MixtureComponent> c;
  // L1/L2-resident traffic: real CPU reference streams hit the private
  // caches >90% of the time; without this share every memory-system
  // change would swing IPC by unrealistic amounts.
  const double ultra = 0.94;
  c.push_back(comp(std::make_unique<ZipfPattern>(0, 512 * KiB, 4 * KiB, 1.1,
                                                 false, 0),
                   ultra));
  if (s.hot_weight > 0)
    c.push_back(comp(std::make_unique<ZipfPattern>(0, s.hot_mb * MiB, 4 * KiB,
                                                   1.0, true, 0),
                     s.hot_weight * (1.0 - ultra)));
  if (s.mid_weight > 0)
    c.push_back(comp(std::make_unique<ZipfPattern>(
                         0, std::min(s.mid_mb * MiB, s.footprint), 4 * KiB,
                         1.1, true, 4),
                     s.mid_weight * (1.0 - ultra)));
  if (s.stream_weight > 0)
    c.push_back(comp(std::make_unique<SequentialPattern>(0, s.footprint, 64),
                     s.stream_weight * (1.0 - ultra)));
  if (s.chase_weight > 0)
    c.push_back(comp(std::make_unique<ChasePattern>(0, s.footprint, 4),
                     s.chase_weight * (1.0 - ultra)));
  return build(std::move(p), std::move(c));
}

const std::vector<WorkloadInfo>& npb_workloads() {
  static const std::vector<WorkloadInfo> kList = [] {
    std::vector<WorkloadInfo> v;
    for (const auto& [name, spec] : npb_specs()) {
      const std::string n = name;
      const std::string cls = n == "DC" ? ".B" : ".C";
      v.push_back({n + cls, "NPB 3.3 CLASS" + cls + " model", spec.footprint,
                   [n](std::uint64_t s) { return make_npb(n, s); }});
    }
    return v;
  }();
  return kList;
}

}  // namespace hmm
