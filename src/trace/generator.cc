#include "trace/generator.hh"

namespace hmm {

SyntheticWorkload::SyntheticWorkload(Params p,
                                     std::vector<MixtureComponent> components)
    : p_(std::move(p)), comps_(std::move(components)), rng_(p_.seed) {
  HMM_CHECK(!comps_.empty(),
            "a synthetic workload needs at least one mixture component");
  double total = 0.0;
  for (const auto& c : comps_) {
    total += c.weight;
    cum_weight_.push_back(total);
  }
  for (auto& w : cum_weight_) w /= total;
}

TraceRecord SyntheticWorkload::next() {
  // Phase boundaries drive hot-set drift / stride changes.
  if (p_.phase_length != 0 && emitted_ != 0 &&
      emitted_ % p_.phase_length == 0) {
    for (auto& c : comps_) c.pattern->on_phase(rng_);
  }

  const double u = rng_.uniform();
  std::size_t i = 0;
  while (i + 1 < cum_weight_.size() && u > cum_weight_[i]) ++i;
  MixtureComponent& c = comps_[i];

  TraceRecord r;
  r.addr = c.pattern->next(rng_);
  r.timestamp = now_;
  r.type = rng_.chance(p_.read_fraction) ? AccessType::Read
                                         : AccessType::Write;
  if (c.cpu >= 0) {
    r.cpu = static_cast<CpuId>(c.cpu);
  } else {
    r.cpu = static_cast<CpuId>(rr_cpu_);
    rr_cpu_ = (rr_cpu_ + 1) % p_.cpus;
  }

  now_ += rng_.geometric(p_.mean_gap_cycles);
  ++emitted_;
  return r;
}

void SyntheticWorkload::save(snap::Writer& w) const {
  w.begin_section(snap::tag('W', 'K', 'L', 'D'));
  const Pcg32::Raw raw = rng_.raw();
  w.u64(raw.state);
  w.u64(raw.inc);
  w.u64(now_);
  w.u64(emitted_);
  w.u32(rr_cpu_);
  w.u64(comps_.size());
  for (const MixtureComponent& c : comps_) c.pattern->save_state(w);
  w.end_section();
}

void SyntheticWorkload::restore(snap::Reader& r) {
  r.begin_section(snap::tag('W', 'K', 'L', 'D'));
  Pcg32::Raw raw;
  raw.state = r.u64();
  raw.inc = r.u64();
  rng_.set_raw(raw);
  now_ = r.u64();
  emitted_ = r.u64();
  rr_cpu_ = r.u32();
  if (r.u64() != comps_.size())
    snap::snapshot_error(
        "workload mixture shape mismatch: checkpoint was taken on a "
        "different workload");
  for (MixtureComponent& c : comps_) c.pattern->restore_state(r);
  r.end_section();
}

}  // namespace hmm
