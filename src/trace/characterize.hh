// Streaming trace characterization: footprint, hot-set concentration at a
// chosen page granularity, read/CPU mix, and arrival pacing.
//
// This is the measurement tool behind the workload models in
// workloads.cc: the paper's effectiveness results are determined by how
// much of a workload's traffic concentrates into how few macro pages, and
// this class computes exactly that curve for any reference stream.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "trace/record.hh"

namespace hmm {

struct TraceProfile {
  std::uint64_t accesses = 0;
  std::uint64_t footprint_bytes = 0;   ///< distinct pages x page size
  std::uint64_t distinct_pages = 0;
  double read_fraction = 0;
  double mean_gap_cycles = 0;
  std::vector<std::uint64_t> per_cpu;  ///< accesses by CPU id

  /// traffic_share[i]: fraction of accesses covered by the hottest
  /// `coverage_points[i]` bytes worth of pages.
  std::vector<std::uint64_t> coverage_points;
  std::vector<double> traffic_share;
};

class TraceCharacterizer {
 public:
  /// `page_bytes`: granularity of the hot-set analysis;
  /// `coverage_points`: byte budgets for the concentration curve (e.g.
  /// {128MB, 256MB, 512MB} to ask "how much traffic fits on-package?").
  TraceCharacterizer(std::uint64_t page_bytes,
                     std::vector<std::uint64_t> coverage_points);

  void add(const TraceRecord& r);

  /// Finalizes the concentration curve and returns the profile.
  [[nodiscard]] TraceProfile profile() const;

 private:
  std::uint64_t page_bytes_;
  std::vector<std::uint64_t> coverage_points_;
  std::unordered_map<std::uint64_t, std::uint64_t> page_counts_;
  std::uint64_t accesses_ = 0;
  std::uint64_t reads_ = 0;
  std::vector<std::uint64_t> per_cpu_;
  Cycle first_ts_ = 0;
  Cycle last_ts_ = 0;
  bool any_ = false;
};

}  // namespace hmm
