// Workload models for every benchmark the paper evaluates.
//
// Two families:
//  * Section II (Table I): the ten NAS Parallel Benchmark 3.3 CLASS-C
//    workloads, modelled at CPU reference level and replayed through the
//    cache hierarchy (Fig 4, Fig 5).
//  * Section IV (Table III): the six large-footprint workloads whose main
//    memory reference streams drive the migration study (Figs 11-16,
//    Table IV).
//
// Substitution rationale (DESIGN.md §2): the originals are COTSon traces
// we cannot obtain; each model reproduces the published footprint and the
// qualitative reference structure (hot-set skew, streaming share, phase
// behaviour, per-CPU attribution) that the evaluated mechanisms actually
// see. Per-workload composition notes live next to each factory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/generator.hh"

namespace hmm {

struct WorkloadInfo {
  std::string name;
  std::string description;
  std::uint64_t footprint_bytes;
  std::function<std::unique_ptr<SyntheticWorkload>(std::uint64_t seed)> make;
};

// --- Section IV workloads (Table III) ---------------------------------------
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make_ft(std::uint64_t seed);
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make_mg(std::uint64_t seed);
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make_pgbench(
    std::uint64_t seed);
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make_indexer(
    std::uint64_t seed);
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make_specjbb(
    std::uint64_t seed);
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make_spec2006_mixture(
    std::uint64_t seed);

/// The six Section IV workloads, in the paper's order.
[[nodiscard]] const std::vector<WorkloadInfo>& section4_workloads();

// --- Section II NPB CLASS-C models (Table I) --------------------------------
/// CPU-reference-level model for one NPB workload ("BT", "CG", "DC", "EP",
/// "FT", "IS", "LU", "MG", "SP", "UA").
[[nodiscard]] std::unique_ptr<SyntheticWorkload> make_npb(
    const std::string& name, std::uint64_t seed);

/// All ten NPB workloads with their Table I footprints.
[[nodiscard]] const std::vector<WorkloadInfo>& npb_workloads();

}  // namespace hmm
