#include "trace/characterize.hh"

#include <algorithm>
#include "fault/sim_error.hh"

#include "common/units.hh"

namespace hmm {

TraceCharacterizer::TraceCharacterizer(
    std::uint64_t page_bytes, std::vector<std::uint64_t> coverage_points)
    : page_bytes_(page_bytes), coverage_points_(std::move(coverage_points)) {
  HMM_CHECK(is_pow2(page_bytes_),
            "trace characterizer page size must be a power of two");
  std::sort(coverage_points_.begin(), coverage_points_.end());
}

void TraceCharacterizer::add(const TraceRecord& r) {
  ++accesses_;
  reads_ += r.type == AccessType::Read;
  ++page_counts_[r.addr / page_bytes_];
  if (r.cpu >= per_cpu_.size()) per_cpu_.resize(r.cpu + 1, 0);
  ++per_cpu_[r.cpu];
  if (!any_) {
    first_ts_ = r.timestamp;
    any_ = true;
  }
  last_ts_ = std::max(last_ts_, r.timestamp);
}

TraceProfile TraceCharacterizer::profile() const {
  TraceProfile p;
  p.accesses = accesses_;
  p.distinct_pages = page_counts_.size();
  p.footprint_bytes = p.distinct_pages * page_bytes_;
  p.read_fraction = accesses_ == 0
                        ? 0.0
                        : static_cast<double>(reads_) /
                              static_cast<double>(accesses_);
  p.mean_gap_cycles =
      accesses_ < 2 ? 0.0
                    : static_cast<double>(last_ts_ - first_ts_) /
                          static_cast<double>(accesses_ - 1);
  p.per_cpu = per_cpu_;
  p.coverage_points = coverage_points_;

  // Concentration curve: sort page counts descending, accumulate traffic
  // until each byte budget is spent.
  std::vector<std::uint64_t> counts;
  counts.reserve(page_counts_.size());
  // analyze: allow(determinism): collected then sorted below
  for (const auto& [page, c] : page_counts_) counts.push_back(c);
  std::sort(counts.begin(), counts.end(), std::greater<>());

  p.traffic_share.reserve(coverage_points_.size());
  for (const std::uint64_t budget : coverage_points_) {
    const std::uint64_t pages = budget / page_bytes_;
    std::uint64_t covered = 0;
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(pages,
                                                          counts.size());
         ++i)
      covered += counts[i];
    p.traffic_share.push_back(
        accesses_ == 0 ? 0.0
                       : static_cast<double>(covered) /
                             static_cast<double>(accesses_));
  }
  return p;
}

}  // namespace hmm
