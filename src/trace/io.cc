#include "trace/io.hh"

#include <array>
#include <cstring>

#include "fault/sim_error.hh"

namespace hmm {

namespace {

/// Trace-file failures are environment errors, not simulation errors,
/// but they still flow through SimError so the runner can classify the
/// cell instead of dying on an alien exception type.
[[noreturn]] void io_fail(const std::string& what) {
  throw fault::SimError(fault::SimErrorKind::Io, what);
}

constexpr char kMagic[8] = {'H', 'M', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kNameBytes = 64;
constexpr std::size_t kRecordBytes = 20;

void pack(const TraceRecord& r, char* buf) {
  std::memcpy(buf, &r.addr, 8);
  std::memcpy(buf + 8, &r.timestamp, 8);
  std::memcpy(buf + 16, &r.cpu, 2);
  buf[18] = r.type == AccessType::Write ? 1 : 0;
  buf[19] = 0;
}

TraceRecord unpack(const char* buf) {
  TraceRecord r;
  std::memcpy(&r.addr, buf, 8);
  std::memcpy(&r.timestamp, buf + 8, 8);
  std::memcpy(&r.cpu, buf + 16, 2);
  r.type = buf[18] != 0 ? AccessType::Write : AccessType::Read;
  return r;
}
}  // namespace

TraceWriter::TraceWriter(const std::string& path,
                         const std::string& workload_name)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) io_fail("TraceWriter: cannot create " + path);
  out_.write(kMagic, sizeof kMagic);
  out_.write(reinterpret_cast<const char*>(&kVersion), 4);
  const std::uint64_t zero = 0;  // patched in close()
  out_.write(reinterpret_cast<const char*>(&zero), 8);
  std::array<char, kNameBytes> name{};
  std::strncpy(name.data(), workload_name.c_str(), kNameBytes - 1);
  out_.write(name.data(), kNameBytes);
}

void TraceWriter::write(const TraceRecord& r) {
  char buf[kRecordBytes];
  pack(r, buf);
  out_.write(buf, kRecordBytes);
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(12);
  out_.write(reinterpret_cast<const char*>(&count_), 8);
  out_.close();
  if (!out_) io_fail("TraceWriter: write failure on close");
}

TraceWriter::~TraceWriter() {
  try {
    close();
    // analyze: allow(errors): destructor must not throw
  } catch (...) {
    // Destructor must not throw; close() explicitly to observe errors.
  }
}

TraceReader::TraceReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) io_fail("TraceReader: cannot open " + path);
  char magic[8];
  std::uint32_t version = 0;
  in_.read(magic, 8);
  in_.read(reinterpret_cast<char*>(&version), 4);
  in_.read(reinterpret_cast<char*>(&count_), 8);
  std::array<char, kNameBytes> name{};
  in_.read(name.data(), kNameBytes);
  if (!in_ || std::memcmp(magic, kMagic, 8) != 0 || version != kVersion)
    io_fail("TraceReader: bad header in " + path);
  name_.assign(name.data());
}

std::optional<TraceRecord> TraceReader::next() {
  if (read_ >= count_) return std::nullopt;
  char buf[kRecordBytes];
  in_.read(buf, kRecordBytes);
  if (!in_) return std::nullopt;
  ++read_;
  return unpack(buf);
}

}  // namespace hmm
