// Memory-trace record format (Section IV: "the trace file records the
// physical address, CPU ID, time stamp, and read/write status of all main
// memory accesses").
#pragma once

#include <cstdint>

#include "common/types.hh"

namespace hmm {

struct TraceRecord {
  PhysAddr addr = 0;
  Cycle timestamp = 0;
  CpuId cpu = 0;
  AccessType type = AccessType::Read;
};

}  // namespace hmm
