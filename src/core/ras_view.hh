// Core-side view of the RAS (reliability/availability/serviceability)
// layer's frame bookkeeping.
//
// The RAS engine (src/ras/) owns the media-error state: which machine
// frames are retired (evacuated and blacklisted), which are quarantined
// (flagged as failing but not yet evacuated), and which are reserved
// spares (held data-free at boot, like a DRAM vendor's spare rows, so
// retirement has somewhere to move data to). Core components — the
// translation table's validate(), the migration engine's candidate
// screening, the invariant auditor — only ever need these three
// predicates, so they depend on this tiny interface instead of the RAS
// library, keeping the library layering acyclic (ras depends on core,
// never the reverse).
#pragma once

#include <vector>

#include "common/types.hh"

namespace hmm {

class RasFrameView {
 public:
  virtual ~RasFrameView() = default;

  /// Frame was evacuated and blacklisted: it holds no live data and no
  /// placement, route, or copy plan may ever reference it again.
  [[nodiscard]] virtual bool retired(PageId frame) const noexcept = 0;

  /// Frame is retired, pending retirement, or pinned-failing: nothing
  /// new may be placed in it (existing data may still be read while the
  /// evacuation is in flight).
  [[nodiscard]] virtual bool quarantined(PageId frame) const noexcept = 0;

  /// Frame belongs to the RAS spare pool: reserved data-free at boot,
  /// its identity page invisible to the OS (like Ω). Stays true after the
  /// spare is pressed into service replacing a retired frame — the
  /// identity page never becomes resident; only relocated data lives
  /// there, recorded in the placement map.
  [[nodiscard]] virtual bool reserved_spare(PageId frame) const noexcept = 0;
};

/// The retirement-workflow contract between the RAS engine and the
/// controller that drives evacuations. The RAS layer is passive policy +
/// state: it flags failing frames as pending; the scheme/controller owns
/// the machinery that can actually move data, performs the evacuation,
/// and reports back through complete_retirement() / pin_frame().
class RasService : public RasFrameView {
 public:
  /// Media-error + patrol-scrub hook on the demand path: `frame` is the
  /// machine frame the access was routed to. Returns added latency (ECC
  /// correction, uncorrectable recovery, scrub collision); may flag the
  /// frame as pending retirement, and may throw
  /// SimError(CapacityExhausted) when health drops below the floor.
  virtual Cycle on_demand_access(PageId frame, Cycle now) = 0;

  [[nodiscard]] virtual bool has_pending() const noexcept = 0;
  /// Smallest-id pending frame (deterministic order); kInvalidPage when
  /// none.
  [[nodiscard]] virtual PageId next_pending() const noexcept = 0;
  [[nodiscard]] virtual std::vector<PageId> pending_frames() const = 0;
  /// The frame has been evacuated (or proven data-free): blacklist it.
  virtual void complete_retirement(PageId frame, Cycle now) = 0;
  /// The frame's occupant cannot be expressed anywhere else by this
  /// scheme: keep serving it in place, but never place anything new there.
  /// May throw SimError(CapacityExhausted).
  virtual void pin_frame(PageId frame) = 0;
  /// Next available spare frame (kInvalidPage when the pool is dry).
  [[nodiscard]] virtual PageId peek_spare() const noexcept = 0;
  /// Remove `frame` from the pool once it has been pressed into service.
  virtual void consume_spare(PageId frame) = 0;
};

}  // namespace hmm
