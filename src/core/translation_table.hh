// The physical->machine translation table of the heterogeneity-aware
// memory controller (Section III-A, Figs 6/7/9).
//
// One row per on-package slot. The left column is the row index itself;
// the right column records which macro page currently occupies that slot.
// The table is bidirectional: for page ids < N it is indexed directly
// (RAM function); for ids >= N the right column is searched (CAM function,
// modelled here with a hash map).
//
// Encoding invariants of the N-1 design (proved by the swap choreography
// and checked by validate()):
//   * a page p < N that is on-package can only ever sit in slot p, so
//     row p with occupant == p means "p is on-package" (OF);
//   * swaps are pairwise, so row p with occupant == q (q >= N) means both
//     "q occupies slot p" (MF) and "p's data lives at q's home" (MS);
//   * exactly one row is marked empty; its left page is the Ghost page,
//     whose data lives at the reserved off-package page Ω;
//   * a set P (pending) bit overrides the RAM function: the row's left
//     page is translated to Ω while its relocation is in flight;
//   * a set F (filling) bit plus the sub-block bitmap route accesses to the
//     incoming page between its old home and the partially-filled slot
//     (live migration, Fig 9).
//
// Mode FunctionalN models the paper's basic N design (no empty slot, no
// P/F bits): translation is served from the explicit placement map, since
// the pairwise encoding cannot express the transient states N would need —
// the paper's N design simply halts execution during a swap instead.
//
// Mode Shadow is the transactional "nomad" variant (see DESIGN.md §10):
// translation is served from the placement map exactly like FunctionalN,
// but one machine page — the hole — is kept free of live data. A
// migration is a transaction: begin_shadow() records the page and its
// committed home, the engine streams the page into the hole while the old
// home keeps serving reads AND writes, demand writes dirty the affected
// sub-blocks (shadow_mark_dirty), and commit_shadow() atomically re-points
// the page at the hole (the old home becomes the new hole). abort_shadow()
// discards the shadow copy; the table is bit-identical to its pre-begin
// state because begin never touched the routing.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/snapshot.hh"
#include "common/types.hh"
#include "core/geometry.hh"
#include "core/ras_view.hh"

namespace hmm {

enum class TableMode : std::uint8_t { FunctionalN, HardwareNMinus1, Shadow };

/// Macro-page categories of Section III-A.
enum class PageCategory : std::uint8_t {
  OriginalFast,   ///< id < N, data in its own slot
  OriginalSlow,   ///< id >= N, data at its off-package home
  MigratedFast,   ///< id >= N, data in some on-package slot
  MigratedSlow,   ///< id < N, data at another page's off-package home
  Ghost,          ///< id < N, data at the reserved page Ω
};

struct Route {
  Region region = Region::OffPackage;
  MachAddr mach = 0;
  bool served_by_fill_slot = false;  ///< live-migration bitmap hit
};

class TranslationTable {
 public:
  TranslationTable(const Geometry& g, TableMode mode);

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] TableMode mode() const noexcept { return mode_; }

  /// Physical -> machine translation (the controller's front stage).
  [[nodiscard]] Route translate(PhysAddr addr) const noexcept;

  [[nodiscard]] PageCategory category(PageId p) const noexcept;

  /// Machine base address of page p's current data home.
  [[nodiscard]] MachAddr location_of(PageId p) const noexcept;

  /// Page occupying slot s (kInvalidPage when the slot is empty).
  [[nodiscard]] PageId occupant(SlotId s) const noexcept;

  /// The empty slot of the N-1 design (nullopt in FunctionalN mode or in
  /// the transient window while the hot page fills the former empty slot).
  [[nodiscard]] std::optional<SlotId> empty_slot() const noexcept;

  [[nodiscard]] bool pending(SlotId s) const noexcept;
  [[nodiscard]] bool fill_active() const noexcept { return fill_active_; }
  [[nodiscard]] PageId fill_page() const noexcept { return fill_page_; }
  /// Number of sub-blocks already landed in the filling slot (0 when no
  /// fill is active). The auditor checks this never decreases mid-fill.
  [[nodiscard]] std::uint32_t fill_ready_count() const noexcept;

  // --- mutations driven by the migration engine ----------------------------
  /// Write the right column of `row` (activates the CAM entry for page).
  void set_row(SlotId row, PageId page);
  /// Mark `row` empty (its left page becomes the Ghost page).
  void set_row_empty(SlotId row);
  void set_pending(SlotId row, bool value);

  /// Live migration: page `page` starts filling `slot`; until end_fill(),
  /// unfilled sub-blocks are routed to `old_base`.
  void begin_fill(SlotId slot, PageId page, MachAddr old_base);
  void mark_sub_block(std::uint32_t index);
  [[nodiscard]] bool sub_block_ready(std::uint32_t index) const noexcept;
  void end_fill();

  /// Record that page p's data now physically lives at machine page `m`
  /// (the model's placement truth; in HardwareNMinus1 mode it is used only
  /// for validation, in FunctionalN mode it backs translation).
  void note_data_at(PageId p, PageId machine_page);

  /// FunctionalN bookkeeping: page `page` now occupies slot `s`.
  void set_occupant(SlotId s, PageId page);

  // --- Shadow mode (transactional migration) -------------------------------
  /// The machine page holding no live data (kInvalidPage outside Shadow).
  [[nodiscard]] PageId hole() const noexcept { return hole_; }
  [[nodiscard]] bool shadow_active() const noexcept { return shadow_active_; }
  /// The page under transaction (kInvalidPage when inactive).
  [[nodiscard]] PageId shadow_page() const noexcept { return shadow_page_; }
  /// Committed home (machine page) of the page under transaction.
  [[nodiscard]] PageId shadow_src() const noexcept { return shadow_src_; }
  /// The shadow copy's destination (always the hole).
  [[nodiscard]] PageId shadow_dst() const noexcept { return shadow_dst_; }
  /// OS page whose data currently lives at `machine_page` (FunctionalN /
  /// Shadow placement-map modes only; kInvalidPage for a free machine
  /// page, e.g. the hole).
  [[nodiscard]] PageId page_at(PageId machine_page) const noexcept;

  /// Begin a transaction: `page` will be copied into the hole. Routing is
  /// NOT changed — the committed home keeps serving until commit_shadow().
  void begin_shadow(PageId page, PageId dst_machine);
  /// Sub-block `index` of the shadow copy has landed in the hole.
  void shadow_mark_filled(std::uint32_t index);
  /// A demand write hit sub-block `index` of the page under transaction —
  /// whatever shadow copy of it exists is now stale.
  void shadow_mark_dirty(std::uint32_t index);
  /// The engine re-read sub-block `index` from the committed home.
  void shadow_clear_dirty(std::uint32_t index);
  [[nodiscard]] bool shadow_filled(std::uint32_t index) const noexcept;
  [[nodiscard]] bool shadow_dirty(std::uint32_t index) const noexcept;
  [[nodiscard]] std::uint32_t shadow_dirty_count() const noexcept;
  /// Atomically re-point the page at the hole; the old home becomes the
  /// new hole. The transactional obligation — every sub-block filled and
  /// clean — is the engine's, and is exactly what the choreography model
  /// checker proves (its CommitDespiteDirty sabotage violates it).
  void commit_shadow();
  /// Discard the transaction; the table returns to its pre-begin state.
  void abort_shadow();

  // --- RAS (page retirement) integration -----------------------------------
  /// Attach the RAS layer's frame view. Must happen before restore() when
  /// a checkpoint was taken with RAS enabled (the RAS fields of the table
  /// snapshot are gated on the view being attached, so pre-RAS byte
  /// layouts — and golden CRCs — are unchanged).
  void set_ras_view(const RasFrameView* view) noexcept { ras_view_ = view; }
  [[nodiscard]] const RasFrameView* ras_view() const noexcept {
    return ras_view_;
  }

  /// HardwareNMinus1 evacuation leaves one row permanently "parked": its
  /// P bit stays set forever, encoding that the row's left page (the
  /// ghost) keeps its data at Ω. validate() exempts parked rows from the
  /// one-transient-pending rule, and the engine never swaps them.
  void set_ras_parked(SlotId row);
  [[nodiscard]] bool ras_parked(SlotId row) const noexcept;

  /// Shadow mode: swap a retired hole for a spare frame so the hole chain
  /// continues. After a retirement evacuation commits, the failing old
  /// home becomes the hole; this re-points the hole at a data-free spare
  /// before the next transaction can stream into the failing frame.
  void relocate_hole(PageId spare);

  /// Cross-checks the hardware encoding against the placement map and the
  /// structural invariants; returns an error description or empty string.
  [[nodiscard]] std::string validate() const;

  // --- fault-injection hooks (FaultInjector / tests only) ------------------
  /// Flip the P bit of `row` without going through the swap protocol —
  /// models a transient in the translation hardware. The next audit must
  /// detect the resulting encoding/placement disagreement.
  void flip_pending_bit(SlotId row);
  /// Flip one bit of `row`'s occupant field (CAM corruption).
  void flip_occupant_bit(SlotId row, unsigned bit);

  /// Hardware cost of this table in bits (entry = id bits + P + F).
  [[nodiscard]] std::uint64_t table_bits() const noexcept;

  // --- checkpoint/restore --------------------------------------------------
  // The CAM map (slot_of_) is serialized explicitly rather than rebuilt
  // from rows_: mid-choreography a page can transiently appear in two rows
  // and only the CAM records which one wins. Maps are written sorted by
  // key so the encoding is independent of unordered_map iteration order.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  struct RowState {
    PageId occupant = kInvalidPage;  ///< kInvalidPage == marked empty
    bool pending = false;
  };

  [[nodiscard]] PageId shadow_location(PageId p) const noexcept;

  Geometry geom_;  // no-snapshot(construction-time config)
  TableMode mode_;
  PageId slots_;  ///< N
  std::vector<RowState> rows_;
  std::unordered_map<PageId, SlotId> slot_of_;  ///< CAM: page>=N -> slot
  std::unordered_map<PageId, PageId> location_;  ///< placement exceptions

  std::optional<SlotId> empty_cache_;
  bool fill_active_ = false;
  SlotId fill_slot_ = 0;
  PageId fill_page_ = kInvalidPage;
  MachAddr fill_old_base_ = 0;
  std::vector<bool> fill_bitmap_;

  // no-snapshot(non-owned view wired by the controller each run)
  const RasFrameView* ras_view_ = nullptr;
  // Rows parked by RAS evacuation (serialized only when a RAS view is
  // attached, so pre-RAS byte layouts never change).
  std::vector<SlotId> ras_parked_;

  // Shadow-mode transactional state (serialized only when mode_ ==
  // Shadow, so the byte layouts of the other modes never change).
  PageId hole_ = kInvalidPage;
  bool shadow_active_ = false;
  PageId shadow_page_ = kInvalidPage;
  PageId shadow_src_ = kInvalidPage;
  PageId shadow_dst_ = kInvalidPage;
  std::vector<bool> shadow_filled_;
  std::vector<bool> shadow_dirty_;
};

}  // namespace hmm
