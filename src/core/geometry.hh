// Heterogeneous memory-space geometry: how the physical address space is
// split into macro pages and how machine addresses map onto the two regions.
//
// Machine layout (Section II-A): machine addresses [0, on_package) are the
// on-package DRAM; [on_package, total) are the off-package DIMMs. The
// "home" machine address of macro page p is p * page_bytes (identity), so
// the initial translation table maps the lowest addresses on-package.
// The highest macro page is the reserved page Ω used as the off-package
// ghost slot of the N-1 designs (Section III-A: "reserved by the hardware
// driver after booting the OS"), so the OS never allocates it.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace hmm {

struct Geometry {
  std::uint64_t total_bytes = 4 * GiB;
  std::uint64_t on_package_bytes = 512 * MiB;
  std::uint64_t page_bytes = 4 * MiB;      ///< macro-page (migration) size
  std::uint64_t sub_block_bytes = 4 * KiB; ///< live-migration fill unit

  [[nodiscard]] unsigned page_shift() const noexcept {
    return log2_exact(page_bytes);
  }
  [[nodiscard]] PageId total_pages() const noexcept {
    return total_bytes / page_bytes;
  }
  /// Number of on-package slots, N (= translation-table rows).
  [[nodiscard]] SlotId slots() const noexcept {
    return static_cast<SlotId>(on_package_bytes / page_bytes);
  }
  /// The reserved ghost page Ω (an off-package machine location).
  [[nodiscard]] PageId omega() const noexcept { return total_pages() - 1; }

  [[nodiscard]] PageId page_of(PhysAddr a) const noexcept {
    return a >> page_shift();
  }
  [[nodiscard]] std::uint64_t offset_of(PhysAddr a) const noexcept {
    return a & (page_bytes - 1);
  }
  [[nodiscard]] MachAddr machine_base(PageId machine_page) const noexcept {
    return machine_page << page_shift();
  }
  /// Sub-block index of an in-page offset.
  [[nodiscard]] std::uint32_t sub_block_of(
      std::uint64_t offset) const noexcept {
    return static_cast<std::uint32_t>(offset / sub_block_bytes);
  }
  [[nodiscard]] std::uint32_t sub_blocks_per_page() const noexcept {
    return static_cast<std::uint32_t>(page_bytes / sub_block_bytes);
  }
  [[nodiscard]] Region region_of(MachAddr a) const noexcept {
    return a < on_package_bytes ? Region::OnPackage : Region::OffPackage;
  }

  [[nodiscard]] bool valid() const noexcept {
    return is_pow2(total_bytes) && is_pow2(on_package_bytes) &&
           is_pow2(page_bytes) && is_pow2(sub_block_bytes) &&
           sub_block_bytes <= page_bytes && page_bytes <= on_package_bytes &&
           on_package_bytes < total_bytes;
  }
};

}  // namespace hmm
