#include "core/translation_table.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "fault/sim_error.hh"

namespace hmm {

TranslationTable::TranslationTable(const Geometry& g, TableMode mode)
    : geom_(g), mode_(mode), slots_(g.slots()), rows_(g.slots()) {
  HMM_CHECK(g.valid(), "translation table built on an invalid geometry");
  for (SlotId s = 0; s < slots_; ++s) rows_[s].occupant = s;
  if (mode_ == TableMode::HardwareNMinus1) {
    // The last slot starts empty; its left page is the initial Ghost page,
    // parked at Ω by the boot-time driver (Section III-A).
    const SlotId last = static_cast<SlotId>(slots_ - 1);
    rows_[last].occupant = kInvalidPage;
    empty_cache_ = last;
    location_[last] = geom_.omega();
  }
  if (mode_ == TableMode::Shadow) {
    // The reserved page Ω is the boot-time hole: it holds no OS page's
    // data, so the first transaction can stream into it immediately.
    hole_ = geom_.omega();
  }
}

PageId TranslationTable::shadow_location(PageId p) const noexcept {
  const auto it = location_.find(p);
  return it == location_.end() ? p : it->second;
}

MachAddr TranslationTable::location_of(PageId p) const noexcept {
  return geom_.machine_base(shadow_location(p));
}

PageId TranslationTable::occupant(SlotId s) const noexcept {
  return rows_[s].occupant;
}

std::optional<SlotId> TranslationTable::empty_slot() const noexcept {
  return empty_cache_;
}

bool TranslationTable::pending(SlotId s) const noexcept {
  return rows_[s].pending;
}

Route TranslationTable::translate(PhysAddr addr) const noexcept {
  const PageId p = geom_.page_of(addr);
  const std::uint64_t off = geom_.offset_of(addr);

  // Live migration: the filling page is routed sub-block by sub-block.
  if (fill_active_ && p == fill_page_) {
    const std::uint32_t sb = geom_.sub_block_of(off);
    if (fill_bitmap_[sb]) {
      const MachAddr m = geom_.machine_base(fill_slot_) + off;
      return Route{Region::OnPackage, m, true};
    }
    return Route{geom_.region_of(fill_old_base_), fill_old_base_ + off, false};
  }

  PageId machine_page;
  if (mode_ != TableMode::HardwareNMinus1) {
    // FunctionalN and Shadow both serve from the placement map; in Shadow
    // mode a page under transaction keeps routing to its committed home.
    machine_page = shadow_location(p);
  } else if (p < slots_) {
    const RowState& row = rows_[static_cast<SlotId>(p)];
    if (row.pending || row.occupant == kInvalidPage) {
      machine_page = geom_.omega();  // data parked at the reserved page
    } else {
      // occupant == p: OF, slot p. occupant == q: MS, parked at q's home.
      machine_page = row.occupant;
    }
  } else {
    const auto it = slot_of_.find(p);
    machine_page = (it != slot_of_.end()) ? it->second : p;  // MF : OS
  }

  const MachAddr m = geom_.machine_base(machine_page) + off;
  return Route{geom_.region_of(m), m, false};
}

PageCategory TranslationTable::category(PageId p) const noexcept {
  if (mode_ != TableMode::HardwareNMinus1) {
    const PageId loc = shadow_location(p);
    const bool fast = loc < slots_;
    if (p < slots_) return fast ? PageCategory::OriginalFast
                                : PageCategory::MigratedSlow;
    return fast ? PageCategory::MigratedFast : PageCategory::OriginalSlow;
  }
  if (p < slots_) {
    const RowState& row = rows_[static_cast<SlotId>(p)];
    if (row.occupant == kInvalidPage || row.pending) return PageCategory::Ghost;
    return row.occupant == p ? PageCategory::OriginalFast
                             : PageCategory::MigratedSlow;
  }
  return slot_of_.count(p) != 0 ? PageCategory::MigratedFast
                                : PageCategory::OriginalSlow;
}

void TranslationTable::set_row(SlotId row, PageId page) {
  RowState& r = rows_[row];
  if (r.occupant != kInvalidPage && r.occupant >= slots_) {
    // Drop the displaced page's CAM entry — unless that page has already
    // re-registered in another slot mid-choreography (e.g. the partner
    // page of Fig 8(c)/(d) moves to the empty slot before its old row is
    // rewritten; the stale row must not clobber the fresh entry).
    const auto it = slot_of_.find(r.occupant);
    if (it != slot_of_.end() && it->second == row) slot_of_.erase(it);
  }
  r.occupant = page;
  if (page >= slots_) slot_of_[page] = row;
  if (empty_cache_ == row) empty_cache_.reset();
}

void TranslationTable::set_row_empty(SlotId row) {
  RowState& r = rows_[row];
  if (r.occupant != kInvalidPage && r.occupant >= slots_) {
    const auto it = slot_of_.find(r.occupant);
    if (it != slot_of_.end() && it->second == row) slot_of_.erase(it);
  }
  r.occupant = kInvalidPage;
  empty_cache_ = row;
}

void TranslationTable::set_pending(SlotId row, bool value) {
  rows_[row].pending = value;
}

void TranslationTable::begin_fill(SlotId slot, PageId page,
                                  MachAddr old_base) {
  HMM_CHECK(!fill_active_, "begin_fill while a fill is already active");
  fill_active_ = true;
  fill_slot_ = slot;
  fill_page_ = page;
  fill_old_base_ = old_base;
  fill_bitmap_.assign(geom_.sub_blocks_per_page(), false);
}

void TranslationTable::mark_sub_block(std::uint32_t index) {
  HMM_CHECK(fill_active_ && index < fill_bitmap_.size(),
            "mark_sub_block outside an active fill window");
  fill_bitmap_[index] = true;
}

bool TranslationTable::sub_block_ready(std::uint32_t index) const noexcept {
  return fill_active_ && index < fill_bitmap_.size() && fill_bitmap_[index];
}

void TranslationTable::end_fill() {
  HMM_CHECK(fill_active_, "end_fill without an active fill");
  fill_active_ = false;
  fill_page_ = kInvalidPage;
}

std::uint32_t TranslationTable::fill_ready_count() const noexcept {
  if (!fill_active_) return 0;
  std::uint32_t n = 0;
  for (const bool b : fill_bitmap_)
    if (b) ++n;
  return n;
}

void TranslationTable::flip_pending_bit(SlotId row) {
  rows_[row].pending = !rows_[row].pending;
}

void TranslationTable::flip_occupant_bit(SlotId row, unsigned bit) {
  // Deliberately bypasses set_row(): the CAM and empty-slot cache are left
  // stale, exactly as a hardware bit-flip would leave them.
  rows_[row].occupant ^= (PageId{1} << (bit % 32));
}

void TranslationTable::note_data_at(PageId p, PageId machine_page) {
  if (machine_page == p)
    location_.erase(p);
  else
    location_[p] = machine_page;
}

void TranslationTable::set_occupant(SlotId s, PageId page) {
  rows_[s].occupant = page;
}

PageId TranslationTable::page_at(PageId machine_page) const noexcept {
  // analyze: allow(determinism): unique-match scan (audited bijection)
  for (const auto& [p, m] : location_)
    if (m == machine_page) return p;
  // No exception maps here: the identity resident, unless that page's own
  // data moved away (then the machine page is free) or it is the hole/Ω.
  if (location_.count(machine_page) != 0) return kInvalidPage;
  if (machine_page == hole_ || machine_page == geom_.omega())
    return kInvalidPage;
  // Reserved spares and retired frames are data-free by construction.
  if (ras_view_ != nullptr && (ras_view_->reserved_spare(machine_page) ||
                               ras_view_->retired(machine_page)))
    return kInvalidPage;
  return machine_page;
}

void TranslationTable::set_ras_parked(SlotId row) {
  HMM_CHECK(mode_ == TableMode::HardwareNMinus1,
            "parked rows exist only in the N-1 hardware encoding");
  HMM_CHECK(row < slots_, "parked row out of range");
  if (!ras_parked(row)) ras_parked_.push_back(row);
}

bool TranslationTable::ras_parked(SlotId row) const noexcept {
  for (const SlotId s : ras_parked_)
    if (s == row) return true;
  return false;
}

void TranslationTable::relocate_hole(PageId spare) {
  HMM_CHECK(mode_ == TableMode::Shadow,
            "relocate_hole outside Shadow mode");
  HMM_CHECK(!shadow_active_,
            "relocate_hole while a transaction is active");
  HMM_CHECK(page_at(spare) == kInvalidPage,
            "relocate_hole target still holds live data");
  hole_ = spare;
}

void TranslationTable::begin_shadow(PageId page, PageId dst_machine) {
  HMM_CHECK(mode_ == TableMode::Shadow, "begin_shadow outside Shadow mode");
  HMM_CHECK(!shadow_active_, "begin_shadow while a transaction is active");
  HMM_CHECK(page < geom_.total_pages() && page != geom_.omega(),
            "shadow transaction on a reserved or out-of-range page");
  HMM_CHECK(dst_machine == hole_,
            "shadow destination must be the current hole");
  shadow_active_ = true;
  shadow_page_ = page;
  shadow_src_ = shadow_location(page);
  shadow_dst_ = dst_machine;
  shadow_filled_.assign(geom_.sub_blocks_per_page(), false);
  shadow_dirty_.assign(geom_.sub_blocks_per_page(), false);
}

void TranslationTable::shadow_mark_filled(std::uint32_t index) {
  HMM_CHECK(shadow_active_ && index < shadow_filled_.size(),
            "shadow_mark_filled outside an active transaction");
  shadow_filled_[index] = true;
}

void TranslationTable::shadow_mark_dirty(std::uint32_t index) {
  HMM_CHECK(shadow_active_ && index < shadow_dirty_.size(),
            "shadow_mark_dirty outside an active transaction");
  shadow_dirty_[index] = true;
}

void TranslationTable::shadow_clear_dirty(std::uint32_t index) {
  HMM_CHECK(shadow_active_ && index < shadow_dirty_.size(),
            "shadow_clear_dirty outside an active transaction");
  shadow_dirty_[index] = false;
}

bool TranslationTable::shadow_filled(std::uint32_t index) const noexcept {
  return shadow_active_ && index < shadow_filled_.size() &&
         shadow_filled_[index];
}

bool TranslationTable::shadow_dirty(std::uint32_t index) const noexcept {
  return shadow_active_ && index < shadow_dirty_.size() &&
         shadow_dirty_[index];
}

std::uint32_t TranslationTable::shadow_dirty_count() const noexcept {
  std::uint32_t n = 0;
  for (const bool b : shadow_dirty_)
    if (b) ++n;
  return n;
}

void TranslationTable::commit_shadow() {
  HMM_CHECK(shadow_active_, "commit_shadow without an active transaction");
  // One atomic re-point: the page's home becomes the (filled) hole, and
  // the old home — which served every access up to this instant — becomes
  // the new hole. Nothing else moves, so a crash lands on either side of
  // a single table write, never in between.
  note_data_at(shadow_page_, shadow_dst_);
  hole_ = shadow_src_;
  shadow_active_ = false;
  shadow_page_ = kInvalidPage;
  shadow_src_ = kInvalidPage;
  shadow_dst_ = kInvalidPage;
  shadow_filled_.clear();
  shadow_dirty_.clear();
}

void TranslationTable::abort_shadow() {
  HMM_CHECK(shadow_active_, "abort_shadow without an active transaction");
  // begin_shadow never touched the routing, so dropping the shadow state
  // *is* the rollback: the committed home never stopped serving and the
  // hole is still the hole.
  shadow_active_ = false;
  shadow_page_ = kInvalidPage;
  shadow_src_ = kInvalidPage;
  shadow_dst_ = kInvalidPage;
  shadow_filled_.clear();
  shadow_dirty_.clear();
}

std::string TranslationTable::validate() const {
  if (mode_ == TableMode::FunctionalN) {
    // The basic N design has no P/F hardware; any such state is corruption.
    if (fill_active_) return "fill active in FunctionalN mode";
    for (SlotId s = 0; s < slots_; ++s)
      if (rows_[s].pending) return "pending bit set in FunctionalN mode";
    // Placement map must be a bijection on its exceptional entries.
    std::unordered_map<PageId, PageId> inverse;
    // analyze: allow(determinism): order-independent audit verdict
    for (const auto& [p, m] : location_) {
      if (!inverse.emplace(m, p).second)
        return "two pages mapped to the same machine page";
      if (ras_view_ != nullptr && ras_view_->retired(m))
        return "page mapped to a retired machine page";
    }
    return {};
  }

  if (mode_ == TableMode::Shadow) {
    // Shadow mode never uses the N-1 hardware: the rows stay identity and
    // no P/F state is ever set, so any such state is a fault (TableBitFlip
    // lands here).
    if (fill_active_) return "fill active in Shadow mode";
    if (empty_cache_.has_value()) return "empty slot marked in Shadow mode";
    for (SlotId s = 0; s < slots_; ++s) {
      if (rows_[s].pending) return "pending bit set in Shadow mode";
      if (rows_[s].occupant != s)
        return "occupant field corrupted in Shadow mode";
    }
    std::unordered_map<PageId, PageId> inverse;
    // analyze: allow(determinism): order-independent audit verdict
    for (const auto& [p, m] : location_) {
      if (p >= geom_.total_pages() || p == geom_.omega())
        return "placement entry for a reserved or out-of-range page";
      if (m >= geom_.total_pages())
        return "page mapped outside the machine address space";
      if (m == hole_) return "page mapped at the hole";
      if (!inverse.emplace(m, p).second)
        return "two pages mapped to the same machine page";
      if (ras_view_ != nullptr && ras_view_->retired(m))
        return "page mapped to a retired machine page";
      // If m is an OS page other than p itself, its identity resident must
      // have moved away (or never existed: spare-pool identity pages are
      // reserved at boot) or two pages would share the machine page.
      if (m != p && m != geom_.omega() && location_.count(m) == 0 &&
          !(ras_view_ != nullptr && ras_view_->reserved_spare(m)))
        return "page mapped over a still-resident identity page";
    }
    if (hole_ >= geom_.total_pages()) return "hole out of range";
    if (ras_view_ != nullptr && ras_view_->retired(hole_))
      return "hole is a retired frame";
    if (hole_ != geom_.omega() && location_.count(hole_) == 0 &&
        !(ras_view_ != nullptr && ras_view_->reserved_spare(hole_)))
      return "hole overlaps a resident identity page";
    if (shadow_active_) {
      if (shadow_page_ >= geom_.total_pages() ||
          shadow_page_ == geom_.omega())
        return "shadow transaction on a reserved or out-of-range page";
      if (shadow_dst_ != hole_)
        return "shadow destination is not the hole";
      if (shadow_src_ != shadow_location(shadow_page_))
        return "shadow source disagrees with the committed home";
      if (shadow_filled_.size() != geom_.sub_blocks_per_page() ||
          shadow_dirty_.size() != geom_.sub_blocks_per_page())
        return "shadow bitmap size disagrees with geometry";
    } else {
      if (shadow_page_ != kInvalidPage || !shadow_filled_.empty() ||
          !shadow_dirty_.empty())
        return "shadow state left behind after commit/abort";
    }
    return {};
  }

  if (fill_active_) {
    if (fill_slot_ >= slots_) return "fill slot out of range";
    if (fill_page_ == kInvalidPage) return "fill active with no fill page";
    if (fill_bitmap_.size() != geom_.sub_blocks_per_page())
      return "fill bitmap size disagrees with geometry";
  }

  unsigned empties = 0;
  unsigned pendings = 0;
  for (SlotId s = 0; s < slots_; ++s) {
    const RowState& r = rows_[s];
    if (r.occupant == kInvalidPage) ++empties;
    if (r.pending) ++pendings;
    if (r.pending && r.occupant == kInvalidPage)
      return "pending bit set on an empty row";
    if (r.occupant != kInvalidPage && r.occupant >= geom_.total_pages())
      return "occupant field holds a page id outside the address space";
    if (r.occupant != kInvalidPage && r.occupant < slots_ &&
        r.occupant != s)
      return "page id < N stored outside its own slot";
    if (r.occupant != kInvalidPage && r.occupant >= slots_) {
      // Mid-choreography a page may transiently appear in two rows (its
      // data is duplicated); the CAM entry must exist and take priority.
      if (slot_of_.count(r.occupant) == 0)
        return "CAM out of sync with the right column";
    }
  }
  if (empties > 1) return "more than one empty slot";
  // A parked row's P bit is permanent (its left page — the ghost at the
  // moment of a RAS evacuation — keeps its data at Ω forever); only one
  // additional pending row may be in a transient swap window.
  for (const SlotId s : ras_parked_) {
    if (s >= slots_) return "parked row out of range";
    if (!rows_[s].pending) return "parked row lost its P bit";
    if (rows_[s].occupant == kInvalidPage) return "parked row marked empty";
  }
  if (pendings > 1 + static_cast<unsigned>(ras_parked_.size()))
    return "more than one pending row";
  if (empty_cache_.has_value() &&
      rows_[*empty_cache_].occupant != kInvalidPage)
    return "empty-slot cache points at an occupied row";

  // During a fill the encoding intentionally disagrees for the fill page;
  // everywhere else the encoding must reproduce the placement truth.
  for (SlotId s = 0; s < slots_; ++s) {
    const PageId p = s;
    if (fill_active_ && p == fill_page_) continue;
    const Route r = translate(geom_.machine_base(p));
    const MachAddr want = location_of(p);
    if (r.mach != want) return "encoding disagrees with placement (p < N)";
  }
  // analyze: allow(determinism): order-independent audit verdict
  for (const auto& [page, slot] : slot_of_) {
    if (fill_active_ && page == fill_page_) continue;
    const Route r = translate(geom_.machine_base(page));
    if (r.mach != geom_.machine_base(slot))
      return "CAM translation disagrees with slot";
    if (shadow_location(page) != slot)
      return "encoding disagrees with placement (p >= N)";
  }
  return {};
}

std::uint64_t TranslationTable::table_bits() const noexcept {
  const unsigned id_bits = log2_floor(ceil_pow2(geom_.total_pages()));
  return static_cast<std::uint64_t>(slots_) * (id_bits + 2);
}

namespace {
template <typename K, typename V>
std::vector<std::pair<K, V>> sorted_entries(
    const std::unordered_map<K, V>& m) {
  std::vector<std::pair<K, V>> v(m.begin(), m.end());
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

void TranslationTable::save(snap::Writer& w) const {
  w.begin_section(snap::tag('T', 'T', 'B', 'L'));
  w.u8(static_cast<std::uint8_t>(mode_));
  w.u64(slots_);
  w.u64(rows_.size());
  for (const RowState& r : rows_) {
    w.u64(r.occupant);
    w.b(r.pending);
  }
  const auto cam = sorted_entries(slot_of_);
  w.u64(cam.size());
  for (const auto& [page, slot] : cam) {
    w.u64(page);
    w.u64(slot);
  }
  const auto loc = sorted_entries(location_);
  w.u64(loc.size());
  for (const auto& [page, mach] : loc) {
    w.u64(page);
    w.u64(mach);
  }
  w.b(empty_cache_.has_value());
  w.u64(empty_cache_.value_or(0));
  w.b(fill_active_);
  w.u64(fill_slot_);
  w.u64(fill_page_);
  w.u64(fill_old_base_);
  w.u64(fill_bitmap_.size());
  for (const bool bit : fill_bitmap_) w.b(bit);
  if (mode_ == TableMode::Shadow) {
    // Appended only in Shadow mode so the byte layout of existing modes
    // (and their golden CRCs) is unchanged.
    w.u64(hole_);
    w.b(shadow_active_);
    w.u64(shadow_page_);
    w.u64(shadow_src_);
    w.u64(shadow_dst_);
    w.u64(shadow_filled_.size());
    for (const bool bit : shadow_filled_) w.b(bit);
    w.u64(shadow_dirty_.size());
    for (const bool bit : shadow_dirty_) w.b(bit);
  }
  if (ras_view_ != nullptr) {
    // Appended only when the RAS layer is attached, so pre-RAS byte
    // layouts (and golden CRCs) are unchanged. The restoring side wires
    // the same view before restore(), so the gate agrees.
    w.u64(ras_parked_.size());
    for (const SlotId s : ras_parked_) w.u64(s);
  }
  w.end_section();
}

void TranslationTable::restore(snap::Reader& r) {
  r.begin_section(snap::tag('T', 'T', 'B', 'L'));
  mode_ = static_cast<TableMode>(r.u8());
  slots_ = r.u64();
  rows_.assign(r.u64(), RowState{});
  for (RowState& row : rows_) {
    row.occupant = r.u64();
    row.pending = r.b();
  }
  slot_of_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const PageId page = r.u64();
    slot_of_[page] = static_cast<SlotId>(r.u64());
  }
  location_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const PageId page = r.u64();
    location_[page] = r.u64();
  }
  const bool has_empty = r.b();
  const SlotId empty = static_cast<SlotId>(r.u64());
  empty_cache_ = has_empty ? std::optional<SlotId>(empty) : std::nullopt;
  fill_active_ = r.b();
  fill_slot_ = static_cast<SlotId>(r.u64());
  fill_page_ = r.u64();
  fill_old_base_ = r.u64();
  fill_bitmap_.assign(r.u64(), false);
  for (std::size_t i = 0; i < fill_bitmap_.size(); ++i) fill_bitmap_[i] = r.b();
  if (mode_ == TableMode::Shadow) {
    hole_ = r.u64();
    shadow_active_ = r.b();
    shadow_page_ = r.u64();
    shadow_src_ = r.u64();
    shadow_dst_ = r.u64();
    shadow_filled_.assign(r.u64(), false);
    for (std::size_t i = 0; i < shadow_filled_.size(); ++i)
      shadow_filled_[i] = r.b();
    shadow_dirty_.assign(r.u64(), false);
    for (std::size_t i = 0; i < shadow_dirty_.size(); ++i)
      shadow_dirty_[i] = r.b();
  } else {
    hole_ = kInvalidPage;
    shadow_active_ = false;
    shadow_page_ = kInvalidPage;
    shadow_src_ = kInvalidPage;
    shadow_dst_ = kInvalidPage;
    shadow_filled_.clear();
    shadow_dirty_.clear();
  }
  ras_parked_.clear();
  if (ras_view_ != nullptr) {
    ras_parked_.assign(r.u64(), SlotId{0});
    for (SlotId& s : ras_parked_) s = static_cast<SlotId>(r.u64());
  }
  r.end_section();
}

}  // namespace hmm
