// Hardware-cost model of the pure-hardware migration scheme (Section III-B,
// Fig 10): translation table + fill bitmap + pseudo-LRU bits + multi-queue.
//
// Reference point from the paper (1GB on-package, 4MB macro pages, 48-bit
// physical space): 256 x (26+2) = 7,168 table bits, 1,024 fill-bitmap bits,
// 256 pseudo-LRU bits, 3 x 10 x 26 = 780 multi-queue bits => 9,228 bits.
#pragma once

#include <cstdint>

#include "common/params.hh"
#include "common/units.hh"

namespace hmm {

struct HardwareOverhead {
  std::uint64_t table_bits = 0;
  std::uint64_t fill_bitmap_bits = 0;
  std::uint64_t plru_bits = 0;
  std::uint64_t multi_queue_bits = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return table_bits + fill_bitmap_bits + plru_bits + multi_queue_bits;
  }
};

/// Bit cost of managing `on_package_bytes` of fast memory at `page_bytes`
/// granularity in an `address_bits`-bit physical space.
[[nodiscard]] inline HardwareOverhead
migration_hardware_overhead(std::uint64_t on_package_bytes,
                            std::uint64_t page_bytes,
                            unsigned address_bits = 48,
                            std::uint64_t sub_block_bytes = 4 * KiB) {
  HardwareOverhead o;
  const std::uint64_t slots = on_package_bytes / page_bytes;
  const unsigned id_bits = address_bits - log2_exact(page_bytes);
  o.table_bits = slots * (id_bits + 2);  // right column + P bit + F bit
  o.fill_bitmap_bits =
      page_bytes > sub_block_bytes ? page_bytes / sub_block_bytes : 1;
  o.plru_bits = slots;  // one clock reference bit per slot
  o.multi_queue_bits = static_cast<std::uint64_t>(params::kMultiQueueLevels) *
                       params::kMultiQueueEntriesPerLevel * id_bits;
  return o;
}

}  // namespace hmm
