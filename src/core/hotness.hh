// Access-recency/frequency trackers used by the migration controller
// (Section III-B):
//
//  * SlotClockTracker — clock-based pseudo-LRU over the N on-package slots
//    (as in real microprocessors [17]), plus a per-slot epoch access
//    counter so the hottest-coldest comparison has a frequency to compare.
//  * MultiQueueTracker — the multi-queue algorithm [18] approximating the
//    MRU off-package macro page with 3 levels x 10 entries of hardware.
//  * OracleTracker — perfect per-page epoch counts, used as an upper bound
//    in ablation experiments (not realizable in hardware at fine grain).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/snapshot.hh"
#include "common/types.hh"

namespace hmm {

class SlotClockTracker {
 public:
  explicit SlotClockTracker(SlotId slots);

  void record_access(SlotId s) noexcept;

  /// Clock sweep: returns the coldest slot among those `migratable`
  /// (reference bits are cleared as the hand passes). Returns the slot and
  /// its epoch access count.
  struct Victim {
    SlotId slot = 0;
    std::uint64_t epoch_count = 0;
    bool found = false;
  };
  template <typename Pred>
  [[nodiscard]] Victim pick_victim(Pred&& migratable) noexcept {
    const SlotId n = static_cast<SlotId>(ref_.size());
    // Two full sweeps guarantee a victim if any slot is migratable.
    for (SlotId step = 0; step < 2 * n; ++step) {
      const SlotId s = hand_;
      hand_ = static_cast<SlotId>((hand_ + 1) % n);
      if (!migratable(s)) continue;
      if (ref_[s]) {
        ref_[s] = 0;
        continue;
      }
      return Victim{s, counts_[s], true};
    }
    return Victim{};
  }

  [[nodiscard]] std::uint64_t epoch_count(SlotId s) const noexcept {
    return counts_[s];
  }
  void reset_epoch() noexcept;

  /// Hardware cost: one reference bit per slot.
  [[nodiscard]] std::uint64_t bits() const noexcept { return ref_.size(); }

  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  std::vector<std::uint8_t> ref_;
  std::vector<std::uint64_t> counts_;
  SlotId hand_ = 0;
};

class MultiQueueTracker {
 public:
  MultiQueueTracker(unsigned levels, unsigned entries_per_level);

  /// Record an access to off-package page p at in-page sub-block `sb`
  /// (the sub-block seeds critical-data-first live migration). Throws
  /// SimError if the index has drifted out of sync with its queues.
  void record_access(PageId p, std::uint32_t sb);

  struct Hottest {
    PageId page = kInvalidPage;
    std::uint64_t epoch_count = 0;
    std::uint32_t last_sub_block = 0;
    bool found = false;
  };
  /// The most frequently accessed tracked page this epoch.
  [[nodiscard]] Hottest hottest() const noexcept;

  /// Epoch boundary: age counts (halving) and drop dead entries.
  void reset_epoch() noexcept;

  /// Forget a page (it just migrated on-package).
  void erase(PageId p) noexcept;

  [[nodiscard]] std::size_t tracked() const noexcept { return index_.size(); }

  /// Hardware cost: one page id per entry (Section III-B sizes this at
  /// 3 x 10 x 26 bits for the 4MB/1GB configuration).
  [[nodiscard]] std::uint64_t bits(unsigned page_id_bits) const noexcept;

  /// Structural self-check (index/queue consistency) for the invariant
  /// auditor; returns an error description or empty string.
  [[nodiscard]] std::string validate() const;

  // --- fault-injection hook (tests only) -----------------------------------
  /// Forge the page id of one queued entry without updating index_ — the
  /// next validate() must report the index/queue disagreement. No-op when
  /// nothing is tracked.
  void corrupt_entry_for_test() noexcept;

  // Queues carry the full state; index_ is rebuilt on restore via reindex().
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  struct Entry {
    PageId page = kInvalidPage;
    std::uint64_t count = 0;
    std::uint32_t last_sub_block = 0;
  };
  struct Pos {
    unsigned level;
    std::size_t idx;
  };

  void promote_if_due(unsigned level, std::size_t idx) noexcept;
  /// Insert at MRU of `level`, evicting (demoting) as needed.
  void insert(unsigned level, Entry e) noexcept;
  void reindex(unsigned level) noexcept;

  unsigned levels_;
  unsigned capacity_;
  // queues_[l] ordered MRU-first.
  std::vector<std::vector<Entry>> queues_;
  // no-snapshot(rebuilt from queues_ by reindex() during restore)
  std::unordered_map<PageId, Pos> index_;
};

class OracleTracker {
 public:
  void record_access(PageId p, std::uint32_t sb) noexcept {
    auto& e = counts_[p];
    e.first += 1;
    e.second = sb;
  }
  [[nodiscard]] MultiQueueTracker::Hottest hottest() const noexcept {
    MultiQueueTracker::Hottest best;
    for (const auto& [p, e] : counts_) {
      // Ties break toward the smallest page id so the choice never depends
      // on unordered_map iteration order (a restored map may hash into a
      // different bucket layout than the one that was checkpointed).
      if (!best.found || e.first > best.epoch_count ||
          (e.first == best.epoch_count && p < best.page)) {
        best = {p, e.first, e.second, true};
      }
    }
    return best;
  }
  void reset_epoch() noexcept { counts_.clear(); }
  void erase(PageId p) noexcept { counts_.erase(p); }

  void save(snap::Writer& w) const {
    w.begin_section(snap::tag('O', 'R', 'C', 'L'));
    std::vector<std::pair<PageId, std::pair<std::uint64_t, std::uint32_t>>>
        v(counts_.begin(), counts_.end());
    std::sort(v.begin(), v.end());
    w.u64(v.size());
    for (const auto& [p, e] : v) {
      w.u64(p);
      w.u64(e.first);
      w.u32(e.second);
    }
    w.end_section();
  }
  void restore(snap::Reader& r) {
    r.begin_section(snap::tag('O', 'R', 'C', 'L'));
    counts_.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
      const PageId p = r.u64();
      const std::uint64_t count = r.u64();
      counts_[p] = {count, r.u32()};
    }
    r.end_section();
  }

 private:
  std::unordered_map<PageId, std::pair<std::uint64_t, std::uint32_t>> counts_;
};

}  // namespace hmm
