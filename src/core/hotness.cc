#include "core/hotness.hh"

#include <algorithm>

#include "fault/sim_error.hh"

namespace hmm {

SlotClockTracker::SlotClockTracker(SlotId slots)
    : ref_(slots, 0), counts_(slots, 0) {
  HMM_CHECK(slots > 0, "clock tracker needs at least one slot");
}

void SlotClockTracker::record_access(SlotId s) noexcept {
  ref_[s] = 1;
  ++counts_[s];
}

void SlotClockTracker::reset_epoch() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
}

MultiQueueTracker::MultiQueueTracker(unsigned levels,
                                     unsigned entries_per_level)
    : levels_(levels), capacity_(entries_per_level), queues_(levels) {
  HMM_CHECK(levels > 0 && entries_per_level > 0,
            "multi-queue tracker needs at least one level and entry");
  for (auto& q : queues_) q.reserve(entries_per_level);
}

void MultiQueueTracker::reindex(unsigned level) noexcept {
  for (std::size_t i = 0; i < queues_[level].size(); ++i)
    index_[queues_[level][i].page] = Pos{level, i};
}

void MultiQueueTracker::insert(unsigned level, Entry e) noexcept {
  auto& q = queues_[level];
  q.insert(q.begin(), e);
  if (q.size() > capacity_) {
    Entry demoted = q.back();
    q.pop_back();
    if (level > 0) {
      reindex(level);
      insert(level - 1, demoted);
      return;
    }
    index_.erase(demoted.page);
  }
  reindex(level);
}

void MultiQueueTracker::promote_if_due(unsigned level,
                                       std::size_t idx) noexcept {
  // Classic MQ promotion rule: an entry moves up when its access count
  // reaches 2^(level+1).
  Entry e = queues_[level][idx];
  if (level + 1 >= levels_ || e.count < (1ull << (level + 1))) {
    // Just refresh to the MRU position of its level.
    auto& q = queues_[level];
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
    q.insert(q.begin(), e);
    reindex(level);
    return;
  }
  auto& q = queues_[level];
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
  reindex(level);
  insert(level + 1, e);
}

void MultiQueueTracker::record_access(PageId p, std::uint32_t sb) {
  const auto it = index_.find(p);
  if (it != index_.end()) {
    const Pos pos = it->second;
    Entry& e = queues_[pos.level][pos.idx];
    HMM_CHECK(e.page == p, "multi-queue index out of sync with its queue");
    ++e.count;
    e.last_sub_block = sb;
    promote_if_due(pos.level, pos.idx);
    return;
  }
  insert(0, Entry{p, 1, sb});
}

MultiQueueTracker::Hottest MultiQueueTracker::hottest() const noexcept {
  Hottest best;
  for (const auto& q : queues_) {
    for (const Entry& e : q) {
      if (!best.found || e.count > best.epoch_count) {
        best = Hottest{e.page, e.count, e.last_sub_block, true};
      }
    }
  }
  return best;
}

void MultiQueueTracker::reset_epoch() noexcept {
  for (unsigned l = 0; l < levels_; ++l) {
    auto& q = queues_[l];
    for (auto it = q.begin(); it != q.end();) {
      it->count /= 2;
      if (it->count == 0) {
        index_.erase(it->page);
        it = q.erase(it);
      } else {
        ++it;
      }
    }
    reindex(l);
  }
}

void MultiQueueTracker::erase(PageId p) noexcept {
  const auto it = index_.find(p);
  if (it == index_.end()) return;
  const Pos pos = it->second;
  auto& q = queues_[pos.level];
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(pos.idx));
  index_.erase(it);
  reindex(pos.level);
}

std::uint64_t MultiQueueTracker::bits(unsigned page_id_bits) const noexcept {
  return static_cast<std::uint64_t>(levels_) * capacity_ * page_id_bits;
}

void MultiQueueTracker::corrupt_entry_for_test() noexcept {
  for (auto& q : queues_) {
    if (q.empty()) continue;
    q.front().page += 1'000'000;  // index_ still holds the old id
    return;
  }
}

std::string MultiQueueTracker::validate() const {
  std::size_t entries = 0;
  for (unsigned l = 0; l < levels_; ++l) {
    const auto& q = queues_[l];
    if (q.size() > capacity_) return "queue level above capacity";
    entries += q.size();
    for (std::size_t i = 0; i < q.size(); ++i) {
      const Entry& e = q[i];
      if (e.page == kInvalidPage) return "invalid page id tracked";
      if (e.count == 0) return "tracked entry with zero count";
      const auto it = index_.find(e.page);
      if (it == index_.end()) return "queued page missing from index";
      if (it->second.level != l || it->second.idx != i)
        return "index position out of sync with its queue";
    }
  }
  if (entries != index_.size()) return "index size disagrees with queues";
  return {};
}

void SlotClockTracker::save(snap::Writer& w) const {
  w.begin_section(snap::tag('C', 'L', 'C', 'K'));
  w.u64(ref_.size());
  for (const std::uint8_t b : ref_) w.u8(b);
  for (const std::uint64_t c : counts_) w.u64(c);
  w.u64(hand_);
  w.end_section();
}

void SlotClockTracker::restore(snap::Reader& r) {
  r.begin_section(snap::tag('C', 'L', 'C', 'K'));
  const std::uint64_t n = r.u64();
  ref_.assign(n, 0);
  counts_.assign(n, 0);
  for (std::uint8_t& b : ref_) b = r.u8();
  for (std::uint64_t& c : counts_) c = r.u64();
  hand_ = static_cast<SlotId>(r.u64());
  r.end_section();
}

void MultiQueueTracker::save(snap::Writer& w) const {
  w.begin_section(snap::tag('M', 'Q', 'T', 'R'));
  w.u32(levels_);
  w.u32(capacity_);
  for (const auto& q : queues_) {
    w.u64(q.size());
    for (const Entry& e : q) {
      w.u64(e.page);
      w.u64(e.count);
      w.u32(e.last_sub_block);
    }
  }
  w.end_section();
}

void MultiQueueTracker::restore(snap::Reader& r) {
  r.begin_section(snap::tag('M', 'Q', 'T', 'R'));
  levels_ = r.u32();
  capacity_ = r.u32();
  queues_.assign(levels_, {});
  index_.clear();
  for (unsigned l = 0; l < levels_; ++l) {
    queues_[l].resize(r.u64());
    for (Entry& e : queues_[l]) {
      e.page = r.u64();
      e.count = r.u64();
      e.last_sub_block = r.u32();
    }
    reindex(l);
  }
  r.end_section();
}

}  // namespace hmm
