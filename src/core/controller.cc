#include "core/controller.hh"

#include <algorithm>

namespace hmm {

HeteroMemoryController::HeteroMemoryController(const ControllerConfig& cfg,
                                               DramSystem& on_package,
                                               DramSystem& off_package)
    : cfg_(cfg),
      table_(cfg.geom,
             cfg.design == MigrationDesign::N ? TableMode::FunctionalN
             : cfg.design == MigrationDesign::Nomad
                 ? TableMode::Shadow
                 : TableMode::HardwareNMinus1),
      engine_(table_, on_package, off_package,
              MigrationEngine::Config{cfg.design, cfg.critical_first, 0}),
      slot_tracker_(cfg.geom.slots()),
      mq_(params::kMultiQueueLevels, params::kMultiQueueEntriesPerLevel) {}

HeteroMemoryController::Decision HeteroMemoryController::on_access(
    PhysAddr addr, AccessType type, Cycle now) {
  Decision d;
  d.route = table_.translate(addr);
  d.extra_latency = params::kTranslationTableLatency;
  ++stats_.accesses;

  const Geometry& g = cfg_.geom;
  const PageId p = g.page_of(addr);
  const std::uint32_t sb = g.sub_block_of(g.offset_of(addr));

  if (type == AccessType::Write && table_.shadow_active() &&
      p == table_.shadow_page()) {
    // Demand write to the page under transaction: the write lands at the
    // committed home (which keeps serving), so whatever shadow copy of
    // this sub-block exists in the hole is now stale.
    table_.shadow_mark_dirty(sb);
  }

  if (d.route.region == Region::OnPackage) {
    ++stats_.on_package_hits;
    if (d.route.served_by_fill_slot) ++stats_.fill_forwards;
    const auto slot = static_cast<SlotId>(d.route.mach >> g.page_shift());
    slot_tracker_.record_access(slot);
  } else {
    ++stats_.off_package_hits;
    if (cfg_.migration_enabled) {
      PageId tracked = p;
      if (injector_ != nullptr &&
          injector_->fires(fault::FaultSite::HotnessCorrupt, p)) {
        // A corrupted hotness counter credits the access to the wrong
        // page. This must stay benign: at worst a suboptimal swap, which
        // can_swap() then screens for validity.
        tracked = static_cast<PageId>(
            injector_->payload_rng().bounded64(g.total_pages()));
      }
      if (cfg_.oracle_hotness)
        oracle_.record_access(tracked, sb);
      else
        mq_.record_access(tracked, sb);
    }
  }

  // RAS retirement runs ahead of the migration trigger so the design-N
  // blocking check below also stalls demand behind an evacuation copy.
  if (ras_ != nullptr) ras_service(now);

  if (cfg_.migration_enabled) {
    if (++since_epoch_ >= cfg_.swap_interval) {
      since_epoch_ = 0;
      consider_swap(now);
    }
    // The basic N design halts execution during a swap (Section III-A);
    // the check runs after the trigger so a just-started swap also blocks.
    if (cfg_.design == MigrationDesign::N && !engine_.idle())
      d.stall_until_idle = true;
    // OS-assisted bookkeeping stalls the CPU; charge it to the access that
    // crossed the epoch boundary.
    d.extra_latency += pending_os_stall_;
    pending_os_stall_ = 0;
  }
  return d;
}

void HeteroMemoryController::retire_hole_frame(PageId frame, Cycle now) {
  const PageId spare = ras_->peek_spare();
  if (spare == kInvalidPage) {
    // Pool dry: the hole cannot move off the failing frame, so it is
    // pinned where it is. can_migrate() screens the quarantined hole, so
    // nomad stops migrating — degraded but alive.
    ras_->pin_frame(frame);
    return;
  }
  table_.relocate_hole(spare);
  ras_->consume_spare(spare);
  ras_->complete_retirement(frame, now);
}

void HeteroMemoryController::ras_service(Cycle now) {
  // 1. Close out the in-flight evacuation once the engine drains.
  if (evac_frame_ != kInvalidPage && engine_.idle()) {
    const PageId f = evac_frame_;
    evac_frame_ = kInvalidPage;
    if (engine_.resident_of(f) == kInvalidPage) {
      if (table_.mode() == TableMode::Shadow && table_.hole() == f)
        retire_hole_frame(f, now);  // the evacuee's home became the hole
      else
        ras_->complete_retirement(f, now);
    }
    // else: the evacuation aborted; the frame is still pending and step 3
    // retries (bounded — repeated aborts degrade the engine, and
    // can_evacuate() then fails, which pins the frame).
  }

  // 2. Preempt and retarget. An ordinary hotness swap in flight blocks
  // the engine — and under a busy workload swaps run back to back, so
  // waiting for a natural idle window could starve the retirement
  // forever. Reliability preempts performance: abort the swap. An
  // in-flight *evacuation* is only aborted when a newly failing frame is
  // part of its plan — a swap must never commit into a failing frame.
  if (!engine_.idle() && ras_->has_pending()) {
    if (evac_frame_ == kInvalidPage) {
      engine_.abort_current(now);
    } else {
      for (const PageId f : ras_->pending_frames()) {
        if (f != evac_frame_ && engine_.plan_touches(f)) {
          engine_.abort_current(now);
          break;
        }
      }
    }
  }

  // 3. Launch the next retirement.
  if (!engine_.idle() || !ras_->has_pending()) return;
  const PageId f = ras_->next_pending();
  if (engine_.resident_of(f) == kInvalidPage) {
    // Data-free already (a hole, an empty N-1 slot, a stale frame).
    if (table_.mode() == TableMode::Shadow && table_.hole() == f)
      retire_hole_frame(f, now);
    else
      ras_->complete_retirement(f, now);
    return;
  }
  if (engine_.can_evacuate(f)) {
    PageId spare = kInvalidPage;
    if (cfg_.design == MigrationDesign::N) {
      spare = ras_->peek_spare();
      if (spare == kInvalidPage) {
        ras_->pin_frame(f);  // design N evacuates only onto a spare
        return;
      }
    }
    if (engine_.start_evacuation(f, spare, now)) {
      if (spare != kInvalidPage) ras_->consume_spare(spare);
      evac_frame_ = f;
      return;
    }
  }
  ras_->pin_frame(f);
}

void HeteroMemoryController::consider_swap(Cycle now) {
  if (cfg_.design == MigrationDesign::Nomad) {
    consider_migration(now);
    return;
  }
  // One swap per epoch in normal operation (the engine is busy for the
  // rest of the epoch anyway); during instant-migration warm-up the chain
  // is allowed to run deeper so placement converges within a scaled trace.
  const int max_swaps = engine_.instant() ? 64 : 1;

  for (int k = 0; k < max_swaps; ++k) {
    const MultiQueueTracker::Hottest hot =
        cfg_.oracle_hotness ? oracle_.hottest() : mq_.hottest();
    if (!hot.found) break;

    ++stats_.swap_attempts;
    // Find the coldest migratable on-package slot.
    auto migratable = [&](SlotId s) { return engine_.can_swap(hot.page, s); };
    const SlotClockTracker::Victim cold = slot_tracker_.pick_victim(migratable);

    // Hottest-coldest rule: swap only when the off-package MRU page is
    // accessed more often than the on-package LRU page. MQ counts halve
    // once per epoch, so their steady-state value is ~2x the per-epoch
    // rate; the oracle's counts are exact per-epoch rates.
    const std::uint64_t hot_rate =
        cfg_.oracle_hotness ? hot.epoch_count : hot.epoch_count / 2;
    if (cold.found && std::max<std::uint64_t>(hot_rate, 1) > cold.epoch_count &&
        engine_.start_swap(hot.page, hot.last_sub_block, cold.slot, now)) {
      if (cfg_.oracle_hotness)
        oracle_.erase(hot.page);
      else
        mq_.erase(hot.page);
      if (cfg_.is_os_assisted()) {
        // Every table update is an OS routine invocation (Section III-B).
        const auto updates = static_cast<Cycle>(
            cfg_.design == MigrationDesign::N ? 1 : 5);
        const Cycle stall = updates * params::kOsUpdateOverhead;
        stats_.os_stall_cycles += stall;
        pending_os_stall_ += stall;
      }
    } else {
      ++stats_.swaps_rejected;
      break;
    }
  }

  slot_tracker_.reset_epoch();
  if (cfg_.oracle_hotness)
    oracle_.reset_epoch();
  else
    mq_.reset_epoch();
}

void HeteroMemoryController::consider_migration(Cycle now) {
  // Nomad moves one page per transaction, alternating with the hole: an
  // on-package hole invites a promotion (and leaves the promoted page's
  // old home as an off-package hole); an off-package hole invites a
  // demotion under the hottest-coldest rule (and re-opens an on-package
  // hole). Instant warm-up chains deeper, like consider_swap().
  const int max_moves = engine_.instant() ? 64 : 1;
  const Geometry& g = cfg_.geom;

  for (int k = 0; k < max_moves; ++k) {
    const MultiQueueTracker::Hottest hot =
        cfg_.oracle_hotness ? oracle_.hottest() : mq_.hottest();
    if (!hot.found) break;
    ++stats_.swap_attempts;

    const bool hole_on_package =
        g.region_of(g.machine_base(table_.hole())) == Region::OnPackage;
    bool started = false;
    bool promoted = false;
    if (hole_on_package) {
      started = engine_.start_migration(hot.page, now);
      promoted = started;
    } else {
      const std::uint64_t hot_rate =
          cfg_.oracle_hotness ? hot.epoch_count : hot.epoch_count / 2;
      auto migratable = [&](SlotId s) {
        const PageId resident = table_.page_at(s);
        return resident != kInvalidPage && engine_.can_migrate(resident);
      };
      const SlotClockTracker::Victim cold =
          slot_tracker_.pick_victim(migratable);
      if (cold.found &&
          std::max<std::uint64_t>(hot_rate, 1) > cold.epoch_count)
        started = engine_.start_migration(table_.page_at(cold.slot), now);
    }
    if (!started) {
      ++stats_.swaps_rejected;
      break;
    }
    if (promoted) {
      if (cfg_.oracle_hotness)
        oracle_.erase(hot.page);
      else
        mq_.erase(hot.page);
    }
    if (cfg_.is_os_assisted()) {
      // A transaction is exactly two table updates: begin and commit.
      const Cycle stall = 2 * params::kOsUpdateOverhead;
      stats_.os_stall_cycles += stall;
      pending_os_stall_ += stall;
    }
  }

  slot_tracker_.reset_epoch();
  if (cfg_.oracle_hotness)
    oracle_.reset_epoch();
  else
    mq_.reset_epoch();
}

void HeteroMemoryController::on_completion(const DramCompletion& c,
                                           Region from) {
  if (c.priority == Priority::Background) engine_.on_completion(c, from);
}

std::string HeteroMemoryController::audit() const {
  std::string err = mq_.validate();
  if (!err.empty()) return "multi-queue tracker: " + err;
  return {};
}

void HeteroMemoryController::save(snap::Writer& w) const {
  table_.save(w);
  engine_.save(w);
  slot_tracker_.save(w);
  mq_.save(w);
  oracle_.save(w);
  w.begin_section(snap::tag('H', 'M', 'C', 'T'));
  w.u64(stats_.accesses);
  w.u64(stats_.on_package_hits);
  w.u64(stats_.off_package_hits);
  w.u64(stats_.fill_forwards);
  w.u64(stats_.swap_attempts);
  w.u64(stats_.swaps_rejected);
  w.u64(stats_.os_stall_cycles);
  w.u64(since_epoch_);
  w.u64(pending_os_stall_);
  if (ras_ != nullptr) w.u64(evac_frame_);
  w.end_section();
}

void HeteroMemoryController::restore(snap::Reader& r) {
  table_.restore(r);
  engine_.restore(r);
  slot_tracker_.restore(r);
  mq_.restore(r);
  oracle_.restore(r);
  r.begin_section(snap::tag('H', 'M', 'C', 'T'));
  stats_.accesses = r.u64();
  stats_.on_package_hits = r.u64();
  stats_.off_package_hits = r.u64();
  stats_.fill_forwards = r.u64();
  stats_.swap_attempts = r.u64();
  stats_.swaps_rejected = r.u64();
  stats_.os_stall_cycles = r.u64();
  since_epoch_ = r.u64();
  pending_os_stall_ = r.u64();
  evac_frame_ = ras_ != nullptr ? r.u64() : kInvalidPage;
  r.end_section();
}

}  // namespace hmm
