// The heterogeneity-aware on-chip memory controller (Fig 3).
//
// Front stage: the physical->machine Address Translation (moved ahead of
// transaction scheduling, so each access is routed to the on-package or
// off-package region first and the two regions schedule independently —
// the per-region scheduling lives in dram::DramSystem).
//
// Side stage: the Migration Controller — hotness monitoring (clock
// pseudo-LRU on-package, multi-queue off-package), the hottest-coldest
// trigger evaluated once per swap-interval epoch, and the MigrationEngine
// that performs the Fig 8 choreography in the background.
//
// Implementation flavours (Section III-B):
//  * pure hardware — feasible for macro pages >= 1MB; no per-update cost;
//  * OS-assisted  — required below 1MB; every translation-table update
//    costs a user/kernel switch (~127 cycles [19]) charged to the CPU.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/params.hh"
#include "common/types.hh"
#include "core/hotness.hh"
#include "core/migration.hh"
#include "core/ras_view.hh"
#include "core/translation_table.hh"
#include "dram/dram_system.hh"

namespace hmm {

struct ControllerConfig {
  Geometry geom;
  bool migration_enabled = true;
  MigrationDesign design = MigrationDesign::LiveMigration;
  /// Accesses per monitoring epoch ("swap interval" of Section IV).
  std::uint64_t swap_interval = 10'000;
  bool critical_first = true;
  /// Perfect-knowledge hotness (ablation upper bound) instead of MQ.
  bool oracle_hotness = false;
  /// Force OS-assisted bookkeeping; nullopt = decide by granularity
  /// (OS-assisted below kPureHardwareMinPage).
  std::optional<bool> os_assisted;

  [[nodiscard]] bool is_os_assisted() const noexcept {
    return os_assisted.value_or(geom.page_bytes < params::kPureHardwareMinPage);
  }
};

class HeteroMemoryController {
 public:
  struct Decision {
    Route route;
    /// Cycles the access must additionally wait before issue: translation
    /// pipeline + (design N) blocking swap + OS bookkeeping stalls.
    Cycle extra_latency = 0;
    /// Design N only: demand may not issue until migration finishes.
    bool stall_until_idle = false;
  };

  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t on_package_hits = 0;   ///< accesses routed on-package
    std::uint64_t off_package_hits = 0;
    std::uint64_t fill_forwards = 0;     ///< served by a filling slot
    std::uint64_t swap_attempts = 0;     ///< trigger fired
    std::uint64_t swaps_rejected = 0;    ///< engine busy / invalid pair
    std::uint64_t os_stall_cycles = 0;
  };

  HeteroMemoryController(const ControllerConfig& cfg, DramSystem& on_package,
                         DramSystem& off_package);

  /// Translate + monitor one demand access; may trigger a swap.
  [[nodiscard]] Decision on_access(PhysAddr addr, AccessType type, Cycle now);

  /// Feed DRAM completions here; Background ones drive the engine.
  void on_completion(const DramCompletion& c, Region from);

  [[nodiscard]] const TranslationTable& table() const noexcept {
    return table_;
  }
  [[nodiscard]] TranslationTable& table() noexcept { return table_; }
  [[nodiscard]] const MigrationEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] bool migration_idle() const noexcept { return engine_.idle(); }

  /// Warm-up fast-forward (see MigrationEngine::set_instant).
  void set_instant_migration(bool on) noexcept { engine_.set_instant(on); }

  /// Attach a fault injector to this controller and its engine (nullptr
  /// detaches). Not owned. The controller's own site is HotnessCorrupt:
  /// an off-package access gets recorded against a scrambled page id.
  void set_fault_injector(fault::FaultInjector* inj) noexcept {
    injector_ = inj;
    engine_.set_fault_injector(inj);
  }

  /// Attach the RAS retirement service (nullptr detaches). Not owned.
  /// The controller becomes the evacuation driver: each access it first
  /// retires/evacuates/pins pending failing frames through the migration
  /// engine, and the table starts enforcing retired-frame invariants.
  void set_ras(RasService* ras) noexcept {
    ras_ = ras;
    table_.set_ras_view(ras);
  }

  /// Cross-layer invariant audit (hotness trackers; the table has its own
  /// validate()); returns an error description or empty string.
  [[nodiscard]] std::string audit() const;
  /// Test-only: the multi-queue tracker, exposed so auditor tests can
  /// corrupt it and prove the audit path surfaces the mismatch.
  [[nodiscard]] MultiQueueTracker& mq_for_test() noexcept { return mq_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ControllerConfig& config() const noexcept { return cfg_; }

  /// Checkpoint/restore of the controller and everything it owns (table,
  /// engine, trackers). The config is not serialized — the restoring side
  /// must construct the controller with the same ControllerConfig.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  void consider_swap(Cycle now);
  /// RAS retirement driver, run on every access: finish the in-flight
  /// evacuation, abort a swap that touches a newly failing frame, and
  /// start the next evacuation (or retire data-free frames / pin frames
  /// the design cannot evacuate).
  void ras_service(Cycle now);
  /// Retire a failing frame that is (or became) the nomad hole: the hole
  /// must first be relocated onto a spare; a dry pool pins instead.
  void retire_hole_frame(PageId frame, Cycle now);
  /// Nomad: hole-directed trigger — promote the hottest off-package page
  /// into an on-package hole, or demote the coldest resident when the
  /// hole is off-package (DESIGN.md §10).
  void consider_migration(Cycle now);

  ControllerConfig cfg_;  // no-snapshot(construction-time config)
  TranslationTable table_;
  MigrationEngine engine_;
  SlotClockTracker slot_tracker_;
  MultiQueueTracker mq_;
  OracleTracker oracle_;
  Stats stats_;
  std::uint64_t since_epoch_ = 0;
  Cycle pending_os_stall_ = 0;
  fault::FaultInjector* injector_ = nullptr;  ///< not owned; may be null
  // no-snapshot(not owned; re-attached by the owner after restore)
  RasService* ras_ = nullptr;
  /// Frame whose evacuation the engine is currently running; serialized
  /// at the end of 'HMCT' only when RAS is attached.
  PageId evac_frame_ = kInvalidPage;
};

}  // namespace hmm
