// The migration controller's data-movement engine (Section III).
//
// A swap is planned as a short sequence of page copies; each copy streams
// through the DRAM channel models as Background-priority chunk requests
// (one chunk in flight: read from the source region, then write to the
// destination region), so migration bandwidth is stolen from real bus gaps
// and demand traffic sees genuine interference.
//
// Translation-table mutations are attached to step completions, exactly as
// the paper's choreography requires (Fig 8(a)-(d)): the data being moved
// always has one valid physical home, so execution never halts in the
// N-1 designs. The plan built for the paper's Fig 8(d) worked example
// reproduces its 10 steps one-for-one (see tests/migration_plan_test.cc).
//
// Designs:
//   N              — basic: table updated only after the whole swap; the
//                    controller must stall demand until the swap finishes.
//   NMinus1        — empty slot + P bit; background copy, old home serves
//                    the hot page until its copy lands.
//   LiveMigration  — N-1 plus F bit and a sub-block bitmap; the hot page
//                    is served from the partially-filled slot, and the copy
//                    starts at the critical (most recently used) sub-block.
//   Nomad          — transactional migration (DESIGN.md §10): a page is
//                    streamed into the free "hole" page while its old home
//                    keeps serving reads AND writes; demand writes dirty
//                    the affected sub-blocks, dirty sub-blocks are
//                    re-copied in bounded extra passes, and the migration
//                    ends in a single atomic commit (or a clean abort that
//                    leaves the table bit-identical to its pre-begin
//                    state). No fault site can wedge this design.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/translation_table.hh"
#include "dram/dram_system.hh"
#include "fault/fault_injector.hh"

namespace hmm {

enum class MigrationDesign : std::uint8_t { N, NMinus1, LiveMigration, Nomad };

[[nodiscard]] constexpr const char* to_string(MigrationDesign d) noexcept {
  switch (d) {
    case MigrationDesign::N: return "N";
    case MigrationDesign::NMinus1: return "N-1";
    case MigrationDesign::LiveMigration: return "Live";
    case MigrationDesign::Nomad: return "nomad";
  }
  return "?";
}

/// One table mutation, applied when the owning copy step completes.
struct TableMutation {
  enum class Kind : std::uint8_t {
    SetRow,        ///< row = `row`, occupant = `page`
    SetRowEmpty,   ///< row = `row`
    SetPending,    ///< row = `row`
    ClearPending,  ///< row = `row`
    NoteData,      ///< page `page` now lives at machine page `machine`
    SetOccupant,   ///< FunctionalN bookkeeping
    BeginShadow,   ///< open a transaction: `page` -> hole (`machine`)
    CommitShadow,  ///< atomically re-point the page at the hole
    AbortShadow,   ///< discard the transaction (pre-begin table state)
    RasPark,       ///< N-1 retirement: row = `row` pends forever (RAS)
  };
  Kind kind;
  SlotId row = 0;
  PageId page = kInvalidPage;
  PageId machine = kInvalidPage;
};

/// One streamed page copy inside a swap plan.
struct CopyStep {
  MachAddr src = 0;
  MachAddr dst = 0;
  std::uint64_t bytes = 0;
  bool live_fill = false;        ///< route through F bit + bitmap
  SlotId fill_slot = 0;          ///< destination slot when live_fill
  PageId fill_page = kInvalidPage;
  MachAddr fill_old_base = 0;    ///< where unfilled sub-blocks are served
  std::uint32_t start_sub_block = 0;  ///< critical-data-first start
  std::vector<TableMutation> after;
};

class MigrationEngine {
 public:
  struct Config {
    MigrationDesign design = MigrationDesign::LiveMigration;
    bool critical_first = true;   ///< live: start the fill at the MRU block
    std::uint64_t chunk_bytes = 0;  ///< 0 = auto (see chunk_size())
    /// Copy chunks kept in flight: pipelines the read and write sides so
    /// the copy runs at the slower channel's full rate (the paper's
    /// 374us-per-4MB figure assumes exactly that).
    unsigned copy_window = 4;
    /// Recovery policy under fault injection: a failed chunk is re-streamed
    /// up to this many times (exponential backoff) before the swap gives up.
    unsigned max_chunk_retries = 3;
    Cycle retry_backoff = 256;  ///< first retry delay; doubles per attempt
    /// After this many consecutive aborted swaps the engine freezes the
    /// table at its current (valid) mapping and stops migrating.
    unsigned degrade_after_aborts = 3;
    /// Nomad: total copy passes allowed per transaction (pass 0 streams
    /// the whole page; each later pass re-copies only the sub-blocks that
    /// demand writes dirtied). Exhausting the budget aborts the txn.
    unsigned max_copy_passes = 4;
  };

  struct Stats {
    std::uint64_t swaps_started = 0;
    std::uint64_t swaps_completed = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t table_updates = 0;
    Cycle busy_cycles = 0;  ///< summed wall-clock of active swaps
    // Fault-injection outcomes (all zero when no injector is attached).
    std::uint64_t chunks_dropped = 0;
    std::uint64_t chunks_delayed = 0;
    std::uint64_t chunk_retries = 0;
    std::uint64_t swaps_aborted = 0;
    std::uint64_t swaps_wedged = 0;
  };

  MigrationEngine(TranslationTable& table, DramSystem& on_package,
                  DramSystem& off_package, const Config& cfg);

  [[nodiscard]] bool idle() const noexcept { return steps_.empty(); }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Attach a fault injector (nullptr detaches). Not owned.
  void set_fault_injector(fault::FaultInjector* inj) noexcept {
    injector_ = inj;
  }
  /// A wedged engine holds an unfinished swap it can never complete (the
  /// basic N design has no recovery choreography); the MemSim watchdog
  /// turns this into a structured SimError instead of a hang.
  [[nodiscard]] bool wedged() const noexcept { return wedged_; }
  /// Degraded mode: the table is frozen at its current valid mapping and
  /// no further swaps start; demand traffic keeps being served.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] Cycle degraded_at() const noexcept { return degraded_at_; }
  /// Copy chunks currently streaming (0 for a wedged or idle engine).
  [[nodiscard]] std::size_t in_flight_chunks() const noexcept {
    return inflight_.size();
  }

  /// Instant mode: swaps apply their table mutations immediately with no
  /// copy traffic — used to fast-forward a warm-up phase to the placement
  /// steady state that the paper's trillion-reference traces reach (see
  /// EXPERIMENTS.md "warm-up methodology"). Never use while measuring.
  void set_instant(bool on) noexcept { instant_ = on; }
  [[nodiscard]] bool instant() const noexcept { return instant_; }

  /// True if (hot, cold_slot) is a swap this engine can start now.
  [[nodiscard]] bool can_swap(PageId hot, SlotId cold_slot) const noexcept;

  /// Plan and begin the hottest-coldest swap. `hot_sub_block` seeds
  /// critical-data-first. Returns false if busy or the pair is invalid.
  bool start_swap(PageId hot, std::uint32_t hot_sub_block, SlotId cold_slot,
                  Cycle now);

  // --- Nomad (transactional migration) -------------------------------------
  /// True if migrating `page` into the hole is possible now (Nomad only;
  /// the move must cross the package boundary to be worth anything).
  [[nodiscard]] bool can_migrate(PageId page) const noexcept;
  /// Begin a transaction moving `page` into the hole. Returns false if
  /// can_migrate() says no.
  bool start_migration(PageId page, Cycle now);
  /// Transaction plan exposed for the checker/tests: one full-page copy
  /// step whose completion mutation is the atomic commit.
  [[nodiscard]] std::vector<CopyStep> plan_txn(PageId page) const;
  [[nodiscard]] static TableMutation begin_shadow_mutation(
      PageId page, PageId dst_machine) noexcept {
    return {TableMutation::Kind::BeginShadow, 0, page, dst_machine};
  }
  [[nodiscard]] static TableMutation commit_shadow_mutation() noexcept {
    return {TableMutation::Kind::CommitShadow, 0, kInvalidPage, kInvalidPage};
  }
  [[nodiscard]] static TableMutation abort_shadow_mutation() noexcept {
    return {TableMutation::Kind::AbortShadow, 0, kInvalidPage, kInvalidPage};
  }

  // --- RAS page retirement (see DESIGN.md §11) -----------------------------
  /// Page whose data currently lives at machine frame `frame`
  /// (kInvalidPage when the frame is data-free). Served from the
  /// placement map, which every design maintains.
  [[nodiscard]] PageId resident_of(PageId frame) const noexcept;
  /// True if the occupant of `frame` can be moved off through this
  /// design's own machinery right now. False for data-free frames (retire
  /// them directly) and for placements the N-1 pairwise encoding cannot
  /// express (the caller pins those instead).
  [[nodiscard]] bool can_evacuate(PageId frame) const noexcept;
  /// Move the occupant of `frame` off it: design N bulk-copies it to
  /// `spare`; N-1/Live copy it into the empty slot and park that row's P
  /// bit forever (consuming the empty slot — the encoding's only free
  /// landing zone — so at most one N-1 retirement is absorbed); nomad
  /// runs a normal shadow transaction into the hole (`spare` unused, the
  /// caller relocates the hole afterwards). Returns false when
  /// can_evacuate() says no.
  bool start_evacuation(PageId frame, PageId spare, Cycle now);
  /// True if any remaining copy step of the in-flight swap reads or
  /// writes machine frame `frame`.
  [[nodiscard]] bool plan_touches(PageId frame) const noexcept;
  /// RAS-initiated abort of the in-flight swap (a frame it touches was
  /// flagged as failing): rolls back to the last valid step boundary.
  /// Deliberate, so it never wedges design N (the rollback is trivially
  /// valid — N applies all its mutations in the final step). Returns
  /// false when idle or wedged.
  bool abort_current(Cycle now);

  /// Feed every Background completion from either region back here.
  void on_completion(const DramCompletion& c, Region from);

  /// Plan builder exposed for unit tests (pure; does not mutate anything).
  [[nodiscard]] std::vector<CopyStep> plan_swap(PageId hot,
                                                std::uint32_t hot_sub_block,
                                                SlotId cold_slot) const;

  /// Applies one table mutation to `table` — the single definition of what
  /// each TableMutation kind means, shared between the live engine and the
  /// choreography model checker (src/verify/) so the checker can never
  /// silently diverge from the semantics it is meant to prove.
  static void apply_mutation(TranslationTable& table, const TableMutation& m);

  // --- checkpoint/restore --------------------------------------------------
  // Serializes the full mid-swap state (remaining steps with their pending
  // table mutations, chunk bookkeeping, in-flight chunk keys, retry
  // counters). Request-id keys stay valid across restore because the DRAM
  // systems serialize their id counters alongside.
  void save(snap::Writer& w) const;
  void restore(snap::Reader& r);

 private:
  struct InFlightChunk {
    std::uint64_t chunk = 0;
    bool write_phase = false;
  };

  [[nodiscard]] std::uint64_t chunk_size() const noexcept;
  void begin_step(Cycle at);
  /// Nomad: stream the given chunk byte offsets as one copy pass.
  void begin_pass(std::vector<std::uint64_t> offsets, Cycle at);
  /// Nomad: pass done — commit if clean, re-copy dirty/unfilled
  /// sub-blocks, or abort when the pass budget is exhausted.
  void finish_pass(Cycle at);
  void submit_read(std::uint64_t chunk, Cycle at);
  void submit_write(std::uint64_t chunk, Cycle at);
  void finish_step(Cycle at);
  void apply(const TableMutation& m);
  void resubmit(const InFlightChunk& fc, Cycle at);
  void handle_chunk_failure(const InFlightChunk& fc, Cycle at);
  void abort_swap(Cycle at);
  void wedge();
  void enter_degraded(Cycle at);
  /// Chunk index (in fill order) -> byte offset within the page.
  [[nodiscard]] std::uint64_t chunk_offset(std::uint64_t k) const noexcept;
  [[nodiscard]] static std::uint64_t key(Region r, RequestId id) noexcept {
    return (r == Region::OnPackage ? (1ull << 63) : 0) | id;
  }

  TranslationTable& table_;
  DramSystem& on_;
  DramSystem& off_;
  Config cfg_;  // no-snapshot(construction-time config)
  Stats stats_;

  std::vector<CopyStep> steps_;  ///< remaining steps, front = current
  /// Nomad: byte offsets streamed by the current pass (empty for the
  /// other designs, which walk chunk_offset()'s rotation instead).
  std::vector<std::uint64_t> pass_offsets_;
  unsigned pass_ = 0;  ///< Nomad: current copy pass index
  std::uint64_t chunks_total_ = 0;
  std::uint64_t next_chunk_ = 0;       ///< next chunk to start reading
  std::uint64_t chunks_completed_ = 0;
  std::uint64_t first_chunk_ = 0;  ///< rotation start (critical-first)
  std::unordered_map<std::uint64_t, InFlightChunk> inflight_;
  Cycle swap_began_ = 0;
  bool instant_ = false;

  fault::FaultInjector* injector_ = nullptr;  ///< not owned; may be null
  std::unordered_map<std::uint64_t, unsigned> retry_count_;  ///< per phase
  unsigned consecutive_aborts_ = 0;
  bool wedged_ = false;
  bool degraded_ = false;
  Cycle degraded_at_ = 0;
};

}  // namespace hmm
