#include "core/migration.hh"

#include <algorithm>

#include "fault/sim_error.hh"

namespace hmm {

namespace {
TableMutation set_row(SlotId row, PageId page) {
  return {TableMutation::Kind::SetRow, row, page, kInvalidPage};
}
TableMutation set_row_empty(SlotId row) {
  return {TableMutation::Kind::SetRowEmpty, row, kInvalidPage, kInvalidPage};
}
TableMutation set_pending(SlotId row) {
  return {TableMutation::Kind::SetPending, row, kInvalidPage, kInvalidPage};
}
TableMutation clear_pending(SlotId row) {
  return {TableMutation::Kind::ClearPending, row, kInvalidPage, kInvalidPage};
}
TableMutation note_data(PageId page, PageId machine) {
  return {TableMutation::Kind::NoteData, 0, page, machine};
}
TableMutation set_occupant(SlotId row, PageId page) {
  return {TableMutation::Kind::SetOccupant, row, page, kInvalidPage};
}
TableMutation ras_park(SlotId row) {
  return {TableMutation::Kind::RasPark, row, kInvalidPage, kInvalidPage};
}
}  // namespace

MigrationEngine::MigrationEngine(TranslationTable& table,
                                 DramSystem& on_package,
                                 DramSystem& off_package, const Config& cfg)
    : table_(table), on_(on_package), off_(off_package), cfg_(cfg) {
  HMM_CHECK((cfg.design == MigrationDesign::N) ==
                (table.mode() == TableMode::FunctionalN),
            "migration design and table mode disagree");
  HMM_CHECK((cfg.design == MigrationDesign::Nomad) ==
                (table.mode() == TableMode::Shadow),
            "nomad design requires the Shadow table mode");
}

std::uint64_t MigrationEngine::chunk_size() const noexcept {
  const Geometry& g = table_.geometry();
  if (cfg_.chunk_bytes != 0) return std::min(cfg_.chunk_bytes, g.page_bytes);
  // Auto: small enough that one chunk's data-bus hold is comparable to a
  // row miss (so demand traffic is barely perturbed, as a real controller
  // interleaving at burst granularity would behave), large enough that a
  // 4MB page copy stays within a few thousand scheduler events.
  const std::uint64_t by_page = g.page_bytes / 4096;
  return std::clamp<std::uint64_t>(by_page, 512, 4 * KiB);
}

bool MigrationEngine::can_swap(PageId hot, SlotId cold_slot) const noexcept {
  if (cfg_.design == MigrationDesign::Nomad) return false;  // use can_migrate
  if (!idle() || degraded_ || wedged_) return false;
  const Geometry& g = table_.geometry();
  if (hot >= g.total_pages() || hot == g.omega()) return false;
  if (cold_slot >= g.slots()) return false;
  const PageId cold = table_.occupant(cold_slot);
  if (cold == kInvalidPage) return false;  // the empty slot
  if (table_.pending(cold_slot)) return false;
  // Hot page must actually be off-package right now.
  const PageCategory cat = table_.category(hot);
  if (cat == PageCategory::OriginalFast || cat == PageCategory::MigratedFast)
    return false;
  if (table_.mode() == TableMode::HardwareNMinus1) {
    if (!table_.empty_slot().has_value() &&
        table_.category(hot) != PageCategory::Ghost)
      return false;
    // Exclude c == e': the victim may not be the page occupying the hot
    // page's own slot (phase 1 is about to relocate that occupant).
    if (hot < g.slots() && table_.occupant(static_cast<SlotId>(hot)) == cold)
      return false;
  }
  // RAS screening: the plan must never write into a failing or retired
  // frame, and a parked row (its left page permanently at Ω after an N-1
  // retirement) is outside the choreography for good.
  const RasFrameView* rv = table_.ras_view();
  if (rv != nullptr) {
    // Slot frames are machine frames 0..N-1, so slot id == frame id.
    if (rv->quarantined(cold_slot)) return false;
    if (cold >= g.slots() && rv->quarantined(cold)) return false;
    if (rv->quarantined(g.page_of(table_.location_of(hot)))) return false;
    if (hot < g.slots() &&
        (rv->quarantined(hot) || table_.ras_parked(static_cast<SlotId>(hot))))
      return false;
    if (table_.mode() == TableMode::HardwareNMinus1 &&
        table_.empty_slot().has_value() &&
        rv->quarantined(*table_.empty_slot()))
      return false;
  }
  return true;
}

std::vector<CopyStep> MigrationEngine::plan_swap(
    PageId hot, std::uint32_t hot_sub_block, SlotId cold_slot) const {
  const Geometry& g = table_.geometry();
  const PageId n = g.slots();
  const std::uint64_t page = g.page_bytes;
  const MachAddr omega = g.machine_base(g.omega());
  const PageId cold = table_.occupant(cold_slot);
  std::vector<CopyStep> plan;

  auto slot_base = [&](SlotId s) { return g.machine_base(s); };
  auto fill = [&](CopyStep& st, SlotId slot, PageId p, MachAddr old_base) {
    st.live_fill = cfg_.design == MigrationDesign::LiveMigration;
    st.fill_slot = slot;
    st.fill_page = p;
    st.fill_old_base = old_base;
    st.start_sub_block = cfg_.critical_first ? hot_sub_block : 0;
  };

  if (cfg_.design == MigrationDesign::N) {
    // Functional model of the basic design: a direct (buffered) exchange;
    // the controller stalls demand for the whole duration, and the table
    // is written once at the end.
    const PageId mh = g.page_of(table_.location_of(hot));
    CopyStep out;  // cold page leaves the slot
    out.src = slot_base(cold_slot);
    out.dst = g.machine_base(mh);
    out.bytes = page;
    plan.push_back(out);
    CopyStep in;  // hot page enters the slot
    in.src = g.machine_base(mh);
    in.dst = slot_base(cold_slot);
    in.bytes = page;
    in.after = {set_occupant(cold_slot, hot), note_data(hot, cold_slot),
                note_data(cold, mh)};
    plan.push_back(in);
    return plan;
  }

  // ---- N-1 / Live migration: the Fig 8 choreography -----------------------
  // Phase 1: bring the hot page on-package.
  if (hot < n && table_.occupant(static_cast<SlotId>(hot)) == kInvalidPage) {
    // The hot page is the Ghost page itself: refill its own (empty) slot.
    const auto e = static_cast<SlotId>(hot);
    CopyStep s1;
    s1.src = omega;
    s1.dst = slot_base(e);
    s1.bytes = page;
    fill(s1, e, hot, omega);
    s1.after = {set_row(e, hot), note_data(hot, hot)};
    plan.push_back(s1);
  } else if (hot >= n) {
    // Fig 8(a)/(b): hot is an Original Slow page living at its own home.
    const SlotId e = *table_.empty_slot();
    const PageId ghost = e;  // the empty row's left page is the Ghost page
    CopyStep s1;
    s1.src = g.machine_base(hot);
    s1.dst = slot_base(e);
    s1.bytes = page;
    fill(s1, e, hot, g.machine_base(hot));
    s1.after = {set_row(e, hot), set_pending(e), note_data(hot, e)};
    plan.push_back(s1);
    CopyStep s2;  // ghost page's data leaves Ω for the hot page's old home
    s2.src = omega;
    s2.dst = g.machine_base(hot);
    s2.bytes = page;
    s2.after = {clear_pending(e), note_data(ghost, hot)};
    plan.push_back(s2);
  } else {
    // Fig 8(c)/(d): hot is a Migrated Slow page; its slot is occupied by
    // partner page e' and its data lives at e's off-package home.
    const auto hslot = static_cast<SlotId>(hot);
    const PageId partner = table_.occupant(hslot);
    HMM_CHECK(partner != kInvalidPage && partner >= n,
              "Fig 8(c)/(d) swap planned without a Migrated Fast partner");
    const SlotId e = *table_.empty_slot();
    const PageId ghost = e;
    CopyStep s1;  // partner moves from the hot page's slot to the empty slot
    s1.src = slot_base(hslot);
    s1.dst = slot_base(e);
    s1.bytes = page;
    s1.after = {set_row(e, partner), set_pending(e), note_data(partner, e)};
    plan.push_back(s1);
    CopyStep s2;  // hot page comes home to its own slot
    s2.src = g.machine_base(partner);
    s2.dst = slot_base(hslot);
    s2.bytes = page;
    fill(s2, hslot, hot, g.machine_base(partner));
    s2.after = {set_row(hslot, hot), note_data(hot, hot)};
    plan.push_back(s2);
    CopyStep s3;  // ghost page's data leaves Ω for the partner's home
    s3.src = omega;
    s3.dst = g.machine_base(partner);
    s3.bytes = page;
    s3.after = {clear_pending(e), note_data(ghost, partner)};
    plan.push_back(s3);
  }

  // Phase 2: retire the cold page to Ω; its slot becomes the new empty slot.
  if (cold < n) {
    // Original Fast: slot index == page id.
    const auto cslot = static_cast<SlotId>(cold);
    CopyStep s4;
    s4.src = slot_base(cslot);
    s4.dst = omega;
    s4.bytes = page;
    s4.after = {set_row_empty(cslot), note_data(cold, g.omega())};
    plan.push_back(s4);
  } else {
    // Migrated Fast: the slot's left page parks at Ω, the cold page goes
    // back to its own home.
    const SlotId s = cold_slot;
    CopyStep s4;
    s4.src = g.machine_base(cold);  // left page's data is at cold's home
    s4.dst = omega;
    s4.bytes = page;
    s4.after = {set_pending(s), note_data(s, g.omega())};
    plan.push_back(s4);
    CopyStep s5;
    s5.src = slot_base(s);
    s5.dst = g.machine_base(cold);
    s5.bytes = page;
    s5.after = {set_row_empty(s), clear_pending(s), note_data(cold, cold)};
    plan.push_back(s5);
  }
  return plan;
}

bool MigrationEngine::can_migrate(PageId page) const noexcept {
  if (cfg_.design != MigrationDesign::Nomad) return false;
  if (!idle() || degraded_ || wedged_) return false;
  const Geometry& g = table_.geometry();
  if (page >= g.total_pages() || page == g.omega()) return false;
  // RAS screening: never stream into a failing hole (the controller
  // relocates it to a spare first) and never migrate a spare's reserved
  // identity page.
  const RasFrameView* rv = table_.ras_view();
  if (rv != nullptr &&
      (rv->quarantined(table_.hole()) || rv->reserved_spare(page)))
    return false;
  // Only cross-boundary moves change the placement: promotion into an
  // on-package hole or demotion out of the on-package region.
  const MachAddr src = table_.location_of(page);
  const MachAddr dst = g.machine_base(table_.hole());
  return g.region_of(src) != g.region_of(dst);
}

std::vector<CopyStep> MigrationEngine::plan_txn(PageId page) const {
  const Geometry& g = table_.geometry();
  CopyStep st;
  st.src = table_.location_of(page);
  st.dst = g.machine_base(table_.hole());
  st.bytes = g.page_bytes;
  // The commit is the step's ONLY mutation: one atomic table write, so a
  // crash replay lands before or after the whole transaction.
  st.after = {commit_shadow_mutation()};
  return {st};
}

bool MigrationEngine::start_migration(PageId page, Cycle now) {
  if (!can_migrate(page)) return false;
  steps_ = plan_txn(page);
  apply(begin_shadow_mutation(page, table_.hole()));
  ++stats_.swaps_started;
  swap_began_ = now;
  pass_ = 0;
  if (instant_) {
    for (const CopyStep& st : steps_)
      for (const TableMutation& m : st.after) apply(m);
    steps_.clear();
    ++stats_.swaps_completed;
    return true;
  }
  begin_step(now);
  return true;
}

bool MigrationEngine::start_swap(PageId hot, std::uint32_t hot_sub_block,
                                 SlotId cold_slot, Cycle now) {
  if (!can_swap(hot, cold_slot)) return false;
  steps_ = plan_swap(hot, hot_sub_block, cold_slot);
  HMM_CHECK(!steps_.empty(), "swap planned with no copy steps");
  ++stats_.swaps_started;
  swap_began_ = now;
  if (instant_) {
    // Fast-forward: apply the choreography's end state without copies.
    for (const CopyStep& st : steps_)
      for (const TableMutation& m : st.after) apply(m);
    steps_.clear();
    ++stats_.swaps_completed;
    return true;
  }
  begin_step(now);
  return true;
}

PageId MigrationEngine::resident_of(PageId frame) const noexcept {
  return table_.page_at(frame);
}

bool MigrationEngine::can_evacuate(PageId frame) const noexcept {
  if (!idle() || degraded_ || wedged_) return false;
  const Geometry& g = table_.geometry();
  if (frame >= g.total_pages() || frame == g.omega()) return false;
  const PageId v = resident_of(frame);
  if (v == kInvalidPage) return false;  // data-free: retire directly
  const RasFrameView* rv = table_.ras_view();
  switch (cfg_.design) {
    case MigrationDesign::N:
      return true;  // the placement map can express any relocation
    case MigrationDesign::NMinus1:
    case MigrationDesign::LiveMigration: {
      // Only two placements are expressible: an Original Slow page at its
      // failing home, or a Migrated Fast page in a failing slot. Both
      // move into the empty slot, whose row is then parked forever.
      const auto e = table_.empty_slot();
      if (!e.has_value()) return false;
      if (rv != nullptr && rv->quarantined(*e)) return false;
      if (frame >= g.slots()) return v == frame;
      const auto s = static_cast<SlotId>(frame);
      return v >= g.slots() && table_.occupant(s) == v &&
             !table_.pending(s);
    }
    case MigrationDesign::Nomad:
      return !table_.shadow_active() && v != g.omega() &&
             !(rv != nullptr && rv->quarantined(table_.hole()));
  }
  return false;
}

bool MigrationEngine::start_evacuation(PageId frame, PageId spare,
                                       Cycle now) {
  if (!can_evacuate(frame)) return false;
  const Geometry& g = table_.geometry();
  const PageId v = resident_of(frame);

  if (cfg_.design == MigrationDesign::Nomad) {
    // A perfectly ordinary shadow transaction — the occupant streams into
    // the hole while the failing frame keeps serving — except the
    // cross-package-boundary profitability rule is waived: this move is
    // for survival, not speed. The caller relocates the post-commit hole
    // (the failing frame) to a spare.
    steps_ = plan_txn(v);
    apply(begin_shadow_mutation(v, table_.hole()));
    ++stats_.swaps_started;
    swap_began_ = now;
    pass_ = 0;
  } else if (cfg_.design == MigrationDesign::N) {
    HMM_CHECK(spare != kInvalidPage && resident_of(spare) == kInvalidPage,
              "design-N evacuation needs a data-free spare frame");
    CopyStep st;
    st.src = g.machine_base(frame);
    st.dst = g.machine_base(spare);
    st.bytes = g.page_bytes;
    st.after = {note_data(v, spare)};
    if (frame < g.slots())
      st.after.push_back(
          set_occupant(static_cast<SlotId>(frame), kInvalidPage));
    steps_ = {st};
    ++stats_.swaps_started;
    swap_began_ = now;
  } else {
    // N-1 / Live: one copy into the empty slot; the landing row keeps its
    // P bit forever (parked), encoding that its left page — the ghost at
    // this instant — stays at Ω. This consumes the choreography's only
    // free landing zone, so the engine degrades once the copy completes
    // (see finish_step) and a second retirement is inexpressible.
    const SlotId e = *table_.empty_slot();
    CopyStep st;
    st.src = g.machine_base(frame);
    st.dst = g.machine_base(e);
    st.bytes = g.page_bytes;
    st.after = {set_row(e, v), set_pending(e), note_data(v, e),
                ras_park(e)};
    steps_ = {st};
    ++stats_.swaps_started;
    swap_began_ = now;
  }

  if (instant_) {
    for (const CopyStep& st : steps_)
      for (const TableMutation& m : st.after) apply(m);
    steps_.clear();
    ++stats_.swaps_completed;
    if ((cfg_.design == MigrationDesign::NMinus1 ||
         cfg_.design == MigrationDesign::LiveMigration) &&
        !table_.empty_slot().has_value())
      enter_degraded(now);
    return true;
  }
  begin_step(now);
  return true;
}

bool MigrationEngine::plan_touches(PageId frame) const noexcept {
  const Geometry& g = table_.geometry();
  for (const CopyStep& st : steps_) {
    if (g.page_of(st.src) == frame || g.page_of(st.dst) == frame)
      return true;
  }
  return false;
}

bool MigrationEngine::abort_current(Cycle now) {
  if (idle() || wedged_) return false;
  if (cfg_.design == MigrationDesign::N) {
    // Design N applies every table mutation in its final step, so
    // dropping an unfinished plan is a clean rollback — no wedge needed
    // for this *deliberate* abort (only injected mid-copy faults model
    // the design's unrecoverable hardware states).
    if (table_.fill_active()) table_.end_fill();
    steps_.clear();
    inflight_.clear();
    retry_count_.clear();
    ++stats_.swaps_aborted;
    stats_.busy_cycles += now - swap_began_;
    return true;
  }
  abort_swap(now);
  return true;
}

std::uint64_t MigrationEngine::chunk_offset(std::uint64_t k) const noexcept {
  if (!pass_offsets_.empty()) return pass_offsets_[k];
  const std::uint64_t idx = (first_chunk_ + k) % chunks_total_;
  return idx * chunk_size();
}

void MigrationEngine::begin_step(Cycle at) {
  const CopyStep& st = steps_.front();
  const std::uint64_t chunk = chunk_size();
  if (cfg_.design == MigrationDesign::Nomad) {
    // Pass 0 streams the whole page in order; finish_pass() re-streams
    // only what demand writes dirtied.
    std::vector<std::uint64_t> offsets;
    for (std::uint64_t off = 0; off < st.bytes; off += chunk)
      offsets.push_back(off);
    begin_pass(std::move(offsets), at);
    return;
  }
  chunks_total_ = std::max<std::uint64_t>(1, st.bytes / chunk);
  next_chunk_ = 0;
  chunks_completed_ = 0;
  first_chunk_ = 0;
  retry_count_.clear();
  if (st.live_fill) {
    const Geometry& g = table_.geometry();
    table_.begin_fill(st.fill_slot, st.fill_page, st.fill_old_base);
    const std::uint64_t start_byte =
        static_cast<std::uint64_t>(st.start_sub_block) * g.sub_block_bytes;
    first_chunk_ = (start_byte / chunk) % chunks_total_;
  }
  const unsigned window = std::max(1u, cfg_.copy_window);
  while (next_chunk_ < chunks_total_ && next_chunk_ < window)
    submit_read(next_chunk_++, at);
}

void MigrationEngine::begin_pass(std::vector<std::uint64_t> offsets,
                                 Cycle at) {
  HMM_CHECK(!offsets.empty(), "nomad copy pass with no chunks");
  pass_offsets_ = std::move(offsets);
  chunks_total_ = pass_offsets_.size();
  next_chunk_ = 0;
  chunks_completed_ = 0;
  first_chunk_ = 0;
  retry_count_.clear();
  const unsigned window = std::max(1u, cfg_.copy_window);
  while (next_chunk_ < chunks_total_ && next_chunk_ < window)
    submit_read(next_chunk_++, at);
}

void MigrationEngine::submit_read(std::uint64_t chunk, Cycle at) {
  const CopyStep& st = steps_.front();
  const std::uint64_t offset = chunk_offset(chunk);
  const MachAddr addr = st.src + offset;
  const Geometry& g = table_.geometry();
  if (cfg_.design == MigrationDesign::Nomad && table_.shadow_active()) {
    // A sub-block's dirty bit is cleared when the chunk holding its FIRST
    // byte is submitted for (re-)reading. Clearing at submission rather
    // than completion is conservative: a demand write racing the
    // in-flight read re-dirties the sub-block and forces another pass,
    // even if the read would have observed the new data.
    const std::uint64_t sub = g.sub_block_bytes;
    const std::uint64_t end = offset + chunk_size();
    for (std::uint64_t b = ((offset + sub - 1) / sub) * sub; b < end;
         b += sub)
      table_.shadow_clear_dirty(g.sub_block_of(b));
  }
  DramSystem& sys = g.region_of(addr) == Region::OnPackage ? on_ : off_;
  const RequestId id = sys.submit(
      addr, static_cast<std::uint32_t>(chunk_size()), AccessType::Read,
      Priority::Background, at, static_cast<int>(chunk));
  inflight_[key(sys.region(), id)] = InFlightChunk{chunk, false};
}

void MigrationEngine::submit_write(std::uint64_t chunk, Cycle at) {
  const CopyStep& st = steps_.front();
  const MachAddr addr = st.dst + chunk_offset(chunk);
  const Geometry& g = table_.geometry();
  DramSystem& sys = g.region_of(addr) == Region::OnPackage ? on_ : off_;
  const RequestId id = sys.submit(
      addr, static_cast<std::uint32_t>(chunk_size()), AccessType::Write,
      Priority::Background, at, static_cast<int>(chunk));
  inflight_[key(sys.region(), id)] = InFlightChunk{chunk, true};
}

void MigrationEngine::on_completion(const DramCompletion& c, Region from) {
  if (c.priority != Priority::Background) return;
  const auto it = inflight_.find(key(from, c.id));
  if (it == inflight_.end()) return;
  const InFlightChunk fc = it->second;
  inflight_.erase(it);

  if (injector_ != nullptr && injector_->enabled()) {
    using fault::FaultSite;
    if (injector_->fires(FaultSite::SwapAbort, fc.chunk)) {
      // The whole swap fails mid-flight. The basic N design has no
      // recovery choreography, so it wedges; N-1/Live roll back to the
      // last completed step boundary (always a valid table state).
      if (cfg_.design == MigrationDesign::N)
        wedge();
      else
        abort_swap(c.finish);
      return;
    }
    if (injector_->fires(FaultSite::MigrationChunkDrop, fc.chunk)) {
      ++stats_.chunks_dropped;
      handle_chunk_failure(fc, c.finish);
      return;
    }
    if (injector_->fires(FaultSite::MigrationChunkDelay, fc.chunk)) {
      // Transient: the chunk must be re-streamed, but costs no retry budget.
      ++stats_.chunks_delayed;
      resubmit(fc, c.finish + injector_->plan().delay_cycles);
      return;
    }
  }

  if (!fc.write_phase) {
    submit_write(fc.chunk, c.finish);
    return;
  }

  // Write landed: the chunk is complete.
  const Geometry& g = table_.geometry();
  const CopyStep& st = steps_.front();
  const std::uint64_t offset = chunk_offset(fc.chunk);
  stats_.bytes_copied += chunk_size();
  if (st.live_fill) {
    // A sub-block becomes servable only once its LAST byte has been
    // copied (chunks may be smaller than a sub-block; within a sub-block
    // chunks complete in order on the serialized channel, so last-byte
    // completion implies the whole sub-block arrived).
    const std::uint64_t sub = g.sub_block_bytes;
    const std::uint64_t end = offset + chunk_size();
    for (std::uint64_t b = (offset / sub) * sub; b < end; b += sub) {
      if (b + sub <= end) table_.mark_sub_block(g.sub_block_of(b));
    }
  } else if (cfg_.design == MigrationDesign::Nomad &&
             table_.shadow_active()) {
    // Same last-byte rule as the live fill: a sub-block counts as filled
    // once the chunk write covering its final byte lands (chunks of one
    // sub-block complete in order on the serialized channel).
    const std::uint64_t sub = g.sub_block_bytes;
    const std::uint64_t end = offset + chunk_size();
    for (std::uint64_t b = (offset / sub) * sub; b < end; b += sub) {
      if (b + sub <= end) table_.shadow_mark_filled(g.sub_block_of(b));
    }
  }
  ++chunks_completed_;
  if (next_chunk_ < chunks_total_) {
    submit_read(next_chunk_++, c.finish);
  } else if (chunks_completed_ == chunks_total_ && inflight_.empty()) {
    if (cfg_.design == MigrationDesign::Nomad)
      finish_pass(c.finish);
    else
      finish_step(c.finish);
  }
}

void MigrationEngine::resubmit(const InFlightChunk& fc, Cycle at) {
  if (fc.write_phase)
    submit_write(fc.chunk, at);
  else
    submit_read(fc.chunk, at);
}

void MigrationEngine::handle_chunk_failure(const InFlightChunk& fc, Cycle at) {
  const std::uint64_t k = (fc.chunk << 1) | (fc.write_phase ? 1u : 0u);
  const unsigned tries = ++retry_count_[k];
  if (tries <= cfg_.max_chunk_retries) {
    ++stats_.chunk_retries;
    const Cycle backoff = cfg_.retry_backoff << (tries - 1);
    resubmit(fc, at + backoff);
    return;
  }
  // Retry budget exhausted.
  if (cfg_.design == MigrationDesign::N)
    wedge();
  else
    abort_swap(at);
}

void MigrationEngine::finish_pass(Cycle at) {
  const Geometry& g = table_.geometry();
  const std::uint64_t cs = chunk_size();
  const std::uint64_t sub = g.sub_block_bytes;
  // Collect the chunk offsets covering every sub-block still unfilled or
  // dirtied by a demand write during this pass.
  std::vector<std::uint64_t> next;
  for (std::uint32_t b = 0; b < g.sub_blocks_per_page(); ++b) {
    if (table_.shadow_filled(b) && !table_.shadow_dirty(b)) continue;
    const std::uint64_t first = static_cast<std::uint64_t>(b) * sub;
    const std::uint64_t lo = (first / cs) * cs;
    for (std::uint64_t off = lo; off < first + sub; off += cs)
      if (next.empty() || next.back() < off) next.push_back(off);
  }
  if (next.empty()) {
    // Every sub-block filled and clean: the copy converged — commit.
    pass_offsets_.clear();
    pass_ = 0;
    finish_step(at);
    return;
  }
  if (pass_ + 1 >= cfg_.max_copy_passes) {
    // The writer is outrunning the copier; give up cleanly.
    abort_swap(at);
    return;
  }
  ++pass_;
  begin_pass(std::move(next), at);
}

void MigrationEngine::abort_swap(Cycle at) {
  if (cfg_.design == MigrationDesign::Nomad) {
    // Transactional rollback: one mutation discards the shadow copy and
    // the table is bit-identical to its pre-begin state (begin never
    // touched the routing). The hole is never lost, so unlike N-1 there
    // is no slot-lost degradation path — only a persistent fault storm
    // (K consecutive aborts) freezes the placement.
    if (table_.shadow_active()) apply(abort_shadow_mutation());
    steps_.clear();
    inflight_.clear();
    retry_count_.clear();
    pass_offsets_.clear();
    pass_ = 0;
    ++stats_.swaps_aborted;
    stats_.busy_cycles += at - swap_began_;
    if (++consecutive_aborts_ >= cfg_.degrade_after_aborts)
      enter_degraded(at);
    return;
  }
  // Table mutations only ever apply at step completions, so the current
  // table state *is* the last step boundary — a valid Fig-8 state where
  // every page still has exactly one data home. Rolling back is therefore
  // just discarding the unfinished remainder of the plan. A pending bit
  // left set keeps routing its row's left page to Ω, which is where that
  // page's data genuinely still lives — it must NOT be cleared here.
  if (table_.fill_active()) table_.end_fill();
  steps_.clear();
  inflight_.clear();
  retry_count_.clear();
  ++stats_.swaps_aborted;
  stats_.busy_cycles += at - swap_began_;
  ++consecutive_aborts_;
  // Aborting after the hot page claimed the empty slot permanently consumes
  // it; without an empty slot the N-1 choreography cannot start, so the
  // engine degrades immediately. Otherwise degrade only after K consecutive
  // failures (transient storms should not end migration for good).
  const bool slot_lost = table_.mode() == TableMode::HardwareNMinus1 &&
                         !table_.empty_slot().has_value();
  if (slot_lost || consecutive_aborts_ >= cfg_.degrade_after_aborts)
    enter_degraded(at);
}

void MigrationEngine::wedge() {
  // Keep steps_ populated: idle() stays false forever, demand traffic in
  // the stalled N design can never resume, and the MemSim watchdog reports
  // the wedge as a structured SimError instead of spinning.
  wedged_ = true;
  ++stats_.swaps_wedged;
  inflight_.clear();
  retry_count_.clear();
}

void MigrationEngine::enter_degraded(Cycle at) {
  if (degraded_) return;
  degraded_ = true;
  degraded_at_ = at;
}

void MigrationEngine::apply_mutation(TranslationTable& table,
                                     const TableMutation& m) {
  switch (m.kind) {
    case TableMutation::Kind::SetRow: table.set_row(m.row, m.page); break;
    case TableMutation::Kind::SetRowEmpty: table.set_row_empty(m.row); break;
    case TableMutation::Kind::SetPending: table.set_pending(m.row, true); break;
    case TableMutation::Kind::ClearPending:
      table.set_pending(m.row, false);
      break;
    case TableMutation::Kind::NoteData:
      table.note_data_at(m.page, m.machine);
      break;
    case TableMutation::Kind::SetOccupant:
      table.set_occupant(m.row, m.page);
      break;
    case TableMutation::Kind::BeginShadow:
      table.begin_shadow(m.page, m.machine);
      break;
    case TableMutation::Kind::CommitShadow: table.commit_shadow(); break;
    case TableMutation::Kind::AbortShadow: table.abort_shadow(); break;
    case TableMutation::Kind::RasPark:
      table.set_pending(m.row, true);
      table.set_ras_parked(m.row);
      break;
  }
}

void MigrationEngine::apply(const TableMutation& m) {
  ++stats_.table_updates;
  apply_mutation(table_, m);
}

void MigrationEngine::finish_step(Cycle at) {
  CopyStep st = std::move(steps_.front());
  steps_.erase(steps_.begin());
  if (st.live_fill) {
    for (const TableMutation& m : st.after) apply(m);
    table_.end_fill();
  } else {
    for (const TableMutation& m : st.after) apply(m);
  }
  if (!steps_.empty()) {
    begin_step(at);
    return;
  }
  ++stats_.swaps_completed;
  stats_.busy_cycles += at - swap_began_;
  consecutive_aborts_ = 0;
  // An N-1 retirement parked the empty slot for good: without a free
  // landing zone the choreography cannot start again, so the engine
  // degrades (placement frozen, demand still served).
  if ((cfg_.design == MigrationDesign::NMinus1 ||
       cfg_.design == MigrationDesign::LiveMigration) &&
      !table_.empty_slot().has_value())
    enter_degraded(at);
}

namespace {
void save_mutation(snap::Writer& w, const TableMutation& m) {
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.u64(m.row);
  w.u64(m.page);
  w.u64(m.machine);
}

TableMutation load_mutation(snap::Reader& r) {
  TableMutation m;
  m.kind = static_cast<TableMutation::Kind>(r.u8());
  m.row = static_cast<SlotId>(r.u64());
  m.page = r.u64();
  m.machine = r.u64();
  return m;
}
}  // namespace

void MigrationEngine::save(snap::Writer& w) const {
  w.begin_section(snap::tag('M', 'E', 'N', 'G'));
  w.u64(steps_.size());
  for (const CopyStep& s : steps_) {
    w.u64(s.src);
    w.u64(s.dst);
    w.u64(s.bytes);
    w.b(s.live_fill);
    w.u64(s.fill_slot);
    w.u64(s.fill_page);
    w.u64(s.fill_old_base);
    w.u32(s.start_sub_block);
    w.u64(s.after.size());
    for (const TableMutation& m : s.after) save_mutation(w, m);
  }
  w.u64(chunks_total_);
  w.u64(next_chunk_);
  w.u64(chunks_completed_);
  w.u64(first_chunk_);
  if (cfg_.design == MigrationDesign::Nomad) {
    // Appended only for nomad so the other designs' byte layouts (and
    // their golden snapshot CRCs) are unchanged.
    w.u32(pass_);
    w.u64(pass_offsets_.size());
    for (const std::uint64_t off : pass_offsets_) w.u64(off);
  }

  std::vector<std::pair<std::uint64_t, InFlightChunk>> fl(inflight_.begin(),
                                                          inflight_.end());
  std::sort(fl.begin(), fl.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(fl.size());
  for (const auto& [k, fc] : fl) {
    w.u64(k);
    w.u64(fc.chunk);
    w.b(fc.write_phase);
  }

  std::vector<std::pair<std::uint64_t, unsigned>> rc(retry_count_.begin(),
                                                     retry_count_.end());
  std::sort(rc.begin(), rc.end());
  w.u64(rc.size());
  for (const auto& [k, n] : rc) {
    w.u64(k);
    w.u32(n);
  }

  w.u64(swap_began_);
  w.b(instant_);
  w.u32(consecutive_aborts_);
  w.b(wedged_);
  w.b(degraded_);
  w.u64(degraded_at_);

  w.u64(stats_.swaps_started);
  w.u64(stats_.swaps_completed);
  w.u64(stats_.bytes_copied);
  w.u64(stats_.table_updates);
  w.u64(stats_.busy_cycles);
  w.u64(stats_.chunks_dropped);
  w.u64(stats_.chunks_delayed);
  w.u64(stats_.chunk_retries);
  w.u64(stats_.swaps_aborted);
  w.u64(stats_.swaps_wedged);
  w.end_section();
}

void MigrationEngine::restore(snap::Reader& r) {
  r.begin_section(snap::tag('M', 'E', 'N', 'G'));
  steps_.assign(r.u64(), CopyStep{});
  for (CopyStep& s : steps_) {
    s.src = r.u64();
    s.dst = r.u64();
    s.bytes = r.u64();
    s.live_fill = r.b();
    s.fill_slot = static_cast<SlotId>(r.u64());
    s.fill_page = r.u64();
    s.fill_old_base = r.u64();
    s.start_sub_block = r.u32();
    s.after.resize(r.u64());
    for (TableMutation& m : s.after) m = load_mutation(r);
  }
  chunks_total_ = r.u64();
  next_chunk_ = r.u64();
  chunks_completed_ = r.u64();
  first_chunk_ = r.u64();
  if (cfg_.design == MigrationDesign::Nomad) {
    pass_ = r.u32();
    pass_offsets_.assign(r.u64(), 0);
    for (std::uint64_t& off : pass_offsets_) off = r.u64();
  } else {
    pass_ = 0;
    pass_offsets_.clear();
  }

  inflight_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint64_t k = r.u64();
    InFlightChunk fc;
    fc.chunk = r.u64();
    fc.write_phase = r.b();
    inflight_.emplace(k, fc);
  }

  retry_count_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint64_t k = r.u64();
    retry_count_[k] = r.u32();
  }

  swap_began_ = r.u64();
  instant_ = r.b();
  consecutive_aborts_ = r.u32();
  wedged_ = r.b();
  degraded_ = r.b();
  degraded_at_ = r.u64();

  stats_.swaps_started = r.u64();
  stats_.swaps_completed = r.u64();
  stats_.bytes_copied = r.u64();
  stats_.table_updates = r.u64();
  stats_.busy_cycles = r.u64();
  stats_.chunks_dropped = r.u64();
  stats_.chunks_delayed = r.u64();
  stats_.chunk_retries = r.u64();
  stats_.swaps_aborted = r.u64();
  stats_.swaps_wedged = r.u64();
  r.end_section();
}

}  // namespace hmm
