// Minimal streaming JSON writer for the sweep result artifacts.
//
// Deliberately tiny (no DOM, no parsing): the runner only ever serializes
// results, and the container must not grow third-party deps. Emits
// pretty-printed UTF-8 with deterministic number formatting, so two runs
// that compute identical doubles produce byte-identical files.
#pragma once

#include "fault/sim_error.hh"
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hmm::runner {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent_width = 2)
      : os_(os), indent_width_(indent_width) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  /// Emits `"name":` inside an object; follow with a value or container.
  JsonWriter& key(std::string_view name) {
    HMM_CHECK(!stack_.empty() && stack_.back().is_object,
              "JsonWriter::key() is only valid inside an object");
    separate();
    write_string(name);
    os_ << ": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    separate();
    write_string(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    separate();
    os_ << (b ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double d) {
    separate();
    char buf[32];
    // Shortest-ish round-trippable form; deterministic for equal doubles.
    std::snprintf(buf, sizeof buf, "%.12g", d);
    os_ << buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    separate();
    os_ << v;
    return *this;
  }

  /// Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

 private:
  struct Frame {
    bool is_object = false;
    bool has_items = false;
  };

  JsonWriter& open(char c) {
    separate();
    os_ << c;
    stack_.push_back({c == '{', false});
    return *this;
  }

  JsonWriter& close(char c) {
    HMM_CHECK(!stack_.empty(),
              "JsonWriter::close() without a matching open");
    const bool had_items = stack_.back().has_items;
    stack_.pop_back();
    if (had_items) {
      os_ << '\n';
      write_indent();
    }
    os_ << c;
    if (stack_.empty()) os_ << '\n';
    return *this;
  }

  /// Emits the comma/newline/indent owed before the next item.
  void separate() {
    if (pending_key_) {  // value directly after "name": — no comma/indent
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back().has_items) os_ << ',';
    os_ << '\n';
    stack_.back().has_items = true;
    write_indent();
  }

  void write_indent() {
    for (std::size_t i = 0; i < stack_.size() * indent_width_; ++i) os_ << ' ';
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::size_t indent_width_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace hmm::runner
