#include "runner/supervisor.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define HMM_HAVE_FORK 1
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#define HMM_HAVE_FORK 0
#endif

#include "runner/journal.hh"

namespace hmm::runner {

namespace {

std::atomic<bool> g_interrupt{false};
std::atomic<bool> g_handlers_installed{false};

extern "C" void hmm_on_interrupt_signal(int) {
  // Only the lock-free atomic store: everything else (checkpointing,
  // journal flush) happens at the next poll point in ordinary code.
  g_interrupt.store(true, std::memory_order_relaxed);
}

}  // namespace

bool interrupt_requested() noexcept {
  return g_interrupt.load(std::memory_order_relaxed);
}

void request_interrupt() noexcept {
  g_interrupt.store(true, std::memory_order_relaxed);
}

void clear_interrupt() noexcept {
  g_interrupt.store(false, std::memory_order_relaxed);
}

void install_interrupt_handlers() {
  if (g_handlers_installed.exchange(true)) return;
#if HMM_HAVE_FORK
  struct sigaction sa = {};
  sa.sa_handler = hmm_on_interrupt_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, hmm_on_interrupt_signal);
  std::signal(SIGTERM, hmm_on_interrupt_signal);
#endif
}

bool process_isolation_available() noexcept { return HMM_HAVE_FORK != 0; }

namespace {

[[nodiscard]] CellResult make_unstarted_interrupted(
    const ExperimentSpec& spec) {
  CellResult cell;
  cell.key = spec.key;
  cell.ok = false;
  cell.status = "interrupted";
  cell.error = "sweep interrupted before this cell started";
  cell.attempts = 0;
  return cell;
}

}  // namespace

#if HMM_HAVE_FORK

namespace {

struct Child {
  pid_t pid = -1;
  int fd = -1;  ///< read end of the result pipe (non-blocking)
  std::size_t index = 0;
  std::chrono::steady_clock::time_point started;
  std::vector<std::uint8_t> buf;
  bool killed_for_timeout = false;
  bool term_forwarded = false;
};

void drain_pipe(Child& c) {
  std::uint8_t tmp[4096];
  for (;;) {
    const ssize_t n = ::read(c.fd, tmp, sizeof tmp);
    if (n > 0) {
      c.buf.insert(c.buf.end(), tmp, tmp + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // EOF, or EAGAIN (no data right now)
  }
}

[[nodiscard]] CellResult classify(const Child& c, int status,
                                  const ExperimentSpec& spec,
                                  double wall_seconds) {
  CellResult from_blob;
  bool have_blob = false;
  if (!c.buf.empty()) {
    try {
      snap::Reader r(c.buf);
      from_blob = decode_cell(r);
      have_blob = true;
    } catch (const fault::SimError&) {
      // Torn blob (child died mid-write): fall through to synthesis.
    }
  }

  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (have_blob && (code == 0 || code == kInterruptedExit))
      return from_blob;
    CellResult cell;
    cell.key = spec.key;
    cell.ok = false;
    cell.attempts = 1;
    cell.wall_seconds = wall_seconds;
    if (code == kInterruptedExit) {
      cell.status = "interrupted";
      cell.error = "cell interrupted (no result blob)";
    } else {
      cell.status = "error";
      cell.error = "cell process exited with code " + std::to_string(code);
    }
    return cell;
  }

  CellResult cell;
  cell.key = spec.key;
  cell.ok = false;
  cell.attempts = 1;
  cell.wall_seconds = wall_seconds;
  const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
  if (c.killed_for_timeout) {
    cell.status = "timeout";
    cell.error = "cell exceeded its wall-clock budget (killed by supervisor)";
  } else {
    cell.status = "crashed";
    cell.error = "cell process killed by signal " + std::to_string(sig);
  }
  return cell;
}

}  // namespace

void Supervisor::run(const std::vector<ExperimentSpec>& grid,
                     const std::vector<std::size_t>& todo, const CellFn& fn,
                     const DoneFn& done) {
  const unsigned jobs = opts_.jobs > 0 ? opts_.jobs : 1;
  // Kill a child only well past its own internal deadline: the child
  // classifies its own timeout cleanly; SIGKILL is the backstop for a
  // child wedged so hard it cannot even raise SimError(Timeout).
  const double hard_deadline =
      opts_.cell_timeout > 0 ? 2.0 * opts_.cell_timeout + 5.0 : 0;

  std::vector<Child> active;
  std::size_t next = 0;

  const auto spawn = [&](std::size_t index) {
    int fds[2];
    if (::pipe(fds) != 0) {
      done(index, fn(index));  // cannot isolate: degrade to inline
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      done(index, fn(index));
      return;
    }
    if (pid == 0) {
      ::close(fds[0]);
      int code = 70;  // EX_SOFTWARE: fn escaped, which it never should
      try {
        const CellResult cell = fn(index);
        snap::Writer w;
        encode_cell(w, cell);
        const std::vector<std::uint8_t>& buf = w.buffer();
        std::size_t off = 0;
        while (off < buf.size()) {
          const ssize_t n =
              ::write(fds[1], buf.data() + off, buf.size() - off);
          if (n < 0) {
            if (errno == EINTR) continue;
            break;
          }
          off += static_cast<std::size_t>(n);
        }
        code = cell.status == "interrupted" ? kInterruptedExit : 0;
        // analyze: allow(errors): forked child must _exit, never unwind
      } catch (...) {
      }
      ::close(fds[1]);
      ::_exit(code);
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    Child c;
    c.pid = pid;
    c.fd = fds[0];
    c.index = index;
    c.started = std::chrono::steady_clock::now();
    active.push_back(c);
  };

  while (!active.empty() || next < todo.size()) {
    const bool stopping = interrupt_requested();
    while (!stopping && next < todo.size() && active.size() < jobs)
      spawn(todo[next++]);

    if (stopping) {
      // Unstarted cells are reported interrupted; running children get
      // SIGTERM once and are then reaped normally (they checkpoint and
      // exit kInterruptedExit on their own).
      while (next < todo.size())
        done(todo[next], make_unstarted_interrupted(grid[todo[next]])),
            ++next;
      for (Child& c : active) {
        if (!c.term_forwarded) {
          ::kill(c.pid, SIGTERM);
          c.term_forwarded = true;
        }
      }
      if (active.empty()) break;
    }

    bool reaped_any = false;
    for (std::size_t i = 0; i < active.size();) {
      Child& c = active[i];
      drain_pipe(c);
      int status = 0;
      const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
      if (r == c.pid) {
        drain_pipe(c);  // everything the child wrote is in the pipe now
        ::close(c.fd);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          c.started)
                .count();
        done(c.index, classify(c, status, grid[c.index], wall));
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
        reaped_any = true;
        continue;
      }
      if (hard_deadline > 0 && !c.killed_for_timeout) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          c.started)
                .count();
        if (elapsed > hard_deadline) {
          c.killed_for_timeout = true;
          ::kill(c.pid, SIGKILL);
        }
      }
      ++i;
    }

    if (!reaped_any && !active.empty()) {
      struct timespec ts = {0, 2'000'000};  // 2ms
      ::nanosleep(&ts, nullptr);
    }
  }
}

#else  // !HMM_HAVE_FORK

void Supervisor::run(const std::vector<ExperimentSpec>& grid,
                     const std::vector<std::size_t>& todo, const CellFn& fn,
                     const DoneFn& done) {
  // No fork(): run the cells inline, still honouring the interrupt flag.
  for (const std::size_t index : todo) {
    if (interrupt_requested()) {
      done(index, make_unstarted_interrupted(grid[index]));
      continue;
    }
    done(index, fn(index));
  }
}

#endif  // HMM_HAVE_FORK

}  // namespace hmm::runner
