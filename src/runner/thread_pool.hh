// Fixed-size worker pool with a shared FIFO queue.
//
// Sized for the sweep workload: tens-to-hundreds of coarse jobs (each a
// full trace replay, milliseconds to seconds), so a single locked queue
// is plenty — no work stealing needed at this task granularity.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmm::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks should handle their own exceptions; anything
  /// that escapes is swallowed by the worker so the pool cannot die or
  /// deadlock mid-sweep.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals workers: task or stop
  std::condition_variable idle_cv_;  ///< signals wait_idle: all drained
  std::size_t active_ = 0;           ///< tasks currently executing
  bool stop_ = false;
};

}  // namespace hmm::runner
