// Sweep journal: durable record of completed cells, one JSONL line each.
//
// Every classified cell (ok / failed / timeout / crashed — never an
// interrupted one) is appended as
//   {"key":"fig13/FT/64KB","status":"ok","blob":"<hex>"}
// where `blob` is the hex-encoded CRC-framed binary CellResult. The key
// and status fields exist for humans and shell tooling (`grep`, `wc -l`);
// the blob alone carries the data, so --resume replays recorded cells
// with bit-identical metrics and no JSON parser is needed (the repo
// deliberately has none).
//
// Durability: each append rewrites the whole file via tmp + fsync +
// rename — a SIGKILL between cells leaves either the previous or the new
// complete journal, never a torn line. Loading still tolerates a
// truncated tail (a journal written by a future crashed-while-writing
// implementation) by stopping at the first undecodable line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hh"
#include "runner/experiment.hh"

namespace hmm::runner {

/// Serializes a CellResult (including its full RunResult) as one
/// CRC-framed snapshot section. Doubles travel as raw IEEE-754 bits, so
/// decode(encode(c)) reproduces every metric bit-exactly.
void encode_cell(snap::Writer& w, const CellResult& cell);
[[nodiscard]] CellResult decode_cell(snap::Reader& r);

/// Hex transport for blobs (lowercase, no separators).
[[nodiscard]] std::string to_hex(const std::vector<std::uint8_t>& bytes);
/// Returns false on odd length or a non-hex digit.
[[nodiscard]] bool from_hex(const std::string& hex,
                            std::vector<std::uint8_t>& out);

/// Cell key -> filesystem-safe checkpoint file stem ('/' and other
/// non-portable characters become '_').
[[nodiscard]] std::string sanitize_key(const std::string& key);

class Journal {
 public:
  /// Binds to `path` and loads any existing journal. `path` may be empty,
  /// which turns every operation into a no-op (journaling disabled).
  explicit Journal(std::string path);

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  /// Cells recovered from the file at construction, in journal order.
  [[nodiscard]] const std::vector<CellResult>& recovered() const noexcept {
    return recovered_;
  }

  /// Appends one completed cell and makes the journal durable (atomic
  /// whole-file rewrite + fsync). Returns false on I/O failure.
  bool append(const CellResult& cell);

  /// Deletes the journal file (sweep fully complete).
  void remove() noexcept;

 private:
  std::string path_;
  std::vector<std::string> lines_;  ///< rendered lines incl. recovered ones
  std::vector<CellResult> recovered_;
};

}  // namespace hmm::runner
