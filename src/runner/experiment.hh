// Declarative experiment cells for the parallel sweep runner.
//
// A bench declares its sweep as a flat vector of ExperimentSpec cells
// (workload x controller config x trace length); the ExperimentRunner
// executes each cell as an isolated job on a thread pool and returns
// CellResults in grid order, independent of scheduling.
//
// Determinism contract: every cell's RNG seed is derived as
// hash(base_seed, seed_key), never from thread identity or submission
// time, so a sweep is bit-identical whether it runs on 1 or 64 threads.
// Cells that must share a reference stream for paired comparison (e.g.
// the with/without-migration runs of one workload) set the same
// `seed_key`; by default the cell's unique `key` is used.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sim/memsim.hh"
#include "sim/run_result.hh"
#include "trace/workloads.hh"

namespace hmm::runner {

/// SplitMix64 finalizer: a well-mixed 64->64 bijection.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Per-cell seed: FNV-1a over the key, mixed with the sweep's base seed.
/// Depends only on (base_seed, key) — never on thread count or schedule.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t base_seed,
                                               std::string_view key) noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return splitmix64(h ^ splitmix64(base_seed));
}

/// One cell of a sweep grid.
struct ExperimentSpec {
  std::string key;        ///< unique, stable cell id, e.g. "fig13/FT/64KB"
  std::string seed_key;   ///< stream id; empty -> use `key`
  WorkloadInfo workload;  ///< generator factory (ignored if `job` is set)
  MemSimConfig config;
  std::uint64_t accesses = 0;
  double warmup_fraction = 0.5;
  bool instant_warmup = true;

  /// Optional override replacing the standard replay body (tests, derived
  /// cells). Receives the cell's derived seed.
  std::function<RunResult(std::uint64_t seed)> job;
};

/// Outcome of one cell. A throwing job is reported here (ok = false),
/// never propagated — one bad cell cannot take down the sweep.
struct CellResult {
  std::string key;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;
  /// Classified outcome of the last attempt:
  ///   "ok"          — completed, metrics valid
  ///   "failed"      — job threw (SimError other than Timeout, or any
  ///                   std::exception)
  ///   "timeout"     — exceeded the cell wall-clock budget
  ///   "crashed"     — isolated cell process killed by a signal (SIGSEGV...)
  ///   "error"       — isolated cell process exited abnormally (abort, OOM)
  ///   "interrupted" — sweep stopped by SIGINT/SIGTERM; a checkpoint was
  ///                   saved if checkpointing is enabled, and the cell is
  ///                   never journaled, so --resume finishes it
  std::string status = "failed";
  unsigned attempts = 0;  ///< 1 normally; 2 when the cell was retried
  double wall_seconds = 0;  ///< non-deterministic; excluded from comparisons
  RunResult result;
  /// True when this cell was replayed verbatim from a sweep journal
  /// (--resume) instead of being executed. Metrics are the recorded ones.
  bool resumed = false;
};

}  // namespace hmm::runner
