#include "runner/runner.hh"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "fault/sim_error.hh"
#include "runner/thread_pool.hh"

namespace hmm::runner {

namespace {

[[nodiscard]] unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

[[nodiscard]] double resolve_cell_timeout(double requested) {
  if (requested >= 0) return requested;
  const char* env = std::getenv("HMM_CELL_TIMEOUT");
  if (env == nullptr || *env == '\0') return 0;
  const double v = std::atof(env);
  return v > 0 ? v : 0;
}

}  // namespace

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : jobs_(resolve_jobs(opts.jobs)),
      base_seed_(opts.base_seed),
      observer_(opts.observer),
      cell_timeout_(resolve_cell_timeout(opts.cell_timeout_seconds)),
      retry_failed_(opts.retry_failed) {}

RunResult ExperimentRunner::replay(const ExperimentSpec& spec,
                                   std::uint64_t seed) {
  MemSim sim(spec.config);
  auto gen = spec.workload.make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(spec.accesses) * spec.warmup_fraction);
  if (warm > 0) {
    if (spec.instant_warmup) sim.controller().set_instant_migration(true);
    sim.run(*gen, warm);
    sim.controller().set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*gen, spec.accesses - warm);
  sim.finish();
  return sim.result();
}

CellResult ExperimentRunner::attempt(const ExperimentSpec& spec,
                                     std::uint64_t seed) const {
  CellResult cell;
  cell.key = spec.key;
  cell.seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (spec.job) {
      cell.result = spec.job(seed);
    } else if (cell_timeout_ > 0 && spec.config.max_wall_seconds <= 0) {
      ExperimentSpec bounded = spec;
      bounded.config.max_wall_seconds = cell_timeout_;
      cell.result = replay(bounded, seed);
    } else {
      cell.result = replay(spec, seed);
    }
    cell.ok = true;
    cell.status = "ok";
  } catch (const fault::SimError& e) {
    cell.error = e.what();
    cell.status =
        e.kind() == fault::SimErrorKind::Timeout ? "timeout" : "failed";
  } catch (const std::exception& e) {
    cell.error = e.what();
    cell.status = "failed";
  } catch (...) {
    cell.error = "unknown exception";
    cell.status = "failed";
  }
  cell.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return cell;
}

CellResult ExperimentRunner::execute(const ExperimentSpec& spec) const {
  const std::uint64_t seed = derive_seed(
      base_seed_, spec.seed_key.empty() ? spec.key : spec.seed_key);
  CellResult cell = attempt(spec, seed);
  cell.attempts = 1;
  if (!cell.ok && retry_failed_) {
    // One more try with the identical seed: a transient host effect (e.g.
    // a timeout on a loaded machine) clears, a deterministic failure
    // reproduces — either way the outcome is informative.
    const double first_wall = cell.wall_seconds;
    cell = attempt(spec, seed);
    cell.attempts = 2;
    cell.wall_seconds += first_wall;
  }
  return cell;
}

std::vector<CellResult> ExperimentRunner::run(
    const std::vector<ExperimentSpec>& grid) {
  const auto sweep_start = std::chrono::steady_clock::now();
  std::vector<CellResult> results(grid.size());
  RunningStat wall;
  if (observer_) observer_->on_start(grid.size(), jobs_);

  if (jobs_ <= 1 || grid.size() <= 1) {
    // Inline serial path: the exact pre-runner bench loop.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      results[i] = execute(grid[i]);
      wall.add(results[i].wall_seconds);
      if (observer_) observer_->on_cell_done(results[i], i + 1, grid.size());
    }
  } else {
    ThreadPool pool(jobs_);
    std::mutex done_mu;  // serializes completion bookkeeping + callbacks
    std::size_t done = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      pool.submit([this, &grid, &results, &wall, &done_mu, &done, i] {
        CellResult cell = execute(grid[i]);
        const std::lock_guard<std::mutex> lock(done_mu);
        wall.add(cell.wall_seconds);
        results[i] = std::move(cell);
        ++done;
        if (observer_) observer_->on_cell_done(results[i], done, grid.size());
      });
    }
    pool.wait_idle();
  }

  if (observer_) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - sweep_start)
                               .count();
    observer_->on_finish(wall, elapsed);
  }
  return results;
}

}  // namespace hmm::runner
