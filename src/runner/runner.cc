#include "runner/runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "fault/sim_error.hh"
#include "runner/journal.hh"
#include "runner/supervisor.hh"
#include "runner/thread_pool.hh"
#include "sim/checkpoint.hh"

namespace hmm::runner {

namespace {

/// Internal control-flow signal: the sweep interrupt flag rose mid-cell
/// and (when checkpointing is on) a checkpoint has been saved. Caught in
/// attempt(), never escapes the runner.
struct InterruptedRun {};

[[nodiscard]] unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

[[nodiscard]] double resolve_cell_timeout(double requested) {
  if (requested >= 0) return requested;
  const char* env = std::getenv("HMM_CELL_TIMEOUT");
  if (env == nullptr || *env == '\0') return 0;
  const double v = std::atof(env);
  return v > 0 ? v : 0;
}

[[nodiscard]] double resolve_checkpoint_interval(double requested) {
  if (requested >= 0) return requested;
  const char* env = std::getenv("HMM_CKPT_INTERVAL");
  if (env == nullptr || *env == '\0') return 30;
  const double v = std::atof(env);
  return v > 0 ? v : 0;
}

[[nodiscard]] CellResult unstarted_interrupted(const ExperimentSpec& spec) {
  CellResult cell;
  cell.key = spec.key;
  cell.ok = false;
  cell.status = "interrupted";
  cell.error = "sweep interrupted before this cell started";
  cell.attempts = 0;
  return cell;
}

}  // namespace

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : jobs_(resolve_jobs(opts.jobs)),
      base_seed_(opts.base_seed),
      observer_(opts.observer),
      cell_timeout_(resolve_cell_timeout(opts.cell_timeout_seconds)),
      retry_failed_(opts.retry_failed),
      isolation_(opts.isolation),
      journal_path_(std::move(opts.journal_path)),
      resume_(opts.resume),
      checkpoint_dir_(std::move(opts.checkpoint_dir)),
      checkpoint_interval_(
          resolve_checkpoint_interval(opts.checkpoint_interval_seconds)) {}

RunResult ExperimentRunner::replay(const ExperimentSpec& spec,
                                   std::uint64_t seed) {
  MemSim sim(spec.config);
  auto gen = spec.workload.make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(spec.accesses) * spec.warmup_fraction);
  if (warm > 0) {
    if (spec.instant_warmup) sim.set_instant_migration(true);
    sim.run(*gen, warm);
    sim.set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*gen, spec.accesses - warm);
  sim.finish();
  return sim.result();
}

RunResult ExperimentRunner::durable_replay(const ExperimentSpec& spec,
                                           std::uint64_t seed,
                                           const std::string& ckpt_path) const {
  MemSim sim(spec.config);
  auto gen = spec.workload.make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(spec.accesses) * spec.warmup_fraction);

  const std::uint64_t fp =
      checkpoint_fingerprint(spec.key, seed, spec.accesses);
  CheckpointMeta meta{fp, 0, false};
  bool restored = false;
  if (!ckpt_path.empty()) {
    if (const auto m = load_checkpoint(ckpt_path, fp, *gen, sim)) {
      meta = *m;
      restored = true;
    }
  }
  // Fresh run: arm the warm-up fast-forward replay() would arm. A restored
  // run gets the flag back from the engine snapshot instead.
  if (!restored && warm > 0 && spec.instant_warmup)
    sim.set_instant_migration(true);

  // The loop below replays exactly replay()'s sequence, in interruptible
  // chunks:   run(warm)         == chunks to `warm` + finish()
  //           reset boundary    == set_instant(false) + reset_stats()
  //           run(total - warm) == chunks to `accesses` + finish()
  //           finish()          == the final explicit drain
  constexpr std::uint64_t kChunk = 1024;
  auto last_ckpt = std::chrono::steady_clock::now();
  while (meta.accesses_done < spec.accesses ||
         (warm > 0 && !meta.stats_reset_done)) {
    if (interrupt_requested()) {
      if (!ckpt_path.empty()) save_checkpoint(ckpt_path, meta, *gen, sim);
      // analyze: allow(errors): internal control flow, classified in attempt()
      throw InterruptedRun{};
    }
    if (warm > 0 && !meta.stats_reset_done && meta.accesses_done >= warm) {
      sim.finish();
      sim.set_instant_migration(false);
      sim.reset_stats();
      meta.stats_reset_done = true;
      continue;
    }
    const std::uint64_t target =
        (warm > 0 && !meta.stats_reset_done) ? warm : spec.accesses;
    const std::uint64_t n = std::min(kChunk, target - meta.accesses_done);
    sim.run_chunk(*gen, n);
    meta.accesses_done += n;
    if (!ckpt_path.empty() && checkpoint_interval_ > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_ckpt).count() >=
          checkpoint_interval_) {
        save_checkpoint(ckpt_path, meta, *gen, sim);
        last_ckpt = now;
      }
    }
  }
  sim.finish();
  sim.finish();
  return sim.result();
}

std::string ExperimentRunner::checkpoint_path(
    const ExperimentSpec& spec) const {
  if (checkpoint_dir_.empty() || spec.job) return {};
  return checkpoint_dir_ + "/" + sanitize_key(spec.key) + ".ckpt";
}

CellResult ExperimentRunner::attempt(const ExperimentSpec& spec,
                                     std::uint64_t seed,
                                     const std::string& ckpt_path) const {
  CellResult cell;
  cell.key = spec.key;
  cell.seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (spec.job) {
      // analyze: allow(errors): internal control flow, classified below
      if (interrupt_requested()) throw InterruptedRun{};
      cell.result = spec.job(seed);
    } else if (cell_timeout_ > 0 && spec.config.max_wall_seconds <= 0) {
      ExperimentSpec bounded = spec;
      bounded.config.max_wall_seconds = cell_timeout_;
      cell.result = durable_replay(bounded, seed, ckpt_path);
    } else {
      cell.result = durable_replay(spec, seed, ckpt_path);
    }
    cell.ok = true;
    cell.status = "ok";
  } catch (const InterruptedRun&) {
    cell.status = "interrupted";
    cell.error = ckpt_path.empty() ? "interrupted"
                                   : "interrupted (checkpoint saved)";
  } catch (const fault::SimError& e) {
    cell.error = e.what();
    cell.status =
        e.kind() == fault::SimErrorKind::Timeout ? "timeout" : "failed";
  } catch (const std::exception& e) {
    cell.error = e.what();
    cell.status = "failed";
    // analyze: allow(errors): last-resort classifier marks the cell failed
  } catch (...) {
    cell.error = "unknown exception";
    cell.status = "failed";
  }
  cell.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return cell;
}

CellResult ExperimentRunner::execute(const ExperimentSpec& spec) const {
  const std::uint64_t seed = derive_seed(
      base_seed_, spec.seed_key.empty() ? spec.key : spec.seed_key);
  const std::string ckpt = checkpoint_path(spec);
  CellResult cell = attempt(spec, seed, ckpt);
  cell.attempts = 1;
  if (!cell.ok && cell.status != "interrupted" && retry_failed_) {
    // One more try with the identical seed: a transient host effect (e.g.
    // a timeout on a loaded machine) clears, a deterministic failure
    // reproduces — either way the outcome is informative.
    const double first_wall = cell.wall_seconds;
    cell = attempt(spec, seed, ckpt);
    cell.attempts = 2;
    cell.wall_seconds += first_wall;
  }
  // An interrupted cell keeps its checkpoint for --resume; any terminal
  // outcome makes the checkpoint stale.
  if (!ckpt.empty() && cell.status != "interrupted") remove_checkpoint(ckpt);
  return cell;
}

std::vector<CellResult> ExperimentRunner::run(
    const std::vector<ExperimentSpec>& grid) {
  const auto sweep_start = std::chrono::steady_clock::now();
  std::vector<CellResult> results(grid.size());
  RunningStat wall;
  std::size_t done = 0;
  if (observer_) observer_->on_start(grid.size(), jobs_);

  std::error_code ec;
  if (!journal_path_.empty()) {
    const auto parent = std::filesystem::path(journal_path_).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  }
  Journal journal(journal_path_);
  if (!checkpoint_dir_.empty())
    std::filesystem::create_directories(checkpoint_dir_, ec);

  // Resume: cells already journaled come back verbatim (bit-identical
  // metrics), everything else lands on the todo list.
  std::unordered_map<std::string, const CellResult*> recorded;
  if (resume_)
    for (const CellResult& c : journal.recovered()) recorded[c.key] = &c;
  std::vector<std::size_t> todo;
  todo.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto it = recorded.find(grid[i].key);
    if (it != recorded.end()) {
      results[i] = *it->second;
      results[i].resumed = true;
      ++done;
      if (observer_) observer_->on_cell_done(results[i], done, grid.size());
    } else {
      todo.push_back(i);
    }
  }

  // Completion bookkeeping, shared by every execution path. Single-threaded
  // everywhere except the thread-pool path, which serializes through a
  // mutex before calling in.
  const auto complete = [&](std::size_t i, CellResult cell) {
    if (cell.status != "interrupted") journal.append(cell);
    wall.add(cell.wall_seconds);
    results[i] = std::move(cell);
    ++done;
    if (observer_) observer_->on_cell_done(results[i], done, grid.size());
  };

  const bool use_process = isolation_ == Isolation::Process &&
                           process_isolation_available() && jobs_ > 1;
  if (use_process) {
    // The parent runs no worker threads in this mode, so every fork()
    // happens from a single-threaded process.
    Supervisor sup({jobs_, cell_timeout_});
    sup.run(
        grid, todo, [this, &grid](std::size_t i) { return execute(grid[i]); },
        complete);
  } else if (jobs_ <= 1 || todo.size() <= 1) {
    // Inline serial path: the exact pre-runner bench loop.
    for (const std::size_t i : todo) {
      complete(i, interrupt_requested() ? unstarted_interrupted(grid[i])
                                        : execute(grid[i]));
    }
  } else {
    ThreadPool pool(jobs_);
    std::mutex done_mu;  // serializes completion bookkeeping + callbacks
    for (const std::size_t i : todo) {
      pool.submit([this, &grid, &complete, &done_mu, i] {
        CellResult cell = interrupt_requested()
                              ? unstarted_interrupted(grid[i])
                              : execute(grid[i]);
        const std::lock_guard<std::mutex> lock(done_mu);
        complete(i, std::move(cell));
      });
    }
    pool.wait_idle();
  }

  // The journal has served its purpose once every cell is terminal; keep
  // it only when something was interrupted (that is what --resume reads).
  bool any_interrupted = false;
  for (const CellResult& c : results)
    if (c.status == "interrupted") any_interrupted = true;
  if (journal.enabled() && !any_interrupted) journal.remove();

  if (observer_) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - sweep_start)
                               .count();
    observer_->on_finish(wall, elapsed);
  }
  return results;
}

}  // namespace hmm::runner
