#include "runner/runner.hh"

#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "runner/thread_pool.hh"

namespace hmm::runner {

namespace {

[[nodiscard]] unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : jobs_(resolve_jobs(opts.jobs)),
      base_seed_(opts.base_seed),
      observer_(opts.observer) {}

RunResult ExperimentRunner::replay(const ExperimentSpec& spec,
                                   std::uint64_t seed) {
  MemSim sim(spec.config);
  auto gen = spec.workload.make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(spec.accesses) * spec.warmup_fraction);
  if (warm > 0) {
    if (spec.instant_warmup) sim.controller().set_instant_migration(true);
    sim.run(*gen, warm);
    sim.controller().set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*gen, spec.accesses - warm);
  sim.finish();
  return sim.result();
}

CellResult ExperimentRunner::execute(const ExperimentSpec& spec) const {
  CellResult cell;
  cell.key = spec.key;
  cell.seed = derive_seed(base_seed_,
                          spec.seed_key.empty() ? spec.key : spec.seed_key);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    cell.result = spec.job ? spec.job(cell.seed) : replay(spec, cell.seed);
    cell.ok = true;
  } catch (const std::exception& e) {
    cell.error = e.what();
  } catch (...) {
    cell.error = "unknown exception";
  }
  cell.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return cell;
}

std::vector<CellResult> ExperimentRunner::run(
    const std::vector<ExperimentSpec>& grid) {
  const auto sweep_start = std::chrono::steady_clock::now();
  std::vector<CellResult> results(grid.size());
  RunningStat wall;
  if (observer_) observer_->on_start(grid.size(), jobs_);

  if (jobs_ <= 1 || grid.size() <= 1) {
    // Inline serial path: the exact pre-runner bench loop.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      results[i] = execute(grid[i]);
      wall.add(results[i].wall_seconds);
      if (observer_) observer_->on_cell_done(results[i], i + 1, grid.size());
    }
  } else {
    ThreadPool pool(jobs_);
    std::mutex done_mu;  // serializes completion bookkeeping + callbacks
    std::size_t done = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      pool.submit([this, &grid, &results, &wall, &done_mu, &done, i] {
        CellResult cell = execute(grid[i]);
        const std::lock_guard<std::mutex> lock(done_mu);
        wall.add(cell.wall_seconds);
        results[i] = std::move(cell);
        ++done;
        if (observer_) observer_->on_cell_done(results[i], done, grid.size());
      });
    }
    pool.wait_idle();
  }

  if (observer_) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - sweep_start)
                               .count();
    observer_->on_finish(wall, elapsed);
  }
  return results;
}

}  // namespace hmm::runner
