// Process-level crash isolation for sweep cells, plus the sweep-wide
// interrupt flag.
//
// In Isolation::Process mode each cell runs in a fork()ed child: the cell
// body executes there, serializes its CellResult onto a pipe, and exits.
// The parent — which runs no worker threads in this mode, so the fork is
// async-signal-safe — reaps children, reads their blobs, and classifies
// every outcome:
//   exit 0               -> the child's own classification (ok/failed/...)
//   exit kInterruptedExit-> "interrupted" (checkpoint saved, resumable)
//   other exit codes     -> "error"   (e.g. std::abort via HMM_CHECK, OOM
//                           killers that exit, a bad_alloc terminate)
//   killed by a signal   -> "crashed" (SIGSEGV and friends)
//   parent deadline hit  -> "timeout" (SIGKILL after 2x the cell budget)
// A SIGSEGV in one cell therefore becomes one "crashed" row in the
// results JSON while every sibling completes — the isolation PR 1's
// thread pool could not give.
//
// The interrupt flag is process-global: install_interrupt_handlers() maps
// SIGINT/SIGTERM onto it, children inherit the handler, and the durable
// replay loop polls it between access chunks (checkpoint, then exit).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/experiment.hh"

namespace hmm::runner {

/// Exit code a child uses for "interrupted, checkpoint saved" (the BSD
/// EX_TEMPFAIL convention: retry later).
inline constexpr int kInterruptedExit = 75;

/// True once SIGINT/SIGTERM was received (or request_interrupt() called).
[[nodiscard]] bool interrupt_requested() noexcept;
/// Raises the flag programmatically (tests, embedding runners).
void request_interrupt() noexcept;
/// Clears the flag (between independent sweeps in one process / tests).
void clear_interrupt() noexcept;
/// Installs SIGINT/SIGTERM handlers that raise the flag. Idempotent.
void install_interrupt_handlers();

/// True when fork()-based isolation works on this platform.
[[nodiscard]] bool process_isolation_available() noexcept;

class Supervisor {
 public:
  struct Options {
    unsigned jobs = 1;           ///< max concurrent children
    double cell_timeout = 0;     ///< child budget in seconds; 0 = none
  };

  /// Runs `fn` inside the child for the cell at grid index `i`.
  using CellFn = std::function<CellResult(std::size_t i)>;
  /// Called in the parent, in completion order, once per scheduled index.
  using DoneFn = std::function<void(std::size_t i, CellResult cell)>;

  explicit Supervisor(Options opts) : opts_(opts) {}

  /// Executes the cells named by `todo` (indices into the caller's grid).
  /// Blocks until every scheduled child is reaped. When the interrupt
  /// flag rises, stops launching, forwards SIGTERM to running children,
  /// and reports unstarted cells as "interrupted" (not checkpointed —
  /// they never ran). Never throws past a fork.
  void run(const std::vector<ExperimentSpec>& grid,
           const std::vector<std::size_t>& todo, const CellFn& fn,
           const DoneFn& done);

 private:
  Options opts_;
};

}  // namespace hmm::runner
