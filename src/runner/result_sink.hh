// ResultSink: machine-readable sweep artifacts next to the ASCII tables.
//
// Each converted bench keeps printing its paper table to stdout and, in
// addition, hands its ordered CellResults to a ResultSink, which writes
// `<HMM_RESULTS_DIR>/<bench>.json` (default directory: ./results; set
// HMM_RESULTS_DIR="" to disable). The JSON schema is documented in
// README.md "Running sweeps"; every metric in it is deterministic for a
// fixed (grid, base seed) except the wall-time fields.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runner/experiment.hh"

namespace hmm::runner {

class ResultSink {
 public:
  /// `bench` names the artifact file: "<results_dir>/<bench>.json".
  explicit ResultSink(std::string bench);

  /// Sweep-level metadata echoed into the JSON "params" object.
  void set_param(const std::string& name, const std::string& value);
  void set_param(const std::string& name, std::uint64_t value);

  /// Attaches a derived per-cell metric (e.g. effectiveness η) that the
  /// bench computed across cells and wants persisted with `cell_key`.
  void add_derived(const std::string& cell_key, const std::string& field,
                   double value);

  /// Writes the artifact; returns its path, or "" when disabled/failed.
  /// Never throws — a bench must still print its table if the disk is
  /// read-only.
  std::string write_json(const std::vector<CellResult>& cells) const;

  /// Resolves HMM_RESULTS_DIR (default "results"); "" disables output.
  [[nodiscard]] static std::string results_dir();

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> params_;  // insert order
  std::map<std::string, std::map<std::string, double>> derived_;
};

}  // namespace hmm::runner
