// Progress reporting for long sweeps: cells done, ETA, per-job wall time.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>

#include "common/stats.hh"
#include "runner/experiment.hh"

namespace hmm::runner {

/// Observes sweep execution. Callbacks may arrive from worker threads
/// (never concurrently for on_start/on_finish; on_cell_done is serialized
/// by the runner's completion lock).
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;
  virtual void on_start(std::size_t total_cells, unsigned jobs) {
    (void)total_cells;
    (void)jobs;
  }
  virtual void on_cell_done(const CellResult& cell, std::size_t done,
                            std::size_t total) {
    (void)cell;
    (void)done;
    (void)total;
  }
  /// `wall` aggregates per-job wall time (count = cells, mean/min/max in
  /// seconds); `elapsed_seconds` is the sweep's wall-clock span.
  virtual void on_finish(const RunningStat& wall, double elapsed_seconds) {
    (void)wall;
    (void)elapsed_seconds;
  }
};

/// Prints throttled progress lines ("[12/108] fig13/FT/64KB 0.31s ETA 8s")
/// and a closing per-job timing summary. Thread-safe; reusable across
/// sweeps within one binary.
class ConsoleProgress final : public ProgressObserver {
 public:
  /// `os` is typically std::cerr so result tables on stdout stay clean.
  /// `every` throttles per-cell lines (0 = auto: ~20 lines per sweep).
  explicit ConsoleProgress(std::ostream& os, std::size_t every = 0);

  void on_start(std::size_t total_cells, unsigned jobs) override;
  void on_cell_done(const CellResult& cell, std::size_t done,
                    std::size_t total) override;
  void on_finish(const RunningStat& wall, double elapsed_seconds) override;

 private:
  std::ostream& os_;
  std::size_t every_cfg_;
  std::size_t every_ = 1;
  std::mutex mu_;
  std::chrono::steady_clock::time_point start_{};
  std::size_t failures_ = 0;
};

}  // namespace hmm::runner
