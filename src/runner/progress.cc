#include "runner/progress.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hmm::runner {

namespace {

[[nodiscard]] std::string fmt_seconds(double s) {
  char buf[32];
  if (s >= 90.0) {
    std::snprintf(buf, sizeof buf, "%dm%02ds", static_cast<int>(s) / 60,
                  static_cast<int>(s) % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", s);
  }
  return buf;
}

}  // namespace

ConsoleProgress::ConsoleProgress(std::ostream& os, std::size_t every)
    : os_(os), every_cfg_(every) {}

void ConsoleProgress::on_start(std::size_t total_cells, unsigned jobs) {
  const std::lock_guard<std::mutex> lock(mu_);
  start_ = std::chrono::steady_clock::now();
  failures_ = 0;
  every_ = every_cfg_ != 0 ? every_cfg_
                           : std::max<std::size_t>(1, total_cells / 20);
  os_ << "[runner] " << total_cells << " cells on " << jobs
      << (jobs == 1 ? " job\n" : " jobs\n");
}

void ConsoleProgress::on_cell_done(const CellResult& cell, std::size_t done,
                                   std::size_t total) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!cell.ok) ++failures_;
  if (done % every_ != 0 && done != total && cell.ok) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double eta =
      done > 0 ? elapsed * static_cast<double>(total - done) /
                     static_cast<double>(done)
               : 0.0;
  os_ << "[runner] " << done << "/" << total << "  " << cell.key << "  "
      << fmt_seconds(cell.wall_seconds);
  if (!cell.ok) os_ << "  FAILED: " << cell.error;
  if (done != total) os_ << "  ETA " << fmt_seconds(eta);
  os_ << "\n";
}

void ConsoleProgress::on_finish(const RunningStat& wall,
                                double elapsed_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  os_ << "[runner] done: " << wall.count() << " cells in "
      << fmt_seconds(elapsed_seconds) << " (per job: mean "
      << fmt_seconds(wall.mean()) << ", max " << fmt_seconds(wall.max())
      << ")";
  if (failures_ > 0) os_ << "  [" << failures_ << " FAILED]";
  os_ << "\n";
  os_.flush();
}

}  // namespace hmm::runner
