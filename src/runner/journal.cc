#include "runner/journal.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "sim/checkpoint.hh"

namespace hmm::runner {

namespace {

void encode_result(snap::Writer& w, const RunResult& r) {
  w.u64(r.accesses);
  w.f64(r.avg_latency);
  w.f64(r.avg_read_latency);
  w.f64(r.avg_write_latency);
  w.f64(r.avg_on_latency);
  w.f64(r.avg_off_latency);
  w.f64(r.p99_latency);
  w.f64(r.on_package_fraction);
  w.f64(r.off_row_hit_rate);
  w.f64(r.on_queue_delay);
  w.f64(r.off_queue_delay);
  w.u64(r.swaps);
  w.u64(r.migrated_bytes);
  w.u64(r.demand_bytes_on);
  w.u64(r.demand_bytes_off);
  w.u64(r.os_stall_cycles);
  w.u64(r.end_time);
  w.u64(r.faults_injected);
  w.u64(r.chunk_retries);
  w.u64(r.chunks_dropped);
  w.u64(r.swap_aborts);
  w.u64(r.audits);
  w.b(r.degraded);
  w.u64(r.degraded_at);
  w.u64(r.fault_events.size());
  for (const fault::FaultEvent& e : r.fault_events) {
    w.u8(static_cast<std::uint8_t>(e.site));
    w.u64(e.opportunity);
    w.u64(e.detail);
  }
  w.f64(r.energy_pj);
  w.f64(r.energy_off_only_pj);
  w.u64(r.faults_dropped);
  w.b(r.ras_enabled);
  w.u64(r.ras.demand_corrected);
  w.u64(r.ras.demand_uncorrectable);
  w.u64(r.ras.scrub_probes);
  w.u64(r.ras.scrub_corrected);
  w.u64(r.ras.scrub_uncorrectable);
  w.u64(r.ras.scrub_collisions);
  w.u64(r.ras.stuck_faults);
  w.u64(r.ras.frames_retired);
  w.u64(r.ras.frames_pinned);
  w.u64(r.ras.evacuations);
  w.u64(r.ras.evacuation_bytes);
  w.u64(r.ras.spares_used);
  w.u64(r.ras_frames_pending);
  w.u64(r.ras_spares_left);
  w.u64(r.ras_healthy_frames);
  w.u64(r.ras_retirements.size());
  for (const ras::RetirementEvent& e : r.ras_retirements) {
    w.u64(e.at);
    w.u64(e.frame);
  }
}

void decode_result(snap::Reader& rd, RunResult& r) {
  r.accesses = rd.u64();
  r.avg_latency = rd.f64();
  r.avg_read_latency = rd.f64();
  r.avg_write_latency = rd.f64();
  r.avg_on_latency = rd.f64();
  r.avg_off_latency = rd.f64();
  r.p99_latency = rd.f64();
  r.on_package_fraction = rd.f64();
  r.off_row_hit_rate = rd.f64();
  r.on_queue_delay = rd.f64();
  r.off_queue_delay = rd.f64();
  r.swaps = rd.u64();
  r.migrated_bytes = rd.u64();
  r.demand_bytes_on = rd.u64();
  r.demand_bytes_off = rd.u64();
  r.os_stall_cycles = rd.u64();
  r.end_time = rd.u64();
  r.faults_injected = rd.u64();
  r.chunk_retries = rd.u64();
  r.chunks_dropped = rd.u64();
  r.swap_aborts = rd.u64();
  r.audits = rd.u64();
  r.degraded = rd.b();
  r.degraded_at = rd.u64();
  r.fault_events.assign(rd.u64(), fault::FaultEvent{});
  for (fault::FaultEvent& e : r.fault_events) {
    e.site = static_cast<fault::FaultSite>(rd.u8());
    e.opportunity = rd.u64();
    e.detail = rd.u64();
  }
  r.energy_pj = rd.f64();
  r.energy_off_only_pj = rd.f64();
  r.faults_dropped = rd.u64();
  r.ras_enabled = rd.b();
  r.ras.demand_corrected = rd.u64();
  r.ras.demand_uncorrectable = rd.u64();
  r.ras.scrub_probes = rd.u64();
  r.ras.scrub_corrected = rd.u64();
  r.ras.scrub_uncorrectable = rd.u64();
  r.ras.scrub_collisions = rd.u64();
  r.ras.stuck_faults = rd.u64();
  r.ras.frames_retired = rd.u64();
  r.ras.frames_pinned = rd.u64();
  r.ras.evacuations = rd.u64();
  r.ras.evacuation_bytes = rd.u64();
  r.ras.spares_used = rd.u64();
  r.ras_frames_pending = rd.u64();
  r.ras_spares_left = rd.u64();
  r.ras_healthy_frames = rd.u64();
  r.ras_retirements.assign(rd.u64(), ras::RetirementEvent{});
  for (ras::RetirementEvent& e : r.ras_retirements) {
    e.at = rd.u64();
    e.frame = rd.u64();
  }
}

/// Minimal JSON string escaping for the human-readable key/status fields.
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

}  // namespace

void encode_cell(snap::Writer& w, const CellResult& cell) {
  w.begin_section(snap::tag('C', 'E', 'L', 'L'));
  w.str(cell.key);
  w.u64(cell.seed);
  w.b(cell.ok);
  w.str(cell.error);
  w.str(cell.status);
  w.u32(cell.attempts);
  w.f64(cell.wall_seconds);
  encode_result(w, cell.result);
  w.end_section();
}

CellResult decode_cell(snap::Reader& r) {
  CellResult cell;
  r.begin_section(snap::tag('C', 'E', 'L', 'L'));
  cell.key = r.str();
  cell.seed = r.u64();
  cell.ok = r.b();
  cell.error = r.str();
  cell.status = r.str();
  cell.attempts = r.u32();
  cell.wall_seconds = r.f64();
  decode_result(r, cell.result);
  r.end_section();
  return cell;
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    s += kDigits[b >> 4];
    s += kDigits[b & 0xF];
  }
  return s;
}

bool from_hex(const std::string& hex, std::vector<std::uint8_t>& out) {
  if (hex.size() % 2 != 0) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::string sanitize_key(const std::string& key) {
  std::string s;
  s.reserve(key.size());
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    s += ok ? c : '_';
  }
  return s.empty() ? std::string("cell") : s;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::ifstream is(path_);
  if (!is) return;
  std::string line;
  while (std::getline(is, line)) {
    const std::string marker = "\"blob\":\"";
    const std::size_t at = line.find(marker);
    if (at == std::string::npos) break;  // torn or foreign tail: stop here
    const std::size_t start = at + marker.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos) break;
    std::vector<std::uint8_t> blob;
    if (!from_hex(line.substr(start, end - start), blob)) break;
    try {
      snap::Reader r(blob);
      recovered_.push_back(decode_cell(r));
    } catch (const fault::SimError&) {
      break;  // CRC failure on the tail line: treat as torn
    }
    lines_.push_back(line);
  }
}

bool Journal::append(const CellResult& cell) {
  if (path_.empty()) return true;
  snap::Writer w;
  encode_cell(w, cell);
  std::ostringstream line;
  line << "{\"key\":\"" << escape_json(cell.key) << "\",\"status\":\""
       << escape_json(cell.status) << "\",\"blob\":\"" << to_hex(w.buffer())
       << "\"}";
  lines_.push_back(line.str());
  std::string body;
  for (const std::string& l : lines_) {
    body += l;
    body += '\n';
  }
  return atomic_write_file(path_, body.data(), body.size());
}

void Journal::remove() noexcept {
  if (path_.empty()) return;
  std::remove(path_.c_str());
}

}  // namespace hmm::runner
