#include "runner/thread_pool.hh"

#include <algorithm>
#include <utility>

namespace hmm::runner {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
      // analyze: allow(errors): keeps the pool alive; runner classifies
    } catch (...) {
      // Last-resort guard: the runner wraps jobs in its own try/catch, so
      // nothing should reach here; swallowing keeps the pool alive.
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hmm::runner
