// ExperimentRunner: executes a declarative sweep grid on a thread pool.
//
// Usage:
//   std::vector<ExperimentSpec> grid = ...;         // cells in print order
//   ExperimentRunner r({.jobs = bench::jobs()});
//   std::vector<CellResult> cells = r.run(grid);    // grid order, always
//
// Guarantees:
//  * results come back in grid order regardless of scheduling;
//  * cell seeds derive from (base_seed, seed key) only, so jobs=1 and
//    jobs=N produce bit-identical RunResults (wall times aside);
//  * a throwing job becomes a failed CellResult; the sweep completes;
//  * jobs=1 runs every cell inline on the calling thread — exactly the
//    serial loop the benches used before this subsystem existed.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/experiment.hh"
#include "runner/progress.hh"

namespace hmm::runner {

struct RunnerOptions {
  unsigned jobs = 0;  ///< worker threads; 0 = hardware concurrency, 1 = inline
  std::uint64_t base_seed = 42;          ///< mixed into every cell seed
  ProgressObserver* observer = nullptr;  ///< optional; callbacks serialized
  /// Per-cell wall-clock deadline in seconds; a cell exceeding it fails
  /// with status "timeout". < 0 = read the HMM_CELL_TIMEOUT environment
  /// variable (unset or 0 = no deadline).
  double cell_timeout_seconds = -1;
  /// Run a failed cell once more with the identical seed (transient host
  /// effects — e.g. a timeout on a loaded machine — get a second chance;
  /// a deterministic failure reproduces exactly).
  bool retry_failed = true;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions opts = {});

  /// Executes all cells; blocks until the grid is complete.
  [[nodiscard]] std::vector<CellResult> run(
      const std::vector<ExperimentSpec>& grid);

  /// The standard cell body: build the workload at `seed`, warm up (instant
  /// migration fast-forward), measure, return the RunResult. Public so
  /// custom jobs can wrap it.
  [[nodiscard]] static RunResult replay(const ExperimentSpec& spec,
                                        std::uint64_t seed);

  /// Resolved worker count (after the jobs=0 default).
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

 private:
  [[nodiscard]] CellResult execute(const ExperimentSpec& spec) const;
  [[nodiscard]] CellResult attempt(const ExperimentSpec& spec,
                                   std::uint64_t seed) const;

  unsigned jobs_;
  std::uint64_t base_seed_;
  ProgressObserver* observer_;
  double cell_timeout_;
  bool retry_failed_;
};

}  // namespace hmm::runner
