// ExperimentRunner: executes a declarative sweep grid on a thread pool.
//
// Usage:
//   std::vector<ExperimentSpec> grid = ...;         // cells in print order
//   ExperimentRunner r({.jobs = bench::jobs()});
//   std::vector<CellResult> cells = r.run(grid);    // grid order, always
//
// Guarantees:
//  * results come back in grid order regardless of scheduling;
//  * cell seeds derive from (base_seed, seed key) only, so jobs=1 and
//    jobs=N produce bit-identical RunResults (wall times aside);
//  * a throwing job becomes a failed CellResult; the sweep completes;
//  * jobs=1 runs every cell inline on the calling thread — exactly the
//    serial loop the benches used before this subsystem existed.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/experiment.hh"
#include "runner/progress.hh"

namespace hmm::runner {

/// How cells are executed relative to the supervising process.
enum class Isolation {
  InProcess,  ///< thread pool (or inline) in this process — PR 1 behaviour
  /// fork() one child per cell: a SIGSEGV/abort/OOM in a cell becomes a
  /// "crashed"/"error" row instead of killing the sweep. Requires POSIX
  /// and jobs > 1; otherwise falls back to InProcess.
  Process,
};

struct RunnerOptions {
  unsigned jobs = 0;  ///< worker threads; 0 = hardware concurrency, 1 = inline
  std::uint64_t base_seed = 42;          ///< mixed into every cell seed
  ProgressObserver* observer = nullptr;  ///< optional; callbacks serialized
  /// Per-cell wall-clock deadline in seconds; a cell exceeding it fails
  /// with status "timeout". < 0 = read the HMM_CELL_TIMEOUT environment
  /// variable (unset or 0 = no deadline).
  double cell_timeout_seconds = -1;
  /// Run a failed cell once more with the identical seed (transient host
  /// effects — e.g. a timeout on a loaded machine — get a second chance;
  /// a deterministic failure reproduces exactly).
  bool retry_failed = true;
  // --- durability (fields appended; callers use designated initializers) ---
  /// Crash isolation mode; Process needs POSIX fork() and jobs > 1.
  Isolation isolation = Isolation::InProcess;
  /// JSONL journal of completed cells; empty = journaling disabled. With a
  /// journal, an interrupted/killed sweep rerun with `resume = true` skips
  /// every journaled cell and replays its recorded metrics bit-identically.
  std::string journal_path = {};
  /// Skip cells already recorded in `journal_path` (marked `resumed`).
  bool resume = false;
  /// Directory for per-cell checkpoint files (<dir>/<key>.ckpt); empty =
  /// checkpointing disabled. A checkpoint is written on SIGINT/SIGTERM and
  /// every `checkpoint_interval_seconds`, and deleted when the cell ends.
  std::string checkpoint_dir = {};
  /// Periodic auto-checkpoint cadence in seconds; 0 = only on interrupt,
  /// < 0 = read HMM_CKPT_INTERVAL (unset -> 30 s).
  double checkpoint_interval_seconds = -1;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunnerOptions opts = {});

  /// Executes all cells; blocks until the grid is complete.
  [[nodiscard]] std::vector<CellResult> run(
      const std::vector<ExperimentSpec>& grid);

  /// The standard cell body: build the workload at `seed`, warm up (instant
  /// migration fast-forward), measure, return the RunResult. Public so
  /// custom jobs can wrap it.
  [[nodiscard]] static RunResult replay(const ExperimentSpec& spec,
                                        std::uint64_t seed);

  /// Resolved worker count (after the jobs=0 default).
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

 private:
  [[nodiscard]] CellResult execute(const ExperimentSpec& spec) const;
  [[nodiscard]] CellResult attempt(const ExperimentSpec& spec,
                                   std::uint64_t seed,
                                   const std::string& ckpt_path) const;
  /// replay() with durability: chunked access loop that polls the sweep
  /// interrupt flag, restores `ckpt_path` when present, and checkpoints
  /// periodically and on interrupt. Bit-identical to replay() when it
  /// runs to completion (interrupted or not, across any restore).
  [[nodiscard]] RunResult durable_replay(const ExperimentSpec& spec,
                                         std::uint64_t seed,
                                         const std::string& ckpt_path) const;
  [[nodiscard]] std::string checkpoint_path(const ExperimentSpec& spec) const;

  unsigned jobs_;
  std::uint64_t base_seed_;
  ProgressObserver* observer_;
  double cell_timeout_;
  bool retry_failed_;
  Isolation isolation_;
  std::string journal_path_;
  bool resume_;
  std::string checkpoint_dir_;
  double checkpoint_interval_;
};

}  // namespace hmm::runner
