#include "runner/result_sink.hh"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/stats.hh"
#include "runner/json.hh"
#include "sim/checkpoint.hh"

namespace hmm::runner {

ResultSink::ResultSink(std::string bench) : bench_(std::move(bench)) {}

void ResultSink::set_param(const std::string& name, const std::string& value) {
  params_.emplace_back(name, value);
}

void ResultSink::set_param(const std::string& name, std::uint64_t value) {
  params_.emplace_back(name, std::to_string(value));
}

void ResultSink::add_derived(const std::string& cell_key,
                             const std::string& field, double value) {
  derived_[cell_key][field] = value;
}

std::string ResultSink::results_dir() {
  if (const char* e = std::getenv("HMM_RESULTS_DIR")) return e;
  return "results";
}

std::string ResultSink::write_json(const std::vector<CellResult>& cells) const {
  const std::string dir = results_dir();
  if (dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  const std::string path = dir + "/" + bench_ + ".json";
  // Render to memory first: the file itself is written atomically (tmp +
  // fsync + rename), so a crash mid-sweep can never leave a torn artifact
  // that a later --resume comparison would choke on.
  std::ostringstream os;

  // Cross-cell aggregation (exercises the stats merge path): latency and
  // per-job wall-time summaries over the successful cells.
  RunningStat lat, wall;
  std::uint64_t total_accesses = 0;
  std::uint64_t failed = 0;
  std::uint64_t retried = 0;
  std::uint64_t crashed = 0;
  std::uint64_t interrupted = 0;
  std::uint64_t resumed = 0;
  for (const CellResult& c : cells) {
    RunningStat one;
    one.add(c.wall_seconds);
    wall.merge(one);
    if (c.attempts > 1) ++retried;
    if (c.resumed) ++resumed;
    if (c.status == "crashed" || c.status == "error") ++crashed;
    if (c.status == "interrupted") ++interrupted;
    if (!c.ok) {
      ++failed;
      continue;
    }
    lat.add(c.result.avg_latency);
    total_accesses += c.result.accesses;
  }

  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", bench_);
  j.kv("schema_version", 4);
  j.key("params").begin_object();
  for (const auto& [k, v] : params_) j.kv(k, v);
  j.end_object();

  j.key("cells").begin_array();
  for (const CellResult& c : cells) {
    j.begin_object();
    j.kv("key", c.key);
    j.kv("seed", c.seed);
    j.kv("ok", c.ok);
    j.kv("status", c.status);
    j.kv("attempts", static_cast<std::uint64_t>(c.attempts));
    if (c.resumed) j.kv("resumed", true);
    if (!c.ok) j.kv("error", c.error);
    j.kv("wall_seconds", c.wall_seconds);  // non-deterministic by nature
    if (c.ok) {
      const RunResult& r = c.result;
      // Simulator throughput, not simulated performance: how fast this host
      // chewed through the cell (schema v4). Non-deterministic like
      // wall_seconds; downstream diffing must ignore it.
      if (c.wall_seconds > 0)
        j.kv("accesses_per_sec",
             static_cast<double>(r.accesses) / c.wall_seconds);
      j.key("metrics").begin_object();
      j.kv("accesses", r.accesses);
      j.kv("avg_latency", r.avg_latency);
      j.kv("avg_read_latency", r.avg_read_latency);
      j.kv("avg_write_latency", r.avg_write_latency);
      j.kv("p99_latency", r.p99_latency);
      j.kv("on_package_fraction", r.on_package_fraction);
      j.kv("off_row_hit_rate", r.off_row_hit_rate);
      j.kv("swaps", r.swaps);
      j.kv("migrated_bytes", r.migrated_bytes);
      j.kv("demand_bytes_on", r.demand_bytes_on);
      j.kv("demand_bytes_off", r.demand_bytes_off);
      j.kv("energy_pj", r.energy_pj);
      j.kv("normalized_power", r.normalized_power());
      if (r.faults_injected > 0 || r.audits > 0) {
        j.kv("faults_injected", r.faults_injected);
        if (r.faults_dropped > 0)
          j.kv("faults_dropped", r.faults_dropped);
        j.kv("chunk_retries", r.chunk_retries);
        j.kv("chunks_dropped", r.chunks_dropped);
        j.kv("swap_aborts", r.swap_aborts);
        j.kv("audits", r.audits);
        j.kv("degraded", r.degraded);
        if (r.degraded)
          j.kv("degraded_at", static_cast<std::uint64_t>(r.degraded_at));
      }
      if (r.ras_enabled) {
        j.key("ras").begin_object();
        j.kv("demand_corrected", r.ras.demand_corrected);
        j.kv("demand_uncorrectable", r.ras.demand_uncorrectable);
        j.kv("scrub_probes", r.ras.scrub_probes);
        j.kv("scrub_corrected", r.ras.scrub_corrected);
        j.kv("scrub_uncorrectable", r.ras.scrub_uncorrectable);
        j.kv("scrub_collisions", r.ras.scrub_collisions);
        j.kv("stuck_faults", r.ras.stuck_faults);
        j.kv("frames_retired", r.ras.frames_retired);
        j.kv("frames_pinned", r.ras.frames_pinned);
        j.kv("frames_pending", r.ras_frames_pending);
        j.kv("evacuations", r.ras.evacuations);
        j.kv("evacuation_bytes", r.ras.evacuation_bytes);
        j.kv("spares_used", r.ras.spares_used);
        j.kv("spares_left", r.ras_spares_left);
        j.kv("healthy_frames", r.ras_healthy_frames);
        if (!r.ras_retirements.empty()) {
          j.key("retirements").begin_array();
          for (const ras::RetirementEvent& e : r.ras_retirements) {
            j.begin_object();
            j.kv("at", static_cast<std::uint64_t>(e.at));
            j.kv("frame", static_cast<std::uint64_t>(e.frame));
            j.end_object();
          }
          j.end_array();
        }
        j.end_object();
      }
      j.end_object();
      if (!r.fault_events.empty()) {
        j.key("fault_events").begin_array();
        for (const fault::FaultEvent& e : r.fault_events) {
          j.begin_object();
          j.kv("site", to_string(e.site));
          j.kv("opportunity", e.opportunity);
          j.kv("detail", e.detail);
          j.end_object();
        }
        j.end_array();
      }
    }
    if (const auto it = derived_.find(c.key); it != derived_.end()) {
      j.key("derived").begin_object();
      for (const auto& [field, value] : it->second) j.kv(field, value);
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();

  j.key("summary").begin_object();
  j.kv("cells", static_cast<std::uint64_t>(cells.size()));
  j.kv("failed", failed);
  j.kv("retried", retried);
  j.kv("crashed", crashed);
  j.kv("interrupted", interrupted);
  j.kv("resumed", resumed);
  if (lat.count() > 0) {
    j.kv("avg_latency_mean", lat.mean());
    j.kv("avg_latency_min", lat.min());
    j.kv("avg_latency_max", lat.max());
  }
  j.kv("wall_seconds_total", wall.sum());  // non-deterministic
  if (wall.sum() > 0)
    j.kv("accesses_per_sec_total",
         static_cast<double>(total_accesses) / wall.sum());
  j.end_object();
  j.end_object();
  const std::string body = os.str();
  if (!atomic_write_file(path, body.data(), body.size())) return "";
  return path;
}

}  // namespace hmm::runner
