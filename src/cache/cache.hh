// Set-associative cache model: write-back, write-allocate, selectable
// replacement policy. Tag-only (no data payload) — the simulator tracks
// hits/misses/evictions, which is all the Section II experiments need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"

namespace hmm {

enum class ReplacementPolicy : std::uint8_t { Lru, ClockPseudoLru, Random };

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * KiB;
  unsigned ways = 8;
  std::uint64_t line_bytes = 64;
  Cycle latency = 2;
  ReplacementPolicy policy = ReplacementPolicy::Lru;
};

/// Result of one cache access.
struct CacheAccess {
  bool hit = false;
  bool evicted = false;          ///< a valid line was displaced
  bool writeback = false;        ///< ... and it was dirty
  PhysAddr victim_addr = 0;      ///< line base of the displaced line
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Look up + fill-on-miss in one step (the common simulator fast path).
  CacheAccess access(PhysAddr addr, AccessType type);

  /// Look up without allocating (used for inclusive back-invalidation
  /// checks and tests).
  [[nodiscard]] bool contains(PhysAddr addr) const noexcept;

  /// Remove a line if present (inclusive-hierarchy back-invalidation).
  /// Returns true if the line was present (dirty or clean).
  bool invalidate(PhysAddr addr) noexcept;

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t sets() const noexcept { return sets_; }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const noexcept {
    return writebacks_;
  }
  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(misses_) /
                            static_cast<double>(total);
  }
  void reset_stats() noexcept { hits_ = misses_ = writebacks_ = 0; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;     ///< bigger = more recent
    std::uint8_t ref = 0;      ///< clock pseudo-LRU reference bit
  };

  [[nodiscard]] std::uint64_t set_of(PhysAddr addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(PhysAddr addr) const noexcept;
  unsigned pick_victim(std::uint64_t set) noexcept;

  CacheConfig cfg_;
  std::uint64_t sets_;
  unsigned line_shift_;
  std::vector<Line> lines_;        // sets_ * ways, row-major by set
  std::vector<unsigned> hand_;     // clock hand per set
  std::uint64_t tick_ = 0;         // LRU timestamp source
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace hmm
