#include "cache/stack_distance.hh"

#include <algorithm>
#include "fault/sim_error.hh"

#include "common/units.hh"

namespace hmm {

StackDistanceProfiler::StackDistanceProfiler(
    std::vector<std::uint64_t> capacities_lines, std::uint64_t line_bytes)
    : capacities_(std::move(capacities_lines)),
      line_shift_(log2_exact(line_bytes)),
      tree_(1 << 16, 0),
      hits_at_(capacities_.size() + 1, 0) {
  HMM_CHECK(std::is_sorted(capacities_.begin(), capacities_.end()),
            "stack-distance capacities must be sorted ascending");
}

void StackDistanceProfiler::fenwick_add(std::uint64_t pos,
                                        std::int64_t delta) noexcept {
  for (std::uint64_t i = pos + 1; i < tree_.size(); i += i & (~i + 1))
    tree_[i] += delta;
}

std::uint64_t StackDistanceProfiler::fenwick_suffix_ones(
    std::uint64_t from) const noexcept {
  // ones in [from, clock_) = total_live - prefix(from)
  std::int64_t prefix = 0;
  for (std::uint64_t i = from; i > 0; i -= i & (~i + 1)) prefix += tree_[i];
  const auto live = static_cast<std::int64_t>(last_seen_.size());
  return static_cast<std::uint64_t>(live - prefix);
}

void StackDistanceProfiler::rebuild() {
  // Renumber live positions compactly, preserving order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_time;  // ts, line
  by_time.reserve(last_seen_.size());
  // analyze: allow(determinism): collected then sorted below
  for (const auto& [line, ts] : last_seen_) by_time.emplace_back(ts, line);
  std::sort(by_time.begin(), by_time.end());

  const std::uint64_t needed = ceil_pow2(2 * (by_time.size() + 2));
  tree_.assign(std::max<std::uint64_t>(needed, 1 << 16), 0);
  clock_ = 0;
  for (const auto& [ts, line] : by_time) {
    last_seen_[line] = clock_;
    fenwick_add(clock_, 1);
    ++clock_;
  }
}

void StackDistanceProfiler::access(PhysAddr addr) {
  ++accesses_;
  const std::uint64_t line = addr >> line_shift_;

  if (clock_ + 1 >= tree_.size()) rebuild();

  const auto it = last_seen_.find(line);
  if (it == last_seen_.end()) {
    ++cold_misses_;
  } else {
    const std::uint64_t prev = it->second;
    // Distance = number of distinct lines touched strictly after prev
    // (the line itself sits at stack position `distance`).
    const std::uint64_t d = fenwick_suffix_ones(prev + 1);
    // Hit in any capacity > d.
    const auto idx = static_cast<std::size_t>(
        std::upper_bound(capacities_.begin(), capacities_.end(), d) -
        capacities_.begin());
    ++hits_at_[idx];
    fenwick_add(prev, -1);
  }
  last_seen_[line] = clock_;
  fenwick_add(clock_, 1);
  ++clock_;
}

double StackDistanceProfiler::miss_ratio(std::size_t i) const {
  HMM_CHECK(i < capacities_.size(), "capacity index out of range");
  // hits_at_[k] counts accesses whose smallest-fitting capacity index is k;
  // capacity i hits everything with index <= i.
  std::uint64_t hits = 0;
  for (std::size_t k = 0; k <= i; ++k) hits += hits_at_[k];
  if (accesses_ == 0) return 0.0;
  return 1.0 - static_cast<double>(hits) / static_cast<double>(accesses_);
}

double StackDistanceProfiler::warm_miss_ratio(std::size_t i) const {
  HMM_CHECK(i < capacities_.size(), "capacity index out of range");
  std::uint64_t hits = 0;
  for (std::size_t k = 0; k <= i; ++k) hits += hits_at_[k];
  const std::uint64_t warm = accesses_ - cold_misses_;
  if (warm == 0) return 0.0;
  return 1.0 - static_cast<double>(hits) / static_cast<double>(warm);
}

}  // namespace hmm
