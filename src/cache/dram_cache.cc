#include "cache/dram_cache.hh"

namespace hmm {

namespace {
CacheConfig l4_config(std::uint64_t raw_capacity) {
  CacheConfig cfg;
  cfg.name = "L4-DRAM";
  // 1 of every 16 lines in a row is the tag line => 15/16 usable, organised
  // as a 15-way set-associative array (Fig 1).
  cfg.size_bytes = raw_capacity / 16 * 15;
  cfg.ways = params::kL4Ways;
  cfg.line_bytes = params::kCacheLine;
  cfg.policy = ReplacementPolicy::ClockPseudoLru;
  return cfg;
}
}  // namespace

DramCache::DramCache(std::uint64_t raw_capacity, Cycle on_package_latency)
    : cache_(l4_config(raw_capacity)), lat_(on_package_latency) {}

DramCache::Result DramCache::access(PhysAddr addr, AccessType type) {
  const CacheAccess a = cache_.access(addr, type);
  Result r;
  r.hit = a.hit;
  if (a.hit) {
    // Sequential tag read, then data read from the located way.
    r.latency = 2 * lat_;
  } else {
    // The tag read alone tells us it is a miss.
    r.latency = lat_;
    r.memory_access = true;
    r.dirty_writeback = a.writeback;
  }
  return r;
}

}  // namespace hmm
