// Mattson LRU stack-distance profiler.
//
// One pass over a reference stream yields the miss ratio of a
// fully-associative LRU cache of *every* capacity simultaneously — the
// standard tool for miss-rate-vs-capacity curves (our Fig 4), and a close
// approximation for the paper's 16-way LLC.
//
// Implementation: the classic Olken structure — a Fenwick (binary indexed)
// tree over access timestamps holding a 1 for each address's most recent
// access. The reuse (stack) distance of an access is the number of ones
// after the address's previous timestamp. The tree is rebuilt (compacted)
// when timestamps outgrow it, giving amortized O(log n) per access.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hmm {

class StackDistanceProfiler {
 public:
  /// `capacities_lines`: the cache sizes (in lines) to report, ascending.
  explicit StackDistanceProfiler(std::vector<std::uint64_t> capacities_lines,
                                 std::uint64_t line_bytes = 64);

  void access(PhysAddr addr);

  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t cold_misses() const noexcept {
    return cold_misses_;
  }
  /// Distinct lines touched (the footprint in lines).
  [[nodiscard]] std::uint64_t distinct_lines() const noexcept {
    return last_seen_.size();
  }

  /// Miss ratio of an LRU cache with capacity capacities[i] lines.
  [[nodiscard]] double miss_ratio(std::size_t i) const;

  /// Miss ratio excluding compulsory (first-touch) misses — the
  /// steady-state rate a long-running workload would show. Scaled traces
  /// underestimate re-reference, so warm rates are the comparable metric.
  [[nodiscard]] double warm_miss_ratio(std::size_t i) const;
  [[nodiscard]] const std::vector<std::uint64_t>& capacities() const noexcept {
    return capacities_;
  }

 private:
  void rebuild();
  void fenwick_add(std::uint64_t pos, std::int64_t delta) noexcept;
  [[nodiscard]] std::uint64_t fenwick_suffix_ones(
      std::uint64_t from) const noexcept;

  std::vector<std::uint64_t> capacities_;
  unsigned line_shift_;
  std::vector<std::int64_t> tree_;  // 1-based Fenwick array
  std::uint64_t clock_ = 0;         // next timestamp (0-based position)
  std::unordered_map<std::uint64_t, std::uint64_t> last_seen_;  // line -> ts
  std::vector<std::uint64_t> hits_at_;  // first-capacity-bucket counters
  std::uint64_t accesses_ = 0;
  std::uint64_t cold_misses_ = 0;
};

}  // namespace hmm
