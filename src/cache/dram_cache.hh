// The on-package DRAM L4 cache alternative the paper argues against
// (Sections I-II): commodity DRAM dies carry no dedicated tag arrays, so
// each 16-line DRAM row stores 1 line of tags + 15 lines of data, and the
// tags must be read *before* the data:
//
//   hit  = tag access + data access = 2x on-package latency (140 cycles)
//   miss = tag access               = 1x on-package latency  (70 cycles)
//          ... followed by the off-package memory access.
#pragma once

#include <cstdint>

#include "cache/cache.hh"
#include "common/params.hh"
#include "common/types.hh"

namespace hmm {

class DramCache {
 public:
  /// `raw_capacity` is the physical DRAM size; 1/16 of it holds tags, so
  /// the usable data capacity is 15/16 of it.
  explicit DramCache(
      std::uint64_t raw_capacity = params::kSec2OnPackageCapacity,
                     Cycle on_package_latency = params::kOnPackageFixedLatency);

  struct Result {
    bool hit = false;
    Cycle latency = 0;           ///< L4-side latency (excl. memory on miss)
    bool memory_access = false;  ///< miss: line must come from off-package
    bool dirty_writeback = false;
  };

  Result access(PhysAddr addr, AccessType type);

  [[nodiscard]] double miss_rate() const noexcept { return cache_.miss_rate(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return cache_.hits(); }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return cache_.misses();
  }
  [[nodiscard]] Cycle hit_latency() const noexcept { return 2 * lat_; }
  [[nodiscard]] Cycle miss_determination_latency() const noexcept {
    return lat_;
  }

 private:
  Cache cache_;
  Cycle lat_;
};

}  // namespace hmm
