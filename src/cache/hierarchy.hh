// The Section II cache hierarchy: per-core private L1/L2 and a shared,
// inclusive L3 (Table II: 32KB/8w/2c, 256KB/8w/5c, 8MB/16w/25c).
//
// Inclusive L3: evicting an L3 line back-invalidates every private copy,
// as the paper's "shared inclusive 8MB L3" implies.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "common/params.hh"
#include "common/types.hh"

namespace hmm {

struct HierarchyResult {
  unsigned hit_level = 0;  ///< 1..3, or 4 = missed everything (memory)
  Cycle lookup_latency = 0;  ///< summed lookup latencies down to the hit
  bool memory_access = false;  ///< L3 missed: main memory must be accessed
  bool memory_write = false;   ///< the memory access is a dirty writeback
};

class CacheHierarchy {
 public:
  /// Builds the Table II hierarchy for `cores` cores.
  explicit CacheHierarchy(unsigned cores = params::kNumCores);
  /// Custom geometry (tests / sensitivity studies).
  CacheHierarchy(unsigned cores, const CacheConfig& l1, const CacheConfig& l2,
                 const CacheConfig& l3);

  HierarchyResult access(CpuId cpu, PhysAddr addr, AccessType type);

  [[nodiscard]] unsigned cores() const noexcept {
    return static_cast<unsigned>(l1_.size());
  }
  [[nodiscard]] const Cache& l1(CpuId c) const noexcept { return l1_[c]; }
  [[nodiscard]] const Cache& l2(CpuId c) const noexcept { return l2_[c]; }
  [[nodiscard]] const Cache& l3() const noexcept { return l3_; }
  [[nodiscard]] std::uint64_t back_invalidations() const noexcept {
    return back_invalidations_;
  }

 private:
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
  std::uint64_t back_invalidations_ = 0;
};

}  // namespace hmm
