#include "cache/cache.hh"

#include "fault/sim_error.hh"

namespace hmm {

Cache::Cache(const CacheConfig& cfg)
    : cfg_(cfg),
      sets_(cfg.size_bytes / (cfg.line_bytes * cfg.ways)),
      line_shift_(log2_exact(cfg.line_bytes)),
      lines_(sets_ * cfg.ways),
      hand_(sets_, 0) {
  HMM_CHECK(sets_ > 0 && is_pow2(sets_),
            "cache geometry must yield a power-of-two set count");
}

std::uint64_t Cache::set_of(PhysAddr addr) const noexcept {
  return (addr >> line_shift_) & (sets_ - 1);
}

std::uint64_t Cache::tag_of(PhysAddr addr) const noexcept {
  return (addr >> line_shift_) / sets_;
}

unsigned Cache::pick_victim(std::uint64_t set) noexcept {
  Line* base = &lines_[set * cfg_.ways];
  // Invalid way first.
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (!base[w].valid) return w;

  switch (cfg_.policy) {
    case ReplacementPolicy::Lru: {
      unsigned victim = 0;
      for (unsigned w = 1; w < cfg_.ways; ++w)
        if (base[w].lru < base[victim].lru) victim = w;
      return victim;
    }
    case ReplacementPolicy::ClockPseudoLru: {
      unsigned& hand = hand_[set];
      for (unsigned step = 0; step < 2 * cfg_.ways; ++step) {
        const unsigned w = hand;
        hand = (hand + 1) % cfg_.ways;
        if (base[w].ref) {
          base[w].ref = 0;
          continue;
        }
        return w;
      }
      return hand;
    }
    case ReplacementPolicy::Random: {
      rng_ ^= rng_ << 13;
      rng_ ^= rng_ >> 7;
      rng_ ^= rng_ << 17;
      return static_cast<unsigned>(rng_ % cfg_.ways);
    }
  }
  return 0;
}

CacheAccess Cache::access(PhysAddr addr, AccessType type) {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  ++tick_;

  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = tick_;
      l.ref = 1;
      if (type == AccessType::Write) l.dirty = true;
      ++hits_;
      return CacheAccess{true, false, false, 0};
    }
  }

  ++misses_;
  const unsigned w = pick_victim(set);
  Line& l = base[w];
  CacheAccess r;
  r.hit = false;
  if (l.valid) {
    r.evicted = true;
    r.writeback = l.dirty;
    if (l.dirty) ++writebacks_;
    r.victim_addr = ((l.tag * sets_ + set) << line_shift_);
  }
  l.valid = true;
  l.tag = tag;
  l.dirty = type == AccessType::Write;
  l.lru = tick_;
  l.ref = 1;
  return r;
}

bool Cache::contains(PhysAddr addr) const noexcept {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

bool Cache::invalidate(PhysAddr addr) noexcept {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (unsigned w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.valid = false;
      l.dirty = false;
      return true;
    }
  }
  return false;
}

}  // namespace hmm
