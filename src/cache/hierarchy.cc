#include "cache/hierarchy.hh"

namespace hmm {

namespace {
CacheConfig l1_default() {
  return CacheConfig{"L1", params::kL1Size, params::kL1Ways,
                     params::kCacheLine, params::kL1Latency,
                     ReplacementPolicy::Lru};
}
CacheConfig l2_default() {
  return CacheConfig{"L2", params::kL2Size, params::kL2Ways,
                     params::kCacheLine, params::kL2Latency,
                     ReplacementPolicy::Lru};
}
CacheConfig l3_default() {
  return CacheConfig{"L3", params::kL3Size, params::kL3Ways,
                     params::kCacheLine, params::kL3Latency,
                     ReplacementPolicy::Lru};
}
}  // namespace

CacheHierarchy::CacheHierarchy(unsigned cores)
    : CacheHierarchy(cores, l1_default(), l2_default(), l3_default()) {}

CacheHierarchy::CacheHierarchy(unsigned cores, const CacheConfig& l1,
                               const CacheConfig& l2, const CacheConfig& l3)
    : l3_(l3) {
  l1_.reserve(cores);
  l2_.reserve(cores);
  for (unsigned i = 0; i < cores; ++i) {
    l1_.emplace_back(l1);
    l2_.emplace_back(l2);
  }
}

HierarchyResult CacheHierarchy::access(CpuId cpu, PhysAddr addr,
                                       AccessType type) {
  HierarchyResult r;
  Cache& l1 = l1_[cpu];
  Cache& l2 = l2_[cpu];

  r.lookup_latency += l1.config().latency;
  if (l1.access(addr, type).hit) {
    r.hit_level = 1;
    return r;
  }

  r.lookup_latency += l2.config().latency;
  const CacheAccess a2 = l2.access(addr, type);
  if (a2.hit) {
    r.hit_level = 2;
    return r;
  }

  r.lookup_latency += l3_.config().latency;
  const CacheAccess a3 = l3_.access(addr, type);
  if (a3.hit) {
    r.hit_level = 3;
    return r;
  }

  // L3 miss -> main memory. Inclusive hierarchy: the displaced L3 line is
  // purged from every private cache.
  r.hit_level = 4;
  r.memory_access = true;
  r.memory_write = a3.writeback;
  if (a3.evicted) {
    for (unsigned c = 0; c < l1_.size(); ++c) {
      if (l1_[c].invalidate(a3.victim_addr)) ++back_invalidations_;
      if (l2_[c].invalidate(a3.victim_addr)) ++back_invalidations_;
    }
  }
  return r;
}

}  // namespace hmm
