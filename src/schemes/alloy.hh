// Alloy-style direct-mapped line cache (Qureshi & Loh, MICRO'12 flavour).
//
// The on-package DRAM is a tag-with-data (TAD) cache of the off-package
// backing store: one cache line per set, tag and data fetched in a single
// on-package access (no separate tag array, no associativity, and no
// migration choreography at all). A hit is served on-package; a miss pays
// the miss-determination probe, is served from the off-package home, and
// streams a background fill into the set (plus a dirty-victim writeback).
//
// Adaptation notes: the backing store is the identity machine mapping of
// the whole physical space (the same convention Force::AllOffPackage
// uses), and the line size is the L3 line (64B) — the TAD unit the Alloy
// paper co-locates with its tag.
#pragma once

#include <string>

#include "ras/ras.hh"
#include "schemes/line_cache.hh"
#include "schemes/scheme.hh"

namespace hmm::schemes {

class AlloyScheme final : public MemoryScheme {
 public:
  AlloyScheme(const SchemeConfig& cfg, DramSystem& on_package,
              DramSystem& off_package);

  [[nodiscard]] const char* name() const noexcept override {
    return "Alloy";
  }
  [[nodiscard]] SchemeDecision on_access(PhysAddr addr, AccessType type,
                                         Cycle now) override;
  [[nodiscard]] Route translate(PhysAddr addr) const override;
  void on_background_completion(const DramCompletion&,
                                Region) override {}
  [[nodiscard]] bool background_idle() const noexcept override {
    return true;  // fills are fire-and-forget writes
  }
  void set_instant(bool on) override { instant_ = on; }
  void set_fault_injector(fault::FaultInjector* inj) override {
    injector_ = inj;
  }
  void set_ras(ras::RasEngine* ras) override { ras_ = ras; }
  [[nodiscard]] SchemeMetrics metrics() const override;
  void save(snap::Writer& w) const override;
  void restore(snap::Reader& r) override;
  [[nodiscard]] std::string audit_check() const override;

  /// Test hook: the tag store, so auditor tests can corrupt it.
  [[nodiscard]] LineCache& cache_for_test() noexcept { return cache_; }

 private:
  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t fill_bytes = 0;
    std::uint64_t writeback_bytes = 0;
  };

  /// Service one pending frame retirement: purge a failing cache frame's
  /// sets (writing dirty victims back) or remap a failing backing frame
  /// onto a spare.
  void ras_service(Cycle now);
  /// Machine frame holding the cache set (sets are on-package identity).
  [[nodiscard]] PageId cache_frame_of(std::uint64_t set) const noexcept {
    return (set * cache_.line_bytes()) >> geom_.page_shift();
  }
  /// Off-package backing address of `addr`, through the RAS remap table.
  [[nodiscard]] MachAddr backing_of(PhysAddr addr) const noexcept;

  Geometry geom_;  // no-snapshot(construction-time config)
  DramSystem& on_;
  DramSystem& off_;
  LineCache cache_;
  Stats stats_;
  bool instant_ = false;
  fault::FaultInjector* injector_ = nullptr;  ///< not owned; may be null
  ras::RasEngine* ras_ = nullptr;  ///< not owned; may be null
};

}  // namespace hmm::schemes
