// Name -> factory registry for the scheme zoo.
//
// One deterministic, ordered list of scheme names; a factory that builds
// any of them from one SchemeConfig; and a structured error for unknown
// names (a SimError that lists the valid schemes, so a CLI typo in a
// bench grid fails with a usable message instead of an abort).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/sim_error.hh"
#include "schemes/scheme.hh"

namespace hmm::schemes {

/// Registered scheme names, in the canonical bench order:
/// N, N-1, Live, nomad, Alloy, flat-HMA, MemCache.
[[nodiscard]] const std::vector<std::string>& scheme_names();

/// The structured unknown-name error (kind CheckFailed), naming every
/// valid scheme. Shared by make_scheme() and CLI validation so the two
/// paths can never drift apart.
[[nodiscard]] fault::SimError unknown_scheme_error(const std::string& name);

/// Throws unknown_scheme_error(name) unless `name` is registered.
void validate_scheme_name(const std::string& name);

/// Builds the named scheme. For the swap designs the controller design
/// is forced to match the name, so `cfg.controller.design` never has to
/// be kept in sync by callers. Throws unknown_scheme_error() on a name
/// that is not registered.
[[nodiscard]] std::unique_ptr<MemoryScheme> make_scheme(
    const std::string& name, const SchemeConfig& cfg,
    DramSystem& on_package, DramSystem& off_package);

}  // namespace hmm::schemes
