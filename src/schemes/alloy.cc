#include "schemes/alloy.hh"

#include "common/params.hh"

namespace hmm::schemes {

AlloyScheme::AlloyScheme(const SchemeConfig& cfg, DramSystem& on_package,
                         DramSystem& off_package)
    : geom_(cfg.controller.geom),
      on_(on_package),
      off_(off_package),
      cache_(cfg.controller.geom.on_package_bytes, params::kCacheLine) {}

SchemeDecision AlloyScheme::on_access(PhysAddr addr, AccessType type,
                                      Cycle now) {
  SchemeDecision d;
  ++stats_.accesses;

  if (injector_ != nullptr &&
      injector_->fires(fault::FaultSite::HotnessCorrupt,
                       geom_.page_of(addr))) {
    // A transient scrambles one tag entry. Dropping the set is the benign
    // outcome: at worst a spurious refill, never a wrong route.
    cache_.invalidate_set(
        injector_->payload_rng().bounded64(cache_.sets()));
  }

  const LineCache::Lookup lk =
      cache_.access(addr, type == AccessType::Write);
  const std::uint64_t line = cache_.line_bytes();
  if (lk.hit) {
    // Tag-with-data: the probe IS the access — no extra latency.
    ++stats_.hits;
    d.route.region = Region::OnPackage;
    d.route.mach = lk.set * line + addr % line;
    return d;
  }

  // Miss: the on-package probe that discovered it costs one access, then
  // the demand is served from the identity off-package home.
  d.route.region = Region::OffPackage;
  d.route.mach = addr;
  d.extra_latency = params::kL4MissDetermination;
  if (!instant_) {
    // Background fill of the TAD (and the dirty victim's writeback) steal
    // bandwidth exactly like migration chunks do.
    const std::uint32_t bytes = static_cast<std::uint32_t>(line);
    on_.submit(lk.set * line, bytes, AccessType::Write,
               Priority::Background, now + d.extra_latency);
    stats_.fill_bytes += line;
    if (lk.victim_valid && lk.victim_dirty) {
      off_.submit(lk.victim_addr, bytes, AccessType::Write,
                  Priority::Background, now + d.extra_latency);
      stats_.writeback_bytes += line;
    }
  }
  return d;
}

Route AlloyScheme::translate(PhysAddr addr) const {
  Route r;
  if (cache_.present(addr)) {
    const std::uint64_t line = cache_.line_bytes();
    r.region = Region::OnPackage;
    r.mach = cache_.set_of(addr) * line + addr % line;
  } else {
    r.region = Region::OffPackage;
    r.mach = addr;
  }
  return r;
}

SchemeMetrics AlloyScheme::metrics() const {
  SchemeMetrics m;
  m.on_package_fraction =
      stats_.accesses == 0 ? 0.0
                           : static_cast<double>(stats_.hits) /
                                 static_cast<double>(stats_.accesses);
  m.migrated_bytes = stats_.fill_bytes + stats_.writeback_bytes;
  return m;
}

std::string AlloyScheme::audit_check() const {
  const std::string err = cache_.validate();
  if (!err.empty()) return "alloy tag store: " + err;
  return {};
}

void AlloyScheme::save(snap::Writer& w) const {
  cache_.save(w);
  w.begin_section(snap::tag('A', 'L', 'O', 'Y'));
  w.u64(stats_.accesses);
  w.u64(stats_.hits);
  w.u64(stats_.fill_bytes);
  w.u64(stats_.writeback_bytes);
  w.b(instant_);
  w.end_section();
}

void AlloyScheme::restore(snap::Reader& r) {
  cache_.restore(r);
  r.begin_section(snap::tag('A', 'L', 'O', 'Y'));
  stats_.accesses = r.u64();
  stats_.hits = r.u64();
  stats_.fill_bytes = r.u64();
  stats_.writeback_bytes = r.u64();
  instant_ = r.b();
  r.end_section();
}

}  // namespace hmm::schemes
