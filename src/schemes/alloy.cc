#include "schemes/alloy.hh"

#include "common/params.hh"

namespace hmm::schemes {

AlloyScheme::AlloyScheme(const SchemeConfig& cfg, DramSystem& on_package,
                         DramSystem& off_package)
    : geom_(cfg.controller.geom),
      on_(on_package),
      off_(off_package),
      cache_(cfg.controller.geom.on_package_bytes, params::kCacheLine) {}

SchemeDecision AlloyScheme::on_access(PhysAddr addr, AccessType type,
                                      Cycle now) {
  SchemeDecision d;
  ++stats_.accesses;
  if (ras_ != nullptr) ras_service(now);

  if (injector_ != nullptr &&
      injector_->fires(fault::FaultSite::HotnessCorrupt,
                       geom_.page_of(addr))) {
    // A transient scrambles one tag entry. Dropping the set is the benign
    // outcome: at worst a spurious refill, never a wrong route.
    cache_.invalidate_set(
        injector_->payload_rng().bounded64(cache_.sets()));
  }

  const std::uint64_t line = cache_.line_bytes();
  if (ras_ != nullptr && ras_->quarantined(cache_frame_of(
                             cache_.set_of(addr)))) {
    // The set lives in a failing cache frame: a still-present line may be
    // served while the frame awaits purging, but nothing new installs
    // there — the miss bypasses the cache to the backing home.
    if (cache_.present(addr)) {
      const LineCache::Lookup hit =
          cache_.access(addr, type == AccessType::Write);
      ++stats_.hits;
      d.route.region = Region::OnPackage;
      d.route.mach = hit.set * line + addr % line;
    } else {
      d.route.region = Region::OffPackage;
      d.route.mach = backing_of(addr);
      d.extra_latency = params::kL4MissDetermination;
    }
    return d;
  }

  const LineCache::Lookup lk =
      cache_.access(addr, type == AccessType::Write);
  if (lk.hit) {
    // Tag-with-data: the probe IS the access — no extra latency.
    ++stats_.hits;
    d.route.region = Region::OnPackage;
    d.route.mach = lk.set * line + addr % line;
    return d;
  }

  // Miss: the on-package probe that discovered it costs one access, then
  // the demand is served from the off-package home (the identity frame,
  // or its RAS spare stand-in once the home is retired).
  d.route.region = Region::OffPackage;
  d.route.mach = backing_of(addr);
  d.extra_latency = params::kL4MissDetermination;
  if (!instant_) {
    // Background fill of the TAD (and the dirty victim's writeback) steal
    // bandwidth exactly like migration chunks do.
    const std::uint32_t bytes = static_cast<std::uint32_t>(line);
    on_.submit(lk.set * line, bytes, AccessType::Write,
               Priority::Background, now + d.extra_latency);
    stats_.fill_bytes += line;
    if (lk.victim_valid && lk.victim_dirty) {
      off_.submit(backing_of(lk.victim_addr), bytes, AccessType::Write,
                  Priority::Background, now + d.extra_latency);
      stats_.writeback_bytes += line;
    }
  }
  return d;
}

void AlloyScheme::ras_service(Cycle now) {
  if (!ras_->has_pending()) return;
  const PageId f = ras_->next_pending();
  const std::uint64_t line = cache_.line_bytes();
  const MachAddr base = geom_.machine_base(f);
  if (geom_.region_of(base) == Region::OnPackage) {
    // The frame's cache role: purge its sets so nothing is served from
    // it again; dirty victims stream back to their backing homes.
    const std::uint64_t per = geom_.page_bytes / line;
    for (std::uint64_t s = f * per; s < (f + 1) * per; ++s) {
      const LineCache::Purged p = cache_.purge_set(s);
      if (p.valid && p.dirty) {
        if (!instant_)
          off_.submit(backing_of(p.addr), static_cast<std::uint32_t>(line),
                      AccessType::Write, Priority::Background, now);
        stats_.writeback_bytes += line;
      }
    }
  }
  // The frame's backing role: the backing store identity-maps the whole
  // physical space, so every frame id is also some page's home. Remap it
  // onto a spare; a dry pool pins the frame in place (its cache sets, if
  // any, stay purged and screened).
  const std::optional<PageId> spare = ras_->remap_frame(f, now);
  if (!spare.has_value()) {
    ras_->pin_frame(f);
    return;
  }
  if (!instant_) {
    const auto bytes = static_cast<std::uint32_t>(geom_.page_bytes);
    DramSystem& src =
        geom_.region_of(base) == Region::OnPackage ? on_ : off_;
    src.submit(base, bytes, AccessType::Read, Priority::Background, now);
    off_.submit(geom_.machine_base(*spare), bytes, AccessType::Write,
                Priority::Background, now);
  }
}

MachAddr AlloyScheme::backing_of(PhysAddr addr) const noexcept {
  if (ras_ == nullptr) return addr;
  const PageId home = geom_.page_of(addr);
  const PageId f = ras_->resolve(home);
  if (f == home) return addr;
  return geom_.machine_base(f) + geom_.offset_of(addr);
}

Route AlloyScheme::translate(PhysAddr addr) const {
  Route r;
  if (cache_.present(addr)) {
    const std::uint64_t line = cache_.line_bytes();
    r.region = Region::OnPackage;
    r.mach = cache_.set_of(addr) * line + addr % line;
  } else {
    r.region = Region::OffPackage;
    r.mach = backing_of(addr);
  }
  return r;
}

SchemeMetrics AlloyScheme::metrics() const {
  SchemeMetrics m;
  m.on_package_fraction =
      stats_.accesses == 0 ? 0.0
                           : static_cast<double>(stats_.hits) /
                                 static_cast<double>(stats_.accesses);
  m.migrated_bytes = stats_.fill_bytes + stats_.writeback_bytes;
  return m;
}

std::string AlloyScheme::audit_check() const {
  const std::string err = cache_.validate();
  if (!err.empty()) return "alloy tag store: " + err;
  if (ras_ != nullptr) {
    const std::uint64_t per = geom_.page_bytes / cache_.line_bytes();
    for (const PageId f : ras_->retired_frames()) {
      if (geom_.region_of(geom_.machine_base(f)) != Region::OnPackage)
        continue;
      if (cache_.any_valid_in(f * per, per))
        return "alloy tag store: valid line in a retired cache frame";
    }
  }
  return {};
}

void AlloyScheme::save(snap::Writer& w) const {
  cache_.save(w);
  w.begin_section(snap::tag('A', 'L', 'O', 'Y'));
  w.u64(stats_.accesses);
  w.u64(stats_.hits);
  w.u64(stats_.fill_bytes);
  w.u64(stats_.writeback_bytes);
  w.b(instant_);
  w.end_section();
}

void AlloyScheme::restore(snap::Reader& r) {
  cache_.restore(r);
  r.begin_section(snap::tag('A', 'L', 'O', 'Y'));
  stats_.accesses = r.u64();
  stats_.hits = r.u64();
  stats_.fill_bytes = r.u64();
  stats_.writeback_bytes = r.u64();
  instant_ = r.b();
  r.end_section();
}

}  // namespace hmm::schemes
