// The pluggable memory-scheme interface (the "scheme zoo").
//
// A MemoryScheme is everything design-specific about a heterogeneous main
// memory: placement policy, migration/fill policy, hotness or tag
// tracking, and the per-scheme statistics. MemSim owns exactly one scheme
// and drives it through this interface, so the paper's N / N-1 / Live
// designs (SwapScheme wrapping HeteroMemoryController) and the competing
// die-stacked-DRAM designs (Alloy, flat-HMA, MemCache) replay the same
// traces through the same DRAM models, fault injector, invariant auditor,
// snapshot codec, and sweep runner.
//
// Obligations of an implementation (DESIGN.md §"Scheme zoo"):
//   * deterministic: no wall clock, no unseeded RNG;
//   * snapshot-complete: save()/restore() cover every evolving member;
//   * audit-ready: audit_check() cross-checks redundant internal state;
//   * fault-tolerant: injected faults at the sites it opts into must
//     surface as structured errors or stay provably benign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/snapshot.hh"
#include "common/types.hh"
#include "core/controller.hh"
#include "fault/auditor.hh"

namespace hmm::ras {
class RasEngine;
}

namespace hmm::schemes {

struct SchemeConfig {
  ControllerConfig controller;
  /// MemCache knob: fraction of on-package bytes operated as a cache
  /// (the rest is statically mapped memory). Ignored by other schemes.
  double cache_fraction = 0.5;
};

/// Routing decision for one demand access. Mirrors the controller's
/// Decision field-for-field so SwapScheme forwards bit-identically.
struct SchemeDecision {
  Route route;
  /// Cycles the access must additionally wait before issue (translation
  /// pipeline, miss determination, OS stalls, design-N blocking).
  Cycle extra_latency = 0;
  /// Design N only: demand may not issue until migration finishes.
  bool stall_until_idle = false;
};

/// Scheme-owned slice of the RunResult; MemSim copies these fields into
/// the result so run_result.hh never depends on any concrete scheme.
struct SchemeMetrics {
  double on_package_fraction = 0;  ///< share of accesses served on-package
  std::uint64_t swaps = 0;         ///< completed swap/placement operations
  std::uint64_t migrated_bytes = 0;  ///< background copy/fill traffic
  std::uint64_t os_stall_cycles = 0;
  // Fault outcomes (zero for schemes without retry choreography).
  std::uint64_t chunk_retries = 0;
  std::uint64_t chunks_dropped = 0;
  std::uint64_t swap_aborts = 0;
  bool degraded = false;
  Cycle degraded_at = 0;
};

class MemoryScheme : public fault::Auditable {
 public:
  ~MemoryScheme() override = default;

  /// Registry name ("N", "N-1", "Live", "Alloy", "flat-HMA", "MemCache").
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Route + track one demand access; may start background work.
  [[nodiscard]] virtual SchemeDecision on_access(PhysAddr addr,
                                                 AccessType type,
                                                 Cycle now) = 0;

  /// Pure translation with the scheme's current placement (no tracking).
  [[nodiscard]] virtual Route translate(PhysAddr addr) const = 0;

  /// Background-priority DRAM completions are fed here (demand
  /// completions stay in MemSim's latency bookkeeping).
  virtual void on_background_completion(const DramCompletion& c,
                                        Region from) = 0;

  /// False while a background operation holds state that a future
  /// completion must advance (drives MemSim's wedge watchdog).
  [[nodiscard]] virtual bool background_idle() const noexcept = 0;

  /// Copy chunks currently streaming (0 for schemes without choreography).
  [[nodiscard]] virtual std::size_t in_flight_chunks() const noexcept {
    return 0;
  }

  /// Warm-up fast-forward: background placement applies instantly with no
  /// copy traffic. Never use while measuring.
  virtual void set_instant(bool on) = 0;

  /// Attach a fault injector (nullptr detaches). Not owned.
  virtual void set_fault_injector(fault::FaultInjector* inj) = 0;

  /// Attach the RAS engine (nullptr detaches). Not owned. The scheme
  /// becomes responsible for servicing pending frame retirements through
  /// its own placement machinery and for never placing new data in a
  /// quarantined frame; the default is for RAS-unaware schemes.
  virtual void set_ras(ras::RasEngine* ras) { (void)ras; }

  /// The scheme's translation table, or nullptr for table-less schemes
  /// (gates the TableBitFlip fault site and the auditor's table sweep).
  [[nodiscard]] virtual TranslationTable* mutable_table() noexcept {
    return nullptr;
  }

  [[nodiscard]] virtual SchemeMetrics metrics() const = 0;

  /// Checkpoint/restore of everything that evolves after construction.
  virtual void save(snap::Writer& w) const = 0;
  virtual void restore(snap::Reader& r) = 0;

  // fault::Auditable: table-less schemes inherit the null default and
  // implement audit_check(); SwapScheme overrides both.
  [[nodiscard]] const TranslationTable* audited_table()
      const noexcept override {
    return nullptr;
  }
};

}  // namespace hmm::schemes
