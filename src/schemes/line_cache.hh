// Direct-mapped tag store shared by the cache-style schemes (Alloy,
// MemCache). Models the placement function of a tag-with-data (TAD)
// DRAM cache: one tag per line-sized set, no associativity, so a probe
// costs a single on-package access and there is no migration choreography.
//
// Only tags are modelled (the simulator carries no data); entries are
// packed as (tag << 2) | dirty << 1 | valid so the 8M sets of the paper
// geometry (512MB / 64B) stay a single flat uint32 array. A redundant
// valid-entry counter is maintained incrementally and recounted by
// validate(), giving the invariant auditor a real cross-check.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hh"
#include "common/types.hh"
#include "fault/sim_error.hh"

namespace hmm::schemes {

class LineCache {
 public:
  /// Outcome of one access: on a miss, the victim (when valid) names the
  /// physical line that was evicted so the caller can write it back.
  struct Lookup {
    bool hit = false;
    std::uint64_t set = 0;
    bool victim_valid = false;
    bool victim_dirty = false;
    PhysAddr victim_addr = 0;
  };

  LineCache() = default;
  LineCache(std::uint64_t capacity_bytes, std::uint64_t line_bytes)
      : line_bytes_(line_bytes),
        sets_(line_bytes > 0 ? capacity_bytes / line_bytes : 0),
        tags_(sets_, 0) {}

  [[nodiscard]] std::uint64_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint64_t line_bytes() const noexcept {
    return line_bytes_;
  }
  [[nodiscard]] std::uint64_t valid_count() const noexcept {
    return valid_count_;
  }

  [[nodiscard]] std::uint64_t set_of(PhysAddr addr) const noexcept {
    return (addr / line_bytes_) % sets_;
  }

  /// Const probe (translate() path): present means an on-package hit.
  [[nodiscard]] bool present(PhysAddr addr) const noexcept {
    if (sets_ == 0) return false;
    const std::uint32_t e = tags_[set_of(addr)];
    return (e & 1u) != 0 && (e >> 2) == tag_of(addr);
  }

  /// Probe + fill: a miss installs the line (direct-mapped eviction) and
  /// reports the victim; `dirty` marks the line after a write hit/fill.
  [[nodiscard]] Lookup access(PhysAddr addr, bool dirty) {
    Lookup lk;
    if (sets_ == 0) return lk;
    const std::uint64_t tag = tag_of(addr);
    HMM_CHECK(tag < (1u << 30),
              "address space too large for the packed line-cache tag");
    lk.set = set_of(addr);
    std::uint32_t& e = tags_[lk.set];
    if ((e & 1u) != 0 && (e >> 2) == tag) {
      lk.hit = true;
      if (dirty) e |= 2u;
      return lk;
    }
    if ((e & 1u) != 0) {
      lk.victim_valid = true;
      lk.victim_dirty = (e & 2u) != 0;
      lk.victim_addr = ((static_cast<std::uint64_t>(e >> 2) * sets_) +
                        lk.set) *
                       line_bytes_;
    } else {
      ++valid_count_;
    }
    e = static_cast<std::uint32_t>(tag << 2) | (dirty ? 2u : 0u) | 1u;
    return lk;
  }

  /// Outcome of purging one set: the evicted line, when one was valid.
  struct Purged {
    bool valid = false;
    bool dirty = false;
    PhysAddr addr = 0;
  };

  /// RAS retirement: evict the set's line (if any) and report it so a
  /// dirty victim can be written back to its backing home.
  [[nodiscard]] Purged purge_set(std::uint64_t set) {
    Purged p;
    if (set >= sets_) return p;
    const std::uint32_t e = tags_[set];
    if ((e & 1u) != 0) {
      p.valid = true;
      p.dirty = (e & 2u) != 0;
      p.addr = ((static_cast<std::uint64_t>(e >> 2) * sets_) + set) *
               line_bytes_;
      --valid_count_;
      tags_[set] = 0;
    }
    return p;
  }

  /// True when any set in [first_set, first_set + count) holds a valid
  /// line (RAS audit: retired cache frames must stay empty).
  [[nodiscard]] bool any_valid_in(std::uint64_t first_set,
                                  std::uint64_t count) const noexcept {
    const std::uint64_t end = std::min(first_set + count, sets_);
    for (std::uint64_t s = first_set; s < end; ++s)
      if ((tags_[s] & 1u) != 0) return true;
    return false;
  }

  /// Fault payload: drop one set (a benign eviction-like transient).
  void invalidate_set(std::uint64_t set) {
    if (set >= sets_) return;
    if ((tags_[set] & 1u) != 0) --valid_count_;
    tags_[set] = 0;
  }

  /// Test hook: desynchronize the redundant counter so auditor tests can
  /// prove the audit path surfaces tag-store corruption.
  void corrupt_valid_count_for_test() noexcept { ++valid_count_; }

  /// Recounts valid entries against the incremental counter; returns an
  /// error description or empty string.
  [[nodiscard]] std::string validate() const {
    std::uint64_t n = 0;
    for (const std::uint32_t e : tags_)
      if ((e & 1u) != 0) ++n;
    if (n != valid_count_)
      return "valid-entry counter " + std::to_string(valid_count_) +
             " disagrees with tag recount " + std::to_string(n);
    return {};
  }

  // Sparse codec: only valid entries are written, so short runs over the
  // 8M-set paper geometry keep checkpoints small.
  void save(snap::Writer& w) const {
    w.begin_section(snap::tag('L', 'N', 'C', 'H'));
    w.u64(valid_count_);
    for (std::uint64_t s = 0; s < sets_; ++s)
      if ((tags_[s] & 1u) != 0) {
        w.u64(s);
        w.u32(tags_[s]);
      }
    w.end_section();
  }
  void restore(snap::Reader& r) {
    r.begin_section(snap::tag('L', 'N', 'C', 'H'));
    tags_.assign(sets_, 0);
    valid_count_ = r.u64();
    for (std::uint64_t i = 0; i < valid_count_; ++i) {
      const std::uint64_t s = r.u64();
      if (s >= sets_)
        snap::snapshot_error("line-cache set index out of range");
      tags_[s] = r.u32();
    }
    r.end_section();
  }

 private:
  [[nodiscard]] std::uint64_t tag_of(PhysAddr addr) const noexcept {
    return addr / line_bytes_ / sets_;
  }

  std::uint64_t line_bytes_ = 0;  // no-snapshot(construction-time config)
  std::uint64_t sets_ = 0;  // no-snapshot(derived from construction config)
  std::vector<std::uint32_t> tags_;
  std::uint64_t valid_count_ = 0;
};

}  // namespace hmm::schemes
