#include "schemes/registry.hh"

#include "schemes/alloy.hh"
#include "schemes/flat_hma.hh"
#include "schemes/memcache.hh"
#include "schemes/swap_scheme.hh"

namespace hmm::schemes {

const std::vector<std::string>& scheme_names() {
  static const std::vector<std::string> names = {
      "N", "N-1", "Live", "nomad", "Alloy", "flat-HMA", "MemCache"};
  return names;
}

fault::SimError unknown_scheme_error(const std::string& name) {
  std::string valid;
  for (const std::string& n : scheme_names()) {
    if (!valid.empty()) valid += ", ";
    valid += n;
  }
  return fault::SimError(fault::SimErrorKind::CheckFailed,
                         "unknown memory scheme '" + name +
                             "' (valid schemes: " + valid + ")");
}

void validate_scheme_name(const std::string& name) {
  for (const std::string& n : scheme_names())
    if (n == name) return;
  // analyze: allow(errors): unknown_scheme_error builds a SimError
  throw unknown_scheme_error(name);
}

std::unique_ptr<MemoryScheme> make_scheme(const std::string& name,
                                          const SchemeConfig& cfg,
                                          DramSystem& on_package,
                                          DramSystem& off_package) {
  const auto swap = [&](MigrationDesign design) {
    SchemeConfig c = cfg;
    c.controller.design = design;
    return std::make_unique<SwapScheme>(c, on_package, off_package);
  };
  if (name == "N") return swap(MigrationDesign::N);
  if (name == "N-1") return swap(MigrationDesign::NMinus1);
  if (name == "Live") return swap(MigrationDesign::LiveMigration);
  if (name == "nomad") return swap(MigrationDesign::Nomad);
  if (name == "Alloy")
    return std::make_unique<AlloyScheme>(cfg, on_package, off_package);
  if (name == "flat-HMA")
    return std::make_unique<FlatHmaScheme>(cfg, on_package, off_package);
  if (name == "MemCache")
    return std::make_unique<MemCacheScheme>(cfg, on_package, off_package);
  // analyze: allow(errors): unknown_scheme_error builds a SimError
  throw unknown_scheme_error(name);
}

}  // namespace hmm::schemes
