// Flat static-HMA scheme: OS-style coarse placement, no runtime swaps.
//
// Models the software-managed alternative the paper argues against (and
// the "memory" operating point of the die-stacked-DRAM design space): the
// OS profiles page heat for one epoch, then pins the hottest macro pages
// on-package permanently. Placement is a one-time bulk copy charged as
// background traffic plus one OS table update per placed page; afterwards
// the mapping is fixed — a workload whose hot set drifts gets no help.
//
// During the profile epoch every access is served from the identity
// off-package home (placement is unknown until the OS decides).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "ras/ras.hh"
#include "schemes/scheme.hh"

namespace hmm::schemes {

class FlatHmaScheme final : public MemoryScheme {
 public:
  FlatHmaScheme(const SchemeConfig& cfg, DramSystem& on_package,
                DramSystem& off_package);

  [[nodiscard]] const char* name() const noexcept override {
    return "flat-HMA";
  }
  [[nodiscard]] SchemeDecision on_access(PhysAddr addr, AccessType type,
                                         Cycle now) override;
  [[nodiscard]] Route translate(PhysAddr addr) const override;
  void on_background_completion(const DramCompletion&,
                                Region) override {}
  [[nodiscard]] bool background_idle() const noexcept override {
    return true;  // the one-time bulk copy is fire-and-forget
  }
  void set_instant(bool on) override { instant_ = on; }
  void set_fault_injector(fault::FaultInjector* inj) override {
    injector_ = inj;
  }
  void set_ras(ras::RasEngine* ras) override { ras_ = ras; }
  [[nodiscard]] SchemeMetrics metrics() const override;
  void save(snap::Writer& w) const override;
  void restore(snap::Reader& r) override;
  [[nodiscard]] std::string audit_check() const override;

  [[nodiscard]] bool placed() const noexcept { return !profiling_; }

  /// Test hook: desynchronize the placement map so auditor tests can
  /// prove the audit path surfaces a corrupted mapping.
  void corrupt_placement_for_test();

 private:
  void finalize_placement(Cycle now);
  /// Service one pending frame retirement: evict the page placed in a
  /// failing slot back to its home, or remap a failing off-package home
  /// onto a spare.
  void ras_service(Cycle now);
  /// Home machine address of `addr`, through the RAS remap table.
  [[nodiscard]] MachAddr home_of(PhysAddr addr) const noexcept;

  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t on_hits = 0;
    std::uint64_t placements = 0;
    std::uint64_t migrated_bytes = 0;
    std::uint64_t os_stall_cycles = 0;
  };

  Geometry geom_;  // no-snapshot(construction-time config)
  std::uint64_t interval_;  // no-snapshot(construction-time config)
  DramSystem& on_;
  DramSystem& off_;
  bool profiling_ = true;
  std::uint64_t seen_ = 0;  ///< profile-epoch access counter
  std::unordered_map<PageId, std::uint64_t> counts_;
  std::unordered_map<PageId, SlotId> place_;  ///< page -> on-package slot
  Cycle pending_os_stall_ = 0;
  Stats stats_;
  bool instant_ = false;
  fault::FaultInjector* injector_ = nullptr;  ///< not owned; may be null
  ras::RasEngine* ras_ = nullptr;  ///< not owned; may be null
};

}  // namespace hmm::schemes
