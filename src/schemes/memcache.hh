// MemCache-style hybrid: on-package DRAM partitioned into a memory
// fraction and a cache fraction ("Die-Stacked DRAM: Memory, Cache, or
// MemCache?" — the operating point between the two pure designs).
//
// The memory fraction statically maps the lowest physical macro pages
// on-package at identity addresses (OS-visible capacity, no tags, no
// copies). The remaining on-package bytes run as an Alloy-style
// direct-mapped line cache over the rest of the address space, with its
// sets offset past the memory fraction. `SchemeConfig::cache_fraction`
// is the runtime knob: 0.0 degenerates to pure static memory, 1.0 to a
// pure Alloy cache.
#pragma once

#include <string>

#include "ras/ras.hh"
#include "schemes/line_cache.hh"
#include "schemes/scheme.hh"

namespace hmm::schemes {

class MemCacheScheme final : public MemoryScheme {
 public:
  MemCacheScheme(const SchemeConfig& cfg, DramSystem& on_package,
                 DramSystem& off_package);

  [[nodiscard]] const char* name() const noexcept override {
    return "MemCache";
  }
  [[nodiscard]] SchemeDecision on_access(PhysAddr addr, AccessType type,
                                         Cycle now) override;
  [[nodiscard]] Route translate(PhysAddr addr) const override;
  void on_background_completion(const DramCompletion&,
                                Region) override {}
  [[nodiscard]] bool background_idle() const noexcept override {
    return true;  // fills are fire-and-forget writes
  }
  void set_instant(bool on) override { instant_ = on; }
  void set_fault_injector(fault::FaultInjector* inj) override {
    injector_ = inj;
  }
  void set_ras(ras::RasEngine* ras) override { ras_ = ras; }
  [[nodiscard]] SchemeMetrics metrics() const override;
  void save(snap::Writer& w) const override;
  void restore(snap::Reader& r) override;
  [[nodiscard]] std::string audit_check() const override;

  [[nodiscard]] std::uint64_t memory_fraction_bytes() const noexcept {
    return mem_bytes_;
  }

 private:
  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t mem_hits = 0;    ///< static memory-fraction accesses
    std::uint64_t cache_hits = 0;  ///< cache-fraction tag hits
    std::uint64_t fill_bytes = 0;
    std::uint64_t writeback_bytes = 0;
  };

  /// Service one pending frame retirement: purge a failing cache frame,
  /// or remap a failing memory-fraction / backing frame onto a spare.
  void ras_service(Cycle now);
  /// Machine frame holding the cache set (sets sit past the memory
  /// fraction in the on-package space).
  [[nodiscard]] PageId cache_frame_of(std::uint64_t set) const noexcept {
    return (mem_bytes_ + set * cache_.line_bytes()) >> geom_.page_shift();
  }
  /// Home machine address of `addr`, through the RAS remap table (the
  /// identity frame, or its spare stand-in once the home is retired).
  [[nodiscard]] MachAddr home_of(PhysAddr addr) const noexcept;

  Geometry geom_;  // no-snapshot(construction-time config)
  std::uint64_t mem_bytes_;  // no-snapshot(construction-time config)
  DramSystem& on_;
  DramSystem& off_;
  LineCache cache_;
  Stats stats_;
  bool instant_ = false;
  fault::FaultInjector* injector_ = nullptr;  ///< not owned; may be null
  ras::RasEngine* ras_ = nullptr;  ///< not owned; may be null
};

}  // namespace hmm::schemes
