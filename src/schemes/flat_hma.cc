#include "schemes/flat_hma.hh"

#include <algorithm>
#include <vector>

#include "common/params.hh"

namespace hmm::schemes {

FlatHmaScheme::FlatHmaScheme(const SchemeConfig& cfg,
                             DramSystem& on_package,
                             DramSystem& off_package)
    : geom_(cfg.controller.geom),
      interval_(cfg.controller.swap_interval),
      on_(on_package),
      off_(off_package) {}

SchemeDecision FlatHmaScheme::on_access(PhysAddr addr, AccessType /*type*/,
                                        Cycle now) {
  SchemeDecision d;
  ++stats_.accesses;
  if (ras_ != nullptr) ras_service(now);
  PageId p = geom_.page_of(addr);

  if (profiling_) {
    PageId tracked = p;
    if (injector_ != nullptr &&
        injector_->fires(fault::FaultSite::HotnessCorrupt, p)) {
      // A corrupted profile counter credits the access to the wrong page:
      // at worst a suboptimal placement, never an invalid one.
      tracked = static_cast<PageId>(
          injector_->payload_rng().bounded64(geom_.total_pages()));
    }
    ++counts_[tracked];
    d.route.region = Region::OffPackage;
    d.route.mach = home_of(addr);
    if (++seen_ >= interval_) finalize_placement(now);
    // The OS bookkeeping stalls the CPU; charge it to the access that
    // crossed the epoch boundary (same convention as the controller).
    d.extra_latency += pending_os_stall_;
    pending_os_stall_ = 0;
    return d;
  }

  d.route = translate(addr);
  if (d.route.region == Region::OnPackage) ++stats_.on_hits;
  return d;
}

void FlatHmaScheme::finalize_placement(Cycle now) {
  // Deterministic hottest-first order: count descending, page id ascending
  // (unordered_map iteration order must never leak into placement).
  std::vector<std::pair<PageId, std::uint64_t>> heat(counts_.begin(),
                                                     counts_.end());
  std::sort(heat.begin(), heat.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  const SlotId slots = geom_.slots();
  SlotId cursor = 0;
  SlotId next = 0;  ///< pages actually placed
  std::vector<std::pair<PageId, SlotId>> placed;  ///< hottest-first
  for (const auto& [page, count] : heat) {
    // A quarantined slot frame must not receive a placement (slot ids are
    // on-package machine frames 1:1).
    while (cursor < slots && ras_ != nullptr && ras_->quarantined(cursor))
      ++cursor;
    if (cursor >= slots || count == 0) break;
    place_.emplace(page, cursor);
    placed.emplace_back(page, cursor);
    ++cursor;
    ++next;
  }
  stats_.placements = next;
  if (!instant_ && next > 0) {
    // One bulk background copy per placed page (read the off-package home,
    // write the slot) plus one OS table update each — paid once, ever.
    const auto bytes = static_cast<std::uint32_t>(geom_.page_bytes);
    // `placed`, not `place_`: the copy stream must replay in the same
    // hottest-first order on every run, not in hash-bucket order.
    for (const auto& [page, slot] : placed) {
      off_.submit(geom_.machine_base(page), bytes, AccessType::Read,
                  Priority::Background, now);
      on_.submit(static_cast<MachAddr>(slot) * geom_.page_bytes, bytes,
                 AccessType::Write, Priority::Background, now);
    }
    stats_.migrated_bytes =
        static_cast<std::uint64_t>(next) * geom_.page_bytes;
    const Cycle stall = static_cast<Cycle>(next) * params::kOsUpdateOverhead;
    stats_.os_stall_cycles += stall;
    pending_os_stall_ += stall;
  }
  profiling_ = false;
  counts_.clear();
}

Route FlatHmaScheme::translate(PhysAddr addr) const {
  Route r;
  const PageId p = geom_.page_of(addr);
  if (const auto it = place_.find(p); it != place_.end()) {
    r.region = Region::OnPackage;
    r.mach = static_cast<MachAddr>(it->second) * geom_.page_bytes +
             geom_.offset_of(addr);
  } else {
    // Identity off-package home (the Force::AllOffPackage convention),
    // or its RAS spare stand-in once the home is retired.
    r.region = Region::OffPackage;
    r.mach = home_of(addr);
  }
  return r;
}

void FlatHmaScheme::ras_service(Cycle now) {
  if (!ras_->has_pending()) return;
  const PageId f = ras_->next_pending();
  const auto bytes = static_cast<std::uint32_t>(geom_.page_bytes);
  if (f < geom_.slots()) {
    // The frame's slot role: evict whatever page was pinned in slot f
    // back to its off-package home (the pinned copy is authoritative).
    PageId evictee = kInvalidPage;
    // analyze: allow(determinism): tie-broken min-scan
    for (const auto& [page, slot] : place_)
      if (slot == f && (evictee == kInvalidPage || page < evictee))
        evictee = page;
    if (evictee != kInvalidPage) {
      PageId target = ras_->resolve(evictee);
      if (ras_->retired(target)) {
        // The evictee's home was stale-retired while the page lived
        // on-package; it needs a fresh spare to land on. A dry pool pins
        // the slot instead — the page keeps being served in place.
        const std::optional<PageId> re =
            ras_->assign_spare_for(target, now);
        if (!re.has_value()) {
          ras_->pin_frame(f);
          return;
        }
        target = *re;
      }
      place_.erase(evictee);
      if (!instant_) {
        on_.submit(static_cast<MachAddr>(f) * geom_.page_bytes, bytes,
                   AccessType::Read, Priority::Background, now);
        off_.submit(geom_.machine_base(target), bytes, AccessType::Write,
                    Priority::Background, now);
      }
      stats_.migrated_bytes += geom_.page_bytes;
    }
  }
  // The frame's home role: the backing store identity-maps the whole
  // physical space, so frame f is also page f's home.
  if (place_.count(f) != 0) {
    // Page f lives on-package; its home frame holds only a stale copy,
    // so the frame is data-free and retires without a copy.
    ras_->complete_retirement(f, now);
    return;
  }
  // The home holds page f's data: permanent remap onto a spare; a dry
  // pool pins the frame in place.
  const std::optional<PageId> spare = ras_->remap_frame(f, now);
  if (!spare.has_value()) {
    ras_->pin_frame(f);
    return;
  }
  if (!instant_) {
    const MachAddr base = geom_.machine_base(f);
    DramSystem& src =
        geom_.region_of(base) == Region::OnPackage ? on_ : off_;
    src.submit(base, bytes, AccessType::Read, Priority::Background, now);
    off_.submit(geom_.machine_base(*spare), bytes, AccessType::Write,
                Priority::Background, now);
  }
}

MachAddr FlatHmaScheme::home_of(PhysAddr addr) const noexcept {
  if (ras_ == nullptr) return addr;
  const PageId home = geom_.page_of(addr);
  const PageId f = ras_->resolve(home);
  if (f == home) return addr;
  return geom_.machine_base(f) + geom_.offset_of(addr);
}

SchemeMetrics FlatHmaScheme::metrics() const {
  SchemeMetrics m;
  m.on_package_fraction =
      stats_.accesses == 0 ? 0.0
                           : static_cast<double>(stats_.on_hits) /
                                 static_cast<double>(stats_.accesses);
  m.swaps = stats_.placements;
  m.migrated_bytes = stats_.migrated_bytes;
  m.os_stall_cycles = stats_.os_stall_cycles;
  return m;
}

std::string FlatHmaScheme::audit_check() const {
  // Placement bijectivity: every slot is used at most once and every
  // mapped page/slot is in range.
  std::vector<bool> used(geom_.slots(), false);
  // analyze: allow(determinism): order-independent audit verdict
  for (const auto& [page, slot] : place_) {
    if (page >= geom_.total_pages())
      return "flat-HMA placement: page id out of range";
    if (slot >= geom_.slots())
      return "flat-HMA placement: slot out of range";
    if (used[slot]) return "flat-HMA placement: slot mapped twice";
    used[slot] = true;
  }
  if (place_.size() > geom_.slots())
    return "flat-HMA placement: more pages than slots";
  if (ras_ != nullptr) {
    // analyze: allow(determinism): order-independent audit verdict
    for (const auto& [page, slot] : place_)
      if (ras_->retired(slot))
        return "flat-HMA placement: page mapped to a retired slot";
  }
  return {};
}

void FlatHmaScheme::corrupt_placement_for_test() {
  // Map a second page onto slot 0 (or invent the first mapping twice).
  place_[geom_.total_pages() - 2] = 0;
  place_[geom_.total_pages() - 3] = 0;
}

namespace {
template <typename K, typename V>
void save_sorted_map(snap::Writer& w, const std::unordered_map<K, V>& m) {
  std::vector<std::pair<K, V>> v(m.begin(), m.end());
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(v.size());
  for (const auto& [k, val] : v) {
    w.u64(static_cast<std::uint64_t>(k));
    w.u64(static_cast<std::uint64_t>(val));
  }
}
}  // namespace

void FlatHmaScheme::save(snap::Writer& w) const {
  w.begin_section(snap::tag('F', 'H', 'M', 'A'));
  w.b(profiling_);
  w.u64(seen_);
  save_sorted_map(w, counts_);
  save_sorted_map(w, place_);
  w.u64(pending_os_stall_);
  w.u64(stats_.accesses);
  w.u64(stats_.on_hits);
  w.u64(stats_.placements);
  w.u64(stats_.migrated_bytes);
  w.u64(stats_.os_stall_cycles);
  w.b(instant_);
  w.end_section();
}

void FlatHmaScheme::restore(snap::Reader& r) {
  r.begin_section(snap::tag('F', 'H', 'M', 'A'));
  profiling_ = r.b();
  seen_ = r.u64();
  counts_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const PageId k = r.u64();
    counts_[k] = r.u64();
  }
  place_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const PageId k = r.u64();
    place_[k] = static_cast<SlotId>(r.u64());
  }
  pending_os_stall_ = r.u64();
  stats_.accesses = r.u64();
  stats_.on_hits = r.u64();
  stats_.placements = r.u64();
  stats_.migrated_bytes = r.u64();
  stats_.os_stall_cycles = r.u64();
  instant_ = r.b();
  r.end_section();
}

}  // namespace hmm::schemes
