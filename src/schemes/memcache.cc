#include "schemes/memcache.hh"

#include <algorithm>

#include "common/params.hh"

namespace hmm::schemes {

namespace {
/// Memory-fraction size: (1 - cache_fraction) of the on-package bytes,
/// rounded to whole macro pages and clamped to [0, on_package_bytes].
[[nodiscard]] std::uint64_t memory_bytes(const Geometry& g,
                                         double cache_fraction) {
  const double f = std::clamp(1.0 - cache_fraction, 0.0, 1.0);
  const auto pages = static_cast<std::uint64_t>(
      f * static_cast<double>(g.slots()) + 0.5);
  return std::min<std::uint64_t>(pages, g.slots()) * g.page_bytes;
}
}  // namespace

MemCacheScheme::MemCacheScheme(const SchemeConfig& cfg,
                               DramSystem& on_package,
                               DramSystem& off_package)
    : geom_(cfg.controller.geom),
      mem_bytes_(memory_bytes(cfg.controller.geom, cfg.cache_fraction)),
      on_(on_package),
      off_(off_package),
      cache_(cfg.controller.geom.on_package_bytes - mem_bytes_,
             params::kCacheLine) {}

SchemeDecision MemCacheScheme::on_access(PhysAddr addr, AccessType type,
                                         Cycle now) {
  SchemeDecision d;
  ++stats_.accesses;
  if (ras_ != nullptr) ras_service(now);

  if (addr < mem_bytes_) {
    // Memory fraction: static identity placement, no tags, no extra cost
    // — unless the frame was retired, in which case its RAS spare
    // stand-in (off-package) serves it.
    d.route.mach = home_of(addr);
    d.route.region = geom_.region_of(d.route.mach);
    if (d.route.region == Region::OnPackage) ++stats_.mem_hits;
    return d;
  }

  if (injector_ != nullptr &&
      injector_->fires(fault::FaultSite::HotnessCorrupt,
                       geom_.page_of(addr))) {
    // Benign tag transient, as in AlloyScheme.
    cache_.invalidate_set(
        injector_->payload_rng().bounded64(cache_.sets()));
  }

  const std::uint64_t line = cache_.line_bytes();
  if (ras_ != nullptr && cache_.sets() != 0 &&
      ras_->quarantined(cache_frame_of(cache_.set_of(addr)))) {
    // Failing cache frame: serve a still-present line in place, but
    // never install a new one — the miss bypasses to the backing home.
    if (cache_.present(addr)) {
      const LineCache::Lookup hit =
          cache_.access(addr, type == AccessType::Write);
      ++stats_.cache_hits;
      d.route.region = Region::OnPackage;
      d.route.mach = mem_bytes_ + hit.set * line + addr % line;
    } else {
      d.route.region = Region::OffPackage;
      d.route.mach = home_of(addr);
      d.extra_latency = params::kL4MissDetermination;
    }
    return d;
  }

  const LineCache::Lookup lk =
      cache_.access(addr, type == AccessType::Write);
  if (lk.hit) {
    ++stats_.cache_hits;
    d.route.region = Region::OnPackage;
    d.route.mach = mem_bytes_ + lk.set * line + addr % line;
    return d;
  }
  d.route.region = Region::OffPackage;
  d.route.mach = home_of(addr);
  if (cache_.sets() == 0) return d;  // cache_fraction 0: plain miss
  d.extra_latency = params::kL4MissDetermination;
  if (!instant_) {
    const auto bytes = static_cast<std::uint32_t>(line);
    on_.submit(mem_bytes_ + lk.set * line, bytes, AccessType::Write,
               Priority::Background, now + d.extra_latency);
    stats_.fill_bytes += line;
    if (lk.victim_valid && lk.victim_dirty) {
      off_.submit(home_of(lk.victim_addr), bytes, AccessType::Write,
                  Priority::Background, now + d.extra_latency);
      stats_.writeback_bytes += line;
    }
  }
  return d;
}

void MemCacheScheme::ras_service(Cycle now) {
  if (!ras_->has_pending()) return;
  const PageId f = ras_->next_pending();
  const MachAddr base = geom_.machine_base(f);
  if (geom_.region_of(base) == Region::OnPackage && base >= mem_bytes_ &&
      cache_.sets() != 0) {
    // The frame's cache role: purge its sets; dirty victims stream back
    // to their backing homes.
    const std::uint64_t line = cache_.line_bytes();
    const std::uint64_t first = (base - mem_bytes_) / line;
    const std::uint64_t per = geom_.page_bytes / line;
    for (std::uint64_t s = first; s < first + per; ++s) {
      const LineCache::Purged p = cache_.purge_set(s);
      if (p.valid && p.dirty) {
        if (!instant_)
          off_.submit(home_of(p.addr), static_cast<std::uint32_t>(line),
                      AccessType::Write, Priority::Background, now);
        stats_.writeback_bytes += line;
      }
    }
  }
  // The frame's home role: a memory-fraction frame is page f's static
  // home, and the cache's backing store identity-maps the rest of the
  // space, so every frame id is also some page's home. Remap onto a
  // spare; a dry pool pins the frame in place.
  const std::optional<PageId> spare = ras_->remap_frame(f, now);
  if (!spare.has_value()) {
    ras_->pin_frame(f);
    return;
  }
  if (!instant_) {
    const auto bytes = static_cast<std::uint32_t>(geom_.page_bytes);
    DramSystem& src =
        geom_.region_of(base) == Region::OnPackage ? on_ : off_;
    src.submit(base, bytes, AccessType::Read, Priority::Background, now);
    off_.submit(geom_.machine_base(*spare), bytes, AccessType::Write,
                Priority::Background, now);
  }
}

MachAddr MemCacheScheme::home_of(PhysAddr addr) const noexcept {
  if (ras_ == nullptr) return addr;
  const PageId home = geom_.page_of(addr);
  const PageId f = ras_->resolve(home);
  if (f == home) return addr;
  return geom_.machine_base(f) + geom_.offset_of(addr);
}

Route MemCacheScheme::translate(PhysAddr addr) const {
  Route r;
  if (addr < mem_bytes_) {
    r.mach = home_of(addr);
    r.region = geom_.region_of(r.mach);
  } else if (cache_.present(addr)) {
    const std::uint64_t line = cache_.line_bytes();
    r.region = Region::OnPackage;
    r.mach = mem_bytes_ + cache_.set_of(addr) * line + addr % line;
  } else {
    r.region = Region::OffPackage;
    r.mach = home_of(addr);
  }
  return r;
}

SchemeMetrics MemCacheScheme::metrics() const {
  SchemeMetrics m;
  m.on_package_fraction =
      stats_.accesses == 0
          ? 0.0
          : static_cast<double>(stats_.mem_hits + stats_.cache_hits) /
                static_cast<double>(stats_.accesses);
  m.migrated_bytes = stats_.fill_bytes + stats_.writeback_bytes;
  return m;
}

std::string MemCacheScheme::audit_check() const {
  if (mem_bytes_ + cache_.sets() * cache_.line_bytes() >
      geom_.on_package_bytes)
    return "memcache partition exceeds on-package capacity";
  const std::string err = cache_.validate();
  if (!err.empty()) return "memcache tag store: " + err;
  if (ras_ != nullptr && cache_.sets() != 0) {
    const std::uint64_t line = cache_.line_bytes();
    const std::uint64_t per = geom_.page_bytes / line;
    for (const PageId f : ras_->retired_frames()) {
      const MachAddr base = geom_.machine_base(f);
      if (geom_.region_of(base) != Region::OnPackage || base < mem_bytes_)
        continue;
      if (cache_.any_valid_in((base - mem_bytes_) / line, per))
        return "memcache tag store: valid line in a retired cache frame";
    }
  }
  return {};
}

void MemCacheScheme::save(snap::Writer& w) const {
  cache_.save(w);
  w.begin_section(snap::tag('M', 'C', 'C', 'H'));
  w.u64(stats_.accesses);
  w.u64(stats_.mem_hits);
  w.u64(stats_.cache_hits);
  w.u64(stats_.fill_bytes);
  w.u64(stats_.writeback_bytes);
  w.b(instant_);
  w.end_section();
}

void MemCacheScheme::restore(snap::Reader& r) {
  cache_.restore(r);
  r.begin_section(snap::tag('M', 'C', 'C', 'H'));
  stats_.accesses = r.u64();
  stats_.mem_hits = r.u64();
  stats_.cache_hits = r.u64();
  stats_.fill_bytes = r.u64();
  stats_.writeback_bytes = r.u64();
  instant_ = r.b();
  r.end_section();
}

}  // namespace hmm::schemes
