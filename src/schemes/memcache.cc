#include "schemes/memcache.hh"

#include <algorithm>

#include "common/params.hh"

namespace hmm::schemes {

namespace {
/// Memory-fraction size: (1 - cache_fraction) of the on-package bytes,
/// rounded to whole macro pages and clamped to [0, on_package_bytes].
[[nodiscard]] std::uint64_t memory_bytes(const Geometry& g,
                                         double cache_fraction) {
  const double f = std::clamp(1.0 - cache_fraction, 0.0, 1.0);
  const auto pages = static_cast<std::uint64_t>(
      f * static_cast<double>(g.slots()) + 0.5);
  return std::min<std::uint64_t>(pages, g.slots()) * g.page_bytes;
}
}  // namespace

MemCacheScheme::MemCacheScheme(const SchemeConfig& cfg,
                               DramSystem& on_package,
                               DramSystem& off_package)
    : geom_(cfg.controller.geom),
      mem_bytes_(memory_bytes(cfg.controller.geom, cfg.cache_fraction)),
      on_(on_package),
      off_(off_package),
      cache_(cfg.controller.geom.on_package_bytes - mem_bytes_,
             params::kCacheLine) {}

SchemeDecision MemCacheScheme::on_access(PhysAddr addr, AccessType type,
                                         Cycle now) {
  SchemeDecision d;
  ++stats_.accesses;

  if (addr < mem_bytes_) {
    // Memory fraction: static identity placement, no tags, no extra cost.
    ++stats_.mem_hits;
    d.route.region = Region::OnPackage;
    d.route.mach = addr;
    return d;
  }

  if (injector_ != nullptr &&
      injector_->fires(fault::FaultSite::HotnessCorrupt,
                       geom_.page_of(addr))) {
    // Benign tag transient, as in AlloyScheme.
    cache_.invalidate_set(
        injector_->payload_rng().bounded64(cache_.sets()));
  }

  const LineCache::Lookup lk =
      cache_.access(addr, type == AccessType::Write);
  const std::uint64_t line = cache_.line_bytes();
  if (lk.hit) {
    ++stats_.cache_hits;
    d.route.region = Region::OnPackage;
    d.route.mach = mem_bytes_ + lk.set * line + addr % line;
    return d;
  }
  d.route.region = Region::OffPackage;
  d.route.mach = addr;
  if (cache_.sets() == 0) return d;  // cache_fraction 0: plain miss
  d.extra_latency = params::kL4MissDetermination;
  if (!instant_) {
    const auto bytes = static_cast<std::uint32_t>(line);
    on_.submit(mem_bytes_ + lk.set * line, bytes, AccessType::Write,
               Priority::Background, now + d.extra_latency);
    stats_.fill_bytes += line;
    if (lk.victim_valid && lk.victim_dirty) {
      off_.submit(lk.victim_addr, bytes, AccessType::Write,
                  Priority::Background, now + d.extra_latency);
      stats_.writeback_bytes += line;
    }
  }
  return d;
}

Route MemCacheScheme::translate(PhysAddr addr) const {
  Route r;
  if (addr < mem_bytes_) {
    r.region = Region::OnPackage;
    r.mach = addr;
  } else if (cache_.present(addr)) {
    const std::uint64_t line = cache_.line_bytes();
    r.region = Region::OnPackage;
    r.mach = mem_bytes_ + cache_.set_of(addr) * line + addr % line;
  } else {
    r.region = Region::OffPackage;
    r.mach = addr;
  }
  return r;
}

SchemeMetrics MemCacheScheme::metrics() const {
  SchemeMetrics m;
  m.on_package_fraction =
      stats_.accesses == 0
          ? 0.0
          : static_cast<double>(stats_.mem_hits + stats_.cache_hits) /
                static_cast<double>(stats_.accesses);
  m.migrated_bytes = stats_.fill_bytes + stats_.writeback_bytes;
  return m;
}

std::string MemCacheScheme::audit_check() const {
  if (mem_bytes_ + cache_.sets() * cache_.line_bytes() >
      geom_.on_package_bytes)
    return "memcache partition exceeds on-package capacity";
  const std::string err = cache_.validate();
  if (!err.empty()) return "memcache tag store: " + err;
  return {};
}

void MemCacheScheme::save(snap::Writer& w) const {
  cache_.save(w);
  w.begin_section(snap::tag('M', 'C', 'C', 'H'));
  w.u64(stats_.accesses);
  w.u64(stats_.mem_hits);
  w.u64(stats_.cache_hits);
  w.u64(stats_.fill_bytes);
  w.u64(stats_.writeback_bytes);
  w.b(instant_);
  w.end_section();
}

void MemCacheScheme::restore(snap::Reader& r) {
  cache_.restore(r);
  r.begin_section(snap::tag('M', 'C', 'C', 'H'));
  stats_.accesses = r.u64();
  stats_.mem_hits = r.u64();
  stats_.cache_hits = r.u64();
  stats_.fill_bytes = r.u64();
  stats_.writeback_bytes = r.u64();
  instant_ = r.b();
  r.end_section();
}

}  // namespace hmm::schemes
