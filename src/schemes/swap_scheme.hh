// The paper's swap-based designs (N, N-1, Live) as one MemoryScheme.
//
// A thin forwarding shell around HeteroMemoryController: every call maps
// 1:1 onto the controller API and the snapshot stream is exactly the
// controller's own, so the three extracted schemes stay bit-identical to
// the pre-zoo controller path (proven by tests/scheme_test.cc goldens).
#pragma once

#include <string>

#include "core/controller.hh"
#include "core/migration.hh"
#include "ras/ras.hh"
#include "schemes/scheme.hh"

namespace hmm::schemes {

class SwapScheme final : public MemoryScheme {
 public:
  SwapScheme(const SchemeConfig& cfg, DramSystem& on_package,
             DramSystem& off_package)
      : ctl_(cfg.controller, on_package, off_package) {}

  [[nodiscard]] const char* name() const noexcept override {
    return to_string(ctl_.config().design);
  }

  [[nodiscard]] SchemeDecision on_access(PhysAddr addr, AccessType type,
                                         Cycle now) override {
    const HeteroMemoryController::Decision d = ctl_.on_access(addr, type,
                                                              now);
    return SchemeDecision{d.route, d.extra_latency, d.stall_until_idle};
  }

  [[nodiscard]] Route translate(PhysAddr addr) const override {
    return ctl_.table().translate(addr);
  }

  void on_background_completion(const DramCompletion& c,
                                Region from) override {
    ctl_.on_completion(c, from);
  }

  [[nodiscard]] bool background_idle() const noexcept override {
    return ctl_.migration_idle();
  }

  [[nodiscard]] std::size_t in_flight_chunks() const noexcept override {
    return ctl_.engine().in_flight_chunks();
  }

  void set_instant(bool on) override { ctl_.set_instant_migration(on); }

  void set_fault_injector(fault::FaultInjector* inj) override {
    ctl_.set_fault_injector(inj);
  }

  void set_ras(ras::RasEngine* ras) override { ctl_.set_ras(ras); }

  [[nodiscard]] TranslationTable* mutable_table() noexcept override {
    return &ctl_.table();
  }

  [[nodiscard]] SchemeMetrics metrics() const override {
    SchemeMetrics m;
    const HeteroMemoryController::Stats& cs = ctl_.stats();
    const MigrationEngine::Stats& es = ctl_.engine().stats();
    m.on_package_fraction =
        cs.accesses == 0 ? 0.0
                         : static_cast<double>(cs.on_package_hits) /
                               static_cast<double>(cs.accesses);
    m.swaps = es.swaps_completed;
    m.migrated_bytes = es.bytes_copied;
    m.os_stall_cycles = cs.os_stall_cycles;
    m.chunk_retries = es.chunk_retries;
    m.chunks_dropped = es.chunks_dropped;
    m.swap_aborts = es.swaps_aborted;
    m.degraded = ctl_.engine().degraded();
    m.degraded_at = ctl_.engine().degraded_at();
    return m;
  }

  void save(snap::Writer& w) const override { ctl_.save(w); }
  void restore(snap::Reader& r) override { ctl_.restore(r); }

  [[nodiscard]] const TranslationTable* audited_table()
      const noexcept override {
    return &ctl_.table();
  }
  [[nodiscard]] std::string audit_check() const override {
    return ctl_.audit();
  }

  /// The wrapped controller, for the swap-design-only surface (engine
  /// stats, tracker test hooks) that predates the scheme zoo.
  [[nodiscard]] HeteroMemoryController& controller() noexcept {
    return ctl_;
  }
  [[nodiscard]] const HeteroMemoryController& controller() const noexcept {
    return ctl_;
  }

 private:
  HeteroMemoryController ctl_;
};

}  // namespace hmm::schemes
