// Table IV: effectiveness of memory-controller-based data migration in
// reducing average memory access latency, plus the Table III parameter
// summary. For each workload we report the no-migration latency, the best
// migrated latency over a granularity sweep, and
//   eta = (Lat_nomig - Lat_mig) / (Lat_nomig - DRAM core latency),
// where the DRAM core latency is the measured unloaded on-package access
// time (the paper's per-workload "DRAM core latency" row).
//
// Paper reference row (Table IV):
//   FT 69.1% | MG 84.3% | pgbench 92.2% | indexer 86.1% | SPECjbb 72.2%
//   | SPEC2006 99.1%  -> average 83%.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

int main() {
  const std::uint64_t n = bench::scaled(1'500'000);
  // Best-configuration sweep: live migration across granularities at the
  // most aggressive swap interval (the paper's Fig 12 minimum per curve).
  const std::vector<std::uint64_t> pages = {4 * KiB, 16 * KiB, 64 * KiB,
                                            256 * KiB, 1 * MiB, 4 * MiB};
  const std::uint64_t interval = 1000;

  std::printf("Table III parameters: total 4GB, on-package 512MB, macro "
              "pages 4KB-4MB, sub-block 4KB, FR-FCFS, open page\n");
  std::printf("Trace length per configuration: %llu accesses "
              "(HMM_BENCH_SCALE=%g)\n\n",
              static_cast<unsigned long long>(n), bench::scale());

  TextTable t({"Workload", "Core lat", "Lat w/o migration",
               "Best lat w/ migration", "Best page", "Effectiveness"});
  double eta_sum = 0;
  int eta_count = 0;

  for (const WorkloadInfo& w : section4_workloads()) {
    const RunResult nomig =
        bench::run(w, bench::static_config(4 * MiB), n);

    // The per-workload "DRAM core latency" row: the unloaded on-package
    // access time (all-on-package run minus its queueing delay).
    MemSimConfig ideal = bench::static_config(4 * MiB);
    ideal.force = MemSimConfig::Force::AllOnPackage;
    const RunResult allon_run = bench::run(w, ideal, n / 2);
    const double core_latency =
        allon_run.avg_latency - allon_run.on_queue_delay;

    double best = 1e300;
    std::uint64_t best_page = 0;
    for (const std::uint64_t page : pages) {
      const RunResult r = bench::run(
          w, bench::migration_config(page, MigrationDesign::LiveMigration,
                                     interval),
          n);
      if (r.avg_latency < best) {
        best = r.avg_latency;
        best_page = page;
      }
    }

    const double denom = nomig.avg_latency - core_latency;
    const double eta =
        denom > 0 ? (nomig.avg_latency - best) / denom : 0.0;
    eta_sum += eta;
    ++eta_count;
    t.add_row({w.name, TextTable::num(core_latency),
               TextTable::num(nomig.avg_latency), TextTable::num(best),
               format_size(best_page), TextTable::pct(eta)});
  }

  t.add_row({"average", "", "", "", "",
             TextTable::pct(eta_sum / eta_count)});
  t.print(std::cout);
  std::printf("\npaper: FT 69.1%% MG 84.3%% pgbench 92.2%% indexer 86.1%% "
              "SPECjbb 72.2%% SPEC2006 99.1%% (avg 83%%)\n");
  return 0;
}
