// Table IV: effectiveness of memory-controller-based data migration in
// reducing average memory access latency, plus the Table III parameter
// summary. For each workload we report the no-migration latency, the best
// migrated latency over a granularity sweep, and
//   eta = (Lat_nomig - Lat_mig) / (Lat_nomig - DRAM core latency),
// where the DRAM core latency is the measured unloaded on-package access
// time (the paper's per-workload "DRAM core latency" row).
//
// Paper reference row (Table IV):
//   FT 69.1% | MG 84.3% | pgbench 92.2% | indexer 86.1% | SPECjbb 72.2%
//   | SPEC2006 99.1%  -> average 83%.
//
// The workload x granularity grid runs as one parallel sweep (--jobs N).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

int main(int argc, char** argv) {
  const std::uint64_t n = bench::scaled(1'500'000);
  // Best-configuration sweep: live migration across granularities at the
  // most aggressive swap interval (the paper's Fig 12 minimum per curve).
  std::vector<std::uint64_t> pages = {4 * KiB,   16 * KiB, 64 * KiB,
                                      256 * KiB, 1 * MiB,  4 * MiB};
  const std::uint64_t interval = 1000;
  std::vector<WorkloadInfo> workloads = section4_workloads();
  if (bench::smoke(argc, argv)) {
    pages = {256 * KiB};
    workloads.resize(1);
  }

  std::printf("Table III parameters: total 4GB, on-package 512MB, macro "
              "pages 4KB-4MB, sub-block 4KB, FR-FCFS, open page\n");
  std::printf("Trace length per configuration: %llu accesses "
              "(HMM_BENCH_SCALE=%g)\n\n",
              static_cast<unsigned long long>(n), bench::scale());

  // Grid: per workload, the no-migration reference, the unloaded
  // all-on-package reference (core latency), then the granularity sweep.
  std::vector<runner::ExperimentSpec> grid;
  for (const WorkloadInfo& w : workloads) {
    const std::string wk = "table4/" + w.name;
    grid.push_back(bench::cell(wk + "/static", wk, w,
                               bench::static_config(4 * MiB), n));
    MemSimConfig ideal = bench::static_config(4 * MiB);
    ideal.force = MemSimConfig::Force::AllOnPackage;
    grid.push_back(bench::cell(wk + "/all-on", wk, w, ideal, n / 2));
    for (const std::uint64_t page : pages) {
      grid.push_back(bench::cell(
          wk + "/" + format_size(page), wk, w,
          bench::migration_config(page, MigrationDesign::LiveMigration,
                                  interval),
          n));
    }
  }

  const runner::RunnerOptions opts =
      bench::runner_options(argc, argv, "table4_effectiveness");
  bench::maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  runner::ResultSink sink("table4_effectiveness");
  sink.set_param("interval", interval);
  sink.set_param("accesses", n);

  TextTable t({"Workload", "Core lat", "Lat w/o migration",
               "Best lat w/ migration", "Best page", "Effectiveness"});
  double eta_sum = 0;
  int eta_count = 0;
  std::size_t i = 0;
  for (const WorkloadInfo& w : workloads) {
    const runner::CellResult& nomig = cells[i++];
    const runner::CellResult& allon = cells[i++];
    const double core_latency =
        allon.result.avg_latency - allon.result.on_queue_delay;

    double best = 1e300;
    std::uint64_t best_page = 0;
    for (const std::uint64_t page : pages) {
      const runner::CellResult& c = cells[i++];
      if (c.ok && c.result.avg_latency < best) {
        best = c.result.avg_latency;
        best_page = page;
      }
    }

    if (!nomig.ok || !allon.ok || best_page == 0) {
      // A failed reference (or a fully failed sweep) leaves no comparison
      // to make; the JSON artifact carries the per-cell errors.
      t.add_row({w.name, allon.ok ? TextTable::num(core_latency) : "FAILED",
                 nomig.ok ? TextTable::num(nomig.result.avg_latency)
                          : "FAILED",
                 best_page != 0 ? TextTable::num(best) : "FAILED",
                 best_page != 0 ? format_size(best_page) : "-", "-"});
      continue;
    }

    const double denom = nomig.result.avg_latency - core_latency;
    const double eta =
        denom > 0 ? (nomig.result.avg_latency - best) / denom : 0.0;
    eta_sum += eta;
    ++eta_count;
    sink.add_derived("table4/" + w.name + "/" + format_size(best_page),
                     "effectiveness", eta);
    sink.add_derived(allon.key, "core_latency", core_latency);
    t.add_row({w.name, TextTable::num(core_latency),
               TextTable::num(nomig.result.avg_latency), TextTable::num(best),
               format_size(best_page), TextTable::pct(eta)});
  }

  t.add_row({"average", "", "", "", "",
             eta_count > 0 ? TextTable::pct(eta_sum / eta_count) : "-"});
  t.print(std::cout);
  std::printf("\npaper: FT 69.1%% MG 84.3%% pgbench 92.2%% indexer 86.1%% "
              "SPECjbb 72.2%% SPEC2006 99.1%% (avg 83%%)\n");
  bench::report_artifact(sink.write_json(cells));
  return bench::finish(cells, argc, argv);
}
