// Shared harness pieces for the figure/table reproduction binaries.
//
// Every binary prints the paper's rows/series at a scaled-down trace
// length (the paper replays trillions of references; see DESIGN.md §4
// "Scaling note"). Knobs:
//   HMM_BENCH_SCALE   multiply every trace length (default 1.0; use 4-10
//                     for closer-to-steady-state numbers, 0.2 for smoke)
//   --jobs N / HMM_JOBS    worker threads for the sweep runner (default:
//                          hardware concurrency; 1 = the old serial loop)
//   --smoke / HMM_SMOKE    shrink the grid to one workload / one or two
//                          configs (the bench_smoke ctest path)
//   HMM_RESULTS_DIR        where sweep JSON artifacts land (default
//                          ./results; "" disables them)
//   --keep-going / HMM_KEEP_GOING   exit 0 even when sweep cells failed
//   --fault-rate R         per-opportunity fault probability (resilience
//                          benches; 0 disables injection)
//   --fault-sites a,b      comma list of site names (default: every site
//                          the bench exercises)
//   --audit-interval N     full invariant audit every N accesses
//   HMM_CELL_TIMEOUT       per-cell wall-clock deadline in seconds
//   --list-cells           print the deterministic "key seed" enumeration
//                          of the sweep grid and exit
//   --list-schemes         print the scheme registry (one name per line)
//                          and exit (schemes-aware benches)
//   --resume               skip cells recorded in the sweep journal (after
//                          an interrupted/killed run); recorded metrics
//                          replay bit-identically
//   --no-isolate / HMM_ISOLATE=0   run cells in-process (threads) instead
//                          of fork()ed child processes (process isolation
//                          is the default with --jobs > 1: a crashing cell
//                          becomes a "crashed" row, not a dead sweep)
//   HMM_CKPT_INTERVAL      seconds between mid-cell auto-checkpoints
//                          (default 30; 0 = checkpoint only on SIGINT/
//                          SIGTERM)
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/params.hh"
#include "runner/progress.hh"
#include "schemes/registry.hh"
#include "runner/result_sink.hh"
#include "runner/runner.hh"
#include "runner/supervisor.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm::bench {

[[nodiscard]] inline double scale() {
  if (const char* e = std::getenv("HMM_BENCH_SCALE")) {
    const double v = std::strtod(e, nullptr);
    if (v > 0) return v;
  }
  return 1.0;
}

[[nodiscard]] inline std::uint64_t scaled(std::uint64_t n) {
  return static_cast<std::uint64_t>(static_cast<double>(n) * scale());
}

/// `--jobs N` / `--jobs=N` / `-j N` from argv, else HMM_JOBS, else 0
/// (which the runner resolves to hardware concurrency).
[[nodiscard]] inline unsigned jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* val = nullptr;
    if (std::strncmp(a, "--jobs=", 7) == 0) {
      val = a + 7;
    } else if ((std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) &&
               i + 1 < argc) {
      val = argv[i + 1];
    }
    if (val != nullptr) {
      const long v = std::strtol(val, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
  }
  if (const char* e = std::getenv("HMM_JOBS")) {
    const long v = std::strtol(e, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;
}

/// `--smoke` / HMM_SMOKE=1: one tiny cell per axis so ctest can exercise
/// every converted bench in milliseconds.
[[nodiscard]] inline bool smoke(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  if (const char* e = std::getenv("HMM_SMOKE"))
    return e[0] != '\0' && e[0] != '0';
  return false;
}

/// Runner options for a bench binary: --jobs/HMM_JOBS, base seed 42 (the
/// historical bench seed), progress lines on stderr (stdout stays tables).
[[nodiscard]] inline runner::RunnerOptions runner_options(int argc,
                                                          char** argv) {
  static runner::ConsoleProgress progress(std::cerr);
  runner::RunnerOptions o;
  o.jobs = jobs(argc, argv);
  o.base_seed = 42;
  o.observer = &progress;
  return o;
}

/// `--resume`: continue an interrupted sweep from its journal.
[[nodiscard]] inline bool resume_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--resume") == 0) return true;
  }
  return false;
}

/// `--no-isolate` / HMM_ISOLATE=0: keep cells in-process (PR 1 threads).
[[nodiscard]] inline bool isolation_disabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-isolate") == 0) return true;
  }
  if (const char* e = std::getenv("HMM_ISOLATE"))
    return e[0] == '0' && e[1] == '\0';
  return false;
}

/// Durable runner options: everything the 2-arg overload sets, plus the
/// bench-keyed journal + checkpoint directory (living next to the JSON
/// artifact), --resume, SIGINT/SIGTERM handling, and fork()-based crash
/// isolation by default. HMM_RESULTS_DIR="" disables the durable files.
[[nodiscard]] inline runner::RunnerOptions runner_options(
    int argc, char** argv, const std::string& bench_id) {
  runner::RunnerOptions o = runner_options(argc, argv);
  runner::install_interrupt_handlers();
  if (!isolation_disabled(argc, argv))
    o.isolation = runner::Isolation::Process;
  const std::string dir = runner::ResultSink::results_dir();
  if (!dir.empty()) {
    o.journal_path = dir + "/" + bench_id + ".journal";
    o.checkpoint_dir = dir + "/" + bench_id + ".ckpt";
  }
  o.resume = resume_requested(argc, argv);
  return o;
}

/// `--list-cells`: print the grid's deterministic "key seed" enumeration
/// (exactly the seeds the sweep will derive) and exit 0. Lets scripts
/// pre-compute a sweep's contents without running it.
inline void maybe_list_cells(const std::vector<runner::ExperimentSpec>& grid,
                             const runner::RunnerOptions& opts, int argc,
                             char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-cells") != 0) continue;
    for (const runner::ExperimentSpec& s : grid) {
      const std::uint64_t seed = runner::derive_seed(
          opts.base_seed, s.seed_key.empty() ? s.key : s.seed_key);
      std::cout << s.key << " " << seed << "\n";
    }
    std::exit(0);
  }
}

/// `--list-schemes`: print the scheme registry (the exact names the
/// bench's grid and --schemes accept), one per line, and exit 0.
inline void maybe_list_schemes(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-schemes") != 0) continue;
    for (const std::string& s : schemes::scheme_names())
      std::cout << s << "\n";
    std::exit(0);
  }
}

/// Announce where a sweep's JSON artifact landed (path is "" when the
/// sink is disabled or the write failed).
inline void report_artifact(const std::string& path) {
  if (!path.empty()) std::cerr << "[runner] wrote " << path << "\n";
}

/// Generic `--name VALUE` / `--name=VALUE` lookup.
[[nodiscard]] inline const char* option_value(int argc, char** argv,
                                              const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, name, len) != 0) continue;
    if (a[len] == '=') return a + len + 1;
    if (a[len] == '\0' && i + 1 < argc) return argv[i + 1];
  }
  return nullptr;
}

/// `--keep-going` / HMM_KEEP_GOING: report failed cells but exit 0.
[[nodiscard]] inline bool keep_going(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--keep-going") == 0) return true;
  }
  if (const char* e = std::getenv("HMM_KEEP_GOING"))
    return e[0] != '\0' && e[0] != '0';
  return false;
}

/// `--fault-rate R`: per-opportunity fault probability (default `fallback`).
[[nodiscard]] inline double fault_rate(int argc, char** argv,
                                       double fallback = 0.0) {
  if (const char* v = option_value(argc, argv, "--fault-rate")) {
    const double r = std::strtod(v, nullptr);
    if (r >= 0) return r;
  }
  return fallback;
}

/// `--audit-interval N`: accesses between full invariant audits.
[[nodiscard]] inline std::uint64_t audit_interval(int argc, char** argv,
                                                  std::uint64_t fallback) {
  if (const char* v = option_value(argc, argv, "--audit-interval")) {
    const long long n = std::strtoll(v, nullptr, 10);
    if (n >= 0) return static_cast<std::uint64_t>(n);
  }
  return fallback;
}

/// `--fault-sites a,b,c`: subset of injection sites (names as printed by
/// fault::to_string). Unknown names abort with a usage message; no flag
/// returns `fallback`.
[[nodiscard]] inline std::vector<fault::FaultSite> fault_sites(
    int argc, char** argv, std::vector<fault::FaultSite> fallback) {
  const char* v = option_value(argc, argv, "--fault-sites");
  if (v == nullptr) return fallback;
  std::vector<fault::FaultSite> sites;
  std::string list(v);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    if (!name.empty()) {
      fault::FaultSite s;
      if (!fault::site_from_name(name, s)) {
        std::cerr << "unknown fault site '" << name
                  << "' (see --help in README: chunk-drop, chunk-delay, "
                     "swap-abort, channel-stall, table-bit-flip, "
                     "hotness-corrupt, media-transient, media-stuck-at)\n";
        std::exit(2);
      }
      sites.push_back(s);
    }
    start = comma + 1;
  }
  return sites;
}

/// Standard sweep epilogue: reports every failed cell on stderr (the JSON
/// artifact already carries status/error per cell) and returns the bench's
/// exit code — non-zero when any cell failed, unless --keep-going.
[[nodiscard]] inline int finish(const std::vector<runner::CellResult>& cells,
                                int argc, char** argv) {
  std::uint64_t failed = 0;
  std::uint64_t interrupted = 0;
  for (const auto& c : cells) {
    if (c.ok) continue;
    if (c.status == "interrupted") {
      ++interrupted;
      continue;
    }
    ++failed;
    std::cerr << "[runner] FAILED " << c.key << " (" << c.status
              << "): " << c.error << "\n";
  }
  if (interrupted > 0) {
    std::cerr << "[runner] interrupted: " << interrupted << "/"
              << cells.size()
              << " cells unfinished — rerun with --resume to continue\n";
    return 130;  // the conventional 128 + SIGINT exit
  }
  if (failed == 0) return 0;
  std::cerr << "[runner] " << failed << "/" << cells.size()
            << " cells failed\n";
  return keep_going(argc, argv) ? 0 : 1;
}

/// Section IV geometry with the given macro-page size and on-package size.
[[nodiscard]] inline Geometry sec4_geometry(
    std::uint64_t page_bytes,
    std::uint64_t on_package = params::kSec4OnPackageCapacity) {
  Geometry g;
  g.total_bytes = params::kTotalMemory;
  g.on_package_bytes = on_package;
  g.page_bytes = page_bytes;
  g.sub_block_bytes = std::min<std::uint64_t>(params::kSubBlockSize,
                                              page_bytes);
  return g;
}

/// Replay: warm up, then measure. During warm-up the migration engine
/// runs in instant mode, fast-forwarding placement to the steady state
/// the paper's trillion-reference traces reach (EXPERIMENTS.md explains
/// the methodology); measurement always uses real copy dynamics.
[[nodiscard]] inline RunResult run(const WorkloadInfo& w,
                                   const MemSimConfig& cfg, std::uint64_t n,
                                   double warmup_fraction = 0.5,
                                   std::uint64_t seed = 42,
                                   bool instant_warmup = true) {
  MemSim sim(cfg);
  auto gen = w.make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(n) * warmup_fraction);
  if (warm > 0) {
    if (instant_warmup) sim.set_instant_migration(true);
    sim.run(*gen, warm);
    sim.set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*gen, n - warm);
  sim.finish();
  return sim.result();
}

/// Convenience: a migration config for the Section IV studies.
[[nodiscard]] inline MemSimConfig migration_config(
    std::uint64_t page_bytes, MigrationDesign design, std::uint64_t interval,
    std::uint64_t on_package = params::kSec4OnPackageCapacity) {
  MemSimConfig cfg;
  cfg.controller.geom = sec4_geometry(page_bytes, on_package);
  cfg.controller.design = design;
  cfg.controller.swap_interval = interval;
  cfg.controller.migration_enabled = true;
  return cfg;
}

/// Static mapping (no migration) on the same geometry.
[[nodiscard]] inline MemSimConfig static_config(
    std::uint64_t page_bytes,
    std::uint64_t on_package = params::kSec4OnPackageCapacity) {
  MemSimConfig cfg;
  cfg.controller.geom = sec4_geometry(page_bytes, on_package);
  cfg.controller.migration_enabled = false;
  return cfg;
}

/// Build one sweep cell. `key` must be unique within the grid; `seed_key`
/// groups cells that must replay the same reference stream (all cells of
/// one workload within a figure, so with/without-migration comparisons
/// stay paired, as they were when every serial run used one fixed seed).
[[nodiscard]] inline runner::ExperimentSpec cell(
    std::string key, std::string seed_key, const WorkloadInfo& w,
    const MemSimConfig& cfg, std::uint64_t n, double warmup_fraction = 0.5,
    bool instant_warmup = true) {
  runner::ExperimentSpec s;
  s.key = std::move(key);
  s.seed_key = std::move(seed_key);
  s.workload = w;
  s.config = cfg;
  s.accesses = n;
  s.warmup_fraction = warmup_fraction;
  s.instant_warmup = instant_warmup;
  return s;
}

}  // namespace hmm::bench
