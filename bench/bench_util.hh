// Shared harness pieces for the figure/table reproduction binaries.
//
// Every binary prints the paper's rows/series at a scaled-down trace
// length (the paper replays trillions of references; see DESIGN.md §4
// "Scaling note"). Environment knobs:
//   HMM_BENCH_SCALE   multiply every trace length (default 1.0; use 4-10
//                     for closer-to-steady-state numbers, 0.2 for smoke)
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/params.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm::bench {

[[nodiscard]] inline double scale() {
  if (const char* e = std::getenv("HMM_BENCH_SCALE")) {
    const double v = std::strtod(e, nullptr);
    if (v > 0) return v;
  }
  return 1.0;
}

[[nodiscard]] inline std::uint64_t scaled(std::uint64_t n) {
  return static_cast<std::uint64_t>(static_cast<double>(n) * scale());
}

/// Section IV geometry with the given macro-page size and on-package size.
[[nodiscard]] inline Geometry sec4_geometry(
    std::uint64_t page_bytes,
    std::uint64_t on_package = params::kSec4OnPackageCapacity) {
  Geometry g;
  g.total_bytes = params::kTotalMemory;
  g.on_package_bytes = on_package;
  g.page_bytes = page_bytes;
  g.sub_block_bytes = std::min<std::uint64_t>(params::kSubBlockSize,
                                              page_bytes);
  return g;
}

/// Replay: warm up, then measure. During warm-up the migration engine
/// runs in instant mode, fast-forwarding placement to the steady state
/// the paper's trillion-reference traces reach (EXPERIMENTS.md explains
/// the methodology); measurement always uses real copy dynamics.
[[nodiscard]] inline RunResult run(const WorkloadInfo& w,
                                   const MemSimConfig& cfg, std::uint64_t n,
                                   double warmup_fraction = 0.5,
                                   std::uint64_t seed = 42,
                                   bool instant_warmup = true) {
  MemSim sim(cfg);
  auto gen = w.make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(n) * warmup_fraction);
  if (warm > 0) {
    if (instant_warmup) sim.controller().set_instant_migration(true);
    sim.run(*gen, warm);
    sim.controller().set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*gen, n - warm);
  sim.finish();
  return sim.result();
}

/// Convenience: a migration config for the Section IV studies.
[[nodiscard]] inline MemSimConfig migration_config(std::uint64_t page_bytes,
                                                   MigrationDesign design,
                                                   std::uint64_t interval,
                                                   std::uint64_t on_package =
                                                       params::kSec4OnPackageCapacity) {
  MemSimConfig cfg;
  cfg.controller.geom = sec4_geometry(page_bytes, on_package);
  cfg.controller.design = design;
  cfg.controller.swap_interval = interval;
  cfg.controller.migration_enabled = true;
  return cfg;
}

/// Static mapping (no migration) on the same geometry.
[[nodiscard]] inline MemSimConfig static_config(std::uint64_t page_bytes,
                                                std::uint64_t on_package =
                                                    params::kSec4OnPackageCapacity) {
  MemSimConfig cfg;
  cfg.controller.geom = sec4_geometry(page_bytes, on_package);
  cfg.controller.migration_enabled = false;
  return cfg;
}

}  // namespace hmm::bench
