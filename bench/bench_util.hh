// Shared harness pieces for the figure/table reproduction binaries.
//
// Every binary prints the paper's rows/series at a scaled-down trace
// length (the paper replays trillions of references; see DESIGN.md §4
// "Scaling note"). Knobs:
//   HMM_BENCH_SCALE   multiply every trace length (default 1.0; use 4-10
//                     for closer-to-steady-state numbers, 0.2 for smoke)
//   --jobs N / HMM_JOBS    worker threads for the sweep runner (default:
//                          hardware concurrency; 1 = the old serial loop)
//   --smoke / HMM_SMOKE    shrink the grid to one workload / one or two
//                          configs (the bench_smoke ctest path)
//   HMM_RESULTS_DIR        where sweep JSON artifacts land (default
//                          ./results; "" disables them)
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "common/params.hh"
#include "runner/progress.hh"
#include "runner/result_sink.hh"
#include "runner/runner.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm::bench {

[[nodiscard]] inline double scale() {
  if (const char* e = std::getenv("HMM_BENCH_SCALE")) {
    const double v = std::strtod(e, nullptr);
    if (v > 0) return v;
  }
  return 1.0;
}

[[nodiscard]] inline std::uint64_t scaled(std::uint64_t n) {
  return static_cast<std::uint64_t>(static_cast<double>(n) * scale());
}

/// `--jobs N` / `--jobs=N` / `-j N` from argv, else HMM_JOBS, else 0
/// (which the runner resolves to hardware concurrency).
[[nodiscard]] inline unsigned jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* val = nullptr;
    if (std::strncmp(a, "--jobs=", 7) == 0) {
      val = a + 7;
    } else if ((std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) &&
               i + 1 < argc) {
      val = argv[i + 1];
    }
    if (val != nullptr) {
      const long v = std::strtol(val, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
  }
  if (const char* e = std::getenv("HMM_JOBS")) {
    const long v = std::strtol(e, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 0;
}

/// `--smoke` / HMM_SMOKE=1: one tiny cell per axis so ctest can exercise
/// every converted bench in milliseconds.
[[nodiscard]] inline bool smoke(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  if (const char* e = std::getenv("HMM_SMOKE")) return e[0] != '\0' && e[0] != '0';
  return false;
}

/// Runner options for a bench binary: --jobs/HMM_JOBS, base seed 42 (the
/// historical bench seed), progress lines on stderr (stdout stays tables).
[[nodiscard]] inline runner::RunnerOptions runner_options(int argc,
                                                          char** argv) {
  static runner::ConsoleProgress progress(std::cerr);
  runner::RunnerOptions o;
  o.jobs = jobs(argc, argv);
  o.base_seed = 42;
  o.observer = &progress;
  return o;
}

/// Announce where a sweep's JSON artifact landed (path is "" when the
/// sink is disabled or the write failed).
inline void report_artifact(const std::string& path) {
  if (!path.empty()) std::cerr << "[runner] wrote " << path << "\n";
}

/// Section IV geometry with the given macro-page size and on-package size.
[[nodiscard]] inline Geometry sec4_geometry(
    std::uint64_t page_bytes,
    std::uint64_t on_package = params::kSec4OnPackageCapacity) {
  Geometry g;
  g.total_bytes = params::kTotalMemory;
  g.on_package_bytes = on_package;
  g.page_bytes = page_bytes;
  g.sub_block_bytes = std::min<std::uint64_t>(params::kSubBlockSize,
                                              page_bytes);
  return g;
}

/// Replay: warm up, then measure. During warm-up the migration engine
/// runs in instant mode, fast-forwarding placement to the steady state
/// the paper's trillion-reference traces reach (EXPERIMENTS.md explains
/// the methodology); measurement always uses real copy dynamics.
[[nodiscard]] inline RunResult run(const WorkloadInfo& w,
                                   const MemSimConfig& cfg, std::uint64_t n,
                                   double warmup_fraction = 0.5,
                                   std::uint64_t seed = 42,
                                   bool instant_warmup = true) {
  MemSim sim(cfg);
  auto gen = w.make(seed);
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(n) * warmup_fraction);
  if (warm > 0) {
    if (instant_warmup) sim.controller().set_instant_migration(true);
    sim.run(*gen, warm);
    sim.controller().set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*gen, n - warm);
  sim.finish();
  return sim.result();
}

/// Convenience: a migration config for the Section IV studies.
[[nodiscard]] inline MemSimConfig migration_config(std::uint64_t page_bytes,
                                                   MigrationDesign design,
                                                   std::uint64_t interval,
                                                   std::uint64_t on_package =
                                                       params::kSec4OnPackageCapacity) {
  MemSimConfig cfg;
  cfg.controller.geom = sec4_geometry(page_bytes, on_package);
  cfg.controller.design = design;
  cfg.controller.swap_interval = interval;
  cfg.controller.migration_enabled = true;
  return cfg;
}

/// Static mapping (no migration) on the same geometry.
[[nodiscard]] inline MemSimConfig static_config(std::uint64_t page_bytes,
                                                std::uint64_t on_package =
                                                    params::kSec4OnPackageCapacity) {
  MemSimConfig cfg;
  cfg.controller.geom = sec4_geometry(page_bytes, on_package);
  cfg.controller.migration_enabled = false;
  return cfg;
}

/// Build one sweep cell. `key` must be unique within the grid; `seed_key`
/// groups cells that must replay the same reference stream (all cells of
/// one workload within a figure, so with/without-migration comparisons
/// stay paired, as they were when every serial run used one fixed seed).
[[nodiscard]] inline runner::ExperimentSpec cell(
    std::string key, std::string seed_key, const WorkloadInfo& w,
    const MemSimConfig& cfg, std::uint64_t n, double warmup_fraction = 0.5,
    bool instant_warmup = true) {
  runner::ExperimentSpec s;
  s.key = std::move(key);
  s.seed_key = std::move(seed_key);
  s.workload = w;
  s.config = cfg;
  s.accesses = n;
  s.warmup_fraction = warmup_fraction;
  s.instant_warmup = instant_warmup;
  return s;
}

}  // namespace hmm::bench
