// Fig 12: average memory latency by migration granularity, live
// migration, swap interval = 1K memory accesses (the paper's most
// aggressive setting — minimum latencies of the three interval figures).
#include "bench/granularity_sweep.hh"

int main(int argc, char** argv) {
  return hmm::bench::run_granularity_sweep(argc, argv, 1'000, "Fig 12",
                                           "fig12_granularity_1k");
}
