// Fig 14: average memory latency by migration granularity, live
// migration, swap interval = 100K memory accesses.
#include "bench/granularity_sweep.hh"

int main(int argc, char** argv) {
  return hmm::bench::run_granularity_sweep(argc, argv, 100'000, "Fig 14",
                                           "fig14_granularity_100k");
}
