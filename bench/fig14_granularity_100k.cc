// Fig 14: average memory latency by migration granularity, live
// migration, swap interval = 100K memory accesses.
#include "bench/granularity_sweep.hh"

int main() {
  return hmm::bench::run_granularity_sweep(100'000, "Fig 14");
}
