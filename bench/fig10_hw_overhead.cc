// Fig 10: hardware bits required by the pure-hardware migration scheme to
// manage 1GB of on-package memory, as a function of macro-page size.
//
// Paper reference point: 9,228 bits at 4MB granularity (7,168 table +
// 1,024 fill bitmap + 256 pseudo-LRU + 780 multi-queue); the total grows
// to ~1E7 bits at 4KB, which is why sub-1MB granularities are handled by
// the OS-assisted scheme instead.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "common/units.hh"
#include "core/overhead.hh"

using namespace hmm;

int main() {
  std::printf("Fig 10: pure-hardware migration overhead, 1GB on-package, "
              "48-bit physical space\n\n");

  TextTable t({"Page size", "Table", "Fill bitmap", "pLRU", "Multi-queue",
               "Total bits", "Scheme"});
  for (std::uint64_t page = 4 * KiB; page <= 4 * MiB; page *= 4) {
    const HardwareOverhead o = migration_hardware_overhead(1 * GiB, page);
    const bool hw = page >= params::kPureHardwareMinPage;
    t.add_row({format_size(page), std::to_string(o.table_bits),
               std::to_string(o.fill_bitmap_bits), std::to_string(o.plru_bits),
               std::to_string(o.multi_queue_bits), std::to_string(o.total()),
               hw ? "pure hardware" : "OS-assisted"});
  }
  t.print(std::cout);

  const HardwareOverhead ref = migration_hardware_overhead(1 * GiB, 4 * MiB);
  std::printf("\n4MB reference total: %llu bits (paper: 9,228)\n",
              static_cast<unsigned long long>(ref.total()));
  return 0;
}
