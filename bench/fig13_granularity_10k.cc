// Fig 13: average memory latency by migration granularity, live
// migration, swap interval = 10K memory accesses.
#include "bench/granularity_sweep.hh"

int main(int argc, char** argv) {
  return hmm::bench::run_granularity_sweep(argc, argv, 10'000, "Fig 13",
                                           "fig13_granularity_10k");
}
