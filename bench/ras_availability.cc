// RAS availability: what media errors cost each scheme, and what the
// RAS layer buys back — across the whole scheme registry. Sweeps media
// error rate x scheme {N, N-1, Live, nomad, Alloy, flat-HMA, MemCache}
// with the deterministic media-error model armed (transient bit flips at
// rate R, permanent stuck-at cells at R/4) and the patrol scrubber on.
//
// What the table shows:
//  * ECC outcomes per cell: corrected errors (CE) absorbed at a small
//    fixed latency, detected-uncorrectable errors (DUE) paying the
//    recovery penalty — the demand-latency ratio vs the error-free
//    baseline of the same scheme quantifies the availability cost;
//  * the scrub columns: how many latent errors the patrol walk surfaced
//    before a demand read could trip over them;
//  * the retirement state machine: frames retired (occupants evacuated
//    through the scheme's own migration machinery, spares consumed) vs
//    pinned (no expressible relocation — served in place), and the
//    healthy-frame count left at the end;
//  * a scrub-off row per scheme at the top rate: with the patrol walk
//    disabled every latent error waits for a demand access, so DUE
//    recovery lands on the critical path — the demand-latency gap
//    between the scrub-on and scrub-off rows is the scrubber's value.
//
// Self-check: the rate-0 cells run with the RAS layer enabled but no
// media plan armed — they must report zero error events and zero
// retirements (the engine idles; only scrub probes tick). The bench
// exits non-zero if any rate-0 cell reports RAS activity.
//
// The JSON artifact is BENCH_ras_availability.json; each cell carries
// the full RAS metrics block plus the retirement log (capacity vs
// time). Every cell must end "ok" or "failed" with a structured error
// (a capacity-floor breach is SimError(CapacityExhausted), not a
// crash); scripts/check_cell_statuses.py enforces this in
// scripts/check_resilience.sh.
//
// Knobs: --list-schemes, --fault-rate R (replaces the sweep with the
// single rate R), --audit-interval N, --jobs, --smoke, --keep-going,
// HMM_CELL_TIMEOUT.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "schemes/registry.hh"

using namespace hmm;

namespace {

[[nodiscard]] fault::FaultPlan media_plan(double rate, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  if (rate <= 0) return plan;  // empty plan: injection fully disabled
  plan.add(fault::FaultSite::MediaTransient, rate);
  // Permanent faults are rarer than transients but each one keeps firing
  // until the frame retires, so they run well below the transient rate.
  plan.add(fault::FaultSite::MediaStuckAt, rate / 4);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  bench::maybe_list_schemes(argc, argv);

  const std::uint64_t n = bench::scaled(300'000);
  std::vector<double> rates = {0.0, 1e-5, 1e-4, 1e-3};
  const std::vector<std::string>& names = schemes::scheme_names();
  const std::uint64_t page = 256 * KiB;
  const std::uint64_t interval = 1'000;
  const std::uint64_t audits = bench::audit_interval(argc, argv, 4'096);
  if (const double r = bench::fault_rate(argc, argv, -1); r > 0)
    rates = {0.0, r};
  if (bench::smoke(argc, argv)) rates = {0.0, 1e-3};
  const double top_rate = rates.back();

  std::vector<WorkloadInfo> workloads = section4_workloads();
  WorkloadInfo w = workloads.front();
  for (const WorkloadInfo& cand : workloads)
    if (cand.name == "pgbench") w = cand;

  std::printf("RAS availability: %s, %zu schemes, %s pages, media rates up "
              "to %g (stuck-at at rate/4), audit every %llu accesses "
              "(%llu accesses/cfg)\n\n",
              w.name.c_str(), names.size(), format_size(page).c_str(),
              top_rate, static_cast<unsigned long long>(audits),
              static_cast<unsigned long long>(n));

  // One config shape for every scheme (as in fault_resilience): the swap
  // designs read .design, the cache schemes read the geometry + partition
  // knob. RAS is on in every cell; `scrub` toggles the patrol walk.
  const auto make_cfg = [&](const std::string& s, double rate, bool scrub,
                            const std::string& key) {
    MemSimConfig cfg = bench::migration_config(
        page, MigrationDesign::LiveMigration, interval);
    cfg.scheme = s;
    cfg.cache_fraction = 0.5;
    cfg.audit_interval = audits;
    cfg.fault = media_plan(rate, runner::derive_seed(42, key));
    cfg.ras.enabled = true;
    // Denser than the default patrol: the sec4 geometry has 16K frames,
    // so the walk needs a short probe interval to cover them within a
    // scaled-down replay.
    cfg.ras.scrub_interval = scrub ? 1'000 : 0;
    return cfg;
  };

  std::vector<runner::ExperimentSpec> grid;
  const std::string wk = "ras_availability/" + w.name;
  for (const double rate : rates) {
    for (const std::string& s : names) {
      const std::string key = wk + "/r" + std::to_string(rate) + "/" + s;
      grid.push_back(
          bench::cell(key, wk, w, make_cfg(s, rate, true, key), n));
    }
  }
  // Scrub-off comparison at the top rate: every latent error waits for a
  // demand access.
  for (const std::string& s : names) {
    const std::string key =
        wk + "/noscrub-r" + std::to_string(top_rate) + "/" + s;
    grid.push_back(
        bench::cell(key, wk, w, make_cfg(s, top_rate, false, key), n));
  }

  const runner::RunnerOptions opts =
      bench::runner_options(argc, argv, "BENCH_ras_availability");
  bench::maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  runner::ResultSink sink("BENCH_ras_availability");
  sink.set_param("workload", w.name);
  sink.set_param("page", format_size(page));
  sink.set_param("interval", interval);
  sink.set_param("audit_interval", audits);
  sink.set_param("accesses", n);

  const double total_frames =
      static_cast<double>(params::kTotalMemory / page);
  TextTable t({"rate", "scrub", "scheme", "status", "avg lat", "vs r=0",
               "CE", "DUE", "scrub hits", "retired", "pinned", "healthy"});
  std::vector<double> base(names.size(), 0.0);
  bool quiet_baseline = true;
  const auto add_rows = [&](std::size_t first, double rate, bool scrub) {
    for (std::size_t si = 0; si < names.size(); ++si) {
      const runner::CellResult& c = cells[first + si];
      const RunResult& r = c.result;
      if (rate == 0.0 && scrub && c.ok) {
        base[si] = r.avg_latency;
        if (r.ras.demand_corrected + r.ras.demand_uncorrectable +
                r.ras.scrub_corrected + r.ras.scrub_uncorrectable +
                r.ras.frames_retired + r.ras.frames_pinned >
            0)
          quiet_baseline = false;
      }
      std::vector<std::string> row{TextTable::num(rate, 6),
                                   scrub ? "on" : "off", names[si],
                                   c.status};
      if (c.ok) {
        const double ratio = base[si] > 0 ? r.avg_latency / base[si] : 0.0;
        if (ratio > 0) sink.add_derived(c.key, "latency_ratio", ratio);
        sink.add_derived(
            c.key, "healthy_fraction",
            static_cast<double>(r.ras_healthy_frames) / total_frames);
        row.push_back(TextTable::num(r.avg_latency));
        row.push_back(ratio > 0 ? TextTable::num(ratio, 3) + "x" : "-");
        row.push_back(TextTable::num(
            static_cast<double>(r.ras.demand_corrected), 0));
        row.push_back(TextTable::num(
            static_cast<double>(r.ras.demand_uncorrectable), 0));
        row.push_back(TextTable::num(
            static_cast<double>(r.ras.scrub_corrected +
                                r.ras.scrub_uncorrectable), 0));
        row.push_back(
            TextTable::num(static_cast<double>(r.ras.frames_retired), 0));
        row.push_back(
            TextTable::num(static_cast<double>(r.ras.frames_pinned), 0));
        row.push_back(
            TextTable::num(static_cast<double>(r.ras_healthy_frames), 0));
      } else {
        row.insert(row.end(), {"-", "-", "-", "-", "-", "-", "-", "-"});
      }
      t.add_row(std::move(row));
    }
  };
  for (std::size_t ri = 0; ri < rates.size(); ++ri)
    add_rows(ri * names.size(), rates[ri], true);
  add_rows(rates.size() * names.size(), top_rate, false);
  t.print(std::cout);

  bench::report_artifact(sink.write_json(cells));

  if (!quiet_baseline) {
    std::cerr << "[ras_availability] self-check failed: a rate-0 cell "
                 "reported RAS error events or retirements\n";
    return 1;
  }
  return bench::finish(cells, argc, argv);
}
