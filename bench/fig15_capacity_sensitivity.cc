// Fig 15: sensitivity to on-package capacity (128MB / 256MB / 512MB):
// DRAM core latency, average latency with migration, and without.
//
// Paper shape: latency rises as the on-package region shrinks, but stays
// well below the no-migration latency even at 128MB.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

int main() {
  const std::uint64_t n = bench::scaled(400'000);
  const std::vector<std::uint64_t> capacities = {128 * MiB, 256 * MiB,
                                                 512 * MiB};
  const std::uint64_t page = 256 * KiB;
  const std::uint64_t interval = 1'000;

  std::printf("Fig 15: latency vs on-package capacity (live migration, "
              "%s pages, %llu-access epochs, %llu accesses/cfg)\n\n",
              format_size(page).c_str(),
              static_cast<unsigned long long>(interval),
              static_cast<unsigned long long>(n));

  TextTable t({"Workload", "Capacity", "Core lat", "w/ migration",
               "w/o migration"});
  for (const WorkloadInfo& w : section4_workloads()) {
    for (const std::uint64_t cap : capacities) {
      MemSimConfig ideal = bench::static_config(page, cap);
      ideal.force = MemSimConfig::Force::AllOnPackage;
      const RunResult allon = bench::run(w, ideal, n / 2);
      const double core = allon.avg_latency - allon.on_queue_delay;

      const RunResult mig = bench::run(
          w,
          bench::migration_config(page, MigrationDesign::LiveMigration,
                                  interval, cap),
          n);
      const RunResult nomig =
          bench::run(w, bench::static_config(page, cap), n / 2);

      t.add_row({w.name, format_size(cap), TextTable::num(core),
                 TextTable::num(mig.avg_latency),
                 TextTable::num(nomig.avg_latency)});
    }
  }
  t.print(std::cout);
  return 0;
}
