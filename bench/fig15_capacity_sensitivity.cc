// Fig 15: sensitivity to on-package capacity (128MB / 256MB / 512MB):
// DRAM core latency, average latency with migration, and without.
//
// Paper shape: latency rises as the on-package region shrinks, but stays
// well below the no-migration latency even at 128MB. The workload x
// capacity grid runs as one parallel sweep (--jobs N).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

int main(int argc, char** argv) {
  const std::uint64_t n = bench::scaled(400'000);
  std::vector<std::uint64_t> capacities = {128 * MiB, 256 * MiB, 512 * MiB};
  const std::uint64_t page = 256 * KiB;
  const std::uint64_t interval = 1'000;
  std::vector<WorkloadInfo> workloads = section4_workloads();
  if (bench::smoke(argc, argv)) {
    capacities = {256 * MiB};
    workloads.resize(1);
  }

  std::printf("Fig 15: latency vs on-package capacity (live migration, "
              "%s pages, %llu-access epochs, %llu accesses/cfg)\n\n",
              format_size(page).c_str(),
              static_cast<unsigned long long>(interval),
              static_cast<unsigned long long>(n));

  // Grid: per (workload, capacity): ideal all-on-package (for the core
  // latency), with migration, and without.
  std::vector<runner::ExperimentSpec> grid;
  for (const WorkloadInfo& w : workloads) {
    const std::string wk = "fig15/" + w.name;
    for (const std::uint64_t cap : capacities) {
      const std::string ck = wk + "/" + format_size(cap);
      MemSimConfig ideal = bench::static_config(page, cap);
      ideal.force = MemSimConfig::Force::AllOnPackage;
      grid.push_back(bench::cell(ck + "/all-on", wk, w, ideal, n / 2));
      grid.push_back(bench::cell(
          ck + "/migration", wk, w,
          bench::migration_config(page, MigrationDesign::LiveMigration,
                                  interval, cap),
          n));
      grid.push_back(
          bench::cell(ck + "/static", wk, w, bench::static_config(page, cap),
                      n / 2));
    }
  }

  const runner::RunnerOptions opts =
      bench::runner_options(argc, argv, "fig15_capacity_sensitivity");
  bench::maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  runner::ResultSink sink("fig15_capacity_sensitivity");
  sink.set_param("page", format_size(page));
  sink.set_param("interval", interval);
  sink.set_param("accesses", n);

  TextTable t({"Workload", "Capacity", "Core lat", "w/ migration",
               "w/o migration"});
  std::size_t i = 0;
  for (const WorkloadInfo& w : workloads) {
    for (const std::uint64_t cap : capacities) {
      const runner::CellResult& allon = cells[i++];
      const runner::CellResult& mig = cells[i++];
      const runner::CellResult& nomig = cells[i++];
      const double core =
          allon.result.avg_latency - allon.result.on_queue_delay;
      if (allon.ok) sink.add_derived(allon.key, "core_latency", core);
      auto lat = [](const runner::CellResult& c, double v) {
        return c.ok ? TextTable::num(v) : std::string("FAILED");
      };
      t.add_row({w.name, format_size(cap), lat(allon, core),
                 lat(mig, mig.result.avg_latency),
                 lat(nomig, nomig.result.avg_latency)});
    }
  }
  t.print(std::cout);
  bench::report_artifact(sink.write_json(cells));
  return bench::finish(cells, argc, argv);
}
