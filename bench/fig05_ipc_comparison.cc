// Fig 5: IPC improvement over the baseline (all memory off-package) for
// the three uses of 1GB of on-package DRAM: an L4 cache, a statically
// mapped heterogeneous memory, and the all-on-package ideal.
//
// Paper shape: for the seven workloads whose footprint fits in 1GB, the
// static heterogeneous mapping matches the ideal and beats the L4 cache
// (which pays the sequential tag+data access, 140-cycle hits); for the
// multi-GB workloads (DC.B, FT.C) the static mapping gains little and the
// L4 cache can win; in some cases (e.g. CG.C) the L4 gains almost nothing.
// Table II's latency ledger is printed first.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace hmm;

namespace {

void print_table2() {
  std::printf("Table II ledger (reconstructed; see DESIGN.md):\n"
              "  L1 2c | L2 5c | L3 25c | off-package memory %lluc | "
              "on-package memory %lluc\n"
              "  L4 DRAM-cache hit %lluc (tag then data), miss "
              "determination %lluc\n\n",
              static_cast<unsigned long long>(params::kOffPackageFixedLatency),
              static_cast<unsigned long long>(params::kOnPackageFixedLatency),
              static_cast<unsigned long long>(params::kL4HitLatency),
              static_cast<unsigned long long>(params::kL4MissDetermination));
}

}  // namespace

int main() {
  const std::uint64_t n = bench::scaled(4'000'000);
  print_table2();
  std::printf("Fig 5: IPC vs baseline (%llu CPU references per "
              "configuration)\n\n",
              static_cast<unsigned long long>(n));

  const std::vector<MemOption> options = {
      MemOption::L4Cache, MemOption::StaticHetero, MemOption::AllOnPackage};

  TextTable t({"Workload", "Footprint", "Baseline IPC", "L4 Cache 1GB",
               "On-Chip Mem 1GB", "All On-Chip", "L4 miss rate"});
  for (const WorkloadInfo& w : npb_workloads()) {
    SystemSim::Config base_cfg;
    base_cfg.option = MemOption::Baseline;
    auto base_gen = w.make(3);
    SystemSim base_sim(base_cfg);
    const Sec2Result base = base_sim.run(*base_gen, n, n / 2);

    std::vector<std::string> row{w.name, format_size(w.footprint_bytes),
                                 TextTable::num(base.ipc, 3)};
    double l4_missrate = 0;
    for (const MemOption opt : options) {
      SystemSim::Config cfg;
      cfg.option = opt;
      auto gen = w.make(3);  // identical stream for a paired comparison
      SystemSim sim(cfg);
      const Sec2Result r = sim.run(*gen, n, n / 2);
      const double delta = (r.ipc - base.ipc) / base.ipc;
      row.push_back(TextTable::pct(delta));
      if (opt == MemOption::L4Cache) l4_missrate = r.l4_miss_rate;
    }
    row.push_back(TextTable::pct(l4_missrate));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}
