// Fig 16: total memory power of the hybrid on-/off-package system with
// dynamic migration, normalized to an off-package-DRAM-only system, for
// migration granularities 4KB / 16KB / 64KB and swap intervals 1K / 10K /
// 100K accesses.
//
// Paper shape: power overhead grows with migration frequency and page
// size (crossing-package copy traffic); the minimum observed overhead is
// about 2x, at 4KB granularity with infrequent swaps.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

int main() {
  const std::uint64_t n = bench::scaled(300'000);
  const std::vector<std::uint64_t> pages = {4 * KiB, 16 * KiB, 64 * KiB};
  const std::vector<std::uint64_t> intervals = {1'000, 10'000, 100'000};

  std::printf("Fig 16: memory power normalized to off-package-only "
              "(%llu accesses/cfg)\n",
              static_cast<unsigned long long>(n));
  std::printf("energy: %.2gpJ/bit core, %.3gpJ/bit on-package link, "
              "%.2gpJ/bit off-package link\n\n",
              params::kDramCorePjPerBit, params::kOnPackageLinkPjPerBit,
              params::kOffPackageLinkPjPerBit);

  TextTable t({"Workload", "Size", "1K", "10K", "100K"});
  double min_ratio = 1e300;
  for (const WorkloadInfo& w : section4_workloads()) {
    for (const std::uint64_t page : pages) {
      std::vector<std::string> row{w.name, format_size(page)};
      for (const std::uint64_t interval : intervals) {
        // Power must include the warm-up migration traffic proportionally,
        // so use real migration dynamics throughout (no instant warm-up).
        const RunResult r = bench::run(
            w,
            bench::migration_config(page, MigrationDesign::LiveMigration,
                                    interval),
            n, /*warmup_fraction=*/0.0, /*seed=*/42,
            /*instant_warmup=*/false);
        const double ratio = r.normalized_power();
        min_ratio = std::min(min_ratio, ratio);
        row.push_back(TextTable::num(ratio, 2) + "x");
      }
      t.add_row(std::move(row));
    }
  }
  t.print(std::cout);
  std::printf("\nminimum observed overhead: %.2fx (paper: ~2x)\n", min_ratio);
  return 0;
}
