// Fig 16: total memory power of the hybrid on-/off-package system with
// dynamic migration, normalized to an off-package-DRAM-only system, for
// migration granularities 4KB / 16KB / 64KB and swap intervals 1K / 10K /
// 100K accesses.
//
// Paper shape: power overhead grows with migration frequency and page
// size (crossing-package copy traffic); the minimum observed overhead is
// about 2x, at 4KB granularity with infrequent swaps. The 6x3x3 grid runs
// as one parallel sweep (--jobs N).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

int main(int argc, char** argv) {
  const std::uint64_t n = bench::scaled(300'000);
  std::vector<std::uint64_t> pages = {4 * KiB, 16 * KiB, 64 * KiB};
  std::vector<std::uint64_t> intervals = {1'000, 10'000, 100'000};
  std::vector<WorkloadInfo> workloads = section4_workloads();
  if (bench::smoke(argc, argv)) {
    pages = {16 * KiB};
    intervals = {10'000};
    workloads.resize(1);
  }

  std::printf("Fig 16: memory power normalized to off-package-only "
              "(%llu accesses/cfg)\n",
              static_cast<unsigned long long>(n));
  std::printf("energy: %.2gpJ/bit core, %.3gpJ/bit on-package link, "
              "%.2gpJ/bit off-package link\n\n",
              params::kDramCorePjPerBit, params::kOnPackageLinkPjPerBit,
              params::kOffPackageLinkPjPerBit);

  // Power must include the warm-up migration traffic proportionally, so
  // every cell uses real migration dynamics (no instant warm-up).
  std::vector<runner::ExperimentSpec> grid;
  for (const WorkloadInfo& w : workloads) {
    const std::string wk = "fig16/" + w.name;
    for (const std::uint64_t page : pages) {
      for (const std::uint64_t interval : intervals) {
        grid.push_back(bench::cell(
            wk + "/" + format_size(page) + "/i" + std::to_string(interval),
            wk, w,
            bench::migration_config(page, MigrationDesign::LiveMigration,
                                    interval),
            n, /*warmup_fraction=*/0.0, /*instant_warmup=*/false));
      }
    }
  }

  const runner::RunnerOptions opts =
      bench::runner_options(argc, argv, "fig16_power");
  bench::maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  TextTable t({"Workload", "Size", "1K", "10K", "100K"});
  double min_ratio = 1e300;
  std::size_t i = 0;
  for (const WorkloadInfo& w : workloads) {
    for (const std::uint64_t page : pages) {
      std::vector<std::string> row{w.name, format_size(page)};
      for (std::size_t k = 0; k < intervals.size(); ++k) {
        const runner::CellResult& c = cells[i++];
        if (!c.ok) {
          row.push_back("FAILED");
          continue;
        }
        const double ratio = c.result.normalized_power();
        min_ratio = std::min(min_ratio, ratio);
        row.push_back(TextTable::num(ratio, 2) + "x");
      }
      t.add_row(std::move(row));
    }
  }
  t.print(std::cout);
  std::printf("\nminimum observed overhead: %.2fx (paper: ~2x)\n", min_ratio);

  runner::ResultSink sink("fig16_power");
  sink.set_param("accesses", n);
  sink.set_param("design", "LiveMigration");
  bench::report_artifact(sink.write_json(cells));
  return bench::finish(cells, argc, argv);
}
