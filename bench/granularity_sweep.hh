// Shared driver for Figs 12/13/14: live migration, average memory latency
// across macro-page granularities at a fixed swap interval. The whole
// workload x granularity grid runs as one parallel sweep (--jobs N).
#pragma once

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

namespace hmm::bench {

inline int run_granularity_sweep(int argc, char** argv, std::uint64_t interval,
                                 const char* figure_name,
                                 const char* bench_id) {
  const std::uint64_t n = scaled(400'000);
  std::vector<std::uint64_t> pages = {4 * KiB,   16 * KiB, 64 * KiB,
                                      256 * KiB, 1 * MiB,  4 * MiB};
  std::vector<WorkloadInfo> workloads = section4_workloads();
  if (smoke(argc, argv)) {
    pages = {64 * KiB};
    workloads.resize(1);
  }

  std::printf("%s: avg memory latency, live migration, swap interval = "
              "%llu accesses (%llu accesses/cfg)\n\n",
              figure_name, static_cast<unsigned long long>(interval),
              static_cast<unsigned long long>(n));

  // Grid: per workload, one cell per granularity plus the no-migration
  // reference; all cells of a workload share its reference stream.
  std::vector<runner::ExperimentSpec> grid;
  for (const WorkloadInfo& w : workloads) {
    const std::string wk = std::string(bench_id) + "/" + w.name;
    for (const std::uint64_t page : pages) {
      grid.push_back(cell(
          wk + "/" + format_size(page), wk, w,
          migration_config(page, MigrationDesign::LiveMigration, interval),
          n));
    }
    grid.push_back(cell(wk + "/static", wk, w, static_config(4 * MiB), n / 2));
  }

  const runner::RunnerOptions opts = runner_options(argc, argv, bench_id);
  maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  std::vector<std::string> header{"Workload"};
  for (const std::uint64_t page : pages) header.push_back(format_size(page));
  header.push_back("w/o migration");
  TextTable t(std::move(header));
  std::size_t i = 0;
  for (const WorkloadInfo& w : workloads) {
    std::vector<std::string> row{w.name};
    for (std::size_t p = 0; p < pages.size() + 1; ++p) {
      const runner::CellResult& c = cells[i++];
      row.push_back(c.ok ? TextTable::num(c.result.avg_latency)
                         : "FAILED");
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  runner::ResultSink sink(bench_id);
  sink.set_param("interval", interval);
  sink.set_param("accesses", n);
  sink.set_param("design", "LiveMigration");
  report_artifact(sink.write_json(cells));
  return finish(cells, argc, argv);
}

}  // namespace hmm::bench
