// Shared driver for Figs 12/13/14: live migration, average memory latency
// across macro-page granularities at a fixed swap interval.
#pragma once

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

namespace hmm::bench {

inline int run_granularity_sweep(std::uint64_t interval,
                                 const char* figure_name) {
  const std::uint64_t n = scaled(400'000);
  const std::vector<std::uint64_t> pages = {4 * KiB, 16 * KiB, 64 * KiB,
                                            256 * KiB, 1 * MiB, 4 * MiB};

  std::printf("%s: avg memory latency, live migration, swap interval = "
              "%llu accesses (%llu accesses/cfg)\n\n",
              figure_name, static_cast<unsigned long long>(interval),
              static_cast<unsigned long long>(n));

  TextTable t({"Workload", "4KB", "16KB", "64KB", "256KB", "1MB", "4MB",
               "w/o migration"});
  for (const WorkloadInfo& w : section4_workloads()) {
    std::vector<std::string> row{w.name};
    for (const std::uint64_t page : pages) {
      const RunResult r = run(
          w,
          migration_config(page, MigrationDesign::LiveMigration, interval),
          n);
      row.push_back(TextTable::num(r.avg_latency));
    }
    row.push_back(
        TextTable::num(run(w, static_config(4 * MiB), n / 2).avg_latency));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}

}  // namespace hmm::bench
