// Fig 11 (a)-(c): average memory access latency of N / N-1 / Live
// migration across macro-page sizes (4KB..4MB) and swap intervals
// (1K / 10K / 100K accesses), with the paper's three guide lines per
// workload: all-off-package, all-on-package, and static (no migration).
//
// Paper shape to reproduce: at coarse granularity (4MB), N is impractical
// at high swap frequency (blocking swaps dominate); N-1 overlaps the copy
// with execution; Live shaves a further few percent; at fine granularity
// (4KB) the three converge.
//
// The full workload x interval x page x design grid (plus guides) runs as
// one parallel sweep; pass --jobs N to use N worker threads.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

namespace {

[[nodiscard]] const char* design_name(MigrationDesign d) {
  return to_string(d);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = bench::scaled(240'000);
  std::vector<std::uint64_t> pages = {4 * KiB,   16 * KiB, 64 * KiB,
                                      256 * KiB, 1 * MiB,  4 * MiB};
  std::vector<std::uint64_t> intervals = {1'000, 10'000, 100'000};
  const std::vector<MigrationDesign> designs = {
      MigrationDesign::N, MigrationDesign::NMinus1,
      MigrationDesign::LiveMigration};
  std::vector<WorkloadInfo> workloads = section4_workloads();
  if (bench::smoke(argc, argv)) {
    pages = {256 * KiB};
    intervals = {10'000};
    workloads.resize(1);
  }

  std::printf("Fig 11: avg memory latency, designs x granularity x swap "
              "interval (%llu accesses/cfg)\n\n",
              static_cast<unsigned long long>(n));

  // Grid: per workload, the three guide cells then the full matrix; every
  // cell of a workload shares its reference stream.
  std::vector<runner::ExperimentSpec> grid;
  for (const WorkloadInfo& w : workloads) {
    const std::string wk = "fig11/" + w.name;
    MemSimConfig off_cfg = bench::static_config(4 * MiB);
    off_cfg.force = MemSimConfig::Force::AllOffPackage;
    grid.push_back(bench::cell(wk + "/all-off", wk, w, off_cfg, n / 2));
    MemSimConfig on_cfg = bench::static_config(4 * MiB);
    on_cfg.force = MemSimConfig::Force::AllOnPackage;
    grid.push_back(bench::cell(wk + "/all-on", wk, w, on_cfg, n / 2));
    grid.push_back(
        bench::cell(wk + "/static", wk, w, bench::static_config(4 * MiB),
                    n / 2));
    for (const std::uint64_t interval : intervals) {
      for (const std::uint64_t page : pages) {
        for (const MigrationDesign d : designs) {
          grid.push_back(bench::cell(
              wk + "/i" + std::to_string(interval) + "/" + format_size(page) +
                  "/" + design_name(d),
              wk, w, bench::migration_config(page, d, interval), n));
        }
      }
    }
  }

  const runner::RunnerOptions opts =
      bench::runner_options(argc, argv, "fig11_swap_algorithms");
  bench::maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  auto latency = [](const runner::CellResult& c) {
    return c.ok ? TextTable::num(c.result.avg_latency) : std::string("FAILED");
  };

  // Guide lines keep the historical %.1f rendering on success so existing
  // output stays bit-identical; a failed guide cell prints FAILED.
  auto guide = [](const runner::CellResult& c) {
    if (!c.ok) return std::string("FAILED");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", c.result.avg_latency);
    return std::string(buf);
  };

  std::size_t i = 0;
  for (const WorkloadInfo& w : workloads) {
    const runner::CellResult& all_off = cells[i++];
    const runner::CellResult& all_on = cells[i++];
    const runner::CellResult& nomig = cells[i++];
    std::printf("== %s  (all-off %s | all-on %s | w/o migration %s)\n",
                w.name.c_str(), guide(all_off).c_str(), guide(all_on).c_str(),
                guide(nomig).c_str());

    for (const std::uint64_t interval : intervals) {
      TextTable t({"page", "N", "N-1", "Live"});
      for (const std::uint64_t page : pages) {
        std::vector<std::string> row{format_size(page)};
        for (std::size_t d = 0; d < designs.size(); ++d) {
          row.push_back(latency(cells[i++]));
        }
        t.add_row(std::move(row));
      }
      std::printf("-- swap interval = %llu accesses\n",
                  static_cast<unsigned long long>(interval));
      t.print(std::cout);
    }
    std::printf("\n");
  }

  runner::ResultSink sink("fig11_swap_algorithms");
  sink.set_param("accesses", n);
  bench::report_artifact(sink.write_json(cells));
  return bench::finish(cells, argc, argv);
}
