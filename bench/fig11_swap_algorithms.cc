// Fig 11 (a)-(c): average memory access latency of N / N-1 / Live
// migration across macro-page sizes (4KB..4MB) and swap intervals
// (1K / 10K / 100K accesses), with the paper's three guide lines per
// workload: all-off-package, all-on-package, and static (no migration).
//
// Paper shape to reproduce: at coarse granularity (4MB), N is impractical
// at high swap frequency (blocking swaps dominate); N-1 overlaps the copy
// with execution; Live shaves a further few percent; at fine granularity
// (4KB) the three converge.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"

using namespace hmm;

int main() {
  const std::uint64_t n = bench::scaled(240'000);
  const std::vector<std::uint64_t> pages = {4 * KiB, 16 * KiB, 64 * KiB,
                                            256 * KiB, 1 * MiB, 4 * MiB};
  const std::vector<std::uint64_t> intervals = {1'000, 10'000, 100'000};
  const std::vector<MigrationDesign> designs = {
      MigrationDesign::N, MigrationDesign::NMinus1,
      MigrationDesign::LiveMigration};

  std::printf("Fig 11: avg memory latency, designs x granularity x swap "
              "interval (%llu accesses/cfg)\n\n",
              static_cast<unsigned long long>(n));

  for (const WorkloadInfo& w : section4_workloads()) {
    // Guide lines.
    MemSimConfig off_cfg = bench::static_config(4 * MiB);
    off_cfg.force = MemSimConfig::Force::AllOffPackage;
    const double all_off = bench::run(w, off_cfg, n / 2).avg_latency;
    MemSimConfig on_cfg = bench::static_config(4 * MiB);
    on_cfg.force = MemSimConfig::Force::AllOnPackage;
    const double all_on = bench::run(w, on_cfg, n / 2).avg_latency;
    const double nomig =
        bench::run(w, bench::static_config(4 * MiB), n / 2).avg_latency;

    std::printf("== %s  (all-off %.1f | all-on %.1f | w/o migration %.1f)\n",
                w.name.c_str(), all_off, all_on, nomig);

    for (const std::uint64_t interval : intervals) {
      TextTable t({"page", "N", "N-1", "Live"});
      for (const std::uint64_t page : pages) {
        std::vector<std::string> row{format_size(page)};
        for (const MigrationDesign d : designs) {
          const RunResult r =
              bench::run(w, bench::migration_config(page, d, interval), n);
          row.push_back(TextTable::num(r.avg_latency));
        }
        t.add_row(std::move(row));
      }
      std::printf("-- swap interval = %llu accesses\n",
                  static_cast<unsigned long long>(interval));
      t.print(std::cout);
    }
    std::printf("\n");
  }
  return 0;
}
