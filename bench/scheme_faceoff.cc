// Scheme face-off: the full zoo (N, N-1, Live, nomad, Alloy, flat-HMA,
// MemCache) head-to-head on the fig11-style workloads, one grid, one
// artifact.
//
// Every scheme replays the identical reference stream per workload (shared
// seed key), so the table is a controlled comparison: the paper's swap
// choreographies against the die-stacked-DRAM alternatives they compete
// with. The JSON artifact (BENCH_scheme_faceoff.json) carries per-scheme
// latency, on-package share, migration/fill traffic, and an IPC proxy
// (accesses per simulated cycle) — the perf trajectory later PRs diff
// against.
//
// Extra knobs on top of the shared bench flags:
//   --list-schemes       print the registry names (one per line), exit 0
//   --schemes a,b,c      subset of registry names (default: the whole
//                        registry); an unknown name exits 2 with the
//                        registry's structured error message
//   --cache-fraction F   MemCache partition knob (default 0.5)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "schemes/registry.hh"

using namespace hmm;

namespace {

[[nodiscard]] std::vector<std::string> selected_schemes(int argc,
                                                        char** argv) {
  const char* v = bench::option_value(argc, argv, "--schemes");
  if (v == nullptr) return schemes::scheme_names();
  std::vector<std::string> names;
  std::string list(v);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    if (!name.empty()) {
      schemes::validate_scheme_name(name);  // throws the structured error
      names.push_back(name);
    }
    start = comma + 1;
  }
  return names;
}

[[nodiscard]] double cache_fraction(int argc, char** argv) {
  if (const char* v = bench::option_value(argc, argv, "--cache-fraction")) {
    const double f = std::strtod(v, nullptr);
    if (f >= 0.0 && f <= 1.0) return f;
    std::cerr << "--cache-fraction must be in [0, 1]\n";
    std::exit(2);
  }
  return 0.5;
}

}  // namespace

int main(int argc, char** argv) {
  bench::maybe_list_schemes(argc, argv);
  std::vector<std::string> names;
  try {
    names = selected_schemes(argc, argv);
  } catch (const fault::SimError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  const double cf = cache_fraction(argc, argv);

  const std::uint64_t n = bench::scaled(240'000);
  const std::uint64_t page = 4 * MiB;
  const std::uint64_t interval = 10'000;
  std::vector<WorkloadInfo> workloads = section4_workloads();
  if (bench::smoke(argc, argv)) workloads.resize(1);

  std::printf("Scheme face-off: %zu schemes x %zu workloads "
              "(%llu accesses/cell, %s pages, interval %llu)\n\n",
              names.size(), workloads.size(),
              static_cast<unsigned long long>(n), format_size(page).c_str(),
              static_cast<unsigned long long>(interval));

  std::vector<runner::ExperimentSpec> grid;
  for (const WorkloadInfo& w : workloads) {
    const std::string wk = "faceoff/" + w.name;
    for (const std::string& s : names) {
      // One config shape for everyone: the swap designs read .design (the
      // registry forces it from the name), flat-HMA profiles for one
      // swap_interval epoch, the cache schemes use geometry + the knob.
      MemSimConfig cfg;
      cfg.controller.geom = bench::sec4_geometry(page);
      cfg.controller.swap_interval = interval;
      cfg.controller.migration_enabled = true;
      cfg.scheme = s;
      cfg.cache_fraction = cf;
      grid.push_back(bench::cell(wk + "/" + s, wk, w, cfg, n));
    }
  }

  const runner::RunnerOptions opts =
      bench::runner_options(argc, argv, "BENCH_scheme_faceoff");
  bench::maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  runner::ResultSink sink("BENCH_scheme_faceoff");
  sink.set_param("accesses", n);
  sink.set_param("page_bytes", page);
  sink.set_param("interval", interval);
  sink.set_param("cache_fraction", std::to_string(cf));

  std::size_t i = 0;
  for (const WorkloadInfo& w : workloads) {
    std::printf("== %s\n", w.name.c_str());
    TextTable t({"scheme", "avg_lat", "p99", "on_frac", "swaps",
                 "migrated", "ipc_proxy"});
    for (const std::string& s : names) {
      const runner::CellResult& c = cells[i++];
      if (!c.ok) {
        t.add_row({s, "FAILED", "-", "-", "-", "-", "-"});
        continue;
      }
      const RunResult& r = c.result;
      // IPC proxy: retired references per simulated cycle — higher is
      // better, comparable across schemes because the streams are paired.
      const double ipc =
          r.end_time == 0 ? 0.0
                          : static_cast<double>(r.accesses) /
                                static_cast<double>(r.end_time);
      sink.add_derived(c.key, "ipc_proxy", ipc);
      char ipc_buf[32];
      std::snprintf(ipc_buf, sizeof ipc_buf, "%.4f", ipc);
      t.add_row({s, TextTable::num(r.avg_latency),
                 TextTable::num(r.p99_latency),
                 TextTable::num(r.on_package_fraction),
                 std::to_string(r.swaps), format_size(r.migrated_bytes),
                 ipc_buf});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  bench::report_artifact(sink.write_json(cells));
  return bench::finish(cells, argc, argv);
}
