// Fig 4: last-level cache miss rate versus LLC capacity (1MB .. 1024MB)
// for the ten NPB CLASS-C workloads.
//
// Paper shape: the curves are remarkably flat — beyond a small knee, more
// LLC capacity barely reduces the miss rate (the argument for spending
// on-package DRAM on main memory instead of cache). EP sits near zero
// (cache-resident); the multi-GB workloads stay high across the sweep.
//
// Method: one stack-distance pass over each workload's L2-miss stream
// yields the miss ratio at every capacity simultaneously (src/cache/
// stack_distance.hh).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace hmm;

int main() {
  const std::uint64_t n = bench::scaled(8'000'000);
  std::vector<std::uint64_t> capacities;
  std::vector<std::string> header{"Workload"};
  for (std::uint64_t mb = 1; mb <= 1024; mb *= 2) {
    capacities.push_back(mb * MiB);
    header.push_back(std::to_string(mb) + "MB");
  }

  std::printf("Fig 4: LLC miss rate vs capacity (%llu CPU references per "
              "workload)\n\n",
              static_cast<unsigned long long>(n));

  TextTable t(header);
  for (const WorkloadInfo& w : npb_workloads()) {
    auto gen = w.make(7);
    const std::vector<double> rates =
        llc_miss_rate_curve(*gen, n, capacities, w.footprint_bytes);
    std::vector<std::string> row{w.name};
    for (const double r : rates) row.push_back(TextTable::pct(r));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}
