// Fault resilience: the paper's "execution never halts" claim under
// adversity, measured — across the whole scheme registry. Sweeps fault
// rate x scheme {N, N-1, Live, nomad, Alloy, flat-HMA, MemCache} with
// the deterministic fault injector armed at the migration copy path
// (chunk drop / chunk re-stream / channel stall / mid-flight swap abort
// / hotness corruption) and the periodic invariant audit on.
//
// What the table shows:
//  * N-1, Live, and nomad complete at every rate — recovering (retries,
//    aborted swaps/transactions rolled back to a valid state) or
//    entering degraded mode (table frozen, traffic still served) — with
//    zero audit failures; nomad's recovery is the transactional abort
//    (DESIGN.md §10), so its aborts column counts rolled-back txns;
//  * the cache/static schemes (Alloy, flat-HMA, MemCache) have no
//    migration copy path to corrupt, so only channel stalls touch them —
//    they anchor the "no scheme ever wedges" claim at the boring end;
//  * the basic N design has no recovery choreography: once its retry
//    budget exhausts, the watchdog reports a structured SimError
//    (status "failed", error "[watchdog] ..."), never a hang;
//  * latency degradation vs the fault-free baseline of the same scheme.
//
// A final wedge-demo cell (design N, chunk drop rate 1.0) asserts the
// watchdog path end to end: the bench exits non-zero if that cell does
// NOT fail with a watchdog error.
//
// The JSON artifact is BENCH_fault_resilience.json; every cell must end
// "ok", "failed" with a structured error, or "interrupted" — never
// "crashed"/"timeout" (scripts/check_cell_statuses.py enforces this in
// scripts/check_resilience.sh).
//
// Knobs: --list-schemes (print the registry and exit), --fault-rate R
// (replaces the sweep with the single rate R), --fault-sites a,b
// (subset of: chunk-drop, chunk-delay, channel-stall, swap-abort,
// hotness-corrupt, table-bit-flip; the default leaves table-bit-flip
// out — deliberate table corruption is *supposed* to fail the audit,
// see tests/fault_test.cc), --audit-interval N, --jobs, --smoke,
// --keep-going, HMM_CELL_TIMEOUT.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "schemes/registry.hh"

using namespace hmm;

namespace {

[[nodiscard]] fault::FaultPlan make_plan(
    const std::vector<fault::FaultSite>& sites, double rate,
    std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  if (rate <= 0) return plan;  // empty plan: injection fully disabled
  for (const fault::FaultSite s : sites) {
    // Swap aborts are catastrophic per fire (the whole swap is lost), so
    // they run two decades below the per-chunk transient rate.
    const double r = s == fault::FaultSite::SwapAbort ? rate / 100 : rate;
    plan.add(s, r);
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  bench::maybe_list_schemes(argc, argv);

  const std::uint64_t n = bench::scaled(300'000);
  std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2};
  const std::vector<std::string>& names = schemes::scheme_names();
  const std::uint64_t page = 256 * KiB;
  const std::uint64_t interval = 1'000;
  const std::uint64_t audits = bench::audit_interval(argc, argv, 4'096);
  const std::vector<fault::FaultSite> sites = bench::fault_sites(
      argc, argv,
      {fault::FaultSite::MigrationChunkDrop,
       fault::FaultSite::MigrationChunkDelay,
       fault::FaultSite::ChannelStall, fault::FaultSite::SwapAbort,
       fault::FaultSite::HotnessCorrupt});
  if (const double r = bench::fault_rate(argc, argv, -1); r >= 0)
    rates = {0.0, r};
  if (bench::smoke(argc, argv)) rates = {0.0, 1e-3};

  std::vector<WorkloadInfo> workloads = section4_workloads();
  WorkloadInfo w = workloads.front();
  for (const WorkloadInfo& cand : workloads)
    if (cand.name == "pgbench") w = cand;

  std::printf("Fault resilience: %s, %zu schemes, %s pages, %llu-access "
              "epochs, audit every %llu accesses (%llu accesses/cfg)\n\n",
              w.name.c_str(), names.size(), format_size(page).c_str(),
              static_cast<unsigned long long>(interval),
              static_cast<unsigned long long>(audits),
              static_cast<unsigned long long>(n));

  std::vector<runner::ExperimentSpec> grid;
  const std::string wk = "fault_resilience/" + w.name;
  for (const double rate : rates) {
    for (const std::string& s : names) {
      const std::string key = wk + "/r" + std::to_string(rate) + "/" + s;
      // One config shape for every scheme: the swap designs read .design
      // (the registry forces it from the name), the cache schemes use
      // the geometry plus the partition knob.
      MemSimConfig cfg =
          bench::migration_config(page, MigrationDesign::LiveMigration,
                                  interval);
      cfg.scheme = s;
      cfg.cache_fraction = 0.5;
      cfg.audit_interval = audits;
      cfg.fault = make_plan(sites, rate, runner::derive_seed(42, key));
      grid.push_back(bench::cell(key, wk, w, cfg, n));
    }
  }
  // Wedge demo: design N, every chunk completion dropped — the retry
  // budget exhausts on the first chunk and the swap can never finish.
  const std::string wedge_key = wk + "/wedge-demo/N";
  {
    MemSimConfig cfg =
        bench::migration_config(page, MigrationDesign::N, interval);
    cfg.audit_interval = audits;
    cfg.fault.seed = runner::derive_seed(42, wedge_key);
    cfg.fault.add(fault::FaultSite::MigrationChunkDrop, 1.0);
    grid.push_back(bench::cell(wedge_key, wk, w, cfg, n));
  }

  const runner::RunnerOptions opts =
      bench::runner_options(argc, argv, "BENCH_fault_resilience");
  bench::maybe_list_cells(grid, opts, argc, argv);
  const std::vector<runner::CellResult> cells =
      runner::ExperimentRunner(opts).run(grid);

  runner::ResultSink sink("BENCH_fault_resilience");
  sink.set_param("workload", w.name);
  sink.set_param("page", format_size(page));
  sink.set_param("interval", interval);
  sink.set_param("audit_interval", audits);
  sink.set_param("accesses", n);

  // Fault-free baseline latency per scheme (rate 0 is always first).
  TextTable t({"rate", "scheme", "status", "avg lat", "vs r=0", "swaps",
               "retries", "aborts", "degraded"});
  std::vector<double> base(names.size(), 0.0);
  std::size_t i = 0;
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    for (std::size_t si = 0; si < names.size(); ++si) {
      const runner::CellResult& c = cells[i++];
      const RunResult& r = c.result;
      if (ri == 0 && c.ok) base[si] = r.avg_latency;
      std::vector<std::string> row{TextTable::num(rates[ri], 6),
                                   names[si], c.status};
      if (c.ok) {
        const double ratio = base[si] > 0 ? r.avg_latency / base[si] : 0.0;
        if (ratio > 0) sink.add_derived(c.key, "latency_ratio", ratio);
        row.push_back(TextTable::num(r.avg_latency));
        row.push_back(ratio > 0 ? TextTable::num(ratio, 3) + "x" : "-");
        row.push_back(TextTable::num(static_cast<double>(r.swaps), 0));
        row.push_back(
            TextTable::num(static_cast<double>(r.chunk_retries), 0));
        row.push_back(TextTable::num(static_cast<double>(r.swap_aborts), 0));
        // Built with append, not operator+: GCC 12's -Wrestrict throws a
        // false positive on `const char* + std::string&&` here.
        std::string deg = "no";
        if (r.degraded) {
          deg = "@";
          deg += std::to_string(r.degraded_at);
          deg += "cy";
        }
        row.push_back(std::move(deg));
      } else {
        row.insert(row.end(), {"-", "-", "-", "-", "-", "-"});
      }
      t.add_row(std::move(row));
    }
  }
  t.print(std::cout);

  // The wedge demo must have failed, and failed on the watchdog.
  const runner::CellResult& wedge = cells.back();
  std::printf("\nwedge demo (design N, chunk drop rate 1.0): %s\n",
              wedge.ok ? "COMPLETED (unexpected!)" : wedge.error.c_str());
  bench::report_artifact(sink.write_json(cells));

  if (wedge.ok || wedge.error.find("[watchdog]") == std::string::npos) {
    std::cerr << "[fault_resilience] self-check failed: the wedged design-N "
                 "swap was not detected by the watchdog\n";
    return 1;
  }
  // The wedge cell is *expected* to fail; only the sweep cells gate the
  // exit code.
  const std::vector<runner::CellResult> sweep(cells.begin(), cells.end() - 1);
  return bench::finish(sweep, argc, argv);
}
