// Component micro-benchmarks (google-benchmark): the per-access costs of
// the simulator's hot paths, plus the FR-FCFS vs FCFS scheduling ablation
// called out in DESIGN.md §6.
#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "cache/stack_distance.hh"
#include "common/random.hh"
#include "core/hotness.hh"
#include "core/translation_table.hh"
#include "dram/dram_system.hh"
#include "trace/zipf.hh"

namespace hmm {
namespace {

const Geometry kGeom{4 * GiB, 512 * MiB, 1 * MiB, 4 * KiB};

void BM_TranslationTableTranslate(benchmark::State& state) {
  TranslationTable table(kGeom, TableMode::HardwareNMinus1);
  Pcg32 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.translate(rng.bounded64(4 * GiB)));
  }
}
BENCHMARK(BM_TranslationTableTranslate);

void BM_MultiQueueRecord(benchmark::State& state) {
  MultiQueueTracker mq(3, 10);
  Pcg32 rng(2);
  for (auto _ : state) {
    mq.record_access(rng.bounded64(4096), 0);
  }
  benchmark::DoNotOptimize(mq.hottest());
}
BENCHMARK(BM_MultiQueueRecord);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1 << 20, 1.05);
  Pcg32 rng(3);
  std::uint64_t sum = 0;
  for (auto _ : state) sum += zipf(rng);
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_ZipfSample);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache(CacheConfig{"L2", 256 * KiB, 8, 64, 5, ReplacementPolicy::Lru});
  Pcg32 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(rng.bounded64(1 * MiB), AccessType::Read));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_StackDistance(benchmark::State& state) {
  StackDistanceProfiler prof({1024, 16384, 262144});
  Pcg32 rng(5);
  for (auto _ : state) {
    prof.access(rng.bounded64(64 * MiB));
  }
}
BENCHMARK(BM_StackDistance);

/// Ablation: off-package channel throughput under FR-FCFS vs FCFS with a
/// mixed row-hit / row-miss stream. FR-FCFS should complete the stream in
/// fewer cycles (higher row-hit service rate).
void BM_ChannelDrain(benchmark::State& state) {
  const auto policy = static_cast<SchedulerPolicy>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    DramSystem sys(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
                   policy);
    Pcg32 rng(6);
    state.ResumeTiming();
    Cycle now = 0;
    for (int i = 0; i < 4096; ++i) {
      // Half streaming (row hits), half random (misses).
      const MachAddr addr = (i % 2 == 0)
                                ? static_cast<MachAddr>(i) * 64
                                : rng.bounded64(1 * GiB);
      sys.submit(addr, 64, AccessType::Read, Priority::Demand, now);
      now += 8;
      sys.drain_until(now);
      benchmark::DoNotOptimize(sys.take_completions());
    }
    const Cycle end = sys.drain_all(now);
    state.counters["sim_cycles"] = static_cast<double>(end);
  }
}
BENCHMARK(BM_ChannelDrain)
    ->Arg(static_cast<int>(SchedulerPolicy::FrFcfs))
    ->Arg(static_cast<int>(SchedulerPolicy::Fcfs));

}  // namespace
}  // namespace hmm

BENCHMARK_MAIN();
