// Table I: memory footprints of the NPB 3.3 benchmark suite, plus a
// generator self-check (sampled addresses must stay inside the modelled
// footprint and actually span most of it).
#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "common/units.hh"
#include "trace/workloads.hh"

using namespace hmm;

int main() {
  std::printf("Table I: NPB 3.3 memory footprints (values marked * are\n"
              "reconstructed from truncated digits in the scanned paper;\n"
              "see workloads.cc)\n\n");

  TextTable t({"Workload", "Footprint", "Sampled max addr", "In-bounds"});
  for (const WorkloadInfo& w : npb_workloads()) {
    auto gen = w.make(1);
    PhysAddr max_addr = 0;
    std::uint64_t in_bounds = 0;
    const std::uint64_t samples = 200'000;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const PhysAddr a = gen->next().addr;
      max_addr = std::max(max_addr, a);
      if (a < w.footprint_bytes) ++in_bounds;
    }
    t.add_row({w.name, format_size(w.footprint_bytes),
               TextTable::num(static_cast<double>(max_addr) / (1 << 20), 0) +
                   "MB",
               TextTable::pct(static_cast<double>(in_bounds) / samples)});
  }
  t.print(std::cout);
  std::printf("\npaper Table I: BT.C 760MB* CG.C 920MB* DC.B 5876MB EP.C "
              "16MB FT.C 5147MB\n  IS.C 164MB LU.C 615MB MG.C 3426MB SP.C "
              "758MB UA.C 510MB*\n");
  return 0;
}
