// RAS layer tests: deterministic SEC-DED outcomes, patrol scrub surfacing
// latent stuck-at faults, spare-pool remapping, the capacity floor, the
// evacuate-then-blacklist choreography under every scheme in the zoo
// (including frames that start failing mid-swap), and snapshot round-trip
// bit-identity of the RAS state.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/controller.hh"
#include "fault/fault_injector.hh"
#include "fault/sim_error.hh"
#include "ras/ras.hh"
#include "runner/journal.hh"
#include "schemes/registry.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSite;
using fault::SimError;
using fault::SimErrorKind;

Geometry small_geom() {
  return Geometry{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
}
constexpr std::uint64_t kPage = 512 * KiB;

ras::RasConfig ras_on() {
  ras::RasConfig cfg;
  cfg.enabled = true;
  return cfg;
}

// --- fault-site plumbing (media sites) --------------------------------------

TEST(RasSites, MediaSiteNamesRoundTrip) {
  EXPECT_EQ(std::string(to_string(FaultSite::MediaTransient)),
            "media-transient");
  EXPECT_EQ(std::string(to_string(FaultSite::MediaStuckAt)),
            "media-stuck-at");
  for (const FaultSite s :
       {FaultSite::MediaTransient, FaultSite::MediaStuckAt}) {
    FaultSite parsed{};
    ASSERT_TRUE(fault::site_from_name(to_string(s), parsed));
    EXPECT_EQ(parsed, s);
  }
}

// --- ECC outcomes -----------------------------------------------------------

TEST(RasEngine, NoMediaRulesMeansNoErrorsAndNoPenalty) {
  ras::RasConfig cfg = ras_on();
  cfg.scrub_interval = 0;  // isolate the ECC path
  ras::RasEngine eng(cfg, small_geom(), nullptr);
  for (PageId f = 0; f < 8; ++f)
    EXPECT_EQ(eng.on_demand_access(f, f * 100), 0u);
  EXPECT_EQ(eng.metrics().demand_corrected, 0u);
  EXPECT_EQ(eng.metrics().demand_uncorrectable, 0u);
  EXPECT_FALSE(eng.has_pending());
}

TEST(RasEngine, DueFlagsTheFrameAndChargesTheRecoveryPenalty) {
  ras::RasConfig cfg = ras_on();
  cfg.scrub_interval = 0;
  cfg.due_fraction = 1.0;  // every transient is a double-bit error
  FaultPlan plan;
  plan.add(FaultSite::MediaTransient, 1.0);
  FaultInjector inj(plan);
  ras::RasEngine eng(cfg, small_geom(), &inj);
  const Cycle penalty = eng.on_demand_access(7, 0);
  EXPECT_GE(penalty, cfg.due_penalty);
  EXPECT_EQ(eng.metrics().demand_uncorrectable, 1u);
  ASSERT_TRUE(eng.has_pending());
  EXPECT_EQ(eng.next_pending(), 7u);
  EXPECT_TRUE(eng.quarantined(7));
  EXPECT_FALSE(eng.retired(7));  // evacuate-then-blacklist: pending only
}

TEST(RasEngine, RepeatedCorrectedErrorsEscalateToRetirement) {
  ras::RasConfig cfg = ras_on();
  cfg.scrub_interval = 0;
  cfg.due_fraction = 0.0;  // every transient is a corrected single-bit
  cfg.ce_retire_threshold = 3;
  FaultPlan plan;
  plan.add(FaultSite::MediaTransient, 1.0);
  FaultInjector inj(plan);
  ras::RasEngine eng(cfg, small_geom(), &inj);
  EXPECT_EQ(eng.on_demand_access(5, 0), cfg.ce_penalty);
  EXPECT_EQ(eng.on_demand_access(5, 1), cfg.ce_penalty);
  EXPECT_FALSE(eng.has_pending());
  EXPECT_EQ(eng.on_demand_access(5, 2), cfg.ce_penalty);
  EXPECT_EQ(eng.metrics().demand_corrected, 3u);
  ASSERT_TRUE(eng.has_pending());
  EXPECT_EQ(eng.next_pending(), 5u);
}

TEST(RasEngine, EccOutcomesAreIndependentOfProbeInterleaving) {
  ras::RasConfig cfg = ras_on();
  cfg.scrub_interval = 0;
  cfg.due_fraction = 0.5;
  FaultPlan plan;
  plan.seed = 42;
  plan.add(FaultSite::MediaTransient, 1.0);
  FaultInjector ia(plan);
  FaultInjector ib(plan);
  ras::RasEngine a(cfg, small_geom(), &ia);
  ras::RasEngine b(cfg, small_geom(), &ib);
  // Same per-frame probe counts, opposite interleavings: payload draws
  // are a pure function of (seed, frame, draw index), so the engines must
  // end in byte-identical states.
  for (int round = 0; round < 8; ++round) {
    (void)a.on_demand_access(3, 0);
    (void)a.on_demand_access(4, 0);
    (void)b.on_demand_access(4, 0);
    (void)b.on_demand_access(3, 0);
  }
  snap::Writer wa;
  a.save(wa);
  snap::Writer wb;
  b.save(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

// --- patrol scrub -----------------------------------------------------------

TEST(RasEngine, ScrubSurfacesALatentStuckCellBeforeDemandTouchesIt) {
  ras::RasConfig cfg = ras_on();
  FaultPlan plan;
  // Exactly one stuck cell, on the very first probe anywhere — which will
  // be the patrol scrubber's first walk step (frame 0), not a demand read.
  plan.add(FaultSite::MediaStuckAt, 1.0, /*after=*/0, /*max_fires=*/1);
  FaultInjector inj(plan);
  ras::RasEngine eng(cfg, small_geom(), &inj);
  // A demand access to frame 10 well past the first scrub tick: the
  // scrubber probes frame 0 first and surfaces (and corrects) the latent
  // stuck cell there.
  (void)eng.on_demand_access(10, cfg.scrub_interval);
  EXPECT_GE(eng.metrics().scrub_probes, 1u);
  EXPECT_EQ(eng.metrics().scrub_corrected, 1u);
  EXPECT_EQ(eng.metrics().stuck_faults, 1u);
  EXPECT_EQ(eng.metrics().demand_corrected, 0u);

  // A demand read of frame 0 right after the scrub held it: SEC corrects
  // the stuck cell in-line and the access also pays the scrub collision.
  const Cycle p = eng.on_demand_access(0, cfg.scrub_interval + 1);
  EXPECT_GE(p, cfg.ce_penalty);
  EXPECT_EQ(eng.metrics().demand_corrected, 1u);
  EXPECT_EQ(eng.metrics().scrub_collisions, 1u);
}

TEST(RasEngine, ScrubWalkSkipsRetiredFrames) {
  ras::RasConfig cfg = ras_on();
  ras::RasEngine eng(cfg, small_geom(), nullptr);
  eng.flag_frame_for_test(0);
  ASSERT_TRUE(eng.remap_frame(0, 0).has_value());
  ASSERT_TRUE(eng.retired(0));
  // Walk the scrubber across every frame twice; probing a retired frame
  // would be touching blacklisted storage.
  const PageId total = small_geom().total_pages();
  (void)eng.on_demand_access(5, cfg.scrub_interval * total * 2);
  EXPECT_GE(eng.metrics().scrub_probes, total);  // it kept walking
}

// --- retirement state machine ----------------------------------------------

TEST(RasEngine, RemapAssignsSparesInOrderAndResolvesChains) {
  ras::RasConfig cfg = ras_on();
  ras::RasEngine eng(cfg, small_geom(), nullptr);
  const Geometry g = small_geom();
  const PageId first_spare = g.omega() - cfg.spare_frames;  // 27

  eng.flag_frame_for_test(7);
  const auto s1 = eng.remap_frame(7, 100);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(*s1, first_spare);
  EXPECT_TRUE(eng.retired(7));
  EXPECT_EQ(eng.resolve(7), first_spare);
  // A consumed spare stays reserved: its identity page never becomes
  // OS-resident, only relocated data lives there.
  EXPECT_TRUE(eng.reserved_spare(first_spare));

  // The spare standing in for frame 7 fails too: the chain extends.
  eng.flag_frame_for_test(first_spare);
  const auto s2 = eng.remap_frame(first_spare, 200);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s2, first_spare + 1);
  EXPECT_EQ(eng.resolve(7), first_spare + 1);

  EXPECT_EQ(eng.metrics().frames_retired, 2u);
  EXPECT_EQ(eng.metrics().spares_used, 2u);
  EXPECT_EQ(eng.spares_left(), cfg.spare_frames - 2);
  ASSERT_EQ(eng.retirement_log().size(), 2u);
  EXPECT_EQ(eng.retirement_log()[0].frame, 7u);
  EXPECT_EQ(eng.retirement_log()[0].at, 100u);
}

TEST(RasEngine, AFailingUnusedSpareRetiresDirectly) {
  ras::RasConfig cfg = ras_on();
  ras::RasEngine eng(cfg, small_geom(), nullptr);
  const PageId last_spare = small_geom().omega() - 1;  // 30
  eng.flag_frame_for_test(last_spare);
  EXPECT_TRUE(eng.retired(last_spare));  // data-free by construction
  EXPECT_FALSE(eng.has_pending());
  EXPECT_EQ(eng.spares_left(), cfg.spare_frames - 1);
}

TEST(RasEngine, DryPoolReturnsNulloptAndPinningKeepsServing) {
  ras::RasConfig cfg = ras_on();
  cfg.spare_frames = 1;
  ras::RasEngine eng(cfg, small_geom(), nullptr);
  eng.flag_frame_for_test(3);
  ASSERT_TRUE(eng.remap_frame(3, 0).has_value());
  eng.flag_frame_for_test(4);
  EXPECT_FALSE(eng.remap_frame(4, 0).has_value());
  eng.pin_frame(4);
  EXPECT_TRUE(eng.quarantined(4));
  EXPECT_FALSE(eng.retired(4));  // pinned frames still serve in place
  EXPECT_EQ(eng.metrics().frames_pinned, 1u);
}

TEST(RasEngine, CapacityFloorRaisesStructuredError) {
  ras::RasConfig cfg = ras_on();
  cfg.spare_frames = 2;
  cfg.capacity_floor = 0.95;  // 30 of 32 frames
  ras::RasEngine eng(cfg, small_geom(), nullptr);
  eng.flag_frame_for_test(1);
  eng.flag_frame_for_test(2);
  try {
    eng.flag_frame_for_test(3);
    FAIL() << "the capacity floor never fired";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::CapacityExhausted);
    EXPECT_NE(std::string(e.what()).find("retirement floor"),
              std::string::npos);
  }
}

TEST(RasEngine, StateRoundTripsThroughSnapshot) {
  ras::RasConfig cfg = ras_on();
  FaultPlan plan;
  plan.seed = 9;
  plan.add(FaultSite::MediaTransient, 0.5)
      .add(FaultSite::MediaStuckAt, 0.1);
  FaultInjector inj(plan);
  ras::RasEngine eng(cfg, small_geom(), &inj);
  for (Cycle t = 0; t < 50; ++t)
    (void)eng.on_demand_access(t % 20, t * 1000);
  if (eng.has_pending()) (void)eng.remap_frame(eng.next_pending(), 50'000);

  snap::Writer w;
  eng.save(w);
  FaultInjector inj2(plan);
  ras::RasEngine back(cfg, small_geom(), &inj2);
  snap::Reader r(w.buffer());
  back.restore(r);
  snap::Writer w2;
  back.save(w2);
  EXPECT_EQ(w2.buffer(), w.buffer());
  EXPECT_EQ(back.retired_count(), eng.retired_count());
  EXPECT_EQ(back.healthy_frames(), eng.healthy_frames());
}

// --- controller-driven evacuation (swap designs) ----------------------------

struct Rig {
  Rig(ControllerConfig cfg, const ras::RasConfig& rcfg)
      : on(Region::OnPackage, DramTiming::on_package_sip(), 1,
           SchedulerPolicy::FrFcfs),
        off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
            SchedulerPolicy::FrFcfs),
        ctl(cfg, on, off),
        ras(rcfg, cfg.geom, nullptr) {
    ctl.set_ras(&ras);
  }

  /// Feed an access and pump engine traffic to completion.
  void access(PhysAddr a, Cycle now) {
    (void)ctl.on_access(a, AccessType::Read, now);
    int guard = 0;
    while (!ctl.migration_idle() && ++guard < 100000) {
      on.drain_all(now);
      off.drain_all(now);
      const auto x = on.take_completions();
      const auto y = off.take_completions();
      for (const auto& c : x) ctl.on_completion(c, Region::OnPackage);
      for (const auto& c : y) ctl.on_completion(c, Region::OffPackage);
      if (x.empty() && y.empty()) break;
    }
  }

  DramSystem on;
  DramSystem off;
  HeteroMemoryController ctl;
  ras::RasEngine ras;
};

ControllerConfig rig_cfg(MigrationDesign d) {
  ControllerConfig cfg;
  cfg.geom = small_geom();
  cfg.swap_interval = 1'000'000;  // keep ordinary swaps out of the way
  cfg.design = d;
  return cfg;
}

TEST(RasController, OccupiedFrameIsEvacuatedThenBlacklisted) {
  // Design N's placement map can relocate any page, so an occupied fast
  // frame evacuates. N-1/Live only express the paper's two hardware moves
  // (original slow page at home, migrated fast page in a failing slot),
  // so for them the victim is an at-home off-package frame; their
  // identity-resident fast frames pin instead (next test).
  for (const MigrationDesign d :
       {MigrationDesign::N, MigrationDesign::NMinus1,
        MigrationDesign::LiveMigration}) {
    const PageId victim = d == MigrationDesign::N ? 3 : 20;
    Rig rig(rig_cfg(d), ras_on());
    Cycle now = 0;
    rig.access(victim * kPage, now++);
    rig.ras.flag_frame_for_test(victim);
    for (int i = 0; i < 20 && !rig.ras.retired(victim); ++i)
      rig.access(5 * kPage, now += 1000);
    EXPECT_TRUE(rig.ras.retired(victim)) << to_string(d);
    // The occupant moved off and no route resolves to the victim frame.
    const Route r = rig.ctl.table().translate(victim * kPage);
    EXPECT_NE(r.mach >> small_geom().page_shift(), victim) << to_string(d);
    EXPECT_TRUE(rig.ctl.table().validate().empty()) << to_string(d);
    EXPECT_TRUE(rig.ctl.audit().empty()) << to_string(d);
  }
}

TEST(RasController, InexpressibleEvacuationPinsInsteadOfRetiring) {
  // An identity-resident fast page has no expressible relocation under
  // N-1/Live: the controller pins the frame, which keeps serving in place
  // and stays routable.
  for (const MigrationDesign d :
       {MigrationDesign::NMinus1, MigrationDesign::LiveMigration}) {
    Rig rig(rig_cfg(d), ras_on());
    Cycle now = 0;
    rig.access(3 * kPage, now++);  // frame 3 on-package, identity page
    rig.ras.flag_frame_for_test(3);
    for (int i = 0; i < 20 && rig.ras.pinned_count() == 0; ++i)
      rig.access(5 * kPage, now += 1000);
    EXPECT_EQ(rig.ras.pinned_count(), 1u) << to_string(d);
    EXPECT_FALSE(rig.ras.retired(3)) << to_string(d);
    const Route r = rig.ctl.table().translate(3 * kPage);
    EXPECT_EQ(r.mach >> small_geom().page_shift(), 3u) << to_string(d);
    EXPECT_TRUE(rig.ctl.audit().empty()) << to_string(d);
  }
}

TEST(RasController, NomadHoleRetirementRelocatesTheHoleOntoASpare) {
  Rig rig(rig_cfg(MigrationDesign::Nomad), ras_on());
  const PageId hole = rig.ctl.table().hole();
  ASSERT_EQ(hole, small_geom().omega());
  rig.ras.flag_frame_for_test(hole);
  rig.access(2 * kPage, 10);
  EXPECT_TRUE(rig.ras.retired(hole));
  // The hole moved onto the first spare; the table can keep migrating.
  const PageId first_spare =
      small_geom().omega() - rig.ras.config().spare_frames;
  EXPECT_EQ(rig.ctl.table().hole(), first_spare);
  EXPECT_TRUE(rig.ctl.table().validate().empty());
}

TEST(RasController, DryPoolPinsInsteadOfWedging) {
  ras::RasConfig rcfg = ras_on();
  rcfg.spare_frames = 0;
  Rig rig(rig_cfg(MigrationDesign::N), rcfg);
  Cycle now = 0;
  rig.access(2 * kPage, now++);
  rig.ras.flag_frame_for_test(2);
  for (int i = 0; i < 10 && rig.ras.pinned_count() == 0; ++i)
    rig.access(5 * kPage, now += 1000);
  // Design N evacuates only onto a spare; with none left the frame pins
  // and keeps serving in place.
  EXPECT_EQ(rig.ras.pinned_count(), 1u);
  EXPECT_FALSE(rig.ras.retired(2));
  EXPECT_TRUE(rig.ctl.table().validate().empty());
}

TEST(RasController, FrameFailingMidSwapAbortsTheTransaction) {
  // Drive a real swap mid-flight, then flag a frame the plan touches. The
  // retirement must win: the transaction aborts, the frame is evacuated or
  // pinned, and the table lands on a valid state — never a commit into a
  // blacklisted frame.
  for (const MigrationDesign d :
       {MigrationDesign::NMinus1, MigrationDesign::LiveMigration,
        MigrationDesign::Nomad}) {
    ControllerConfig cfg = rig_cfg(d);
    cfg.swap_interval = 50;
    Rig rig(cfg, ras_on());
    // Hammer one off-package page to make it the promotion candidate,
    // without pumping completions — the swap stays in flight.
    Cycle now = 0;
    PageId touched = kInvalidPage;
    for (int i = 0; i < 2000 && touched == kInvalidPage; ++i) {
      (void)rig.ctl.on_access(20 * kPage, AccessType::Read, now += 7);
      if (!rig.ctl.migration_idle()) {
        for (PageId f = 0; f < small_geom().total_pages(); ++f)
          if (rig.ctl.engine().plan_touches(f)) {
            touched = f;
            break;
          }
      }
    }
    ASSERT_NE(touched, kInvalidPage) << to_string(d);
    rig.ras.flag_frame_for_test(touched);
    for (int i = 0; i < 30 && !rig.ras.retired(touched) &&
                    rig.ras.pinned_count() == 0;
         ++i)
      rig.access(5 * kPage, now += 1000);
    EXPECT_TRUE(rig.ras.retired(touched) || rig.ras.pinned_count() > 0)
        << to_string(d);
    EXPECT_TRUE(rig.ctl.table().validate().empty()) << to_string(d);
    EXPECT_TRUE(rig.ctl.audit().empty()) << to_string(d);
  }
}

// --- full-simulator behaviour ----------------------------------------------

MemSimConfig sim_cfg(const std::string& scheme) {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 256 * KiB, 4 * KiB};
  cfg.controller.swap_interval = 1000;
  cfg.scheme = scheme;
  cfg.ras.enabled = true;
  cfg.audit_interval = 4096;  // includes the RAS retired-route deep sweep
  return cfg;
}

TEST(RasSim, EverySchemeSurvivesAMediaStormOrFailsStructured) {
  for (const std::string& name : schemes::scheme_names()) {
    MemSimConfig cfg = sim_cfg(name);
    cfg.fault.seed = 11;
    cfg.fault.add(FaultSite::MediaTransient, 0.01)
        .add(FaultSite::MediaStuckAt, 0.002);
    MemSim sim(cfg);
    auto w = make_pgbench(7);
    try {
      sim.run(*w, 40'000);
      const RunResult r = sim.result();
      EXPECT_TRUE(r.ras_enabled) << name;
      EXPECT_GT(r.ras.demand_corrected + r.ras.scrub_corrected, 0u) << name;
      // Whatever was flagged has been dealt with or is being dealt with.
      EXPECT_EQ(r.ras.frames_retired,
                sim.ras_engine()->retired_count())
          << name;
    } catch (const SimError& e) {
      // A structured failure is an acceptable outcome of a storm — a
      // wedge, crash, or silent corruption is not.
      EXPECT_NE(e.kind(), SimErrorKind::Watchdog) << name << ": " << e.what();
    }
  }
}

TEST(RasSim, PermanentFaultStormHitsTheCapacityFloor) {
  MemSimConfig cfg = sim_cfg("Live");
  cfg.fault.add(FaultSite::MediaStuckAt, 1.0);
  cfg.ras.capacity_floor = 0.999;
  cfg.ras.scrub_interval = 500;  // scrub aggressively: more frames probed
  MemSim sim(cfg);
  auto w = make_pgbench(7);
  try {
    sim.run(*w, 200'000);
    FAIL() << "the capacity floor never fired";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::CapacityExhausted);
  }
}

TEST(RasSim, RetirementUnderConcurrentMigrationNeverCorruptsState) {
  // Satellite: sweep the flag over many points of the swap choreography.
  // Whatever phase the migration is in when the frame starts failing, the
  // run must stay audit-clean and the frame must end retired or pinned.
  for (const std::string& name : {std::string("Live"), std::string("nomad"),
                                  std::string("N-1")}) {
    for (const std::uint64_t k : {1000ull, 1500ull, 2000ull, 2500ull}) {
      MemSimConfig cfg = sim_cfg(name);
      cfg.controller.swap_interval = 500;
      cfg.audit_interval = 512;
      MemSim sim(cfg);
      auto w = make_pgbench(3);
      sim.run_chunk(*w, k);
      sim.mutable_ras()->flag_frame_for_test(2);
      sim.run_chunk(*w, 6000);
      sim.finish();
      EXPECT_TRUE(sim.ras_engine()->retired(2) ||
                  sim.ras_engine()->pinned_count() > 0)
          << name << " at k=" << k;
      EXPECT_GT(sim.auditor().audits(), 0u);
    }
  }
}

TEST(RasSim, RasEnabledRunsAreDeterministic) {
  const MemSimConfig cfg = [] {
    MemSimConfig c = sim_cfg("Live");
    c.fault.seed = 5;
    c.fault.add(FaultSite::MediaTransient, 0.005);
    return c;
  }();
  std::vector<std::uint8_t> first;
  for (int i = 0; i < 2; ++i) {
    MemSim sim(cfg);
    auto w = make_pgbench(9);
    sim.run(*w, 20'000);
    snap::Writer wr;
    sim.save(wr);
    if (i == 0)
      first = wr.buffer();
    else
      EXPECT_EQ(wr.buffer(), first);
  }
}

TEST(RasSim, MidRetirementSnapshotRoundTripsByteIdentical) {
  const WorkloadInfo info{"pgbench", "", 0, make_pgbench};
  MemSimConfig cfg = sim_cfg("Live");
  cfg.controller.swap_interval = 500;
  cfg.fault.seed = 21;
  cfg.fault.add(FaultSite::MediaTransient, 0.02)
      .add(FaultSite::MediaStuckAt, 0.004);

  MemSim sim(cfg);
  auto gen = info.make(4242);
  std::uint64_t replayed = 0;
  for (const std::uint64_t k : {997ull, 3001ull, 9001ull}) {
    sim.run_chunk(*gen, k - replayed);
    replayed = k;

    snap::Writer w;
    gen->save(w);
    sim.save(w);

    MemSim fresh(cfg);
    auto fresh_gen = info.make(4242);
    snap::Reader r(w.buffer());
    fresh_gen->restore(r);
    fresh.restore(r);

    snap::Writer w2;
    fresh_gen->save(w2);
    fresh.save(w2);
    ASSERT_EQ(w2.buffer(), w.buffer()) << "diverged at access " << k;
  }
  // The storm actually produced RAS state worth round-tripping.
  EXPECT_GT(sim.ras_engine()->metrics().demand_corrected +
                sim.ras_engine()->metrics().scrub_corrected,
            0u);
}

TEST(RasSim, DroppedFaultEventsAreCounted) {
  MemSimConfig cfg = sim_cfg("Live");
  cfg.fault.add(FaultSite::MediaTransient, 1.0);
  cfg.ras.due_fraction = 0.0;        // corrected errors only
  cfg.ras.ce_retire_threshold = 1u << 30;  // never retire: pure event volume
  MemSim sim(cfg);
  auto w = make_pgbench(7);
  sim.run(*w, 8'000);
  const RunResult r = sim.result();
  EXPECT_GT(r.faults_injected, 4096u);
  EXPECT_GT(r.faults_dropped, 0u);
  EXPECT_EQ(r.fault_events.size(), RunResult::kMaxReportedFaults);
}

TEST(RasSim, CellCodecCarriesRasMetricsAcrossTheForkBoundary) {
  // Process-isolated sweep cells (and journal replay) move RunResult
  // through encode_cell/decode_cell — the RAS block must survive, or
  // `--jobs N` silently zeroes every RAS column of the artifact.
  MemSimConfig cfg = sim_cfg("Live");
  cfg.fault.add(FaultSite::MediaStuckAt, 0.01);
  cfg.fault.add(FaultSite::MediaTransient, 0.05);
  cfg.ras.scrub_interval = 500;
  MemSim sim(cfg);
  auto w = make_pgbench(11);
  sim.run(*w, 6'000);
  runner::CellResult cell;
  cell.key = "codec/ras";
  cell.ok = true;
  cell.status = "ok";
  cell.result = sim.result();
  ASSERT_TRUE(cell.result.ras_enabled);
  ASSERT_GT(cell.result.ras.demand_corrected +
                cell.result.ras.scrub_corrected,
            0u);
  snap::Writer wr;
  runner::encode_cell(wr, cell);
  snap::Reader rd(wr.buffer());
  const runner::CellResult back = runner::decode_cell(rd);
  EXPECT_EQ(back.result.faults_dropped, cell.result.faults_dropped);
  EXPECT_EQ(back.result.ras_enabled, cell.result.ras_enabled);
  EXPECT_EQ(back.result.ras.demand_corrected,
            cell.result.ras.demand_corrected);
  EXPECT_EQ(back.result.ras.demand_uncorrectable,
            cell.result.ras.demand_uncorrectable);
  EXPECT_EQ(back.result.ras.scrub_probes, cell.result.ras.scrub_probes);
  EXPECT_EQ(back.result.ras.stuck_faults, cell.result.ras.stuck_faults);
  EXPECT_EQ(back.result.ras.frames_retired,
            cell.result.ras.frames_retired);
  EXPECT_EQ(back.result.ras.frames_pinned, cell.result.ras.frames_pinned);
  EXPECT_EQ(back.result.ras.spares_used, cell.result.ras.spares_used);
  EXPECT_EQ(back.result.ras_frames_pending,
            cell.result.ras_frames_pending);
  EXPECT_EQ(back.result.ras_spares_left, cell.result.ras_spares_left);
  EXPECT_EQ(back.result.ras_healthy_frames,
            cell.result.ras_healthy_frames);
  EXPECT_EQ(back.result.ras_retirements.size(),
            cell.result.ras_retirements.size());
  for (std::size_t i = 0; i < back.result.ras_retirements.size(); ++i) {
    EXPECT_EQ(back.result.ras_retirements[i].at,
              cell.result.ras_retirements[i].at);
    EXPECT_EQ(back.result.ras_retirements[i].frame,
              cell.result.ras_retirements[i].frame);
  }
}

}  // namespace
}  // namespace hmm
