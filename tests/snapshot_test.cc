// Snapshot layer tests: the CRC-framed binary format itself (round-trip,
// corruption detection, framing discipline) and save/restore round-trips
// of every stateful component. The canonical property is byte equality:
//   save(x) == save(restore_into_fresh(save(x)))
// which holds only if restore() reconstructs *all* serialized state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/snapshot.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "core/translation_table.hh"
#include "fault/sim_error.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

// --- format primitives ------------------------------------------------------

TEST(Crc32, MatchesTheReferenceVector) {
  const auto* s = reinterpret_cast<const std::uint8_t*>("123456789");
  EXPECT_EQ(snap::crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(snap::crc32(s, 0), 0u);
}

TEST(Snapshot, PrimitivesRoundTrip) {
  snap::Writer w;
  w.begin_section(snap::tag('T', 'E', 'S', 'T'));
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.b(true);
  w.b(false);
  w.f64(-0.0);  // sign bit must survive (raw IEEE-754 bits)
  w.f64(1.0 / 3.0);
  w.str("fig13/FT/64KB");
  w.str("");
  w.end_section();

  snap::Reader r(w.buffer());
  r.begin_section(snap::tag('T', 'E', 'S', 'T'));
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_EQ(r.str(), "fig13/FT/64KB");
  EXPECT_EQ(r.str(), "");
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, CorruptionIsDetectedByTheSectionCrc) {
  snap::Writer w;
  w.begin_section(snap::tag('T', 'E', 'S', 'T'));
  w.u64(42);
  w.str("payload");
  w.end_section();

  // Flip one payload bit (past the 12-byte tag+size header).
  std::vector<std::uint8_t> bytes = w.buffer();
  bytes[14] ^= 0x01;
  snap::Reader r(bytes);
  EXPECT_THROW(r.begin_section(snap::tag('T', 'E', 'S', 'T')),
               fault::SimError);
}

TEST(Snapshot, WrongTagAndTruncationThrow) {
  snap::Writer w;
  w.begin_section(snap::tag('A', 'A', 'A', 'A'));
  w.u32(7);
  w.end_section();

  snap::Reader wrong(w.buffer());
  EXPECT_THROW(wrong.begin_section(snap::tag('B', 'B', 'B', 'B')),
               fault::SimError);

  std::vector<std::uint8_t> cut = w.buffer();
  cut.resize(cut.size() - 3);
  snap::Reader trunc(cut);
  EXPECT_THROW(trunc.begin_section(snap::tag('A', 'A', 'A', 'A')),
               fault::SimError);
}

TEST(Snapshot, ReaderRejectsOverconsumptionOfASection) {
  snap::Writer w;
  w.begin_section(snap::tag('T', 'E', 'S', 'T'));
  w.u32(1);
  w.end_section();
  snap::Reader r(w.buffer());
  r.begin_section(snap::tag('T', 'E', 'S', 'T'));
  (void)r.u32();
  EXPECT_THROW((void)r.u32(), fault::SimError);  // past the section payload
}

// --- component round-trips --------------------------------------------------

TEST(Pcg32, RawStateResumesTheStreamExactly) {
  Pcg32 a(123, 456);
  for (int i = 0; i < 1000; ++i) (void)a.next();
  const Pcg32::Raw mid = a.raw();
  std::vector<std::uint32_t> expect;
  for (int i = 0; i < 64; ++i) expect.push_back(a.next());

  Pcg32 b;  // arbitrary fresh state
  b.set_raw(mid);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(b.next(), expect[i]);
}

TEST(RunningStat, RawRoundTripIncludingEmptySentinels) {
  RunningStat empty;
  RunningStat restored;
  restored.add(99);  // dirty state that restore must fully overwrite
  restored.set_raw(empty.raw());
  EXPECT_EQ(restored.count(), 0u);

  RunningStat s;
  s.add(3.5);
  s.add(-1.25);
  RunningStat t;
  t.set_raw(s.raw());
  EXPECT_EQ(t.count(), s.count());
  EXPECT_EQ(t.mean(), s.mean());
  EXPECT_EQ(t.min(), s.min());
  EXPECT_EQ(t.max(), s.max());
  // After restore both must keep evolving identically.
  s.add(7.0);
  t.add(7.0);
  EXPECT_EQ(t.mean(), s.mean());
}

[[nodiscard]] std::vector<std::uint8_t> table_bytes(
    const TranslationTable& t) {
  snap::Writer w;
  t.save(w);
  return w.buffer();
}

TEST(TranslationTable, RoundTripsIdleAndMidChoreographyStates) {
  const Geometry g{64 * MiB, 16 * MiB, 1 * MiB, 4 * KiB};
  TranslationTable t(g, TableMode::HardwareNMinus1);

  // Drive the table through Fig 8-style mutations: a CAM entry, a pending
  // relocation, an empty row, and a half-complete live fill.
  t.set_row(3, 40);        // q = 40 (>= N) occupies slot 3
  t.note_data_at(40, 3);
  t.note_data_at(3, 40);
  t.set_pending(5, true);  // row 5 mid-relocation (P bit)
  t.set_row_empty(7);
  t.begin_fill(9, 41, g.page_bytes * 41);
  t.mark_sub_block(0);
  t.mark_sub_block(3);

  const std::vector<std::uint8_t> bytes = table_bytes(t);
  TranslationTable u(g, TableMode::HardwareNMinus1);
  {
    snap::Reader r(bytes);
    u.restore(r);
  }
  EXPECT_EQ(table_bytes(u), bytes);

  // Behavioural spot checks on the restored table.
  EXPECT_EQ(u.occupant(3), 40u);
  EXPECT_TRUE(u.pending(5));
  EXPECT_TRUE(u.fill_active());
  EXPECT_EQ(u.fill_page(), 41u);
  EXPECT_EQ(u.fill_ready_count(), 2u);
  EXPECT_TRUE(u.sub_block_ready(3));
  EXPECT_FALSE(u.sub_block_ready(1));
  for (PhysAddr a = 0; a < g.total_bytes; a += g.page_bytes / 2) {
    const Route ra = t.translate(a);
    const Route rb = u.translate(a);
    EXPECT_EQ(ra.region, rb.region);
    EXPECT_EQ(ra.mach, rb.mach);
    EXPECT_EQ(ra.served_by_fill_slot, rb.served_by_fill_slot);
  }
}

TEST(SyntheticWorkload, RoundTripResumesTheRecordStreamExactly) {
  const WorkloadInfo info{"pgbench", "", 0, make_pgbench};
  auto a = info.make(777);
  for (int i = 0; i < 5000; ++i) (void)a->next();

  snap::Writer w;
  a->save(w);
  auto b = info.make(777);  // same construction, fresh cursor
  {
    snap::Reader r(w.buffer());
    b->restore(r);
  }
  EXPECT_EQ(b->emitted(), a->emitted());
  for (int i = 0; i < 2000; ++i) {
    const TraceRecord ra = a->next();
    const TraceRecord rb = b->next();
    ASSERT_EQ(ra.addr, rb.addr);
    ASSERT_EQ(ra.timestamp, rb.timestamp);
    ASSERT_EQ(ra.cpu, rb.cpu);
    ASSERT_EQ(ra.type, rb.type);
  }
}

// --- full simulator ---------------------------------------------------------

[[nodiscard]] MemSimConfig live_migration_config() {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 256 * KiB, 4 * KiB};
  cfg.controller.design = MigrationDesign::LiveMigration;
  cfg.controller.migration_enabled = true;
  cfg.controller.swap_interval = 500;  // frequent swaps: rich mid-flight state
  return cfg;
}

// Saving at many access counts K lands checkpoints inside every phase of
// the swap choreography (idle, mid-copy, fill in flight, drain) — the
// byte-equality property must hold at all of them.
TEST(MemSimSnapshot, SaveRestoreSaveIsByteIdenticalAcrossSwapPhases) {
  const WorkloadInfo info{"pgbench", "", 0, make_pgbench};
  const MemSimConfig cfg = live_migration_config();

  MemSim sim(cfg);
  auto gen = info.make(4242);
  std::uint64_t replayed = 0;
  for (const std::uint64_t k : {1ull, 257ull, 977ull, 3000ull, 7919ull}) {
    sim.run_chunk(*gen, k - replayed);
    replayed = k;

    snap::Writer w;
    gen->save(w);
    sim.save(w);

    MemSim fresh(cfg);
    auto fresh_gen = info.make(4242);
    snap::Reader r(w.buffer());
    fresh_gen->restore(r);
    fresh.restore(r);

    snap::Writer w2;
    fresh_gen->save(w2);
    fresh.save(w2);
    ASSERT_EQ(w2.buffer(), w.buffer()) << "diverged at access " << k;
  }
}

}  // namespace
}  // namespace hmm
