// Property fuzzer: long random sequences of hottest-coldest swaps across
// all designs and several geometries. After every completed swap the
// hardware encoding must agree with the placement shadow map, every page
// must be addressable, and the machine-address mapping must stay a
// bijection (no two pages resolving to the same machine page).
#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "core/migration.hh"

namespace hmm {
namespace {

struct FuzzParam {
  MigrationDesign design;
  std::uint64_t total;
  std::uint64_t on;
  std::uint64_t page;
};

class SwapFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(SwapFuzz, RandomSwapSequencesPreserveAllInvariants) {
  const FuzzParam fp = GetParam();
  const Geometry g{fp.total, fp.on, fp.page,
                   std::min<std::uint64_t>(fp.page, 64 * KiB)};
  ASSERT_TRUE(g.valid());

  TranslationTable table(g, fp.design == MigrationDesign::N
                                ? TableMode::FunctionalN
                                : TableMode::HardwareNMinus1);
  DramSystem on(Region::OnPackage, DramTiming::on_package_sip(), 1,
                SchedulerPolicy::FrFcfs);
  DramSystem off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
                 SchedulerPolicy::FrFcfs);
  MigrationEngine engine(table, on, off,
                         MigrationEngine::Config{fp.design, true, 0});

  Pcg32 rng(0xf422ull + fp.page);
  const PageId pages = g.total_pages();
  int completed = 0;

  for (int iter = 0; iter < 300; ++iter) {
    const PageId hot = rng.bounded64(pages);
    const auto cold = static_cast<SlotId>(rng.bounded(g.slots()));
    if (!engine.can_swap(hot, cold)) continue;
    ASSERT_TRUE(engine.start_swap(
        hot, static_cast<std::uint32_t>(rng.bounded(
                 g.sub_blocks_per_page())),
        cold, 0));
    int guard = 0;
    while (!engine.idle() && ++guard < 100000) {
      on.drain_all(0);
      off.drain_all(0);
      const auto a = on.take_completions();
      const auto b = off.take_completions();
      for (const auto& c : a) engine.on_completion(c, Region::OnPackage);
      for (const auto& c : b) engine.on_completion(c, Region::OffPackage);
      if (a.empty() && b.empty()) break;
    }
    ASSERT_TRUE(engine.idle()) << "swap never completed";
    ++completed;

    // Invariant 1: encoding-vs-shadow agreement + structural checks.
    const std::string err = table.validate();
    ASSERT_TRUE(err.empty()) << err << " after swap " << completed;

    // Invariant 2: the physical->machine map is a bijection on pages
    // (Ω may only be home to the current ghost page).
    std::set<PageId> machine_pages;
    for (PageId p = 0; p + 1 < pages; ++p) {
      const Route r = table.translate(g.machine_base(p));
      const PageId mp = r.mach >> g.page_shift();
      ASSERT_LT(mp, pages);
      ASSERT_TRUE(machine_pages.insert(mp).second)
          << "two pages share machine page " << mp << " after swap "
          << completed;
    }

    // Invariant 3: the hot page really is on-package now.
    EXPECT_EQ(table.translate(g.machine_base(hot)).region,
              Region::OnPackage);
  }
  EXPECT_GT(completed, 20);  // the fuzzer exercised real work
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndGeometries, SwapFuzz,
    ::testing::Values(
        FuzzParam{MigrationDesign::NMinus1, 16 * MiB, 4 * MiB, 512 * KiB},
        FuzzParam{MigrationDesign::NMinus1, 32 * MiB, 4 * MiB, 256 * KiB},
        FuzzParam{MigrationDesign::LiveMigration, 16 * MiB, 4 * MiB,
                  512 * KiB},
        FuzzParam{MigrationDesign::LiveMigration, 64 * MiB, 16 * MiB,
                  1 * MiB},
        FuzzParam{MigrationDesign::N, 16 * MiB, 4 * MiB, 512 * KiB},
        FuzzParam{MigrationDesign::N, 32 * MiB, 8 * MiB, 1 * MiB}));

}  // namespace
}  // namespace hmm
