// Property fuzzer: long random sequences of hottest-coldest swaps across
// all designs and several geometries. After every completed swap the
// hardware encoding must agree with the placement shadow map, every page
// must be addressable, and the machine-address mapping must stay a
// bijection (no two pages resolving to the same machine page).
#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "core/migration.hh"
#include "fault/fault_injector.hh"

namespace hmm {
namespace {

struct FuzzParam {
  MigrationDesign design;
  std::uint64_t total;
  std::uint64_t on;
  std::uint64_t page;
};

class SwapFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(SwapFuzz, RandomSwapSequencesPreserveAllInvariants) {
  const FuzzParam fp = GetParam();
  const Geometry g{fp.total, fp.on, fp.page,
                   std::min<std::uint64_t>(fp.page, 64 * KiB)};
  ASSERT_TRUE(g.valid());

  TranslationTable table(g, fp.design == MigrationDesign::N
                                ? TableMode::FunctionalN
                                : TableMode::HardwareNMinus1);
  DramSystem on(Region::OnPackage, DramTiming::on_package_sip(), 1,
                SchedulerPolicy::FrFcfs);
  DramSystem off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
                 SchedulerPolicy::FrFcfs);
  MigrationEngine engine(table, on, off,
                         MigrationEngine::Config{fp.design, true, 0});

  Pcg32 rng(0xf422ull + fp.page);
  const PageId pages = g.total_pages();
  int completed = 0;

  for (int iter = 0; iter < 300; ++iter) {
    const PageId hot = rng.bounded64(pages);
    const auto cold = static_cast<SlotId>(rng.bounded(g.slots()));
    if (!engine.can_swap(hot, cold)) continue;
    ASSERT_TRUE(engine.start_swap(
        hot, static_cast<std::uint32_t>(rng.bounded(
                 g.sub_blocks_per_page())),
        cold, 0));
    int guard = 0;
    while (!engine.idle() && ++guard < 100000) {
      on.drain_all(0);
      off.drain_all(0);
      const auto a = on.take_completions();
      const auto b = off.take_completions();
      for (const auto& c : a) engine.on_completion(c, Region::OnPackage);
      for (const auto& c : b) engine.on_completion(c, Region::OffPackage);
      if (a.empty() && b.empty()) break;
    }
    ASSERT_TRUE(engine.idle()) << "swap never completed";
    ++completed;

    // Invariant 1: encoding-vs-shadow agreement + structural checks.
    const std::string err = table.validate();
    ASSERT_TRUE(err.empty()) << err << " after swap " << completed;

    // Invariant 2: the physical->machine map is a bijection on pages
    // (Ω may only be home to the current ghost page).
    std::set<PageId> machine_pages;
    for (PageId p = 0; p + 1 < pages; ++p) {
      const Route r = table.translate(g.machine_base(p));
      const PageId mp = r.mach >> g.page_shift();
      ASSERT_LT(mp, pages);
      ASSERT_TRUE(machine_pages.insert(mp).second)
          << "two pages share machine page " << mp << " after swap "
          << completed;
    }

    // Invariant 3: the hot page really is on-package now.
    EXPECT_EQ(table.translate(g.machine_base(hot)).region,
              Region::OnPackage);
  }
  EXPECT_GT(completed, 20);  // the fuzzer exercised real work
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndGeometries, SwapFuzz,
    ::testing::Values(
        FuzzParam{MigrationDesign::NMinus1, 16 * MiB, 4 * MiB, 512 * KiB},
        FuzzParam{MigrationDesign::NMinus1, 32 * MiB, 4 * MiB, 256 * KiB},
        FuzzParam{MigrationDesign::LiveMigration, 16 * MiB, 4 * MiB,
                  512 * KiB},
        FuzzParam{MigrationDesign::LiveMigration, 64 * MiB, 16 * MiB,
                  1 * MiB},
        FuzzParam{MigrationDesign::N, 16 * MiB, 4 * MiB, 512 * KiB},
        FuzzParam{MigrationDesign::N, 32 * MiB, 8 * MiB, 1 * MiB}));

// Fault-injected fuzz: the same random swap driver, but with the injector
// armed at every migration-path site. The property under test is the
// paper's robustness claim: whatever the injector does, the table must
// hold a valid Fig-8 state after *every* completion batch — the engine
// recovers (retry), rolls back (abort), degrades, or — design N only —
// wedges; it never corrupts the mapping and never spins forever.
class FaultySwapFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(FaultySwapFuzz, InjectedFaultsNeverCorruptTheTable) {
  const FuzzParam fp = GetParam();
  const Geometry g{fp.total, fp.on, fp.page,
                   std::min<std::uint64_t>(fp.page, 64 * KiB)};
  ASSERT_TRUE(g.valid());

  TranslationTable table(g, fp.design == MigrationDesign::N
                                ? TableMode::FunctionalN
                                : TableMode::HardwareNMinus1);
  DramSystem on(Region::OnPackage, DramTiming::on_package_sip(), 1,
                SchedulerPolicy::FrFcfs);
  DramSystem off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
                 SchedulerPolicy::FrFcfs);
  MigrationEngine engine(table, on, off,
                         MigrationEngine::Config{fp.design, true, 0});

  // Rates are per *opportunity* (one per chunk completion / DRAM submit);
  // a 512KB page swap is several thousand opportunities, so these small
  // numbers still land multiple faults per run.
  fault::FaultPlan plan;
  plan.seed = 0xab5e + fp.page;
  plan.add(fault::FaultSite::MigrationChunkDrop, 1e-4)
      .add(fault::FaultSite::MigrationChunkDelay, 1e-4)
      .add(fault::FaultSite::ChannelStall, 1e-4)
      .add(fault::FaultSite::SwapAbort, 1e-5);
  fault::FaultInjector injector(plan);
  engine.set_fault_injector(&injector);
  on.set_fault_injector(&injector);
  off.set_fault_injector(&injector);

  Pcg32 rng(0xfa17ull + fp.page);
  const PageId pages = g.total_pages();
  int settled = 0;

  for (int iter = 0; iter < 200 && !engine.wedged(); ++iter) {
    const PageId hot = rng.bounded64(pages);
    const auto cold = static_cast<SlotId>(rng.bounded(g.slots()));
    if (!engine.can_swap(hot, cold)) continue;
    const std::uint64_t completed_before = engine.stats().swaps_completed;
    ASSERT_TRUE(engine.start_swap(
        hot, static_cast<std::uint32_t>(rng.bounded(
                 g.sub_blocks_per_page())),
        cold, 0));
    int guard = 0;
    while (!engine.idle() && !engine.wedged() && ++guard < 200000) {
      on.drain_all(0);
      off.drain_all(0);
      const auto a = on.take_completions();
      const auto b = off.take_completions();
      for (const auto& c : a) engine.on_completion(c, Region::OnPackage);
      for (const auto& c : b) engine.on_completion(c, Region::OffPackage);
      // The audit property: valid after every completion batch, even
      // mid-swap (mutations only land on step boundaries).
      const std::string mid = table.validate();
      ASSERT_TRUE(mid.empty()) << mid << " mid-swap, iter " << iter;
      if (a.empty() && b.empty()) break;
    }
    ASSERT_TRUE(engine.idle() || engine.wedged())
        << "engine neither settled nor wedged, iter " << iter;
    ++settled;

    const std::string err = table.validate();
    ASSERT_TRUE(err.empty()) << err << " after iter " << iter;

    std::set<PageId> machine_pages;
    for (PageId p = 0; p + 1 < pages; ++p) {
      const Route r = table.translate(g.machine_base(p));
      const PageId mp = r.mach >> g.page_shift();
      ASSERT_LT(mp, pages);
      ASSERT_TRUE(machine_pages.insert(mp).second)
          << "two pages share machine page " << mp << " after iter " << iter;
    }

    // Only a *completed* swap promises the hot page on-package; aborted
    // and wedged swaps promise only the (already checked) valid mapping.
    if (engine.stats().swaps_completed > completed_before) {
      EXPECT_EQ(table.translate(g.machine_base(hot)).region,
                Region::OnPackage);
    }
  }

  // N-1 and Live always recover, roll back, or degrade — never wedge.
  if (fp.design != MigrationDesign::N) {
    EXPECT_FALSE(engine.wedged());
  }
  EXPECT_GT(settled, 10);  // the fuzzer exercised real work under faults
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, FaultySwapFuzz,
    ::testing::Values(
        FuzzParam{MigrationDesign::NMinus1, 16 * MiB, 4 * MiB, 512 * KiB},
        FuzzParam{MigrationDesign::LiveMigration, 16 * MiB, 4 * MiB,
                  512 * KiB},
        FuzzParam{MigrationDesign::N, 16 * MiB, 4 * MiB, 512 * KiB}));

}  // namespace
}  // namespace hmm
