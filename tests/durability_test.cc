// Durability layer tests: checkpoint/restore bit-identity against an
// uninterrupted run, checkpoint file integrity, the sweep journal
// (append / recover / torn tail), --resume semantics, crash-isolated
// cells, and the atomic results artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.hh"
#include "fault/fault_injector.hh"
#include "fault/sim_error.hh"
#include "runner/journal.hh"
#include "runner/result_sink.hh"
#include "runner/runner.hh"
#include "runner/supervisor.hh"
#include "sim/checkpoint.hh"
#include "trace/workloads.hh"

namespace hmm::runner {
namespace {

[[nodiscard]] std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "hmm_durability_" + name;
}

[[nodiscard]] ExperimentSpec sim_spec(const std::string& key) {
  ExperimentSpec s;
  s.key = key;
  s.workload = WorkloadInfo{"pgbench", "", 0, make_pgbench};
  s.config.controller.geom = Geometry{4 * GiB, 512 * MiB, 256 * KiB, 4 * KiB};
  s.config.controller.design = MigrationDesign::LiveMigration;
  s.config.controller.migration_enabled = true;
  s.config.controller.swap_interval = 500;
  s.accesses = 8000;
  return s;
}

void expect_same_result(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.avg_latency, b.avg_latency);  // exact: same FP computation
  EXPECT_EQ(a.avg_read_latency, b.avg_read_latency);
  EXPECT_EQ(a.avg_write_latency, b.avg_write_latency);
  EXPECT_EQ(a.avg_on_latency, b.avg_on_latency);
  EXPECT_EQ(a.avg_off_latency, b.avg_off_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.on_package_fraction, b.on_package_fraction);
  EXPECT_EQ(a.off_row_hit_rate, b.off_row_hit_rate);
  EXPECT_EQ(a.on_queue_delay, b.on_queue_delay);
  EXPECT_EQ(a.off_queue_delay, b.off_queue_delay);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.migrated_bytes, b.migrated_bytes);
  EXPECT_EQ(a.demand_bytes_on, b.demand_bytes_on);
  EXPECT_EQ(a.demand_bytes_off, b.demand_bytes_off);
  EXPECT_EQ(a.os_stall_cycles, b.os_stall_cycles);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.energy_pj, b.energy_pj);
  EXPECT_EQ(a.energy_off_only_pj, b.energy_off_only_pj);
}

// Replays `spec` the way the runner's durable path does — chunked, with
// the replay()-equivalent warm-up boundary — but force-"crashes" at access
// `kill_at`, saving a checkpoint. A second, freshly constructed sim+
// workload pair then restores the checkpoint and finishes the run. The
// result must be bit-identical to the one-shot ExperimentRunner::replay().
[[nodiscard]] RunResult run_killed_and_resumed(const ExperimentSpec& spec,
                                               std::uint64_t seed,
                                               std::uint64_t kill_at,
                                               const std::string& path) {
  const auto warm = static_cast<std::uint64_t>(
      static_cast<double>(spec.accesses) * spec.warmup_fraction);
  const std::uint64_t fp =
      checkpoint_fingerprint(spec.key, seed, spec.accesses);
  constexpr std::uint64_t kChunk = 1024;

  // First life: run until kill_at, checkpoint, "die".
  {
    MemSim sim(spec.config);
    auto gen = spec.workload.make(seed);
    CheckpointMeta meta{fp, 0, false};
    if (warm > 0 && spec.instant_warmup)
      sim.controller().set_instant_migration(true);
    while (meta.accesses_done < kill_at) {
      if (warm > 0 && !meta.stats_reset_done && meta.accesses_done >= warm) {
        sim.finish();
        sim.controller().set_instant_migration(false);
        sim.reset_stats();
        meta.stats_reset_done = true;
        continue;
      }
      const std::uint64_t target =
          (warm > 0 && !meta.stats_reset_done) ? warm : spec.accesses;
      const std::uint64_t n =
          std::min({kChunk, target - meta.accesses_done,
                    kill_at - meta.accesses_done});
      sim.run_chunk(*gen, n);
      meta.accesses_done += n;
    }
    save_checkpoint(path, meta, *gen, sim);
  }

  // Second life: fresh objects, restore, finish.
  MemSim sim(spec.config);
  auto gen = spec.workload.make(seed);
  const auto meta_opt = load_checkpoint(path, fp, *gen, sim);
  EXPECT_TRUE(meta_opt.has_value());
  CheckpointMeta meta = *meta_opt;
  while (meta.accesses_done < spec.accesses ||
         (warm > 0 && !meta.stats_reset_done)) {
    if (warm > 0 && !meta.stats_reset_done && meta.accesses_done >= warm) {
      sim.finish();
      sim.controller().set_instant_migration(false);
      sim.reset_stats();
      meta.stats_reset_done = true;
      continue;
    }
    const std::uint64_t target =
        (warm > 0 && !meta.stats_reset_done) ? warm : spec.accesses;
    sim.run_chunk(*gen, std::min(kChunk, target - meta.accesses_done));
    meta.accesses_done = std::min(target, meta.accesses_done + kChunk);
  }
  sim.finish();
  sim.finish();
  remove_checkpoint(path);
  return sim.result();
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalToUninterruptedRun) {
  const ExperimentSpec spec = sim_spec("durability/bit-identity");
  const std::uint64_t seed = derive_seed(42, spec.key);
  const RunResult reference = ExperimentRunner::replay(spec, seed);
  const std::string path = temp_path("bit_identity.ckpt");

  // Kill points: mid-warm-up, exactly at the reset boundary, and twice in
  // the measured phase (mid-swap activity at interval 500).
  for (const std::uint64_t kill_at : {1024ull, 4000ull, 5120ull, 7000ull}) {
    SCOPED_TRACE(kill_at);
    const RunResult resumed =
        run_killed_and_resumed(spec, seed, kill_at, path);
    expect_same_result(resumed, reference);
  }
}

// Degraded mode is a checkpointable state: with every swap aborted by the
// injector, the engine exhausts degrade_after_aborts and freezes the table
// at its last valid (post-rollback) mapping. A run killed *after* that
// point checkpoints the frozen table + degraded flags, and the resumed
// run must replay the rest of the degraded execution bit-identically.
TEST(Checkpoint, DegradedModeRunResumesBitIdentically) {
  ExperimentSpec spec = sim_spec("durability/degraded");
  const std::uint64_t seed = derive_seed(42, spec.key);
  spec.config.fault.seed = seed;
  spec.config.fault.add(fault::FaultSite::SwapAbort, 1.0);

  const RunResult reference = ExperimentRunner::replay(spec, seed);
  ASSERT_TRUE(reference.degraded)
      << "every swap aborted but the engine never degraded";
  ASSERT_GT(reference.swap_aborts, 0u);

  // Prove the late kill points land in degraded mode: a partial run to
  // the earliest one already has the table frozen.
  {
    MemSim sim(spec.config);
    auto gen = spec.workload.make(seed);
    sim.controller().set_instant_migration(true);
    sim.run(*gen, 4000);  // warm-up boundary of sim_spec()
    sim.controller().set_instant_migration(false);
    sim.reset_stats();
    sim.run(*gen, 2000);
    sim.finish();
    ASSERT_TRUE(sim.result().degraded)
        << "kill points below would checkpoint a non-degraded sim";
  }

  const std::string path = temp_path("degraded.ckpt");
  for (const std::uint64_t kill_at : {6000ull, 7000ull}) {
    SCOPED_TRACE(kill_at);
    const RunResult resumed =
        run_killed_and_resumed(spec, seed, kill_at, path);
    expect_same_result(resumed, reference);
    EXPECT_TRUE(resumed.degraded);
  }
}

// Nomad's shadow-copy transaction state (table shadow bitmaps, the
// wandering hole, the engine's pass counter and re-copy offsets) rides
// the same snapshot format: a run SIGKILLed mid-transaction restores and
// finishes bit-identically to the uninterrupted run.
TEST(Checkpoint, NomadMidTransactionKillResumesBitIdentically) {
  ExperimentSpec spec = sim_spec("durability/nomad");
  spec.config.controller.design = MigrationDesign::Nomad;
  const std::uint64_t seed = derive_seed(42, spec.key);

  const RunResult reference = ExperimentRunner::replay(spec, seed);
  ASSERT_GT(reference.swaps, 0u)
      << "no migrations: the kill points cannot land mid-transaction";

  const std::string path = temp_path("nomad.ckpt");
  // Kill points spread over the measured phase (migration interval 500,
  // multi-thousand-cycle copies): several land inside a transaction.
  for (const std::uint64_t kill_at : {4100ull, 4608ull, 5500ull, 7000ull}) {
    SCOPED_TRACE(kill_at);
    const RunResult resumed =
        run_killed_and_resumed(spec, seed, kill_at, path);
    expect_same_result(resumed, reference);
  }
}

TEST(Checkpoint, MissingFileIsNulloptAndWrongFingerprintThrows) {
  const ExperimentSpec spec = sim_spec("durability/fingerprint");
  const std::uint64_t seed = derive_seed(42, spec.key);
  const std::string path = temp_path("fingerprint.ckpt");
  std::remove(path.c_str());

  MemSim sim(spec.config);
  auto gen = spec.workload.make(seed);
  const std::uint64_t fp =
      checkpoint_fingerprint(spec.key, seed, spec.accesses);
  EXPECT_FALSE(load_checkpoint(path, fp, *gen, sim).has_value());

  sim.run_chunk(*gen, 512);
  save_checkpoint(path, CheckpointMeta{fp, 512, false}, *gen, sim);

  MemSim other(spec.config);
  auto other_gen = spec.workload.make(seed);
  EXPECT_THROW((void)load_checkpoint(path, fp + 1, *other_gen, other),
               fault::SimError);
  // A truncated file is corruption, not "missing".
  {
    std::ifstream is(path, std::ios::binary);
    std::stringstream body;
    body << is.rdbuf();
    const std::string cut = body.str().substr(0, body.str().size() / 2);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(cut.data(), static_cast<std::streamsize>(cut.size()));
  }
  EXPECT_THROW((void)load_checkpoint(path, fp, *other_gen, other),
               fault::SimError);
  std::remove(path.c_str());
}

// --- journal ----------------------------------------------------------------

[[nodiscard]] CellResult sample_cell(const std::string& key) {
  CellResult c;
  c.key = key;
  c.seed = 0xFEEDFACEull;
  c.ok = true;
  c.status = "ok";
  c.attempts = 2;
  c.wall_seconds = 1.5;
  c.result.accesses = 4096;
  c.result.avg_latency = 123.456;
  c.result.p99_latency = 999.0;
  c.result.swaps = 17;
  c.result.migrated_bytes = 17u * 256 * 1024;
  c.result.degraded = true;
  c.result.degraded_at = 31337;
  c.result.fault_events.push_back(
      fault::FaultEvent{fault::FaultSite::MigrationChunkDrop, 7, 3});
  c.result.energy_pj = 1e12;
  return c;
}

TEST(Journal, EncodeDecodeCellIsLossless) {
  const CellResult a = sample_cell("fig13/FT/64KB");
  snap::Writer w;
  encode_cell(w, a);
  snap::Reader r(w.buffer());
  const CellResult b = decode_cell(r);
  EXPECT_EQ(b.key, a.key);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.ok, a.ok);
  EXPECT_EQ(b.status, a.status);
  EXPECT_EQ(b.attempts, a.attempts);
  EXPECT_EQ(b.wall_seconds, a.wall_seconds);
  expect_same_result(b.result, a.result);
  ASSERT_EQ(b.result.fault_events.size(), 1u);
  EXPECT_EQ(b.result.fault_events[0].site,
            fault::FaultSite::MigrationChunkDrop);
  EXPECT_EQ(b.result.fault_events[0].opportunity, 7u);
}

TEST(Journal, AppendRecoverAndToleratesATornTail) {
  const std::string path = temp_path("journal.jsonl");
  std::remove(path.c_str());
  {
    Journal j(path);
    EXPECT_TRUE(j.enabled());
    EXPECT_TRUE(j.recovered().empty());
    EXPECT_TRUE(j.append(sample_cell("sweep/a")));
    EXPECT_TRUE(j.append(sample_cell("sweep/b")));
  }
  {
    Journal j(path);
    ASSERT_EQ(j.recovered().size(), 2u);
    EXPECT_EQ(j.recovered()[0].key, "sweep/a");
    EXPECT_EQ(j.recovered()[1].key, "sweep/b");
    expect_same_result(j.recovered()[0].result, sample_cell("x").result);
  }
  // Tear the second line mid-blob (a crash while an old implementation
  // appended in place); recovery must stop at the damage, keeping line 1.
  {
    std::ifstream is(path);
    std::stringstream body;
    body << is.rdbuf();
    std::string cut = body.str();
    cut.resize(cut.size() - 20);
    std::ofstream os(path, std::ios::trunc);
    os << cut;
  }
  {
    Journal j(path);
    ASSERT_EQ(j.recovered().size(), 1u);
    EXPECT_EQ(j.recovered()[0].key, "sweep/a");
  }
  std::remove(path.c_str());
}

TEST(Journal, SanitizeKeyMakesFilesystemSafeStems) {
  EXPECT_EQ(sanitize_key("fig13/FT/64KB"), "fig13_FT_64KB");
  EXPECT_EQ(sanitize_key("a b\tc"), "a_b_c");
  EXPECT_EQ(sanitize_key(""), "cell");
}

// --- runner: interrupt, resume, crash isolation -----------------------------

TEST(RunnerDurability, InterruptStopsTheSweepAndResumeFinishesIt) {
  clear_interrupt();
  const std::string journal = temp_path("resume.journal");
  std::remove(journal.c_str());

  std::vector<ExperimentSpec> grid(3);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].key = "cell" + std::to_string(i);
    grid[i].job = [i](std::uint64_t) {
      if (i == 0) request_interrupt();  // SIGINT lands mid-sweep
      RunResult r;
      r.accesses = 100 + i;
      return r;
    };
  }
  const std::vector<CellResult> first =
      ExperimentRunner({.jobs = 1, .journal_path = journal}).run(grid);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_TRUE(first[0].ok);  // completed before the flag was polled
  EXPECT_EQ(first[1].status, "interrupted");
  EXPECT_EQ(first[2].status, "interrupted");
  EXPECT_TRUE(std::filesystem::exists(journal));  // kept: work remains

  // Resume: cell0 must come from the journal, never rerun — poison it.
  clear_interrupt();
  grid[0].job = [](std::uint64_t) -> RunResult {
    throw std::runtime_error("resumed cell was re-executed");
  };
  const std::vector<CellResult> second =
      ExperimentRunner({.jobs = 1, .journal_path = journal, .resume = true})
          .run(grid);
  ASSERT_EQ(second.size(), 3u);
  EXPECT_TRUE(second[0].ok);
  EXPECT_TRUE(second[0].resumed);
  EXPECT_EQ(second[0].result.accesses, 100u);  // recorded metrics, verbatim
  EXPECT_TRUE(second[1].ok);
  EXPECT_FALSE(second[1].resumed);
  EXPECT_TRUE(second[2].ok);
  // Sweep complete: the journal has served its purpose and is gone.
  EXPECT_FALSE(std::filesystem::exists(journal));
}

TEST(RunnerDurability, CrashingCellIsIsolatedAndSiblingsComplete) {
  if (!process_isolation_available()) GTEST_SKIP() << "no fork()";
  clear_interrupt();

  std::vector<ExperimentSpec> grid(3);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].key = "cell" + std::to_string(i);
    grid[i].job = [i](std::uint64_t) {
      // SIGKILL rather than SIGSEGV: sanitizer builds install a SEGV
      // handler that turns the crash into a plain exit(1), which would
      // misclassify the cell as "error". Nothing intercepts SIGKILL, so
      // the supervisor sees a signal death in every build flavor (it is
      // also exactly what an OOM kill looks like).
      if (i == 1) std::raise(SIGKILL);  // the cell dies, not the sweep
      RunResult r;
      r.accesses = 100 + i;
      return r;
    };
  }
  const std::vector<CellResult> out =
      ExperimentRunner({.jobs = 2, .isolation = Isolation::Process})
          .run(grid);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].ok);
  EXPECT_EQ(out[0].result.accesses, 100u);
  EXPECT_FALSE(out[1].ok);
  EXPECT_EQ(out[1].status, "crashed");
  EXPECT_NE(out[1].error.find("signal"), std::string::npos);
  EXPECT_TRUE(out[2].ok);
  EXPECT_EQ(out[2].result.accesses, 102u);
}

TEST(RunnerDurability, ProcessIsolationMatchesInProcessResults) {
  if (!process_isolation_available()) GTEST_SKIP() << "no fork()";
  clear_interrupt();

  std::vector<ExperimentSpec> grid;
  grid.push_back(sim_spec("durability/iso/a"));
  grid.push_back(sim_spec("durability/iso/b"));
  for (ExperimentSpec& s : grid) s.accesses = 3000;

  const std::vector<CellResult> in_process =
      ExperimentRunner({.jobs = 2}).run(grid);
  const std::vector<CellResult> isolated =
      ExperimentRunner({.jobs = 2, .isolation = Isolation::Process})
          .run(grid);
  ASSERT_EQ(isolated.size(), in_process.size());
  for (std::size_t i = 0; i < isolated.size(); ++i) {
    SCOPED_TRACE(grid[i].key);
    EXPECT_TRUE(in_process[i].ok) << in_process[i].error;
    EXPECT_TRUE(isolated[i].ok) << isolated[i].error;
    EXPECT_EQ(isolated[i].seed, in_process[i].seed);
    expect_same_result(isolated[i].result, in_process[i].result);
  }
}

// --- atomic results artifact ------------------------------------------------

TEST(ResultSinkDurability, ArtifactIsWrittenAtomically) {
  const std::string dir = temp_path("results");
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("HMM_RESULTS_DIR", dir.c_str(), 1), 0);

  ResultSink sink("durability_bench");
  const std::vector<CellResult> cells{sample_cell("sweep/a")};
  const std::string path = sink.write_json(cells);
  unsetenv("HMM_RESULTS_DIR");

  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // renamed away
  std::ifstream is(path);
  std::stringstream body;
  body << is.rdbuf();
  const std::string json = body.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"schema_version\": 4"), std::string::npos);
  // v4: wall-clock throughput, per cell and sweep-wide.
  EXPECT_NE(json.find("\"accesses_per_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"accesses_per_sec_total\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hmm::runner
