// Swap-plan tests: the engine's choreography must reproduce the paper's
// Fig 8 cases — including the fully worked 10-step example of Fig 8(d) —
// and keep the data-under-movement always addressable.
#include <gtest/gtest.h>

#include "core/migration.hh"

namespace hmm {
namespace {

Geometry small_geom() {
  return Geometry{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
}
constexpr std::uint64_t kPage = 512 * KiB;

struct Rig {
  Rig(MigrationDesign design = MigrationDesign::NMinus1)
      : table(small_geom(), design == MigrationDesign::N
                                ? TableMode::FunctionalN
                                : TableMode::HardwareNMinus1),
        on(Region::OnPackage, DramTiming::on_package_sip(), 1,
           SchedulerPolicy::FrFcfs),
        off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
            SchedulerPolicy::FrFcfs),
        engine(table, on, off, MigrationEngine::Config{design, true, 0}) {}

  TranslationTable table;
  DramSystem on;
  DramSystem off;
  MigrationEngine engine;
};

MachAddr omega_base() { return small_geom().machine_base(31); }

TEST(MigrationPlan, CaseA_HotOriginalSlow_ColdOriginalFast) {
  // Fig 8(a): MRU >= N (OS), LRU < N (OF). Empty slot is 7 initially.
  Rig rig;
  const auto plan = rig.engine.plan_swap(/*hot=*/20, 0, /*cold_slot=*/2);
  ASSERT_EQ(plan.size(), 3u);
  // Step 1: hot page's data -> empty slot 7.
  EXPECT_EQ(plan[0].src, 20 * kPage);
  EXPECT_EQ(plan[0].dst, 7 * kPage);
  // Step 2: ghost page 7's data leaves Ω for page 20's home.
  EXPECT_EQ(plan[1].src, omega_base());
  EXPECT_EQ(plan[1].dst, 20 * kPage);
  // Step 3: cold page 2 retires to Ω; slot 2 becomes the new empty slot.
  EXPECT_EQ(plan[2].src, 2 * kPage);
  EXPECT_EQ(plan[2].dst, omega_base());
}

TEST(MigrationPlan, CaseB_HotOriginalSlow_ColdMigratedFast) {
  // Fig 8(b): first migrate page 20 into slot 2 (case a), then the LRU is
  // the migrated page 20 itself while page 21 becomes hot: 4 copies.
  Rig rig;
  ASSERT_TRUE(rig.engine.start_swap(20, 0, 2, 0));
  while (!rig.engine.idle()) {
    const Cycle t = std::max(rig.on.drain_all(0), rig.off.drain_all(0));
    (void)t;
    for (const auto& c : rig.on.take_completions())
      rig.engine.on_completion(c, Region::OnPackage);
    for (const auto& c : rig.off.take_completions())
      rig.engine.on_completion(c, Region::OffPackage);
  }
  ASSERT_TRUE(rig.table.validate().empty()) << rig.table.validate();
  ASSERT_EQ(rig.table.category(20), PageCategory::MigratedFast);

  const auto plan = rig.engine.plan_swap(/*hot=*/21, 0, /*cold_slot=*/7);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].src, 21 * kPage);          // hot into the empty slot 2
  EXPECT_EQ(plan[0].dst, 2 * kPage);
  EXPECT_EQ(plan[1].src, omega_base());        // ghost 2's data to 21's home
  EXPECT_EQ(plan[1].dst, 21 * kPage);
  EXPECT_EQ(plan[2].src, 20 * kPage);          // slot-7 page's data (at 20's
  EXPECT_EQ(plan[2].dst, omega_base());        // home) parks at Ω
  EXPECT_EQ(plan[3].src, 7 * kPage);           // cold page 20 goes home
  EXPECT_EQ(plan[3].dst, 20 * kPage);
}

TEST(MigrationPlan, CaseD_MatchesPaperTenStepExample) {
  // Fig 8(d): both MRU and LRU are migrated pages. Construct the paper's
  // exact preconditions with slots A=0, B=1, C=7 (empty/ghost), pages
  // D=20 (in slot A), E=21 (in slot B):
  Rig rig;
  rig.table.set_row(0, 20);  // A holds D
  rig.table.note_data_at(20, 0);
  rig.table.note_data_at(0, 20);
  rig.table.set_row(1, 21);  // B holds E
  rig.table.note_data_at(21, 1);
  rig.table.note_data_at(1, 21);
  ASSERT_TRUE(rig.table.validate().empty()) << rig.table.validate();

  // MRU = page B(=1, Migrated Slow), LRU = page D(=20, in slot A).
  const auto plan = rig.engine.plan_swap(/*hot=*/1, 0, /*cold_slot=*/0);
  ASSERT_EQ(plan.size(), 5u);

  // Paper step 1: data E (slot B) -> empty slot C.
  EXPECT_EQ(plan[0].src, 1 * kPage);
  EXPECT_EQ(plan[0].dst, 7 * kPage);
  // Steps 2 (link C->E + P bit) are plan[0].after.
  ASSERT_EQ(plan[0].after.size(), 3u);
  EXPECT_EQ(plan[0].after[0].kind, TableMutation::Kind::SetRow);
  EXPECT_EQ(plan[0].after[0].row, 7u);
  EXPECT_EQ(plan[0].after[0].page, 21u);
  EXPECT_EQ(plan[0].after[1].kind, TableMutation::Kind::SetPending);

  // Paper step 3: copy data B back to slot B (from E's home).
  EXPECT_EQ(plan[1].src, 21 * kPage);
  EXPECT_EQ(plan[1].dst, 1 * kPage);
  // Paper step 5: copy data C from Ω to slot E('s home).
  EXPECT_EQ(plan[2].src, omega_base());
  EXPECT_EQ(plan[2].dst, 21 * kPage);
  // Paper step 7: copy data A (at D's home) to Ω.
  EXPECT_EQ(plan[3].src, 20 * kPage);
  EXPECT_EQ(plan[3].dst, omega_base());
  // Paper step 9: copy data D (slot A) to its home.
  EXPECT_EQ(plan[4].src, 0 * kPage);
  EXPECT_EQ(plan[4].dst, 20 * kPage);
  // Paper step 10: row A becomes the new empty slot.
  bool empties_row_a = false;
  for (const auto& m : plan[4].after)
    if (m.kind == TableMutation::Kind::SetRowEmpty && m.row == 0)
      empties_row_a = true;
  EXPECT_TRUE(empties_row_a);
}

TEST(MigrationPlan, GhostHotRefillsOwnSlot) {
  // The hot page is the Ghost page itself: one copy, Ω -> its own slot.
  Rig rig;
  const auto plan = rig.engine.plan_swap(/*hot=*/7, 0, /*cold_slot=*/3);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].src, omega_base());
  EXPECT_EQ(plan[0].dst, 7 * kPage);
  EXPECT_EQ(plan[1].src, 3 * kPage);  // cold page retires to Ω
  EXPECT_EQ(plan[1].dst, omega_base());
}

TEST(MigrationPlan, DesignNExchangesDirectly) {
  Rig rig(MigrationDesign::N);
  const auto plan = rig.engine.plan_swap(/*hot=*/20, 0, /*cold_slot=*/2);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].src, 2 * kPage);
  EXPECT_EQ(plan[0].dst, 20 * kPage);
  EXPECT_EQ(plan[1].src, 20 * kPage);
  EXPECT_EQ(plan[1].dst, 2 * kPage);
  EXPECT_FALSE(plan[0].live_fill);
}

TEST(MigrationPlan, LiveFillOnlyInLiveDesign) {
  Rig nminus1(MigrationDesign::NMinus1);
  Rig live(MigrationDesign::LiveMigration);
  EXPECT_FALSE(nminus1.engine.plan_swap(20, 0, 2)[0].live_fill);
  EXPECT_TRUE(live.engine.plan_swap(20, 0, 2)[0].live_fill);
  // Critical-data-first seeds the start sub-block.
  EXPECT_EQ(live.engine.plan_swap(20, 5, 2)[0].start_sub_block, 5u);
}

TEST(MigrationPlan, CanSwapRejectsInvalidPairs) {
  Rig rig;
  EXPECT_FALSE(rig.engine.can_swap(3, 2));    // page 3 is on-package
  EXPECT_FALSE(rig.engine.can_swap(20, 7));   // slot 7 is the empty slot
  EXPECT_FALSE(rig.engine.can_swap(31, 2));   // Ω is reserved
  EXPECT_FALSE(rig.engine.can_swap(99, 2));   // out of range
  EXPECT_TRUE(rig.engine.can_swap(20, 2));
}

TEST(MigrationPlan, CanSwapRejectsVictimEqualsPartner) {
  // hot < N whose slot is occupied by partner e'; e' may not be the victim.
  Rig rig;
  rig.table.set_row(1, 21);
  rig.table.note_data_at(21, 1);
  rig.table.note_data_at(1, 21);
  EXPECT_FALSE(rig.engine.can_swap(/*hot=*/1, /*cold_slot=*/1));
  EXPECT_TRUE(rig.engine.can_swap(/*hot=*/1, /*cold_slot=*/4));
}

}  // namespace
}  // namespace hmm
