// Stack-distance profiler tests, including a property test against a
// reference fully-associative LRU cache simulation.
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "cache/stack_distance.hh"
#include "common/random.hh"
#include "common/units.hh"

namespace hmm {
namespace {

/// Reference fully-associative LRU cache (line-granular).
class RefLru {
 public:
  explicit RefLru(std::uint64_t capacity_lines) : cap_(capacity_lines) {}

  bool access(PhysAddr addr) {
    const std::uint64_t line = addr >> 6;
    const auto it = pos_.find(line);
    if (it != pos_.end()) {
      order_.erase(it->second);
      order_.push_front(line);
      pos_[line] = order_.begin();
      return true;
    }
    order_.push_front(line);
    pos_[line] = order_.begin();
    if (order_.size() > cap_) {
      pos_.erase(order_.back());
      order_.pop_back();
    }
    return false;
  }

 private:
  std::uint64_t cap_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> pos_;
};

TEST(StackDistance, SimpleSequence) {
  StackDistanceProfiler p({1, 2, 4});
  // a b a : second 'a' has distance 1 => hits at capacity >= 2.
  p.access(0);
  p.access(64);
  p.access(0);
  EXPECT_EQ(p.accesses(), 3u);
  EXPECT_EQ(p.cold_misses(), 2u);
  EXPECT_DOUBLE_EQ(p.miss_ratio(0), 1.0);            // capacity 1: all miss
  EXPECT_DOUBLE_EQ(p.miss_ratio(1), 2.0 / 3.0);      // capacity 2
  EXPECT_DOUBLE_EQ(p.miss_ratio(2), 2.0 / 3.0);
}

TEST(StackDistance, ImmediateReuseIsMru) {
  StackDistanceProfiler p({1});
  p.access(0);
  p.access(0);
  p.access(0);
  EXPECT_DOUBLE_EQ(p.miss_ratio(0), 1.0 / 3.0);  // only the cold miss
}

TEST(StackDistance, WarmRatioExcludesColdMisses) {
  StackDistanceProfiler p({1});
  p.access(0);
  p.access(0);
  EXPECT_DOUBLE_EQ(p.warm_miss_ratio(0), 0.0);
  EXPECT_DOUBLE_EQ(p.miss_ratio(0), 0.5);
}

TEST(StackDistance, DistinctLineCount) {
  StackDistanceProfiler p({64});
  for (int i = 0; i < 100; ++i) p.access(static_cast<PhysAddr>(i % 10) * 64);
  EXPECT_EQ(p.distinct_lines(), 10u);
  EXPECT_EQ(p.cold_misses(), 10u);
}

class StackDistanceVsLru
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackDistanceVsLru, MatchesReferenceCache) {
  const std::uint64_t cap = GetParam();
  StackDistanceProfiler p({cap});
  RefLru ref(cap);
  Pcg32 rng(42);
  std::uint64_t ref_hits = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    // Skewed stream to exercise all distances.
    const PhysAddr a = rng.chance(0.5)
                           ? static_cast<PhysAddr>(rng.bounded(64)) * 64
                           : rng.bounded64(1 * MiB) & ~63ull;
    ref_hits += ref.access(a);
    p.access(a);
  }
  const double ref_miss = 1.0 - static_cast<double>(ref_hits) / n;
  EXPECT_NEAR(p.miss_ratio(0), ref_miss, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Capacities, StackDistanceVsLru,
                         ::testing::Values(8, 64, 256, 2048, 16384));

TEST(StackDistance, RebuildPreservesState) {
  // Force many rebuilds with a long stream; monotonicity of miss ratios
  // across capacities must hold throughout.
  StackDistanceProfiler p({16, 256, 4096});
  Pcg32 rng(7);
  for (int i = 0; i < 300000; ++i) p.access(rng.bounded64(8 * MiB) & ~63ull);
  EXPECT_GE(p.miss_ratio(0), p.miss_ratio(1));
  EXPECT_GE(p.miss_ratio(1), p.miss_ratio(2));
  EXPECT_EQ(p.accesses(), 300000u);
}

}  // namespace
}  // namespace hmm
