// Section II system-simulation tests: the Fig 5 configuration ordering
// and the Fig 4 miss-rate curve properties.
#include <gtest/gtest.h>

#include "sim/system.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

double ipc_of(MemOption opt, const std::string& npb, std::uint64_t n) {
  SystemSim::Config cfg;
  cfg.option = opt;
  auto gen = make_npb(npb, 17);
  SystemSim sim(cfg);
  return sim.run(*gen, n, n / 2).ipc;
}

TEST(SystemSim, IdealBeatsBaselineOnEveryWorkload) {
  for (const char* name : {"CG", "LU", "MG"}) {
    EXPECT_GT(ipc_of(MemOption::AllOnPackage, name, 150000),
              ipc_of(MemOption::Baseline, name, 150000))
        << name;
  }
}

TEST(SystemSim, StaticEqualsIdealWhenFootprintFits) {
  // LU.C (615MB) fits the 1GB on-package region entirely.
  const double stat = ipc_of(MemOption::StaticHetero, "LU", 150000);
  const double ideal = ipc_of(MemOption::AllOnPackage, "LU", 150000);
  EXPECT_NEAR(stat, ideal, ideal * 0.01);
}

TEST(SystemSim, StaticTrailsIdealWhenFootprintOverflows) {
  // DC.B (5.8GB) cannot fit: the static mapping must lose to the ideal.
  const double stat = ipc_of(MemOption::StaticHetero, "DC", 200000);
  const double ideal = ipc_of(MemOption::AllOnPackage, "DC", 200000);
  EXPECT_LT(stat, ideal * 0.99);
  EXPECT_GT(stat, ipc_of(MemOption::Baseline, "DC", 200000));
}

TEST(SystemSim, L4NeverBeatsStaticMapping) {
  // The paper's central Section II claim.
  for (const char* name : {"CG", "MG"}) {
    EXPECT_LT(ipc_of(MemOption::L4Cache, name, 150000),
              ipc_of(MemOption::StaticHetero, name, 150000))
        << name;
  }
}

TEST(SystemSim, ReportsMemoryLatencyPerOption) {
  SystemSim::Config cfg;
  cfg.option = MemOption::Baseline;
  auto gen = make_npb("CG", 3);
  SystemSim sim(cfg);
  const Sec2Result r = sim.run(*gen, 50000);
  EXPECT_DOUBLE_EQ(r.avg_memory_latency, 200.0);
  EXPECT_GT(r.l3_misses, 0u);

  SystemSim::Config ideal;
  ideal.option = MemOption::AllOnPackage;
  auto gen2 = make_npb("CG", 3);
  SystemSim sim2(ideal);
  EXPECT_DOUBLE_EQ(sim2.run(*gen2, 50000).avg_memory_latency, 70.0);
}

TEST(MissRateCurve, MonotoneNonIncreasing) {
  auto gen = make_npb("MG", 29);
  const std::vector<std::uint64_t> caps = {1 * MiB, 8 * MiB, 64 * MiB,
                                           512 * MiB};
  const std::vector<double> rates = llc_miss_rate_curve(*gen, 400000, caps);
  ASSERT_EQ(rates.size(), caps.size());
  for (std::size_t i = 1; i < rates.size(); ++i)
    EXPECT_LE(rates[i], rates[i - 1] + 1e-12);
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(MissRateCurve, FootprintCapacityZeroesColdMisses) {
  auto gen = make_npb("EP", 29);  // 16MB footprint
  const std::vector<std::uint64_t> caps = {1 * MiB, 32 * MiB};
  const std::vector<double> rates =
      llc_miss_rate_curve(*gen, 300000, caps, 16 * MiB);
  EXPECT_GT(rates[0], 0.0);
  EXPECT_NEAR(rates[1], 0.0, 0.02);
}

}  // namespace
}  // namespace hmm
