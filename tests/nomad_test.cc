// Nomad (transactional migration, DESIGN.md §10) tests: Shadow-mode
// translation table semantics (begin/dirty/commit/abort, the wandering
// hole, validate() catching corruption), end-to-end MemSim runs of the
// nomad scheme (migration happens, determinism, parallel-sweep
// bit-identity), and fault injection resolving to clean transactional
// aborts — degraded mode at worst, never a wedge.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/snapshot.hh"
#include "core/translation_table.hh"
#include "fault/fault_injector.hh"
#include "runner/runner.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

// 8 machine pages, 4 on-package slots, 4 sub-blocks per page; Ω = 7 is
// the boot hole.
[[nodiscard]] Geometry small_geom() {
  return Geometry{32 * KiB, 16 * KiB, 4 * KiB, 1 * KiB};
}

[[nodiscard]] std::string table_bytes(const TranslationTable& t) {
  snap::Writer w;
  t.save(w);
  return std::string(w.buffer().begin(), w.buffer().end());
}

TEST(NomadTable, BootsWithHoleAtOmegaAndIdentityRouting) {
  const Geometry g = small_geom();
  TranslationTable t(g, TableMode::Shadow);
  EXPECT_EQ(t.hole(), g.omega());
  EXPECT_FALSE(t.shadow_active());
  EXPECT_EQ(t.validate(), "");
  for (PageId p = 0; p + 1 < g.total_pages(); ++p) {
    EXPECT_EQ(t.location_of(p), p * g.page_bytes);
    EXPECT_EQ(t.page_at(p), p);
  }
  EXPECT_EQ(t.page_at(t.hole()), kInvalidPage);  // the hole holds no page
}

TEST(NomadTable, CommitRepointsThePageAndMovesTheHole) {
  const Geometry g = small_geom();
  TranslationTable t(g, TableMode::Shadow);
  const PageId page = 2;
  const PageId old_hole = t.hole();

  t.begin_shadow(page, t.hole());
  EXPECT_TRUE(t.shadow_active());
  EXPECT_EQ(t.shadow_page(), page);
  EXPECT_EQ(t.shadow_dst(), old_hole);
  // Routing is untouched until commit: the old home keeps serving.
  EXPECT_EQ(t.location_of(page), page * g.page_bytes);
  EXPECT_EQ(t.validate(), "");

  const auto nsb = static_cast<std::uint32_t>(g.sub_blocks_per_page());
  for (std::uint32_t i = 0; i < nsb; ++i) t.shadow_mark_filled(i);
  t.commit_shadow();

  EXPECT_FALSE(t.shadow_active());
  EXPECT_EQ(t.location_of(page), old_hole * g.page_bytes);
  EXPECT_EQ(t.page_at(old_hole), page);
  EXPECT_EQ(t.hole(), page);  // the old home is the new hole
  EXPECT_EQ(t.page_at(t.hole()), kInvalidPage);
  EXPECT_EQ(t.validate(), "");
}

TEST(NomadTable, AbortRestoresTheExactPreBeginState) {
  const Geometry g = small_geom();
  TranslationTable t(g, TableMode::Shadow);
  const std::string before = table_bytes(t);

  t.begin_shadow(5, t.hole());
  t.shadow_mark_filled(0);
  t.shadow_mark_filled(1);
  t.shadow_mark_dirty(1);
  EXPECT_NE(table_bytes(t), before);  // mid-txn state is real
  t.abort_shadow();

  EXPECT_FALSE(t.shadow_active());
  EXPECT_EQ(t.validate(), "");
  EXPECT_EQ(table_bytes(t), before);  // bit-identical rollback
}

TEST(NomadTable, DirtyAndFilledBitmapsTrackSubBlocks) {
  const Geometry g = small_geom();
  TranslationTable t(g, TableMode::Shadow);
  t.begin_shadow(1, t.hole());
  EXPECT_EQ(t.shadow_dirty_count(), 0u);
  EXPECT_FALSE(t.shadow_filled(0));

  t.shadow_mark_filled(0);
  EXPECT_TRUE(t.shadow_filled(0));
  t.shadow_mark_dirty(2);
  t.shadow_mark_dirty(2);  // idempotent
  EXPECT_TRUE(t.shadow_dirty(2));
  EXPECT_EQ(t.shadow_dirty_count(), 1u);
  t.shadow_clear_dirty(2);
  EXPECT_FALSE(t.shadow_dirty(2));
  EXPECT_EQ(t.shadow_dirty_count(), 0u);
  t.abort_shadow();
}

TEST(NomadTable, ValidateCatchesInjectedBitFlips) {
  const Geometry g = small_geom();
  {
    TranslationTable t(g, TableMode::Shadow);
    t.flip_pending_bit(0);
    EXPECT_NE(t.validate().find("pending bit"), std::string::npos);
  }
  {
    TranslationTable t(g, TableMode::Shadow);
    t.flip_occupant_bit(1, 0);
    EXPECT_NE(t.validate().find("occupant"), std::string::npos);
  }
}

// --- end-to-end: the nomad scheme under MemSim ------------------------------

[[nodiscard]] MemSimConfig nomad_cfg() {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 256 * KiB, 4 * KiB};
  cfg.controller.design = MigrationDesign::Nomad;
  cfg.controller.migration_enabled = true;
  cfg.controller.swap_interval = 1000;
  cfg.audit_interval = 2048;  // periodic full validate() during the run
  return cfg;
}

[[nodiscard]] RunResult replay(const MemSimConfig& cfg, std::uint64_t n,
                               std::uint64_t seed = 21,
                               bool instant_warmup = true) {
  MemSim sim(cfg);
  auto w = make_pgbench(seed);
  if (instant_warmup) {
    sim.controller().set_instant_migration(true);
    sim.run(*w, n / 2);
    sim.controller().set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*w, n);
  sim.finish();
  return sim.result();
}

TEST(NomadSim, MigratesAndRaisesOnPackageShare) {
  const std::uint64_t n = 120000;
  MemSimConfig stat = nomad_cfg();
  stat.controller.migration_enabled = false;
  const RunResult without = replay(stat, n);
  const RunResult with = replay(nomad_cfg(), n);
  EXPECT_GT(with.swaps, 0u);
  EXPECT_GT(with.migrated_bytes, 0u);
  EXPECT_GT(with.on_package_fraction, without.on_package_fraction);
}

TEST(NomadSim, RunsAreDeterministic) {
  const RunResult a = replay(nomad_cfg(), 40000);
  const RunResult b = replay(nomad_cfg(), 40000);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.swap_aborts, b.swap_aborts);
  EXPECT_EQ(a.migrated_bytes, b.migrated_bytes);
}

TEST(NomadSim, TotalChunkLossAbortsIntoDegradedModeNotAWedge) {
  MemSimConfig cfg = nomad_cfg();
  cfg.fault.seed = 7;
  cfg.fault.add(fault::FaultSite::MigrationChunkDrop, 1.0);
  // Every copy chunk drops: each transaction exhausts its retry budget
  // and aborts; after degrade_after_aborts consecutive aborts the engine
  // freezes the table. The run must COMPLETE (periodic audits clean) —
  // nomad has no wedge state. No instant warm-up: instant transactions
  // stream no chunks, so they would commit fault-free (and the swaps
  // counter spans the sim's lifetime).
  const RunResult r = replay(cfg, 40000, 21, /*instant_warmup=*/false);
  EXPECT_EQ(r.swaps, 0u);  // nothing ever commits
  EXPECT_GT(r.swap_aborts, 0u);
  EXPECT_TRUE(r.degraded);
}

TEST(NomadSim, ModerateFaultsRecoverViaRetryOrAbort) {
  MemSimConfig cfg = nomad_cfg();
  cfg.fault.seed = 11;
  cfg.fault.add(fault::FaultSite::MigrationChunkDrop, 0.05);
  cfg.fault.add(fault::FaultSite::SwapAbort, 0.01);
  const RunResult r = replay(cfg, 80000);
  // The run completed with audits on; recovery happened (retries and/or
  // rolled-back transactions), and progress was still made.
  EXPECT_GT(r.chunk_retries + r.swap_aborts, 0u);
  EXPECT_GT(r.swaps, 0u);
}

TEST(NomadSim, ParallelSweepIsBitIdenticalToSerial) {
  std::vector<runner::ExperimentSpec> grid;
  for (const char* key : {"nomad/sweep/a", "nomad/sweep/b"}) {
    runner::ExperimentSpec s;
    s.key = key;
    s.workload = WorkloadInfo{"pgbench", "", 0, make_pgbench};
    s.config = nomad_cfg();
    s.accesses = 8000;
    grid.push_back(s);
  }
  const std::vector<runner::CellResult> serial =
      runner::ExperimentRunner({.jobs = 1}).run(grid);
  const std::vector<runner::CellResult> parallel =
      runner::ExperimentRunner({.jobs = 2}).run(grid);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(grid[i].key);
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    EXPECT_EQ(serial[i].result.avg_latency, parallel[i].result.avg_latency);
    EXPECT_EQ(serial[i].result.end_time, parallel[i].result.end_time);
    EXPECT_EQ(serial[i].result.swaps, parallel[i].result.swaps);
    EXPECT_EQ(serial[i].result.migrated_bytes,
              parallel[i].result.migrated_bytes);
  }
}

}  // namespace
}  // namespace hmm
