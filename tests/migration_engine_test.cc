// Migration-engine execution tests: swaps run to completion through the
// real DRAM models, the table stays valid at every step boundary, live
// migration serves filled sub-blocks early, and every page is addressable
// at every instant of a swap (the paper's "execution never halts" claim).
#include <gtest/gtest.h>

#include "core/migration.hh"

namespace hmm {
namespace {

Geometry small_geom() {
  return Geometry{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
}
constexpr std::uint64_t kPage = 512 * KiB;

struct Rig {
  explicit Rig(MigrationDesign design)
      : table(small_geom(), design == MigrationDesign::N
                                ? TableMode::FunctionalN
                                : TableMode::HardwareNMinus1),
        on(Region::OnPackage, DramTiming::on_package_sip(), 1,
           SchedulerPolicy::FrFcfs),
        off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
            SchedulerPolicy::FrFcfs),
        engine(table, on, off, MigrationEngine::Config{design, true, 0}) {}

  /// Pump all DRAM work to completion, checking invariants per batch.
  void run_to_idle(bool validate_each = true) {
    int guard = 0;
    while (!engine.idle() && ++guard < 100000) {
      on.drain_all(0);
      off.drain_all(0);
      const auto a = on.take_completions();
      const auto b = off.take_completions();
      for (const auto& c : a) engine.on_completion(c, Region::OnPackage);
      for (const auto& c : b) engine.on_completion(c, Region::OffPackage);
      if (validate_each && table.mode() == TableMode::HardwareNMinus1) {
        const std::string err = table.validate();
        ASSERT_TRUE(err.empty()) << err;
      }
      if (a.empty() && b.empty()) break;
    }
    ASSERT_TRUE(engine.idle());
  }

  TranslationTable table;
  DramSystem on;
  DramSystem off;
  MigrationEngine engine;
};

class EngineDesignTest
    : public ::testing::TestWithParam<MigrationDesign> {};

TEST_P(EngineDesignTest, SwapMovesHotInAndColdOut) {
  Rig rig(GetParam());
  ASSERT_TRUE(rig.engine.start_swap(/*hot=*/20, 0, /*cold_slot=*/2, 0));
  EXPECT_FALSE(rig.engine.idle());
  rig.run_to_idle();

  EXPECT_EQ(rig.table.translate(20 * kPage).region, Region::OnPackage);
  EXPECT_EQ(rig.table.translate(2 * kPage).region, Region::OffPackage);
  EXPECT_EQ(rig.engine.stats().swaps_completed, 1u);
  EXPECT_GT(rig.engine.stats().bytes_copied, 0u);
}

TEST_P(EngineDesignTest, EveryPageAlwaysAddressable) {
  // At every completion batch during a swap, every page must translate to
  // a machine address inside the memory space (never into limbo).
  Rig rig(GetParam());
  ASSERT_TRUE(rig.engine.start_swap(20, 3, 2, 0));
  const Geometry g = small_geom();
  int guard = 0;
  while (!rig.engine.idle() && ++guard < 100000) {
    rig.on.drain_all(0);
    rig.off.drain_all(0);
    const auto a = rig.on.take_completions();
    const auto b = rig.off.take_completions();
    for (const auto& c : a) rig.engine.on_completion(c, Region::OnPackage);
    for (const auto& c : b) rig.engine.on_completion(c, Region::OffPackage);
    for (PageId p = 0; p + 1 < g.total_pages(); ++p) {
      const Route r = rig.table.translate(p * kPage + 7);
      EXPECT_LT(r.mach, g.total_bytes);
      EXPECT_EQ(g.offset_of(r.mach), 7u);
    }
    if (a.empty() && b.empty()) break;
  }
}

TEST_P(EngineDesignTest, BackToBackSwapsKeepTableValid) {
  Rig rig(GetParam());
  // A chain of swaps that exercises OS/MS/MF/Ghost combinations.
  const PageId hots[] = {20, 21, 22, 2, 20};
  const SlotId colds[] = {2, 4, 5, 6, 1};
  for (int i = 0; i < 5; ++i) {
    if (!rig.engine.can_swap(hots[i], colds[i])) continue;
    ASSERT_TRUE(rig.engine.start_swap(hots[i], 0, colds[i], 0)) << i;
    rig.run_to_idle();
  }
  if (rig.table.mode() == TableMode::HardwareNMinus1) {
    EXPECT_TRUE(rig.table.validate().empty()) << rig.table.validate();
  }
  EXPECT_GE(rig.engine.stats().swaps_completed, 3u);
}

TEST_P(EngineDesignTest, RejectsSecondSwapWhileBusy) {
  Rig rig(GetParam());
  ASSERT_TRUE(rig.engine.start_swap(20, 0, 2, 0));
  if (GetParam() != MigrationDesign::N) {
    EXPECT_FALSE(rig.engine.idle());
    EXPECT_FALSE(rig.engine.start_swap(21, 0, 3, 0));
  }
  rig.run_to_idle();
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, EngineDesignTest,
                         ::testing::Values(MigrationDesign::N,
                                           MigrationDesign::NMinus1,
                                           MigrationDesign::LiveMigration));

TEST(MigrationEngine, LiveFillServesSubBlocksEarly) {
  Rig rig(MigrationDesign::LiveMigration);
  ASSERT_TRUE(rig.engine.start_swap(/*hot=*/20, /*hot_sub=*/0,
                                    /*cold_slot=*/2, 0));
  // Advance a few chunk completions, then check partial routing.
  bool saw_partial = false;
  int guard = 0;
  while (!rig.engine.idle() && ++guard < 100000) {
    rig.on.drain_all(0);
    rig.off.drain_all(0);
    const auto a = rig.on.take_completions();
    const auto b = rig.off.take_completions();
    for (const auto& c : a) rig.engine.on_completion(c, Region::OnPackage);
    for (const auto& c : b) rig.engine.on_completion(c, Region::OffPackage);
    if (rig.table.fill_active() && rig.table.sub_block_ready(0) &&
        !rig.table.sub_block_ready(7)) {
      const Route ready = rig.table.translate(20 * kPage + 1);
      const Route pending = rig.table.translate(20 * kPage + 7 * 64 * KiB);
      EXPECT_EQ(ready.region, Region::OnPackage);
      EXPECT_TRUE(ready.served_by_fill_slot);
      EXPECT_EQ(pending.region, Region::OffPackage);
      saw_partial = true;
    }
    if (a.empty() && b.empty()) break;
  }
  EXPECT_TRUE(saw_partial);
}

TEST(MigrationEngine, CriticalFirstStartsAtHotSubBlock) {
  Rig rig(MigrationDesign::LiveMigration);
  ASSERT_TRUE(rig.engine.start_swap(20, /*hot_sub=*/5, 2, 0));
  // Pump until the first fill chunk lands: sub-block 5 must be ready
  // before sub-block 0.
  int guard = 0;
  while (!rig.table.sub_block_ready(5) && ++guard < 100000) {
    rig.on.drain_all(0);
    rig.off.drain_all(0);
    for (const auto& c : rig.on.take_completions())
      rig.engine.on_completion(c, Region::OnPackage);
    for (const auto& c : rig.off.take_completions())
      rig.engine.on_completion(c, Region::OffPackage);
  }
  ASSERT_TRUE(rig.table.fill_active());
  EXPECT_TRUE(rig.table.sub_block_ready(5));
  EXPECT_FALSE(rig.table.sub_block_ready(4));  // filled last (wraps)
  rig.run_to_idle(false);
}

TEST(MigrationEngine, InstantModeAppliesEndStateWithoutTraffic) {
  Rig rig(MigrationDesign::LiveMigration);
  rig.engine.set_instant(true);
  ASSERT_TRUE(rig.engine.start_swap(20, 0, 2, 0));
  EXPECT_TRUE(rig.engine.idle());
  EXPECT_EQ(rig.engine.stats().swaps_completed, 1u);
  EXPECT_EQ(rig.on.background_bytes() + rig.off.background_bytes(), 0u);
  EXPECT_EQ(rig.table.translate(20 * kPage).region, Region::OnPackage);
  EXPECT_TRUE(rig.table.validate().empty()) << rig.table.validate();
}

TEST(MigrationEngine, CopiedBytesMatchPlanVolume) {
  Rig rig(MigrationDesign::NMinus1);
  const auto plan = rig.engine.plan_swap(20, 0, 2);
  std::uint64_t expected = 0;
  for (const auto& st : plan) expected += st.bytes;
  ASSERT_TRUE(rig.engine.start_swap(20, 0, 2, 0));
  rig.run_to_idle();
  EXPECT_EQ(rig.engine.stats().bytes_copied, expected);
}

}  // namespace
}  // namespace hmm
