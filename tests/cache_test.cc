// Cache model tests: set-associative behaviour, replacement policies,
// writebacks, the inclusive hierarchy, and the DRAM L4 cache.
#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/dram_cache.hh"
#include "cache/hierarchy.hh"
#include "common/random.hh"

namespace hmm {
namespace {

CacheConfig tiny(ReplacementPolicy p = ReplacementPolicy::Lru) {
  return CacheConfig{"tiny", 4 * KiB, 4, 64, 1, p};  // 16 sets x 4 ways
}

TEST(Cache, MissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x1000, AccessType::Read).hit);
  EXPECT_TRUE(c.access(0x1000, AccessType::Read).hit);
  EXPECT_TRUE(c.access(0x1038, AccessType::Read).hit);  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(tiny());
  // 5 lines mapping to set 0 (stride = sets * line = 1024).
  for (int i = 0; i < 4; ++i)
    c.access(static_cast<PhysAddr>(i) * 1024, AccessType::Read);
  // Touch line 0 to refresh it; insert a 5th line; line 1 is the victim.
  c.access(0, AccessType::Read);
  const CacheAccess a = c.access(4 * 1024, AccessType::Read);
  EXPECT_TRUE(a.evicted);
  EXPECT_EQ(a.victim_addr, 1024u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1024));
}

TEST(Cache, WritebackOnlyForDirtyVictims) {
  Cache c(tiny());
  c.access(0, AccessType::Write);  // dirty
  c.access(1024, AccessType::Read);
  c.access(2048, AccessType::Read);
  c.access(3072, AccessType::Read);
  const CacheAccess a = c.access(4096, AccessType::Read);  // evicts line 0
  EXPECT_TRUE(a.evicted);
  EXPECT_TRUE(a.writeback);
  const CacheAccess b = c.access(5120, AccessType::Read);  // evicts clean
  EXPECT_TRUE(b.evicted);
  EXPECT_FALSE(b.writeback);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(tiny());
  c.access(0, AccessType::Read);
  c.access(0, AccessType::Write);  // hit, now dirty
  c.access(1024, AccessType::Read);
  c.access(2048, AccessType::Read);
  c.access(3072, AccessType::Read);
  EXPECT_TRUE(c.access(4096, AccessType::Read).writeback);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(tiny());
  c.access(0x2000, AccessType::Write);
  EXPECT_TRUE(c.contains(0x2000));
  EXPECT_TRUE(c.invalidate(0x2000));
  EXPECT_FALSE(c.contains(0x2000));
  EXPECT_FALSE(c.invalidate(0x2000));  // already gone
}

TEST(Cache, VictimAddressRoundTrips) {
  Cache c(tiny());
  Pcg32 rng(1);
  for (int i = 0; i < 5000; ++i) {
    const PhysAddr a = rng.bounded64(1 * MiB) & ~63ull;
    const CacheAccess r = c.access(a, AccessType::Read);
    if (r.evicted) {
      // The reported victim must map to the same set as the newcomer.
      EXPECT_EQ((r.victim_addr >> 6) & 15ull, (a >> 6) & 15ull);
    }
  }
}

class CachePolicyTest : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(CachePolicyTest, HitRateOnSkewedStreamIsHigh) {
  Cache c(tiny(GetParam()));
  Pcg32 rng(2);
  std::uint64_t hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    // 90% of accesses to 8 hot lines, 10% to a 1MB region.
    const PhysAddr a = rng.chance(0.9)
                           ? static_cast<PhysAddr>(rng.bounded(8)) * 64
                           : rng.bounded64(1 * MiB) & ~63ull;
    hits += c.access(a, AccessType::Read).hit;
  }
  EXPECT_GT(static_cast<double>(hits) / n, 0.80);
}

TEST_P(CachePolicyTest, EveryAccessAccounted) {
  Cache c(tiny(GetParam()));
  Pcg32 rng(3);
  for (int i = 0; i < 10000; ++i)
    c.access(rng.bounded64(256 * KiB) & ~63ull, AccessType::Read);
  EXPECT_EQ(c.hits() + c.misses(), 10000u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyTest,
                         ::testing::Values(ReplacementPolicy::Lru,
                                           ReplacementPolicy::ClockPseudoLru,
                                           ReplacementPolicy::Random));

TEST(Hierarchy, HitLevelsAndLatencies) {
  CacheHierarchy h(1);
  const HierarchyResult miss = h.access(0, 0x100000, AccessType::Read);
  EXPECT_EQ(miss.hit_level, 4u);
  EXPECT_TRUE(miss.memory_access);
  EXPECT_EQ(miss.lookup_latency, 2u + 5u + 25u);

  const HierarchyResult l1 = h.access(0, 0x100000, AccessType::Read);
  EXPECT_EQ(l1.hit_level, 1u);
  EXPECT_EQ(l1.lookup_latency, 2u);
}

TEST(Hierarchy, PrivateCachesAreSeparate) {
  CacheHierarchy h(2);
  h.access(0, 0x100000, AccessType::Read);
  // CPU 1 misses its own L1/L2 but hits the shared L3.
  const HierarchyResult r = h.access(1, 0x100000, AccessType::Read);
  EXPECT_EQ(r.hit_level, 3u);
}

TEST(Hierarchy, InclusiveBackInvalidation) {
  // A line hot in CPU 0's L1 never refreshes its L3 recency (L1 hits do
  // not reach the L3), so CPU 1 thrashing the same L3 set evicts it and
  // the inclusive L3 must back-invalidate CPU 0's copy.
  CacheHierarchy h(2);
  const PhysAddr x = 0;
  h.access(0, x, AccessType::Read);
  // 8MB/16-way/64B L3 -> 8192 sets; same-set stride is 512KB.
  for (int i = 1; i <= 17 && h.back_invalidations() == 0; ++i)
    h.access(1, static_cast<PhysAddr>(i) * 8192 * 64, AccessType::Read);
  EXPECT_GT(h.back_invalidations(), 0u);
  EXPECT_EQ(h.access(0, x, AccessType::Read).hit_level, 4u);  // truly gone
}

TEST(DramCacheL4, HitCostsTwoAccesses) {
  DramCache l4(1 * GiB, 70);
  const DramCache::Result miss = l4.access(0x5000, AccessType::Read);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.latency, 70u);  // tag read alone detects the miss
  EXPECT_TRUE(miss.memory_access);

  const DramCache::Result hit = l4.access(0x5000, AccessType::Read);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.latency, 140u);  // tag read then data read
  EXPECT_FALSE(hit.memory_access);
}

TEST(DramCacheL4, FifteenSixteenthsUsable) {
  DramCache l4(1 * GiB, 70);
  EXPECT_EQ(l4.hit_latency(), 140u);
  EXPECT_EQ(l4.miss_determination_latency(), 70u);
  // 15-way organisation: 16 lines in set 0's row minus the tag line.
  // Insert 15 lines mapping to one set without eviction, 16th evicts.
  // sets = (15/16 GiB) / (64 * 15) = 2^20.
  const std::uint64_t stride = (1ull << 20) * 64;  // same set, new tag
  for (int i = 0; i < 15; ++i)
    l4.access(static_cast<PhysAddr>(i) * stride, AccessType::Read);
  for (int i = 0; i < 15; ++i)
    EXPECT_TRUE(l4.access(static_cast<PhysAddr>(i) * stride,
                          AccessType::Read).hit);
}

}  // namespace
}  // namespace hmm
