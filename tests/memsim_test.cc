// End-to-end MemSim tests: migration improves skewed workloads, the
// reference modes bracket the hybrid system, warm-up/reset semantics, and
// post-run invariants across the design/granularity matrix.
#include <gtest/gtest.h>

#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

// Scaled-down Section IV geometry for fast tests.
MemSimConfig cfg_with(std::uint64_t page, MigrationDesign design,
                      bool migration = true,
                      MemSimConfig::Force force = MemSimConfig::Force::None) {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, page, 4 * KiB};
  cfg.controller.design = design;
  cfg.controller.migration_enabled = migration;
  cfg.controller.swap_interval = 1000;
  cfg.force = force;
  return cfg;
}

RunResult replay(const MemSimConfig& cfg, std::uint64_t n,
                 std::uint64_t seed = 21, bool instant_warmup = true) {
  MemSim sim(cfg);
  auto w = make_pgbench(seed);
  if (instant_warmup) {
    sim.controller().set_instant_migration(true);
    sim.run(*w, n / 2);
    sim.controller().set_instant_migration(false);
    sim.reset_stats();
  }
  sim.run(*w, n);
  sim.finish();
  return sim.result();
}

TEST(MemSim, ReferencesBracketTheHybrid) {
  const std::uint64_t n = 60000;
  const double all_on =
      replay(cfg_with(1 * MiB, MigrationDesign::LiveMigration, false,
                      MemSimConfig::Force::AllOnPackage),
             n, 21, false)
          .avg_latency;
  const double all_off =
      replay(cfg_with(1 * MiB, MigrationDesign::LiveMigration, false,
                      MemSimConfig::Force::AllOffPackage),
             n, 21, false)
          .avg_latency;
  const double hybrid =
      replay(cfg_with(1 * MiB, MigrationDesign::LiveMigration, false), n, 21,
             false)
          .avg_latency;
  EXPECT_LT(all_on, hybrid);
  EXPECT_LT(hybrid, all_off);
}

TEST(MemSim, MigrationBeatsStaticOnSkewedWorkload) {
  const std::uint64_t n = 120000;
  const double stat =
      replay(cfg_with(256 * KiB, MigrationDesign::LiveMigration, false), n)
          .avg_latency;
  const double mig =
      replay(cfg_with(256 * KiB, MigrationDesign::LiveMigration, true), n)
          .avg_latency;
  EXPECT_LT(mig, stat);
}

TEST(MemSim, MigrationRaisesOnPackageShare) {
  const std::uint64_t n = 120000;
  const RunResult stat =
      replay(cfg_with(256 * KiB, MigrationDesign::LiveMigration, false), n);
  const RunResult mig =
      replay(cfg_with(256 * KiB, MigrationDesign::LiveMigration, true), n);
  EXPECT_GT(mig.on_package_fraction, stat.on_package_fraction + 0.1);
  EXPECT_GT(mig.swaps, 0u);
  EXPECT_GT(mig.migrated_bytes, 0u);
}

TEST(MemSim, EffectivenessMetric) {
  EXPECT_DOUBLE_EQ(RunResult::effectiveness(250.0, 250.0), 0.0);
  EXPECT_NEAR(RunResult::effectiveness(250.0, 50.0), 1.0, 1e-9);
  EXPECT_NEAR(RunResult::effectiveness(250.0, 150.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(RunResult::effectiveness(40.0, 30.0), 0.0);  // degenerate
}

TEST(MemSim, PowerAccountsMigrationTraffic) {
  const std::uint64_t n = 120000;
  const RunResult stat =
      replay(cfg_with(256 * KiB, MigrationDesign::LiveMigration, false), n,
             21, false);
  const RunResult mig =
      replay(cfg_with(64 * KiB, MigrationDesign::LiveMigration, true), n, 21,
             false);
  EXPECT_GT(mig.normalized_power(), stat.normalized_power());
  EXPECT_GT(stat.normalized_power(), 0.0);
  EXPECT_LT(stat.normalized_power(), 1.1);  // no migration: cheaper or equal
}

TEST(MemSim, ResetStatsKeepsArchitecturalState) {
  MemSim sim(cfg_with(1 * MiB, MigrationDesign::LiveMigration));
  auto w = make_pgbench(9);
  sim.run(*w, 50000);
  sim.finish();
  const std::uint64_t swaps_before = sim.result().swaps;
  sim.reset_stats();
  const RunResult r = sim.result();
  EXPECT_EQ(r.accesses, 0u);
  EXPECT_EQ(r.demand_bytes_on + r.demand_bytes_off, 0u);
  // Migration/table state persists (swap counter is engine state).
  EXPECT_EQ(r.swaps, swaps_before);
}

struct MatrixParam {
  MigrationDesign design;
  std::uint64_t page;
};

class MemSimMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(MemSimMatrix, RunsCleanAndKeepsInvariants) {
  const MatrixParam p = GetParam();
  MemSim sim(cfg_with(p.page, p.design));
  auto w = make_specjbb(33);
  sim.run(*w, 40000);
  sim.finish();
  const RunResult r = sim.result();
  EXPECT_EQ(r.accesses, 40000u);
  EXPECT_GT(r.avg_latency, 50.0);
  // Design N halts execution for entire page copies; at 4MB granularity a
  // single swap dwarfs the scaled trace (the paper's Fig 11 point).
  const double bound = p.design == MigrationDesign::N ? 2e7 : 5e4;
  EXPECT_LT(r.avg_latency, bound);
  EXPECT_GE(r.on_package_fraction, 0.0);
  EXPECT_LE(r.on_package_fraction, 1.0);
  EXPECT_GT(r.energy_pj, 0.0);
  if (p.design != MigrationDesign::N) {
    EXPECT_TRUE(sim.controller().table().validate().empty())
        << sim.controller().table().validate();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndGranularities, MemSimMatrix,
    ::testing::Values(
        MatrixParam{MigrationDesign::N, 4 * MiB},
        MatrixParam{MigrationDesign::N, 64 * KiB},
        MatrixParam{MigrationDesign::NMinus1, 4 * MiB},
        MatrixParam{MigrationDesign::NMinus1, 64 * KiB},
        MatrixParam{MigrationDesign::NMinus1, 4 * KiB},
        MatrixParam{MigrationDesign::LiveMigration, 4 * MiB},
        MatrixParam{MigrationDesign::LiveMigration, 256 * KiB},
        MatrixParam{MigrationDesign::LiveMigration, 4 * KiB}));

TEST(MemSim, DesignNStallsCostMoreAtCoarseGrainHighFrequency) {
  // The paper's Fig 11 observation: blocking (N) swaps of 4MB pages at
  // high swap frequency are costlier than the overlapped N-1/Live.
  auto run_design = [&](MigrationDesign d) {
    MemSimConfig cfg = cfg_with(4 * MiB, d);
    cfg.controller.swap_interval = 1000;
    MemSim sim(cfg);
    auto w = make_pgbench(55);
    sim.run(*w, 80000);
    sim.finish();
    return sim.result().avg_latency;
  };
  const double n_lat = run_design(MigrationDesign::N);
  const double live_lat = run_design(MigrationDesign::LiveMigration);
  EXPECT_GT(n_lat, live_lat);
}

}  // namespace
}  // namespace hmm
