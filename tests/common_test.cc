// Unit tests for src/common: units, RNG, statistics, table printing, and
// the reconstructed Table II latency ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/params.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace hmm {
namespace {

TEST(Units, PowerOfTwoPredicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(6));
}

TEST(Units, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4096), 12u);
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_EQ(log2_exact(1 * GiB), 30u);
}

TEST(Units, CeilPow2) {
  EXPECT_EQ(ceil_pow2(0), 1ull);
  EXPECT_EQ(ceil_pow2(1), 1ull);
  EXPECT_EQ(ceil_pow2(3), 4ull);
  EXPECT_EQ(ceil_pow2(4), 4ull);
  EXPECT_EQ(ceil_pow2(5), 8ull);
  EXPECT_EQ(ceil_pow2(1025), 2048ull);
}

TEST(Units, DivCeil) {
  EXPECT_EQ(div_ceil(0, 4), 0ull);
  EXPECT_EQ(div_ceil(1, 4), 1ull);
  EXPECT_EQ(div_ceil(4, 4), 1ull);
  EXPECT_EQ(div_ceil(5, 4), 2ull);
}

TEST(Units, FormatSize) {
  EXPECT_EQ(format_size(64), "64B");
  EXPECT_EQ(format_size(4 * KiB), "4KB");
  EXPECT_EQ(format_size(512 * MiB), "512MB");
  EXPECT_EQ(format_size(4 * GiB), "4GB");
  EXPECT_EQ(format_size(3 * KiB / 2), "1536B");
}

TEST(Params, LatencyLedgerReconstruction) {
  // DESIGN.md §2: the ledger must reproduce the paper's totals exactly.
  EXPECT_EQ(params::kOffPackageFixedLatency, 200u);
  EXPECT_EQ(params::kOnPackageFixedLatency, 70u);
  EXPECT_EQ(params::kL4HitLatency, 140u);
  EXPECT_EQ(params::kL4MissDetermination, 70u);
  EXPECT_EQ(params::kOffPackageWireOverhead, 34u);
  EXPECT_EQ(params::kOnPackageWireOverhead, 20u);
}

TEST(Pcg32, Deterministic) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
    EXPECT_LT(rng.bounded64(1ull << 40), 1ull << 40);
  }
}

TEST(Pcg32, BoundedCoversAllResidues) {
  Pcg32 rng(9);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Pcg32, GeometricMean) {
  Pcg32 rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.geometric(40.0));
  EXPECT_NEAR(sum / n, 40.0, 1.5);
}

TEST(Pcg32, GeometricDegenerate) {
  Pcg32 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 1ull);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(0.5), 1ull);
}

TEST(RunningStat, Basics) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(RunningStat, Weighted) {
  RunningStat s;
  s.add(10.0, 3);
  s.add(20.0, 1);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 12.5);
}

TEST(RunningStat, Merge) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(42.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Log2Histogram, BucketsAndQuantiles) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(1000);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.quantile(0.5), 1ull);
  // The top decile lands in the 512..1024 bucket.
  EXPECT_EQ(h.quantile(0.95), 512ull);
}

TEST(Log2Histogram, ZeroValue) {
  Log2Histogram h;
  h.add(0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.quantile(0.5), 1ull);
}

TEST(Log2Histogram, MergeMatchesInterleavedAdds) {
  // Merging per-shard histograms must equal one histogram fed everything —
  // the property the parallel runner's aggregation relies on.
  Log2Histogram a, b, reference;
  for (int i = 0; i < 90; ++i) {
    a.add(1);
    reference.add(1);
  }
  for (int i = 0; i < 10; ++i) {
    b.add(1000);
    reference.add(1000);
  }
  b.add(0);
  reference.add(0);
  a.merge(b);
  EXPECT_EQ(a.total(), reference.total());
  for (unsigned i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), reference.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.quantile(0.5), reference.quantile(0.5));
  EXPECT_EQ(a.quantile(0.95), reference.quantile(0.95));
}

TEST(Log2Histogram, MergeWithEmptyIsIdentity) {
  Log2Histogram a, empty;
  a.add(7);
  a.merge(empty);
  EXPECT_EQ(a.total(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 1u);
  EXPECT_EQ(empty.quantile(0.5), 4ull);  // 7 lands in the 4..8 bucket
}

TEST(RunningStat, MergeWithEmptyKeepsMinMax) {
  RunningStat a, empty;
  a.add(-2.0);
  a.add(9.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), -2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 9.0);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yy"});  // short row is padded
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| x  | 1           |"), std::string::npos);
  EXPECT_NE(out.find("| yy |"), std::string::npos);
}

TEST(TextTable, NumberHelpers) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.831), "83.1%");
}

TEST(Types, RegionNames) {
  EXPECT_STREQ(to_string(Region::OnPackage), "on-package");
  EXPECT_STREQ(to_string(Region::OffPackage), "off-package");
  EXPECT_STREQ(to_string(AccessType::Read), "read");
  EXPECT_STREQ(to_string(AccessType::Write), "write");
}

}  // namespace
}  // namespace hmm
