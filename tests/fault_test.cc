// Fault layer tests: injector determinism, the always-on HMM_CHECK macro,
// swap abort/rollback correctness (the table must land on a valid Fig-8
// state), degraded mode, the design-N wedge, the invariant auditor's
// corruption detection, and MemSim's watchdog + wall-clock deadline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.hh"
#include "core/migration.hh"
#include "fault/auditor.hh"
#include "fault/fault_injector.hh"
#include "fault/sim_error.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSite;
using fault::SimError;
using fault::SimErrorKind;

// --- injector determinism ---------------------------------------------------

TEST(FaultInjectorTest, SamePlanSameDecisionsAndEventLog) {
  FaultPlan plan;
  plan.seed = 123;
  plan.add(FaultSite::MigrationChunkDrop, 0.3)
      .add(FaultSite::ChannelStall, 0.05);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(a.fires(FaultSite::MigrationChunkDrop, i),
              b.fires(FaultSite::MigrationChunkDrop, i));
    EXPECT_EQ(a.fires(FaultSite::ChannelStall, i),
              b.fires(FaultSite::ChannelStall, i));
  }
  EXPECT_GT(a.total_fires(), 0u);
  EXPECT_EQ(a.total_fires(), b.total_fires());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].site, b.events()[i].site);
    EXPECT_EQ(a.events()[i].opportunity, b.events()[i].opportunity);
    EXPECT_EQ(a.events()[i].detail, b.events()[i].detail);
  }
}

TEST(FaultInjectorTest, SiteDecisionsAreIndependentOfOtherSites) {
  FaultPlan plan;
  plan.seed = 7;
  plan.add(FaultSite::MigrationChunkDrop, 0.2)
      .add(FaultSite::SwapAbort, 0.2);
  // `a` interleaves opportunities at both sites; `c` only ever asks about
  // chunk drops. The drop sequence must be identical: each site draws from
  // its own RNG stream, indexed by its own opportunity counter.
  FaultInjector a(plan);
  FaultInjector c(plan);
  std::vector<bool> from_a;
  std::vector<bool> from_c;
  for (int i = 0; i < 2000; ++i) {
    from_a.push_back(a.fires(FaultSite::MigrationChunkDrop));
    (void)a.fires(FaultSite::SwapAbort);
    from_c.push_back(c.fires(FaultSite::MigrationChunkDrop));
  }
  EXPECT_EQ(from_a, from_c);
}

TEST(FaultInjectorTest, AfterAndMaxFiresWindowTheRule) {
  FaultPlan plan;
  plan.add(FaultSite::SwapAbort, 1.0, /*after=*/5, /*max_fires=*/2);
  FaultInjector inj(plan);
  for (std::uint64_t op = 0; op < 10; ++op) {
    EXPECT_EQ(inj.fires(FaultSite::SwapAbort), op == 5 || op == 6)
        << "opportunity " << op;
  }
  EXPECT_EQ(inj.opportunities(FaultSite::SwapAbort), 10u);
  EXPECT_EQ(inj.fires_count(FaultSite::SwapAbort), 2u);
  EXPECT_EQ(inj.total_fires(), 2u);
}

TEST(FaultInjectorTest, EmptyPlanIsFullyDisabled) {
  FaultInjector inj{FaultPlan{}};
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(inj.fires(FaultSite::MigrationChunkDrop));
  EXPECT_EQ(inj.total_fires(), 0u);
  EXPECT_TRUE(inj.events().empty());
}

TEST(FaultInjectorTest, SiteNamesRoundTrip) {
  for (unsigned i = 0; i < fault::kFaultSiteCount; ++i) {
    const auto s = static_cast<FaultSite>(i);
    FaultSite parsed{};
    ASSERT_TRUE(fault::site_from_name(to_string(s), parsed)) << to_string(s);
    EXPECT_EQ(parsed, s);
  }
  FaultSite parsed{};
  EXPECT_FALSE(fault::site_from_name("no-such-site", parsed));
}

// --- HMM_CHECK --------------------------------------------------------------

TEST(HmmCheckTest, FailureThrowsStructuredSimErrorWithLocation) {
  try {
    HMM_CHECK(1 + 1 == 3, "arithmetic broke");
    FAIL() << "HMM_CHECK did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::CheckFailed);
    const std::string what = e.what();
    EXPECT_NE(what.find("[check]"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic broke"), std::string::npos) << what;
    EXPECT_NE(what.find("fault_test.cc"), std::string::npos) << what;
  }
}

TEST(HmmCheckTest, PassingConditionIsSilent) {
  EXPECT_NO_THROW(HMM_CHECK(2 + 2 == 4, "never printed"));
}

// --- engine recovery --------------------------------------------------------

// Small Section-III geometry + both DRAM models + an engine wired to an
// injector; drives the same drain loop as the swap fuzzer.
struct EngineRig {
  Geometry g{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
  TranslationTable table;
  DramSystem on;
  DramSystem off;
  MigrationEngine engine;
  FaultInjector injector;

  EngineRig(MigrationDesign d, const FaultPlan& plan)
      : table(g, d == MigrationDesign::N ? TableMode::FunctionalN
                                         : TableMode::HardwareNMinus1),
        on(Region::OnPackage, DramTiming::on_package_sip(), 1,
           SchedulerPolicy::FrFcfs),
        off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
            SchedulerPolicy::FrFcfs),
        engine(table, on, off, MigrationEngine::Config{d, true, 0}),
        injector(plan) {
    engine.set_fault_injector(&injector);
  }

  /// Pump completions until the engine settles (idle or wedged).
  void pump() {
    int guard = 0;
    while (!engine.idle() && !engine.wedged() && ++guard < 200000) {
      on.drain_all(0);
      off.drain_all(0);
      const auto a = on.take_completions();
      const auto b = off.take_completions();
      for (const auto& c : a) engine.on_completion(c, Region::OnPackage);
      for (const auto& c : b) engine.on_completion(c, Region::OffPackage);
      if (a.empty() && b.empty()) break;
    }
  }
};

class AbortRollback : public ::testing::TestWithParam<MigrationDesign> {};

TEST_P(AbortRollback, OneShotAbortRollsBackToAValidStateThenRecovers) {
  FaultPlan plan;
  plan.add(FaultSite::SwapAbort, 1.0, /*after=*/0, /*max_fires=*/1);
  EngineRig rig(GetParam(), plan);
  const PageId hot = 20;  // an Original Slow page (slots() == 8)

  ASSERT_TRUE(rig.engine.start_swap(hot, 0, /*cold_slot=*/0, 0));
  rig.pump();

  // The abort fired at the very first chunk completion: no step had
  // finished, so no mutation was applied — the table is the pre-swap state.
  EXPECT_TRUE(rig.engine.idle());
  EXPECT_EQ(rig.engine.stats().swaps_aborted, 1u);
  EXPECT_FALSE(rig.engine.degraded());
  EXPECT_FALSE(rig.table.fill_active());
  const std::string err = rig.table.validate();
  EXPECT_TRUE(err.empty()) << err;

  // The injector's single shot is spent: the same swap now completes.
  ASSERT_TRUE(rig.engine.start_swap(hot, 0, 0, 1000));
  rig.pump();
  EXPECT_TRUE(rig.engine.idle());
  EXPECT_EQ(rig.engine.stats().swaps_completed, 1u);
  const std::string err2 = rig.table.validate();
  EXPECT_TRUE(err2.empty()) << err2;
  EXPECT_EQ(rig.table.translate(rig.g.machine_base(hot)).region,
            Region::OnPackage);
}

INSTANTIATE_TEST_SUITE_P(NMinus1AndLive, AbortRollback,
                         ::testing::Values(MigrationDesign::NMinus1,
                                           MigrationDesign::LiveMigration));

TEST(EngineRecovery, MidSwapAbortThatConsumesTheSlotDegradesImmediately) {
  // 512KB page / 512B chunks = 1024 chunks per step, two completions each
  // (read + write). `after=2500` lands the abort inside step 2 of the
  // Fig 8(a) plan — after step 1 moved the hot page into the empty slot.
  FaultPlan plan;
  plan.add(FaultSite::SwapAbort, 1.0, /*after=*/2500, /*max_fires=*/1);
  EngineRig rig(MigrationDesign::NMinus1, plan);

  ASSERT_TRUE(rig.engine.start_swap(/*hot=*/20, 0, /*cold_slot=*/0, 0));
  rig.pump();

  EXPECT_TRUE(rig.engine.idle());
  EXPECT_EQ(rig.engine.stats().swaps_aborted, 1u);
  // Step 1's mutations stand: the empty slot is gone for good, so the
  // N-1 choreography can never start another swap — degraded mode.
  EXPECT_FALSE(rig.table.empty_slot().has_value());
  EXPECT_TRUE(rig.engine.degraded());
  EXPECT_FALSE(rig.engine.can_swap(21, 1));
  // ...but the table is a valid state: the dangling P bit keeps routing
  // the ghost page to Ω, where its data genuinely still lives.
  const std::string err = rig.table.validate();
  EXPECT_TRUE(err.empty()) << err;
}

TEST(EngineRecovery, ConsecutiveAbortsEnterDegradedMode) {
  FaultPlan plan;
  plan.add(FaultSite::SwapAbort, 1.0);  // every swap aborts immediately
  EngineRig rig(MigrationDesign::NMinus1, plan);

  for (unsigned i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.engine.can_swap(20, 0)) << "attempt " << i;
    ASSERT_TRUE(rig.engine.start_swap(20, 0, 0, i * 1000));
    rig.pump();
    ASSERT_TRUE(rig.engine.idle());
  }
  EXPECT_EQ(rig.engine.stats().swaps_aborted, 3u);
  EXPECT_TRUE(rig.engine.degraded());
  EXPECT_FALSE(rig.engine.can_swap(20, 0));
  const std::string err = rig.table.validate();
  EXPECT_TRUE(err.empty()) << err;
}

TEST(EngineRecovery, ChunkDropsAreRetriedAndTheSwapStillCompletes) {
  FaultPlan plan;
  plan.add(FaultSite::MigrationChunkDrop, 1.0, /*after=*/0, /*max_fires=*/2);
  EngineRig rig(MigrationDesign::NMinus1, plan);

  ASSERT_TRUE(rig.engine.start_swap(20, 0, 0, 0));
  rig.pump();
  EXPECT_TRUE(rig.engine.idle());
  EXPECT_EQ(rig.engine.stats().swaps_completed, 1u);
  EXPECT_EQ(rig.engine.stats().chunks_dropped, 2u);
  EXPECT_EQ(rig.engine.stats().chunk_retries, 2u);
  EXPECT_EQ(rig.engine.stats().swaps_aborted, 0u);
  const std::string err = rig.table.validate();
  EXPECT_TRUE(err.empty()) << err;
}

TEST(EngineRecovery, DesignNWedgesInsteadOfCorrupting) {
  FaultPlan plan;
  plan.add(FaultSite::SwapAbort, 1.0, /*after=*/0, /*max_fires=*/1);
  EngineRig rig(MigrationDesign::N, plan);

  ASSERT_TRUE(rig.engine.start_swap(20, 0, 0, 0));
  rig.pump();

  // No recovery choreography: the engine pins itself non-idle with nothing
  // in flight — exactly the state the MemSim watchdog detects.
  EXPECT_TRUE(rig.engine.wedged());
  EXPECT_FALSE(rig.engine.idle());
  EXPECT_EQ(rig.engine.in_flight_chunks(), 0u);
  EXPECT_EQ(rig.engine.stats().swaps_wedged, 1u);
  EXPECT_FALSE(rig.engine.can_swap(21, 1));
  // The functional-N table was never touched mid-swap.
  const std::string err = rig.table.validate();
  EXPECT_TRUE(err.empty()) << err;
}

// --- invariant auditor ------------------------------------------------------

TEST(InvariantAuditorTest, AuditsEveryIntervalAndPassesOnACleanTable) {
  const Geometry g{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
  TranslationTable table(g, TableMode::HardwareNMinus1);
  fault::InvariantAuditor auditor(table, nullptr, /*interval=*/4);
  for (int i = 0; i < 8; ++i) EXPECT_NO_THROW(auditor.on_access());
  EXPECT_EQ(auditor.audits(), 2u);

  fault::InvariantAuditor disabled(table, nullptr, /*interval=*/0);
  for (int i = 0; i < 100; ++i) disabled.on_access();
  EXPECT_EQ(disabled.audits(), 0u);
}

TEST(InvariantAuditorTest, DetectsAFlippedPendingBit) {
  const Geometry g{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
  TranslationTable table(g, TableMode::HardwareNMinus1);
  fault::InvariantAuditor auditor(table, nullptr, 1);
  EXPECT_NO_THROW(auditor.audit());

  ASSERT_TRUE(table.empty_slot().has_value());
  table.flip_pending_bit(*table.empty_slot());
  try {
    auditor.audit();
    FAIL() << "corrupted pending bit passed the audit";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::AuditFailed);
    EXPECT_NE(std::string(e.what()).find("[audit]"), std::string::npos);
  }
}

TEST(InvariantAuditorTest, DetectsAFlippedOccupantBit) {
  const Geometry g{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
  TranslationTable table(g, TableMode::HardwareNMinus1);
  fault::InvariantAuditor auditor(table, nullptr, 1);
  EXPECT_NO_THROW(auditor.audit());

  // Flip a high bit of an occupied row: the forged page id is outside the
  // 32-page address space, which the audit must reject.
  SlotId occupied = 0;
  while (table.occupant(occupied) == kInvalidPage) ++occupied;
  table.flip_occupant_bit(occupied, 20);
  try {
    auditor.audit();
    FAIL() << "corrupted occupant field passed the audit";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::AuditFailed);
  }
}

TEST(InvariantAuditorTest, CorruptedTableRowNamesTheTableInItsError) {
  const Geometry g{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
  TranslationTable table(g, TableMode::HardwareNMinus1);
  fault::InvariantAuditor auditor(table, nullptr, 1);

  SlotId occupied = 0;
  while (table.occupant(occupied) == kInvalidPage) ++occupied;
  table.flip_occupant_bit(occupied, 20);
  try {
    auditor.audit();
    FAIL() << "corrupted table row passed the audit";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::AuditFailed);
    EXPECT_NE(std::string(e.what()).find("translation table:"),
              std::string::npos);
  }
}

TEST(InvariantAuditorTest, MultiQueueMismatchSurfacesThroughTheController) {
  ControllerConfig cfg;
  cfg.geom = Geometry{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
  cfg.design = MigrationDesign::NMinus1;
  cfg.swap_interval = 1'000'000;  // monitor only; no swap mid-test
  DramSystem on(Region::OnPackage, DramTiming::on_package_sip(), 1,
                SchedulerPolicy::FrFcfs);
  DramSystem off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
                 SchedulerPolicy::FrFcfs);
  HeteroMemoryController ctl(cfg, on, off);
  fault::InvariantAuditor auditor(ctl.table(), &ctl, 1);

  // Touch a few off-package pages so the multi-queue tracker has entries.
  for (int i = 0; i < 4; ++i)
    (void)ctl.on_access((20 + i) * 512 * KiB, AccessType::Read, 10 * i);
  EXPECT_NO_THROW(auditor.audit());

  ctl.mq_for_test().corrupt_entry_for_test();
  try {
    auditor.audit();
    FAIL() << "multi-queue index/queue mismatch passed the audit";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::AuditFailed);
    EXPECT_NE(std::string(e.what()).find("multi-queue tracker:"),
              std::string::npos);
  }
}

TEST(InvariantAuditorTest, NonMonotonicFillBitmapRaisesAuditFailed) {
  const Geometry g{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
  TranslationTable table(g, TableMode::HardwareNMinus1);
  fault::InvariantAuditor auditor(table, nullptr, 1);

  const SlotId slot = *table.empty_slot();
  const PageId incoming = 20;
  table.begin_fill(slot, incoming, /*old_base=*/incoming * g.page_bytes);
  table.mark_sub_block(0);
  table.mark_sub_block(1);
  EXPECT_NO_THROW(auditor.audit());  // records ready == 2 for this page

  // A buggy engine restarts the same page's fill with fewer sub-blocks
  // landed: the audit must flag the bitmap going backwards mid-fill.
  table.end_fill();
  table.begin_fill(slot, incoming, incoming * g.page_bytes);
  table.mark_sub_block(0);
  try {
    auditor.audit();
    FAIL() << "non-monotonic fill bitmap passed the audit";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::AuditFailed);
    EXPECT_NE(std::string(e.what()).find("fill bitmap lost sub-blocks"),
              std::string::npos);
  }
}

// --- MemSim: watchdog, deadline, end-to-end fault storms --------------------

MemSimConfig sim_cfg(MigrationDesign d, bool migration = true) {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 256 * KiB, 4 * KiB};
  cfg.controller.design = d;
  cfg.controller.migration_enabled = migration;
  cfg.controller.swap_interval = 1000;
  return cfg;
}

TEST(MemSimFaults, WatchdogTurnsAWedgedDesignNSwapIntoAnError) {
  MemSimConfig cfg = sim_cfg(MigrationDesign::N);
  cfg.fault.add(FaultSite::MigrationChunkDrop, 1.0);
  MemSim sim(cfg);
  auto w = make_pgbench(7);
  try {
    sim.run(*w, 60000);
    sim.finish();
    FAIL() << "the wedged swap was not detected";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::Watchdog);
    EXPECT_NE(std::string(e.what()).find("[watchdog]"), std::string::npos);
  }
}

TEST(MemSimFaults, WallClockDeadlineRaisesTimeout) {
  MemSimConfig cfg = sim_cfg(MigrationDesign::LiveMigration, false);
  cfg.max_wall_seconds = 1e-9;
  MemSim sim(cfg);
  auto w = make_pgbench(7);
  try {
    sim.run(*w, 20000);
    FAIL() << "the deadline never fired";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::Timeout);
  }
}

TEST(MemSimFaults, InjectedTableCorruptionFailsTheAudit) {
  MemSimConfig cfg = sim_cfg(MigrationDesign::NMinus1);
  cfg.audit_interval = 256;
  cfg.fault.add(FaultSite::TableBitFlip, 1.0, /*after=*/2000, /*max_fires=*/1);
  MemSim sim(cfg);
  auto w = make_pgbench(7);
  // The flip is one deliberate bit of table corruption; it must surface as
  // a structured SimError (audit, or an HMM_CHECK tripping even earlier) —
  // never as a silently wrong run.
  EXPECT_THROW(
      {
        sim.run(*w, 60000);
        sim.finish();
      },
      SimError);
}

TEST(MemSimFaults, NMinus1AndLiveSurviveAFaultStormWithAuditsOn) {
  for (const MigrationDesign d :
       {MigrationDesign::NMinus1, MigrationDesign::LiveMigration}) {
    MemSimConfig cfg = sim_cfg(d);
    cfg.audit_interval = 512;
    cfg.fault.seed = 99;
    cfg.fault.add(FaultSite::MigrationChunkDrop, 1e-3)
        .add(FaultSite::MigrationChunkDelay, 1e-3)
        .add(FaultSite::ChannelStall, 1e-3)
        .add(FaultSite::SwapAbort, 1e-5);
    MemSim sim(cfg);
    auto w = make_pgbench(7);
    sim.run(*w, 60000);
    sim.finish();
    const RunResult r = sim.result();
    EXPECT_GT(r.audits, 0u) << to_string(d);
    EXPECT_GT(r.swaps, 0u) << to_string(d);
  }
}

}  // namespace
}  // namespace hmm
