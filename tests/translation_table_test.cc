// Translation-table tests: the RAM/CAM encoding rules, the P (pending)
// and F (filling) bit routing, categories, and the structural invariants.
#include <gtest/gtest.h>

#include "core/translation_table.hh"

namespace hmm {
namespace {

// 16MB space, 4MB on-package, 512KB macro pages: N = 8 slots, 32 pages,
// Ω = page 31.
Geometry small_geom() {
  return Geometry{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
}

TEST(Geometry, DerivedQuantities) {
  const Geometry g = small_geom();
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.slots(), 8u);
  EXPECT_EQ(g.total_pages(), 32u);
  EXPECT_EQ(g.omega(), 31u);
  EXPECT_EQ(g.sub_blocks_per_page(), 8u);
  EXPECT_EQ(g.page_of(512 * KiB + 5), 1u);
  EXPECT_EQ(g.offset_of(512 * KiB + 5), 5u);
  EXPECT_EQ(g.region_of(0), Region::OnPackage);
  EXPECT_EQ(g.region_of(4 * MiB), Region::OffPackage);
}

TEST(Geometry, ValidityChecks) {
  Geometry g = small_geom();
  g.page_bytes = 3 * MiB;  // not a power of two
  EXPECT_FALSE(g.valid());
  g = small_geom();
  g.on_package_bytes = g.total_bytes;  // no off-package region
  EXPECT_FALSE(g.valid());
}

TEST(TranslationTable, InitialStateMapsLowPagesOnPackage) {
  TranslationTable t(small_geom(), TableMode::HardwareNMinus1);
  // Pages 0..6 are Original Fast; page 7 (last slot) starts as the Ghost.
  for (PageId p = 0; p < 7; ++p) {
    const Route r = t.translate(p * 512 * KiB + 100);
    EXPECT_EQ(r.region, Region::OnPackage);
    EXPECT_EQ(r.mach, p * 512 * KiB + 100);
    EXPECT_EQ(t.category(p), PageCategory::OriginalFast);
  }
  EXPECT_EQ(t.category(7), PageCategory::Ghost);
  EXPECT_EQ(t.translate(7 * 512 * KiB).mach, 31ull * 512 * KiB);  // Ω
  EXPECT_EQ(t.empty_slot().value(), 7u);
  // Off-package pages are Original Slow at their homes.
  const Route r = t.translate(20 * 512 * KiB + 8);
  EXPECT_EQ(r.region, Region::OffPackage);
  EXPECT_EQ(r.mach, 20 * 512 * KiB + 8);
  EXPECT_EQ(t.category(20), PageCategory::OriginalSlow);
  EXPECT_TRUE(t.validate().empty()) << t.validate();
}

TEST(TranslationTable, CamFindsMigratedFastPage) {
  TranslationTable t(small_geom(), TableMode::HardwareNMinus1);
  t.set_row(7, 20);           // page 20 now occupies slot 7
  t.note_data_at(20, 7);
  t.set_pending(7, true);     // mid-swap: page 7's data still at Ω
  EXPECT_EQ(t.category(20), PageCategory::MigratedFast);
  EXPECT_EQ(t.translate(20 * 512 * KiB + 64).mach, 7ull * 512 * KiB + 64);
  // Row 7 pending: its left page routes to Ω.
  EXPECT_EQ(t.translate(7 * 512 * KiB).mach, 31ull * 512 * KiB);
  EXPECT_TRUE(t.validate().empty()) << t.validate();
  // Swap completes: ghost page 7 lands at page 20's home.
  t.note_data_at(7, 20);
  t.set_pending(7, false);
  EXPECT_EQ(t.translate(7 * 512 * KiB + 3).mach, 20ull * 512 * KiB + 3);
  EXPECT_EQ(t.category(7), PageCategory::MigratedSlow);
  EXPECT_TRUE(t.validate().empty()) << t.validate();
}

TEST(TranslationTable, PairwiseEncodingRoundTrips) {
  // After a full swap (page 20 <-> slot 7's page), both directions of the
  // encoding agree with the placement map.
  TranslationTable t(small_geom(), TableMode::HardwareNMinus1);
  t.set_row(7, 20);
  t.note_data_at(20, 7);
  t.note_data_at(7, 20);
  EXPECT_EQ(t.location_of(20), 7ull * 512 * KiB);
  EXPECT_EQ(t.location_of(7), 20ull * 512 * KiB);
  EXPECT_EQ(t.occupant(7), 20u);
  EXPECT_FALSE(t.empty_slot().has_value());
  EXPECT_TRUE(t.validate().empty()) << t.validate();
}

TEST(TranslationTable, FillBitmapRoutesSubBlocks) {
  TranslationTable t(small_geom(), TableMode::HardwareNMinus1);
  // Page 20 is filling slot 7; old data at its home.
  t.set_row(7, 20);
  t.begin_fill(7, 20, 20 * 512 * KiB);
  t.mark_sub_block(2);

  const PhysAddr in_sb2 = 20 * 512 * KiB + 2 * 64 * KiB + 17;
  const PhysAddr in_sb3 = 20 * 512 * KiB + 3 * 64 * KiB + 17;
  const Route ready = t.translate(in_sb2);
  EXPECT_EQ(ready.region, Region::OnPackage);
  EXPECT_TRUE(ready.served_by_fill_slot);
  EXPECT_EQ(ready.mach, 7ull * 512 * KiB + 2 * 64 * KiB + 17);
  const Route not_ready = t.translate(in_sb3);
  EXPECT_EQ(not_ready.region, Region::OffPackage);
  EXPECT_EQ(not_ready.mach, in_sb3);

  // Completing the fill hands routing over to the CAM.
  for (std::uint32_t sb = 0; sb < 8; ++sb) t.mark_sub_block(sb);
  t.end_fill();
  t.note_data_at(20, 7);
  EXPECT_EQ(t.translate(in_sb3).region, Region::OnPackage);
}

TEST(TranslationTable, SetRowEmptyMakesGhost) {
  TranslationTable t(small_geom(), TableMode::HardwareNMinus1);
  t.set_row(7, 7);  // refill the initial ghost's slot
  t.note_data_at(7, 7);
  t.set_row_empty(3);
  t.note_data_at(3, small_geom().omega());
  EXPECT_EQ(t.empty_slot().value(), 3u);
  EXPECT_EQ(t.category(3), PageCategory::Ghost);
  EXPECT_EQ(t.translate(3 * 512 * KiB).mach, 31ull * 512 * KiB);
  EXPECT_TRUE(t.validate().empty()) << t.validate();
}

TEST(TranslationTable, ValidateCatchesBrokenEncoding) {
  TranslationTable t(small_geom(), TableMode::HardwareNMinus1);
  t.set_row(2, 20);  // claims page 20 is in slot 2...
  // ...but the placement map still says page 20 is at home: mismatch.
  EXPECT_FALSE(t.validate().empty());
}

TEST(TranslationTable, FunctionalModeUsesPlacementMap) {
  TranslationTable t(small_geom(), TableMode::FunctionalN);
  EXPECT_FALSE(t.empty_slot().has_value());
  t.note_data_at(20, 3);
  t.note_data_at(3, 20);
  t.set_occupant(3, 20);
  EXPECT_EQ(t.translate(20 * 512 * KiB).mach, 3ull * 512 * KiB);
  EXPECT_EQ(t.translate(3 * 512 * KiB).mach, 20ull * 512 * KiB);
  EXPECT_EQ(t.category(20), PageCategory::MigratedFast);
  EXPECT_EQ(t.category(3), PageCategory::MigratedSlow);
  EXPECT_TRUE(t.validate().empty());
}

TEST(TranslationTable, TableBitsScaleWithSlots) {
  const TranslationTable small(small_geom(), TableMode::HardwareNMinus1);
  Geometry big = small_geom();
  big.page_bytes = 128 * KiB;  // 4x the slots
  const TranslationTable bigger(big, TableMode::HardwareNMinus1);
  EXPECT_GT(bigger.table_bits(), small.table_bits());
}

}  // namespace
}  // namespace hmm
