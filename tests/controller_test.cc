// Heterogeneity-aware controller tests: routing/monitoring, the epoch
// trigger, the hottest-coldest rule, OS-assisted costs, and oracle mode.
#include <gtest/gtest.h>

#include "core/controller.hh"

namespace hmm {
namespace {

Geometry small_geom() {
  return Geometry{16 * MiB, 4 * MiB, 512 * KiB, 64 * KiB};
}
constexpr std::uint64_t kPage = 512 * KiB;

struct Rig {
  explicit Rig(ControllerConfig cfg)
      : on(Region::OnPackage, DramTiming::on_package_sip(), 1,
           SchedulerPolicy::FrFcfs),
        off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 4,
            SchedulerPolicy::FrFcfs),
        ctl(cfg, on, off) {}

  /// Feed an access and pump engine traffic to completion (so swaps
  /// finish between epochs in these unit tests).
  HeteroMemoryController::Decision access(PhysAddr a, Cycle now) {
    auto d = ctl.on_access(a, AccessType::Read, now);
    int guard = 0;
    while (!ctl.migration_idle() && ++guard < 100000) {
      on.drain_all(now);
      off.drain_all(now);
      const auto x = on.take_completions();
      const auto y = off.take_completions();
      for (const auto& c : x) ctl.on_completion(c, Region::OnPackage);
      for (const auto& c : y) ctl.on_completion(c, Region::OffPackage);
      if (x.empty() && y.empty()) break;
    }
    return d;
  }

  DramSystem on;
  DramSystem off;
  HeteroMemoryController ctl;
};

ControllerConfig base_cfg() {
  ControllerConfig cfg;
  cfg.geom = small_geom();
  cfg.swap_interval = 100;
  cfg.design = MigrationDesign::NMinus1;
  return cfg;
}

TEST(Controller, CountsRegionsAndAddsTranslationLatency) {
  ControllerConfig cfg = base_cfg();
  cfg.migration_enabled = false;
  Rig rig(cfg);
  const auto on = rig.access(0, 0);
  EXPECT_EQ(on.route.region, Region::OnPackage);
  EXPECT_EQ(on.extra_latency, params::kTranslationTableLatency);
  const auto off = rig.access(20 * kPage, 10);
  EXPECT_EQ(off.route.region, Region::OffPackage);
  EXPECT_EQ(rig.ctl.stats().on_package_hits, 1u);
  EXPECT_EQ(rig.ctl.stats().off_package_hits, 1u);
}

TEST(Controller, HotOffPackagePageGetsMigrated) {
  Rig rig(base_cfg());
  // Hammer off-package page 20; untouched on-package slots are colder.
  Cycle now = 0;
  for (int i = 0; i < 400; ++i)
    rig.access(20 * kPage + (i % 64) * 64, now += 20);
  EXPECT_GT(rig.ctl.engine().stats().swaps_completed, 0u);
  EXPECT_EQ(rig.ctl.table().translate(20 * kPage).region, Region::OnPackage);
}

TEST(Controller, NoSwapWhenOnPackageHotter) {
  Rig rig(base_cfg());
  // Touch every on-package slot more often than the off-package page.
  Cycle now = 0;
  for (int i = 0; i < 1000; ++i) {
    for (PageId p = 0; p < 8; ++p) rig.access(p * kPage, now += 5);
    if (i % 10 == 0) rig.access(20 * kPage, now += 5);
  }
  EXPECT_EQ(rig.ctl.engine().stats().swaps_completed, 0u);
}

TEST(Controller, MigrationDisabledNeverSwaps) {
  ControllerConfig cfg = base_cfg();
  cfg.migration_enabled = false;
  Rig rig(cfg);
  Cycle now = 0;
  for (int i = 0; i < 2000; ++i) rig.access(20 * kPage, now += 10);
  EXPECT_EQ(rig.ctl.engine().stats().swaps_started, 0u);
  EXPECT_EQ(rig.ctl.table().translate(20 * kPage).region,
            Region::OffPackage);
}

TEST(Controller, OsAssistedChargesStalls) {
  ControllerConfig cfg = base_cfg();  // 512KB pages < 1MB: OS-assisted
  ASSERT_TRUE(cfg.is_os_assisted());
  Rig rig(cfg);
  Cycle now = 0;
  for (int i = 0; i < 400; ++i) rig.access(20 * kPage, now += 20);
  EXPECT_GT(rig.ctl.stats().os_stall_cycles, 0u);
}

TEST(Controller, PureHardwareHasNoOsStalls) {
  ControllerConfig cfg = base_cfg();
  cfg.os_assisted = false;  // explicit override
  ASSERT_FALSE(cfg.is_os_assisted());
  Rig rig(cfg);
  Cycle now = 0;
  for (int i = 0; i < 400; ++i) rig.access(20 * kPage, now += 20);
  EXPECT_GT(rig.ctl.engine().stats().swaps_completed, 0u);
  EXPECT_EQ(rig.ctl.stats().os_stall_cycles, 0u);
}

TEST(Controller, GranularityDecidesImplementation) {
  ControllerConfig cfg;
  cfg.geom = Geometry{4 * GiB, 512 * MiB, 4 * MiB, 4 * KiB};
  EXPECT_FALSE(cfg.is_os_assisted());  // 4MB >= 1MB: pure hardware
  cfg.geom.page_bytes = 64 * KiB;
  EXPECT_TRUE(cfg.is_os_assisted());
}

TEST(Controller, OracleModeAlsoMigrates) {
  ControllerConfig cfg = base_cfg();
  cfg.oracle_hotness = true;
  Rig rig(cfg);
  Cycle now = 0;
  for (int i = 0; i < 400; ++i) rig.access(21 * kPage, now += 20);
  EXPECT_GT(rig.ctl.engine().stats().swaps_completed, 0u);
  EXPECT_EQ(rig.ctl.table().translate(21 * kPage).region, Region::OnPackage);
}

TEST(Controller, DesignNStallsDuringSwap) {
  ControllerConfig cfg = base_cfg();
  cfg.design = MigrationDesign::N;
  Rig rig(cfg);
  // Drive accesses WITHOUT pumping the engine, so a started swap stays
  // in flight and the next access must observe the stall flag.
  Cycle now = 0;
  bool saw_stall = false;
  for (int i = 0; i < 400; ++i) {
    const auto d = rig.ctl.on_access(20 * kPage, AccessType::Read, now += 20);
    if (d.stall_until_idle) {
      saw_stall = true;
      break;
    }
  }
  EXPECT_TRUE(saw_stall);
}

TEST(Controller, FillForwardsCounted) {
  // Live migration: accesses served by a partially filled slot increment
  // the fill_forwards statistic.
  ControllerConfig cfg = base_cfg();
  cfg.design = MigrationDesign::LiveMigration;
  Rig rig(cfg);
  Cycle now = 0;
  // Trigger a swap of page 20 (pumped to completion by access()).
  for (int i = 0; i < 150; ++i) rig.access(20 * kPage, now += 20);
  // Now hammer page 21 without pumping to idle: the fill progresses as
  // simulated time advances and early sub-blocks serve from the slot.
  for (int i = 0; i < 20000; ++i) {
    (void)rig.ctl.on_access(21 * kPage, AccessType::Read, now += 20);
    rig.on.drain_until(now);
    rig.off.drain_until(now);
    for (const auto& c : rig.on.take_completions())
      rig.ctl.on_completion(c, Region::OnPackage);
    for (const auto& c : rig.off.take_completions())
      rig.ctl.on_completion(c, Region::OffPackage);
  }
  // 21 eventually migrates; during its fill some accesses were forwarded.
  EXPECT_GT(rig.ctl.stats().fill_forwards, 0u);
}

}  // namespace
}  // namespace hmm
