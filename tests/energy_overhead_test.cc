// Energy model (Section IV-D) and hardware-overhead model (Fig 10) tests.
#include <gtest/gtest.h>

#include "core/overhead.hh"
#include "power/energy_model.hh"

namespace hmm {
namespace {

TEST(Energy, PerBitConstants) {
  // 64B = 512 bits through core + link.
  EXPECT_DOUBLE_EQ(EnergyModel::access_pj(Region::OnPackage, 64),
                   512 * (5.0 + 1.66));
  EXPECT_DOUBLE_EQ(EnergyModel::access_pj(Region::OffPackage, 64),
                   512 * (5.0 + 13.0));
}

TEST(Energy, OffOnlyBaseline) {
  EXPECT_DOUBLE_EQ(EnergyModel::off_only_pj(64), 512 * 18.0);
}

TEST(Energy, HybridBreakdownAddsUp) {
  const EnergyBreakdown e = EnergyModel::hybrid(64, 64, 64, 64);
  EXPECT_DOUBLE_EQ(e.demand_on_pj, 512 * 6.66);
  EXPECT_DOUBLE_EQ(e.demand_off_pj, 512 * 18.0);
  EXPECT_DOUBLE_EQ(e.migration_pj, 512 * 6.66 + 512 * 18.0);
  EXPECT_DOUBLE_EQ(e.total_pj(),
                   e.demand_on_pj + e.demand_off_pj + e.migration_pj);
}

TEST(Energy, OnPackageDemandIsCheaperThanOffOnly) {
  // Moving demand on-package must reduce energy when no migration runs.
  const double hybrid =
      EnergyModel::hybrid(1000, 0, 0, 0).total_pj();
  const double off_only = EnergyModel::off_only_pj(1000);
  EXPECT_LT(hybrid, off_only);
}

TEST(Overhead, PaperReferencePoint) {
  // 1GB on-package, 4MB pages, 48-bit space => the paper's 9,228 bits.
  const HardwareOverhead o = migration_hardware_overhead(1 * GiB, 4 * MiB);
  EXPECT_EQ(o.table_bits, 7168u);       // 256 x (26 + 2)
  EXPECT_EQ(o.fill_bitmap_bits, 1024u); // 4MB / 4KB
  EXPECT_EQ(o.plru_bits, 256u);
  EXPECT_EQ(o.multi_queue_bits, 780u);  // 3 x 10 x 26
  EXPECT_EQ(o.total(), 9228u);
}

TEST(Overhead, GrowsMonotonicallyAsPagesShrink) {
  std::uint64_t prev = 0;
  for (std::uint64_t page = 4 * MiB; page >= 4 * KiB; page /= 2) {
    const std::uint64_t total =
        migration_hardware_overhead(1 * GiB, page).total();
    if (prev != 0) {
      EXPECT_GT(total, prev);
    }
    prev = total;
  }
  // ~1E7 bits at 4KB, as Fig 10 shows.
  EXPECT_GT(migration_hardware_overhead(1 * GiB, 4 * KiB).total(), 9'000'000u);
  EXPECT_LT(migration_hardware_overhead(1 * GiB, 4 * KiB).total(), 20'000'000u);
}

TEST(Overhead, ScalesWithOnPackageCapacity) {
  const auto half = migration_hardware_overhead(512 * MiB, 4 * MiB);
  const auto full = migration_hardware_overhead(1 * GiB, 4 * MiB);
  EXPECT_EQ(half.table_bits * 2, full.table_bits);
  EXPECT_EQ(half.plru_bits * 2, full.plru_bits);
}

}  // namespace
}  // namespace hmm
