// Scheme-zoo tests: the registry (canonical names, structured unknown-name
// error), golden bit-identity of the extracted N / N-1 / Live swap schemes
// against the pre-refactor controller, behaviour sanity for the Alloy /
// flat-HMA / MemCache designs, per-scheme snapshot round-trips, and the
// invariant auditor catching injected per-scheme corruption.
#include <gtest/gtest.h>

#include <string>

#include "common/snapshot.hh"
#include "runner/experiment.hh"
#include "schemes/alloy.hh"
#include "schemes/flat_hma.hh"
#include "schemes/memcache.hh"
#include "schemes/registry.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

using fault::FaultSite;
using fault::SimError;
using fault::SimErrorKind;

// --- fixtures ---------------------------------------------------------------

// The exact cell the pre-refactor goldens were captured on: FT workload,
// Section IV geometry, swap_interval 2000, 6000 warm-up + 6000 measured
// references, seed derive_seed(42, "golden/<name>").
MemSimConfig golden_cfg(const std::string& scheme) {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 256 * KiB, 4 * KiB};
  cfg.controller.swap_interval = 2000;
  cfg.controller.migration_enabled = true;
  cfg.scheme = scheme;
  return cfg;
}

struct GoldenRun {
  RunResult result;
  std::uint32_t table_crc = 0;
};

GoldenRun golden_replay(MemSimConfig cfg, const std::string& seed_name) {
  const std::uint64_t seed =
      runner::derive_seed(42, "golden/" + seed_name);
  MemSim sim(cfg);
  auto gen = section4_workloads()[0].make(seed);  // FT
  sim.set_instant_migration(true);
  sim.run(*gen, 6000);
  sim.set_instant_migration(false);
  sim.reset_stats();
  sim.run(*gen, 6000);
  sim.finish();
  GoldenRun g;
  g.result = sim.result();
  snap::Writer w;
  sim.controller().table().save(w);
  g.table_crc = snap::crc32(w.buffer().data(), w.buffer().size());
  return g;
}

// Every deterministic metric the pre-refactor controller produced on the
// golden cell; captured before src/schemes/ existed.
struct Golden {
  const char* name;
  MigrationDesign design;
  std::uint64_t seed;
  std::uint64_t swaps, migrated, on_bytes, off_bytes, os_stall, end;
  double avg, p99, onfrac;
  std::uint32_t table_crc;
};

constexpr Golden kGoldens[] = {
    {"N", MigrationDesign::N, 2415334064924998932ull, 78, 1572864, 254976,
     129024, 9906, 486456, 2649.3843333333334, 65536.0,
     0.62333333333333329, 1913507095u},
    {"N-1", MigrationDesign::NMinus1, 7828113572835807877ull, 68, 786432,
     254144, 129856, 43180, 226851, 192.56916666666666, 512.0, 0.616,
     3942147815u},
    {"Live", MigrationDesign::LiveMigration, 91150292251304964ull, 72,
     786432, 250112, 133888, 45720, 227072, 192.73866666666666, 512.0,
     0.61333333333333329, 3428239332u},
};

void expect_matches_golden(const GoldenRun& g, const Golden& x) {
  const RunResult& r = g.result;
  EXPECT_EQ(r.accesses, 6000u);
  EXPECT_EQ(r.swaps, x.swaps);
  EXPECT_EQ(r.migrated_bytes, x.migrated);
  EXPECT_EQ(r.demand_bytes_on, x.on_bytes);
  EXPECT_EQ(r.demand_bytes_off, x.off_bytes);
  EXPECT_EQ(r.os_stall_cycles, x.os_stall);
  EXPECT_EQ(r.end_time, x.end);
  EXPECT_DOUBLE_EQ(r.avg_latency, x.avg);
  EXPECT_DOUBLE_EQ(r.p99_latency, x.p99);
  EXPECT_DOUBLE_EQ(r.on_package_fraction, x.onfrac);
  EXPECT_EQ(g.table_crc, x.table_crc);
}

// Scaled-down geometry for the zoo behaviour tests (fast, and small
// enough that the skewed pgbench hot set fits on-package).
MemSimConfig zoo_cfg(const std::string& scheme) {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 1 * MiB, 4 * KiB};
  cfg.controller.swap_interval = 1000;
  cfg.controller.migration_enabled = true;
  cfg.scheme = scheme;
  return cfg;
}

RunResult zoo_replay(const MemSimConfig& cfg, std::uint64_t n,
                     std::uint64_t seed = 21) {
  MemSim sim(cfg);
  auto w = make_pgbench(seed);
  sim.run(*w, n);
  sim.finish();
  return sim.result();
}

// --- registry ---------------------------------------------------------------

TEST(SchemeRegistry, NamesAreCanonicalAndOrdered) {
  const std::vector<std::string> expected{
      "N", "N-1", "Live", "nomad", "Alloy", "flat-HMA", "MemCache"};
  EXPECT_EQ(schemes::scheme_names(), expected);
}

TEST(SchemeRegistry, UnknownNameIsAStructuredError) {
  try {
    schemes::validate_scheme_name("Aloy");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::CheckFailed);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown memory scheme 'Aloy'"), std::string::npos)
        << msg;
    for (const std::string& name : schemes::scheme_names())
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
  }
}

TEST(SchemeRegistry, MemSimRejectsUnknownSchemeName) {
  MemSimConfig cfg = zoo_cfg("definitely-not-a-scheme");
  EXPECT_THROW(MemSim sim(cfg), SimError);
}

TEST(SchemeRegistry, SwapNameOverridesControllerDesign) {
  // The registry forces controller.design to match the scheme name, so a
  // grid only has to set cfg.scheme.
  MemSimConfig cfg = zoo_cfg("N-1");
  cfg.controller.design = MigrationDesign::N;  // deliberately stale
  MemSim sim(cfg);
  EXPECT_STREQ(sim.scheme().name(), "N-1");
  EXPECT_EQ(sim.controller().config().design, MigrationDesign::NMinus1);
}

TEST(SchemeRegistry, ControllerAccessorThrowsForCacheStyleSchemes) {
  MemSim sim(zoo_cfg("Alloy"));
  EXPECT_STREQ(sim.scheme().name(), "Alloy");
  EXPECT_THROW((void)sim.controller(), SimError);
}

// --- golden bit-identity ----------------------------------------------------

// The extracted SwapScheme must reproduce the pre-refactor controller
// bit-for-bit: every metric and the final translation-table snapshot.
TEST(SchemeGolden, SwapSchemesMatchPreRefactorController) {
  for (const Golden& x : kGoldens) {
    SCOPED_TRACE(x.name);
    EXPECT_EQ(runner::derive_seed(42, std::string("golden/") + x.name),
              x.seed);
    expect_matches_golden(golden_replay(golden_cfg(x.name), x.name), x);
  }
}

// The pre-zoo configuration style (cfg.scheme empty, controller.design
// set) must keep working and hit the same goldens.
TEST(SchemeGolden, EmptySchemeNameDerivesFromControllerDesign) {
  for (const Golden& x : kGoldens) {
    SCOPED_TRACE(x.name);
    MemSimConfig cfg = golden_cfg("");
    cfg.controller.design = x.design;
    expect_matches_golden(golden_replay(cfg, x.name), x);
  }
}

// --- zoo behaviour ----------------------------------------------------------

TEST(AlloyScheme, CachesTheHotSetWithoutSwaps) {
  const RunResult r = zoo_replay(zoo_cfg("Alloy"), 40000);
  EXPECT_EQ(r.accesses, 40000u);
  EXPECT_GT(r.on_package_fraction, 0.15);  // pgbench re-touches hot lines
  EXPECT_EQ(r.swaps, 0u);                 // no choreography at all
  EXPECT_GT(r.migrated_bytes, 0u);        // background line fills
  EXPECT_EQ(r.os_stall_cycles, 0u);       // no OS in the loop
}

TEST(AlloySchemeUnit, RepeatAccessHitsAndVictimWritesBack) {
  MemSim sim(zoo_cfg("Alloy"));
  auto& alloy = dynamic_cast<schemes::AlloyScheme&>(sim.scheme());
  schemes::LineCache& c = alloy.cache_for_test();
  const PhysAddr a = 4096;
  const PhysAddr conflict = a + c.sets() * c.line_bytes();  // same set
  EXPECT_FALSE(c.present(a));
  EXPECT_FALSE(c.access(a, /*dirty=*/true).hit);   // cold miss, fills
  EXPECT_TRUE(c.access(a, /*dirty=*/false).hit);   // now resident
  const auto lk = c.access(conflict, /*dirty=*/false);
  EXPECT_FALSE(lk.hit);
  EXPECT_TRUE(lk.victim_valid);
  EXPECT_TRUE(lk.victim_dirty);
  EXPECT_EQ(lk.victim_addr, a - a % c.line_bytes());
  EXPECT_TRUE(c.validate().empty());
}

TEST(FlatHmaScheme, PlacesOnceAfterProfileEpochThenNeverMoves) {
  MemSimConfig cfg = zoo_cfg("flat-HMA");
  MemSim sim(cfg);
  auto& hma = dynamic_cast<schemes::FlatHmaScheme&>(sim.scheme());
  auto w = make_pgbench(21);
  sim.run(*w, 500);  // inside the profile epoch
  EXPECT_FALSE(hma.placed());
  EXPECT_DOUBLE_EQ(sim.result().on_package_fraction, 0.0);
  sim.run(*w, 40000);
  sim.finish();
  EXPECT_TRUE(hma.placed());
  const RunResult r = sim.result();
  EXPECT_GT(r.swaps, 0u);  // placements
  EXPECT_EQ(r.migrated_bytes, r.swaps * cfg.controller.geom.page_bytes);
  EXPECT_GT(r.on_package_fraction, 0.3);
  EXPECT_GT(r.os_stall_cycles, 0u);  // one table update per placement
}

TEST(MemCacheScheme, PartitionFollowsTheCacheFractionKnob) {
  MemSimConfig half = zoo_cfg("MemCache");
  const std::uint64_t on = half.controller.geom.on_package_bytes;
  {
    MemSim sim(half);
    auto& mc = dynamic_cast<schemes::MemCacheScheme&>(sim.scheme());
    EXPECT_EQ(mc.memory_fraction_bytes(), on / 2);
  }
  MemSimConfig pure_mem = half;
  pure_mem.cache_fraction = 0.0;
  {
    MemSim sim(pure_mem);
    auto& mc = dynamic_cast<schemes::MemCacheScheme&>(sim.scheme());
    EXPECT_EQ(mc.memory_fraction_bytes(), on);
  }
  MemSimConfig pure_cache = half;
  pure_cache.cache_fraction = 1.0;
  {
    MemSim sim(pure_cache);
    auto& mc = dynamic_cast<schemes::MemCacheScheme&>(sim.scheme());
    EXPECT_EQ(mc.memory_fraction_bytes(), 0u);
  }
}

TEST(MemCacheScheme, MemoryFractionServesLowAddressesForFree) {
  MemSim sim(zoo_cfg("MemCache"));
  auto& mc = dynamic_cast<schemes::MemCacheScheme&>(sim.scheme());
  const Route r = mc.translate(mc.memory_fraction_bytes() - 1);
  EXPECT_EQ(r.region, Region::OnPackage);
  EXPECT_EQ(r.mach, mc.memory_fraction_bytes() - 1);  // identity mapping
  const RunResult run = zoo_replay(zoo_cfg("MemCache"), 40000);
  EXPECT_GT(run.on_package_fraction, 0.1);
  EXPECT_EQ(run.swaps, 0u);
}

// --- snapshot round-trips ---------------------------------------------------

// Interrupted-vs-uninterrupted equivalence, per scheme: run half, save,
// restore into a twin, run both to the end — all deterministic results
// must agree exactly.
void expect_snapshot_roundtrip(const MemSimConfig& cfg) {
  const std::uint64_t n = 30000;
  MemSim a(cfg);
  auto wa = make_pgbench(7);
  a.run_chunk(*wa, n / 2);
  snap::Writer w;
  a.save(w);
  wa->save(w);

  MemSim b(cfg);
  auto wb = make_pgbench(7);
  snap::Reader r(w.buffer());
  b.restore(r);
  wb->restore(r);

  a.run_chunk(*wa, n / 2);
  b.run_chunk(*wb, n / 2);
  a.finish();
  b.finish();
  const RunResult ra = a.result();
  const RunResult rb = b.result();
  EXPECT_EQ(ra.accesses, rb.accesses);
  EXPECT_DOUBLE_EQ(ra.avg_latency, rb.avg_latency);
  EXPECT_DOUBLE_EQ(ra.p99_latency, rb.p99_latency);
  EXPECT_DOUBLE_EQ(ra.on_package_fraction, rb.on_package_fraction);
  EXPECT_EQ(ra.swaps, rb.swaps);
  EXPECT_EQ(ra.migrated_bytes, rb.migrated_bytes);
  EXPECT_EQ(ra.demand_bytes_on, rb.demand_bytes_on);
  EXPECT_EQ(ra.demand_bytes_off, rb.demand_bytes_off);
  EXPECT_EQ(ra.os_stall_cycles, rb.os_stall_cycles);
  EXPECT_EQ(ra.end_time, rb.end_time);
}

TEST(SchemeSnapshot, EverySchemeRoundTrips) {
  for (const std::string& name : schemes::scheme_names()) {
    SCOPED_TRACE(name);
    expect_snapshot_roundtrip(zoo_cfg(name));
  }
}

// --- auditor integration ----------------------------------------------------

TEST(SchemeAudit, AuditorCatchesCorruptedAlloyTagStore) {
  MemSimConfig cfg = zoo_cfg("Alloy");
  cfg.audit_interval = 100;
  MemSim sim(cfg);
  auto w = make_pgbench(5);
  sim.run(*w, 1000);  // clean prefix: audits pass
  auto& alloy = dynamic_cast<schemes::AlloyScheme&>(sim.scheme());
  alloy.cache_for_test().corrupt_valid_count_for_test();
  try {
    sim.run(*w, 1000);
    FAIL() << "expected SimError(AuditFailed)";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::AuditFailed);
    EXPECT_NE(std::string(e.what()).find("alloy tag store"),
              std::string::npos);
  }
}

TEST(SchemeAudit, AuditorCatchesCorruptedFlatHmaPlacement) {
  MemSimConfig cfg = zoo_cfg("flat-HMA");
  cfg.audit_interval = 100;
  MemSim sim(cfg);
  auto w = make_pgbench(5);
  sim.run(*w, 2000);  // past the profile epoch: placement exists
  auto& hma = dynamic_cast<schemes::FlatHmaScheme&>(sim.scheme());
  hma.corrupt_placement_for_test();
  try {
    sim.run(*w, 1000);
    FAIL() << "expected SimError(AuditFailed)";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::AuditFailed);
    EXPECT_NE(std::string(e.what()).find("flat-HMA placement"),
              std::string::npos);
  }
}

// --- fault tolerance --------------------------------------------------------

// HotnessCorrupt must stay benign in every scheme (wrong heat accounting
// or a dropped tag entry — never a wrong route or a crash), and the
// table-targeting TableBitFlip site must be a no-op for table-less
// schemes rather than a null dereference.
TEST(SchemeFaults, HotnessCorruptAndTableFlipAreSafeAcrossTheZoo) {
  for (const std::string& name : schemes::scheme_names()) {
    SCOPED_TRACE(name);
    MemSimConfig cfg = zoo_cfg(name);
    cfg.audit_interval = 500;  // audits must keep passing under fire
    cfg.fault.add(FaultSite::HotnessCorrupt, 0.02)
        .add(FaultSite::TableBitFlip, 0.001);
    MemSim sim(cfg);
    auto w = make_pgbench(9);
    RunResult r;
    try {
      sim.run(*w, 20000);
      sim.finish();
      r = sim.result();
    } catch (const SimError& e) {
      // Swap schemes may legitimately detect a flipped table bit as an
      // audit/check failure — that is the structured-surfacing contract.
      const bool has_table = sim.scheme().mutable_table() != nullptr;
      ASSERT_TRUE(has_table) << name << ": " << e.what();
      continue;
    }
    EXPECT_EQ(r.accesses, 20000u);
    EXPECT_GT(r.faults_injected, 0u);
    EXPECT_GT(r.audits, 0u);
  }
}

}  // namespace
}  // namespace hmm
