// Trace file round-trip and error handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/io.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTrip) {
  const std::string path = temp_path("roundtrip.hmmtrace");
  std::vector<TraceRecord> records;
  auto gen = make_pgbench(13);
  {
    TraceWriter w(path, "pgbench");
    for (int i = 0; i < 5000; ++i) {
      records.push_back(gen->next());
      w.write(records.back());
    }
    w.close();
    EXPECT_EQ(w.written(), 5000u);
  }
  TraceReader r(path);
  EXPECT_EQ(r.count(), 5000u);
  EXPECT_EQ(r.workload_name(), "pgbench");
  for (const TraceRecord& want : records) {
    const auto got = r.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->addr, want.addr);
    EXPECT_EQ(got->timestamp, want.timestamp);
    EXPECT_EQ(got->cpu, want.cpu);
    EXPECT_EQ(got->type, want.type);
  }
  EXPECT_FALSE(r.next().has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, EmptyTrace) {
  const std::string path = temp_path("empty.hmmtrace");
  {
    TraceWriter w(path, "none");
    w.close();
  }
  TraceReader r(path);
  EXPECT_EQ(r.count(), 0u);
  EXPECT_FALSE(r.next().has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(TraceReader("/nonexistent/path/trace"), std::runtime_error);
}

TEST(TraceIo, BadMagicThrows) {
  const std::string path = temp_path("garbage.hmmtrace");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a trace file at all, padded to header size........";
  }
  EXPECT_THROW(TraceReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, LongWorkloadNameIsTruncatedSafely) {
  const std::string path = temp_path("longname.hmmtrace");
  const std::string name(200, 'x');
  {
    TraceWriter w(path, name);
    w.close();
  }
  TraceReader r(path);
  EXPECT_EQ(r.workload_name().size(), 63u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hmm
