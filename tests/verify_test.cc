// Unit tests for the choreography model checker (src/verify/): the
// shipped designs verify clean, design N's documented stall is reached,
// and — crucially — a deliberately broken choreography is *detected*
// (the checker is not vacuous). The full four-design exhaustive runs
// are registered separately as verify.modelcheck.* ctests.
#include "verify/choreography.hh"

#include <gtest/gtest.h>

#include "common/units.hh"

namespace hmm::verify {
namespace {

CheckerConfig small_config(MigrationDesign d) {
  CheckerConfig cfg;
  cfg.design = d;
  return cfg;  // default geometry: 4 slots x 8 pages x 4 sub-blocks
}

TEST(ChoreographyChecker, NMinus1HoldsAllInvariantsExhaustively) {
  const CheckerReport r = check_choreography(small_config(
      MigrationDesign::NMinus1));
  EXPECT_TRUE(r.ok()) << format_report(r);
  EXPECT_GT(r.states_explored, 10'000u);
  EXPECT_GT(r.in_flight_states, 0u);
  EXPECT_EQ(r.wedge_states, 0u);
  // Aborts that consume the empty slot must land in degraded mode (traffic
  // still served), never a wedge.
  EXPECT_GT(r.degraded_states, 0u);
  EXPECT_GT(r.aborts_injected, 0u);
}

TEST(ChoreographyChecker, DesignNReachesOnlyItsDocumentedStall) {
  const CheckerReport r = check_choreography(small_config(MigrationDesign::N));
  EXPECT_TRUE(r.ok()) << format_report(r);
  EXPECT_GT(r.stall_states, 0u);  // demand held during every swap
  EXPECT_GT(r.wedge_states, 0u);  // every mid-swap crash wedges, as documented
  EXPECT_EQ(r.degraded_states, 0u);
}

TEST(ChoreographyChecker, ReportsAreDeterministic) {
  const CheckerConfig cfg = small_config(MigrationDesign::NMinus1);
  const CheckerReport a = check_choreography(cfg);
  const CheckerReport b = check_choreography(cfg);
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.demand_checks, b.demand_checks);
}

TEST(ChoreographyChecker, DetectsMutationsAppliedBeforeTheCopyLands) {
  CheckerConfig cfg = small_config(MigrationDesign::NMinus1);
  cfg.sabotage = Sabotage::ApplyMutationsEarly;
  const CheckerReport r = check_choreography(cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(format_report(r).find("does not hold its data"),
            std::string::npos);
}

TEST(ChoreographyChecker, DetectsADroppedClearPendingMutation) {
  CheckerConfig cfg = small_config(MigrationDesign::NMinus1);
  cfg.sabotage = Sabotage::DropClearPending;
  EXPECT_FALSE(check_choreography(cfg).ok());
}

TEST(ChoreographyChecker, DetectsPrematureFillBitmapMarks) {
  CheckerConfig cfg = small_config(MigrationDesign::LiveMigration);
  cfg.sabotage = Sabotage::MarkSubBlockEarly;
  const CheckerReport r = check_choreography(cfg);
  EXPECT_FALSE(r.ok());
}

CheckerConfig nomad_config() {
  CheckerConfig cfg;
  cfg.design = MigrationDesign::Nomad;
  // 2 slots x 4 pages x 4 sub-blocks: the wandering hole makes the
  // placement count factorial in the page count, so nomad's model stays
  // small (see CheckerConfig::geom).
  cfg.geom.on_package_bytes = 2 * cfg.geom.page_bytes;
  cfg.geom.total_bytes = 4 * cfg.geom.page_bytes;
  return cfg;
}

TEST(ChoreographyChecker, NomadHoldsAllInvariantsExhaustively) {
  const CheckerReport r = check_choreography(nomad_config());
  EXPECT_TRUE(r.ok()) << format_report(r);
  EXPECT_GT(r.states_explored, 1'000u);
  EXPECT_GT(r.in_flight_states, 0u);
  EXPECT_GT(r.swaps_started, 0u);
  // Every crash/abort boundary rolls back transactionally; nomad has no
  // wedge state and the bounded-retry degrade path is runtime-only (the
  // model aborts at every boundary but never consecutively).
  EXPECT_GT(r.aborts_injected, 0u);
  EXPECT_EQ(r.wedge_states, 0u);
  EXPECT_EQ(r.stall_states, 0u);  // the old home serves during the copy
}

TEST(ChoreographyChecker, NomadReportsAreDeterministic) {
  const CheckerReport a = check_choreography(nomad_config());
  const CheckerReport b = check_choreography(nomad_config());
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.demand_checks, b.demand_checks);
}

TEST(ChoreographyChecker, DetectsACommitThatIgnoresDirtySubBlocks) {
  CheckerConfig cfg = nomad_config();
  cfg.sabotage = Sabotage::CommitDespiteDirty;
  const CheckerReport r = check_choreography(cfg);
  EXPECT_FALSE(r.ok());
  // The committed home serves the shadow copy's stale bytes for every
  // sub-block a demand write superseded.
  EXPECT_NE(format_report(r).find("stale bytes"), std::string::npos);
}

TEST(ChoreographyChecker, RefusesAModelTooSmallForEveryFig8Case) {
  CheckerConfig cfg = small_config(MigrationDesign::NMinus1);
  cfg.geom.on_package_bytes = 2 * cfg.geom.page_bytes;  // 2 slots
  cfg.geom.total_bytes = 4 * cfg.geom.page_bytes;
  const CheckerReport r = check_choreography(cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(format_report(r).find(">= 3 on-package slots"),
            std::string::npos);
}

TEST(ChoreographyChecker, StateSpaceCapIsReportedNotSilentlyTruncated) {
  CheckerConfig cfg = small_config(MigrationDesign::NMinus1);
  cfg.max_states = 100;
  const CheckerReport r = check_choreography(cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(format_report(r).find("exhaustiveness"), std::string::npos);
}

}  // namespace
}  // namespace hmm::verify
