// Hotness tracker tests: clock pseudo-LRU victim selection and the
// multi-queue (MQ) hottest-page approximation.
#include <gtest/gtest.h>

#include "core/hotness.hh"

namespace hmm {
namespace {

TEST(SlotClock, VictimIsUntouchedSlot) {
  SlotClockTracker t(4);
  t.record_access(0);
  t.record_access(1);
  t.record_access(3);
  const auto v = t.pick_victim([](SlotId) { return true; });
  ASSERT_TRUE(v.found);
  EXPECT_EQ(v.slot, 2u);
  EXPECT_EQ(v.epoch_count, 0u);
}

TEST(SlotClock, SecondSweepFindsVictimWhenAllReferenced) {
  SlotClockTracker t(4);
  for (SlotId s = 0; s < 4; ++s) t.record_access(s);
  const auto v = t.pick_victim([](SlotId) { return true; });
  EXPECT_TRUE(v.found);  // hand cleared reference bits and came around
}

TEST(SlotClock, RespectsMigratablePredicate) {
  SlotClockTracker t(4);
  const auto v = t.pick_victim([](SlotId s) { return s == 3; });
  ASSERT_TRUE(v.found);
  EXPECT_EQ(v.slot, 3u);
  const auto none = t.pick_victim([](SlotId) { return false; });
  EXPECT_FALSE(none.found);
}

TEST(SlotClock, EpochCountsAccumulateAndReset) {
  SlotClockTracker t(2);
  t.record_access(1);
  t.record_access(1);
  EXPECT_EQ(t.epoch_count(1), 2u);
  t.reset_epoch();
  EXPECT_EQ(t.epoch_count(1), 0u);
}

TEST(SlotClock, HardwareBitsOnePerSlot) {
  EXPECT_EQ(SlotClockTracker(256).bits(), 256u);
}

TEST(MultiQueue, HottestIsMostAccessed) {
  MultiQueueTracker mq(3, 10);
  for (int i = 0; i < 20; ++i) mq.record_access(100, 5);
  for (int i = 0; i < 3; ++i) mq.record_access(200, 0);
  const auto h = mq.hottest();
  ASSERT_TRUE(h.found);
  EXPECT_EQ(h.page, 100u);
  EXPECT_EQ(h.epoch_count, 20u);
  EXPECT_EQ(h.last_sub_block, 5u);
}

TEST(MultiQueue, PromotionMovesHotPagesUpLevels) {
  MultiQueueTracker mq(3, 2);  // tiny levels force eviction pressure
  // Page 1 is accessed often enough to be promoted beyond level 0, so a
  // burst of one-touch pages cannot push it out.
  for (int i = 0; i < 16; ++i) mq.record_access(1, 0);
  for (PageId p = 50; p < 60; ++p) mq.record_access(p, 0);
  const auto h = mq.hottest();
  ASSERT_TRUE(h.found);
  EXPECT_EQ(h.page, 1u);
}

TEST(MultiQueue, CapacityIsBounded) {
  MultiQueueTracker mq(3, 10);
  for (PageId p = 0; p < 1000; ++p) mq.record_access(p, 0);
  EXPECT_LE(mq.tracked(), 30u);
}

TEST(MultiQueue, EraseForgetsPage) {
  MultiQueueTracker mq(3, 10);
  mq.record_access(42, 0);
  mq.record_access(42, 0);
  mq.erase(42);
  const auto h = mq.hottest();
  EXPECT_FALSE(h.found);
  mq.erase(42);  // idempotent
}

TEST(MultiQueue, EpochResetHalvesCountsAndDropsDead) {
  MultiQueueTracker mq(3, 10);
  for (int i = 0; i < 4; ++i) mq.record_access(7, 0);
  mq.record_access(8, 0);  // count 1 -> dies on reset
  mq.reset_epoch();
  const auto h = mq.hottest();
  ASSERT_TRUE(h.found);
  EXPECT_EQ(h.page, 7u);
  EXPECT_EQ(h.epoch_count, 2u);
  EXPECT_EQ(mq.tracked(), 1u);
}

TEST(MultiQueue, BitsMatchPaperSizing) {
  // Section III-B: 3 levels x 10 entries x 26-bit ids = 780 bits.
  MultiQueueTracker mq(3, 10);
  EXPECT_EQ(mq.bits(26), 780u);
}

TEST(Oracle, TracksExactCounts) {
  OracleTracker o;
  for (int i = 0; i < 5; ++i) o.record_access(9, 3);
  o.record_access(4, 1);
  const auto h = o.hottest();
  ASSERT_TRUE(h.found);
  EXPECT_EQ(h.page, 9u);
  EXPECT_EQ(h.epoch_count, 5u);
  o.reset_epoch();
  EXPECT_FALSE(o.hottest().found);
}

}  // namespace
}  // namespace hmm
