// Trace infrastructure tests: zipf sampler statistics, pattern behaviour,
// the mixture generator, and the workload factories.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generator.hh"
#include "trace/workloads.hh"
#include "trace/zipf.hh"

namespace hmm {
namespace {

TEST(Zipf, RanksInBounds) {
  ZipfSampler z(1000, 1.0);
  Pcg32 rng(1);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(z(rng), 1000u);
}

TEST(Zipf, RankZeroIsHottest) {
  ZipfSampler z(10000, 1.0);
  Pcg32 rng(2);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[z(rng)];
  int max_count = 0;
  std::uint64_t max_rank = 0;
  for (const auto& [r, c] : counts)
    if (c > max_count) {
      max_count = c;
      max_rank = r;
    }
  EXPECT_EQ(max_rank, 0u);
  // Frequencies roughly follow 1/k: rank 0 ~ 2x rank 1 at s=1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.4);
}

TEST(Zipf, HigherExponentIsMoreSkewed) {
  Pcg32 a(3), b(3);
  ZipfSampler mild(100000, 0.8), sharp(100000, 1.3);
  int mild_top = 0, sharp_top = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_top += mild(a) < 10;
    sharp_top += sharp(b) < 10;
  }
  EXPECT_GT(sharp_top, mild_top * 2);
}

TEST(Zipf, SingleItemDegenerate) {
  ZipfSampler z(1, 1.0);
  Pcg32 rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(Patterns, SequentialWrapsInRegion) {
  SequentialPattern p(4096, 1024, 64);
  Pcg32 rng(1);
  std::set<PhysAddr> seen;
  for (int i = 0; i < 64; ++i) {
    const PhysAddr a = p.next(rng);
    EXPECT_GE(a, 4096u);
    EXPECT_LT(a, 4096u + 1024u);
    seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 16u);  // 1024/64 distinct, then wrapped
}

TEST(Patterns, SequentialSlabRotatesOnPhase) {
  SequentialPattern p(0, 4096, 64, 1024);
  Pcg32 rng(1);
  EXPECT_LT(p.next(rng), 1024u);
  p.on_phase(rng);
  const PhysAddr a = p.next(rng);
  EXPECT_GE(a, 1024u);
  EXPECT_LT(a, 2048u);
  // Four phases wrap back to the first slab.
  p.on_phase(rng);
  p.on_phase(rng);
  p.on_phase(rng);
  EXPECT_LT(p.next(rng), 1024u);
}

TEST(Patterns, UniformCoversRegion) {
  UniformPattern p(1 * MiB, 64 * KiB);
  Pcg32 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const PhysAddr a = p.next(rng);
    EXPECT_GE(a, 1 * MiB);
    EXPECT_LT(a, 1 * MiB + 64 * KiB);
    EXPECT_EQ(a % 64, 0u);
  }
}

TEST(Patterns, ZipfStaysInRegionAndScatters) {
  ZipfPattern p(2 * MiB, 1 * MiB, 4 * KiB, 1.0, true, 0);
  Pcg32 rng(3);
  std::set<std::uint64_t> granules;
  for (int i = 0; i < 20000; ++i) {
    const PhysAddr a = p.next(rng);
    EXPECT_GE(a, 2 * MiB);
    EXPECT_LT(a, 3 * MiB);
    granules.insert((a - 2 * MiB) / (4 * KiB));
  }
  EXPECT_GT(granules.size(), 50u);  // spread over many granules
}

TEST(Patterns, ZipfDriftMovesHotSet) {
  ZipfPattern p(0, 1 * MiB, 4 * KiB, 1.2, true, 8);
  Pcg32 rng(4);
  auto hottest_granule = [&] {
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 20000; ++i) ++counts[p.next(rng) / (4 * KiB)];
    std::uint64_t best = 0;
    int best_count = 0;
    for (const auto& [g, c] : counts)
      if (c > best_count) {
        best_count = c;
        best = g;
      }
    return best;
  };
  const std::uint64_t before = hottest_granule();
  p.on_phase(rng);
  const std::uint64_t after = hottest_granule();
  EXPECT_NE(before, after);
}

TEST(Patterns, ChaseStaysInRegion) {
  ChasePattern p(0, 256 * KiB, 4);
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(p.next(rng), 256 * KiB);
}

TEST(Patterns, StridedChangesStrideAcrossPhases) {
  StridedPattern p(0, 1 * MiB, 64, 4096);
  Pcg32 rng(6);
  const PhysAddr a0 = p.next(rng);
  const PhysAddr a1 = p.next(rng);
  EXPECT_EQ(a1 - a0, 64u);
  std::set<std::uint64_t> strides;
  for (int k = 0; k < 32; ++k) {
    p.on_phase(rng);
    const PhysAddr b0 = p.next(rng);
    const PhysAddr b1 = p.next(rng);
    strides.insert(b1 - b0);
  }
  EXPECT_GT(strides.size(), 2u);
}

TEST(Generator, DeterministicBySeed) {
  auto a = make_pgbench(99);
  auto b = make_pgbench(99);
  for (int i = 0; i < 2000; ++i) {
    const TraceRecord ra = a->next();
    const TraceRecord rb = b->next();
    EXPECT_EQ(ra.addr, rb.addr);
    EXPECT_EQ(ra.timestamp, rb.timestamp);
    EXPECT_EQ(ra.cpu, rb.cpu);
  }
}

TEST(Generator, TimestampsMonotoneAndPaced) {
  auto g = make_specjbb(5);
  Cycle prev = 0;
  double sum_gap = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const TraceRecord r = g->next();
    EXPECT_GE(r.timestamp, prev);
    sum_gap += static_cast<double>(r.timestamp - prev);
    prev = r.timestamp;
  }
  EXPECT_NEAR(sum_gap / n, 12.0, 2.0);  // SPECjbb mean gap
}

TEST(Generator, CpuAttributionCoversAllCores) {
  auto g = make_spec2006_mixture(6);
  std::set<CpuId> cpus;
  for (int i = 0; i < 10000; ++i) cpus.insert(g->next().cpu);
  EXPECT_EQ(cpus.size(), 4u);
}

TEST(Generator, ReadFractionApproximatelyHonoured) {
  auto g = make_ft(7);
  int reads = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) reads += g->next().type == AccessType::Read;
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.65, 0.02);
}

TEST(Workloads, Section4AddressesStayBelowReservedTop) {
  for (const WorkloadInfo& w : section4_workloads()) {
    auto g = w.make(11);
    for (int i = 0; i < 50000; ++i) {
      EXPECT_LT(g->next().addr, 4 * GiB - 64 * MiB) << w.name;
    }
  }
}

TEST(Workloads, RegistriesAreComplete) {
  EXPECT_EQ(section4_workloads().size(), 6u);
  EXPECT_EQ(npb_workloads().size(), 10u);
  for (const WorkloadInfo& w : npb_workloads()) {
    EXPECT_GT(w.footprint_bytes, 0u);
    auto g = w.make(1);
    EXPECT_LT(g->next().addr, w.footprint_bytes);
  }
}

TEST(Workloads, NpbUsesClassBForDC) {
  auto dc = make_npb("DC", 1);
  EXPECT_EQ(dc->name(), "DC.B");
  auto ft = make_npb("FT", 1);
  EXPECT_EQ(ft->name(), "FT.C");
}

}  // namespace
}  // namespace hmm
