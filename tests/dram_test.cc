// DRAM substrate tests: address mapping, bank timing, FR-FCFS scheduling,
// bus reservation, background-priority behaviour, and queueing scaling.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.hh"
#include "dram/dram_system.hh"

namespace hmm {
namespace {

DramTiming off_timing() { return DramTiming::off_package_ddr3_1333(); }
DramTiming on_timing() { return DramTiming::on_package_sip(); }

TEST(AddressMapping, DecodeIsInjectivePerLine) {
  const AddressMapping map(4, off_timing());
  std::set<std::tuple<unsigned, unsigned, std::uint64_t, std::uint64_t>> seen;
  Pcg32 rng(1);
  for (int i = 0; i < 20000; ++i) {
    const MachAddr a = rng.bounded64(1ull << 32) & ~63ull;
    const DramCoordinates c = map.decode(a);
    EXPECT_LT(c.channel, 4u);
    EXPECT_LT(c.bank, off_timing().banks);
    seen.insert({c.channel, c.bank, c.row, c.column});
  }
  // Distinct lines decode to distinct coordinates (bijectivity sample).
  std::set<MachAddr> lines;
  Pcg32 rng2(1);
  for (int i = 0; i < 20000; ++i)
    lines.insert(rng2.bounded64(1ull << 32) & ~63ull);
  EXPECT_EQ(seen.size(), lines.size());
}

TEST(AddressMapping, SequentialLinesRotateChannels) {
  const AddressMapping map(4, off_timing());
  std::set<unsigned> channels;
  for (MachAddr a = 0; a < 64 * 8; a += 64)
    channels.insert(map.decode(a).channel);
  EXPECT_EQ(channels.size(), 4u);
}

TEST(AddressMapping, SequentialLinesShareRow) {
  // Lines within one row-bank span keep the same row (open-page locality).
  const AddressMapping map(1, on_timing());
  const DramCoordinates c0 = map.decode(0);
  const DramCoordinates c1 = map.decode(64);
  EXPECT_EQ(c0.row, c1.row);
}

TEST(AddressMapping, XorFoldSpreadsPowerOfTwoStrides) {
  const AddressMapping map(1, on_timing());
  std::set<unsigned> banks;
  // 896MB-aligned bases used to collide on one bank without folding.
  for (int j = 0; j < 8; ++j)
    banks.insert(map.decode(static_cast<MachAddr>(j) * 896 * MiB).bank);
  EXPECT_GE(banks.size(), 6u);
}

TEST(AddressMapping, NoFoldKeepsPlainDecode) {
  const AddressMapping map(1, on_timing(),
                           AddressMapping::Scheme::RowBankColChan,
                           64, /*xor_fold=*/false);
  EXPECT_EQ(map.decode(0).bank, 0u);
  EXPECT_EQ(map.decode(0).channel, 0u);
}

TEST(DramChannel, RowHitIsFasterThanConflict) {
  const AddressMapping map(1, off_timing(),
                           AddressMapping::Scheme::RowBankColChan,
                           64, false);
  DramChannel ch(off_timing(), map);

  auto serve = [&](MachAddr addr, Cycle at) {
    DramRequest r;
    r.addr = addr;
    r.arrival = at;
    ch.submit(r);
    ch.drain_all(at);
    const auto done = ch.take_completions();
    EXPECT_EQ(done.size(), 1u);
    return done[0];
  };

  const DramCompletion first = serve(0, 0);        // cold activate
  const DramCompletion hit = serve(64, 100000);    // same row
  const DramCompletion conflict =
      serve(1ull << 22, 200000);                   // same bank, other row
  EXPECT_TRUE(hit.row_hit);
  EXPECT_FALSE(first.row_hit);
  EXPECT_FALSE(conflict.row_hit);
  EXPECT_LT(hit.finish - hit.arrival, first.finish - first.arrival);
  EXPECT_LT(first.finish - first.arrival, conflict.finish - conflict.arrival);
}

TEST(DramChannel, FrFcfsPrefersRowHit) {
  const AddressMapping map(1, off_timing(),
                           AddressMapping::Scheme::RowBankColChan,
                           64, false);
  DramChannel ch(off_timing(), map);
  // Open row 0 in bank 0.
  DramRequest warm;
  warm.addr = 0;
  warm.arrival = 0;
  ch.submit(warm);
  ch.drain_all(0);
  (void)ch.take_completions();

  // Conflict request arrives first, row hit second; FR-FCFS serves the
  // hit first.
  DramRequest miss;
  miss.addr = 1ull << 22;  // bank 0, different row
  miss.arrival = 1000;
  DramRequest hit;
  hit.addr = 128;  // bank 0, row 0
  hit.arrival = 1000;
  ch.submit(miss);
  ch.submit(hit);
  ch.drain_all(1001);
  const auto done = ch.take_completions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].row_hit);
  EXPECT_LT(done[0].finish, done[1].finish);
}

TEST(DramChannel, FcfsServesInOrder) {
  const AddressMapping map(1, off_timing(),
                           AddressMapping::Scheme::RowBankColChan,
                           64, false);
  DramChannel ch(off_timing(), map, SchedulerPolicy::Fcfs);
  DramRequest warm;
  warm.addr = 0;
  warm.arrival = 0;
  ch.submit(warm);
  ch.drain_all(0);
  (void)ch.take_completions();

  DramRequest miss;
  miss.addr = 1ull << 22;
  miss.arrival = 1000;
  DramRequest hit;
  hit.addr = 128;
  hit.arrival = 1001;
  ch.submit(miss);
  ch.submit(hit);
  ch.drain_all(1001);
  const auto done = ch.take_completions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_FALSE(done[0].row_hit);  // the older conflict goes first
}

TEST(DramChannel, StarvationControlBoundsBypass) {
  const AddressMapping map(1, off_timing(),
                           AddressMapping::Scheme::RowBankColChan,
                           64, false);
  DramChannel ch(off_timing(), map);
  DramRequest warm;
  warm.addr = 0;
  warm.arrival = 0;
  ch.submit(warm);
  ch.drain_all(0);
  (void)ch.take_completions();

  // One conflict request plus a long run of row hits arriving later; the
  // conflict must still be served within the starvation window.
  DramRequest miss;
  miss.addr = 1ull << 22;
  miss.arrival = 100;
  ch.submit(miss);
  for (int i = 1; i <= 50; ++i) {
    DramRequest hit;
    hit.addr = static_cast<MachAddr>(64 * i);
    hit.arrival = 100 + static_cast<Cycle>(i);
    ch.submit(hit);
  }
  ch.drain_all(200);
  const auto done = ch.take_completions();
  Cycle miss_start = 0;
  for (const auto& c : done)
    if (!c.row_hit) miss_start = c.start;
  EXPECT_GT(miss_start, 0u);
  EXPECT_LT(miss_start, 100 + 2000u);
}

TEST(DramChannel, BackgroundYieldsToDemand) {
  const AddressMapping map(1, off_timing(),
                           AddressMapping::Scheme::RowBankColChan,
                           64, false);
  DramChannel ch(off_timing(), map);
  DramRequest bg;
  bg.addr = 1 * MiB;
  bg.priority = Priority::Background;
  bg.arrival = 0;
  DramRequest fg;
  fg.addr = 2 * MiB;
  fg.priority = Priority::Demand;
  fg.arrival = 0;
  ch.submit(bg);
  ch.submit(fg);
  ch.drain_all(0);
  const auto done = ch.take_completions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].priority, Priority::Demand);
}

TEST(DramChannel, StreamingChunkOccupiesBusProportionally) {
  const AddressMapping map(1, off_timing(),
                           AddressMapping::Scheme::RowBankColChan,
                           64, false);
  DramChannel ch(off_timing(), map);
  DramRequest chunk;
  chunk.addr = 0;
  chunk.bytes = 4096;  // 64 bursts
  chunk.arrival = 0;
  ch.submit(chunk);
  ch.drain_all(0);
  const auto done = ch.take_completions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_GE(done[0].finish - done[0].start,
            off_timing().tBurst * (4096 / 64));
}

TEST(DramSystem, RoutesToDecodedChannel) {
  DramSystem sys = DramSystem::make(Region::OffPackage);
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const MachAddr a = rng.bounded64(1ull << 31);
    sys.submit(a, 64, AccessType::Read, Priority::Demand, 0);
  }
  sys.drain_all(0);
  std::size_t served = 0;
  for (unsigned c = 0; c < sys.num_channels(); ++c) {
    const auto& ch = sys.channel(c);
    served += ch.row_hits() + ch.row_misses();
    EXPECT_GT(ch.row_hits() + ch.row_misses(), 100u);  // roughly balanced
  }
  EXPECT_EQ(served, 1000u);
}

TEST(DramSystem, ChannelHintOverridesRouting) {
  DramSystem sys = DramSystem::make(Region::OffPackage);
  for (int i = 0; i < 64; ++i)
    sys.submit(static_cast<MachAddr>(i) * 4096, 64, AccessType::Read,
               Priority::Demand, 0, /*channel_hint=*/2);
  sys.drain_all(0);
  EXPECT_EQ(sys.channel(2).row_hits() + sys.channel(2).row_misses(), 64u);
}

TEST(DramSystem, ManyBanksQueueLessThanFewBanks) {
  // The paper's claim: under random load, the 128-bank on-package DRAM has
  // far less queueing than the 8-bank-per-channel off-package DRAM at the
  // same per-channel pressure.
  DramSystem off(Region::OffPackage, DramTiming::off_package_ddr3_1333(), 1,
                 SchedulerPolicy::FrFcfs);
  DramSystem on(Region::OnPackage, DramTiming::on_package_sip(), 1,
                SchedulerPolicy::FrFcfs);
  Pcg32 rng(5);
  Cycle now = 0;
  for (int i = 0; i < 20000; ++i) {
    const MachAddr a = rng.bounded64(1ull << 30);
    off.submit(a, 64, AccessType::Read, Priority::Demand, now);
    on.submit(a, 64, AccessType::Read, Priority::Demand, now);
    now += 30;
    off.drain_until(now);
    on.drain_until(now);
    (void)off.take_completions();
    (void)on.take_completions();
  }
  EXPECT_LT(on.mean_queue_delay(), off.mean_queue_delay());
}

TEST(DramSystem, WireOverheadMatchesLedger) {
  EXPECT_EQ(DramSystem::make(Region::OnPackage).wire_overhead(), 20u);
  EXPECT_EQ(DramSystem::make(Region::OffPackage).wire_overhead(), 34u);
}

TEST(DramSystem, StatsResetClearsCounters) {
  DramSystem sys = DramSystem::make(Region::OffPackage);
  sys.submit(0, 64, AccessType::Read, Priority::Demand, 0);
  sys.drain_all(0);
  (void)sys.take_completions();
  EXPECT_GT(sys.demand_bytes(), 0u);
  sys.reset_stats();
  EXPECT_EQ(sys.demand_bytes(), 0u);
  EXPECT_EQ(sys.background_bytes(), 0u);
}

}  // namespace
}  // namespace hmm
