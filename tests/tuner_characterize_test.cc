// Tests for the adaptive-granularity tuner (the paper's proposed
// extension) and the trace characterizer.
#include <gtest/gtest.h>

#include "sim/tuner.hh"
#include "trace/characterize.hh"
#include "trace/workloads.hh"

namespace hmm {
namespace {

TEST(Characterizer, BasicCounters) {
  TraceCharacterizer c(4 * KiB, {8 * KiB, 64 * KiB});
  for (int i = 0; i < 100; ++i) {
    TraceRecord r;
    r.addr = static_cast<PhysAddr>(i % 4) * 4 * KiB;
    r.timestamp = static_cast<Cycle>(i) * 10;
    r.cpu = static_cast<CpuId>(i % 2);
    r.type = i % 5 == 0 ? AccessType::Write : AccessType::Read;
    c.add(r);
  }
  const TraceProfile p = c.profile();
  EXPECT_EQ(p.accesses, 100u);
  EXPECT_EQ(p.distinct_pages, 4u);
  EXPECT_EQ(p.footprint_bytes, 16 * KiB);
  EXPECT_NEAR(p.read_fraction, 0.8, 0.01);
  EXPECT_NEAR(p.mean_gap_cycles, 10.0, 0.2);
  ASSERT_EQ(p.per_cpu.size(), 2u);
  EXPECT_EQ(p.per_cpu[0], 50u);
}

TEST(Characterizer, ConcentrationCurveIsMonotone) {
  TraceCharacterizer c(64 * KiB, {64 * MiB, 256 * MiB, 512 * MiB});
  auto g = make_pgbench(1);
  for (int i = 0; i < 100000; ++i) c.add(g->next());
  const TraceProfile p = c.profile();
  ASSERT_EQ(p.traffic_share.size(), 3u);
  EXPECT_LE(p.traffic_share[0], p.traffic_share[1]);
  EXPECT_LE(p.traffic_share[1], p.traffic_share[2]);
  EXPECT_GT(p.traffic_share[0], 0.0);
  EXPECT_LE(p.traffic_share[2], 1.0);
}

TEST(Characterizer, SkewedStreamConcentratesFast) {
  // A pure zipf stream should put most traffic in a small byte budget; a
  // uniform stream should not.
  TraceCharacterizer zipfy(4 * KiB, {1 * MiB});
  TraceCharacterizer flat(4 * KiB, {1 * MiB});
  Pcg32 rng(2);
  ZipfSampler z(16384, 1.2);
  for (int i = 0; i < 50000; ++i) {
    TraceRecord r;
    r.addr = z(rng) * 4 * KiB;
    zipfy.add(r);
    r.addr = rng.bounded64(16384) * 4 * KiB;
    flat.add(r);
  }
  EXPECT_GT(zipfy.profile().traffic_share[0],
            flat.profile().traffic_share[0] * 2);
}

TEST(Tuner, FindsAGranularityAndReportsProbes) {
  TunerConfig cfg;
  cfg.candidate_pages = {64 * KiB, 4 * MiB};
  cfg.probe_accesses = 15000;
  cfg.rounds = 1;
  GranularityTuner tuner(cfg);
  const TunerOutcome out =
      tuner.tune([](std::uint64_t s) { return make_pgbench(s); }, 3);
  EXPECT_TRUE(out.best_page_bytes == 64 * KiB ||
              out.best_page_bytes == 4 * MiB);
  EXPECT_GT(out.best_latency, 0.0);
  // 2 candidates probed + 1 confirmation.
  EXPECT_GE(out.probes.size(), 3u);
  for (const ProbeResult& p : out.probes) {
    EXPECT_GT(p.avg_latency, 0.0);
    EXPECT_GE(p.on_package_fraction, 0.0);
    EXPECT_LE(p.on_package_fraction, 1.0);
  }
}

TEST(Tuner, SingleCandidateShortCircuits) {
  TunerConfig cfg;
  cfg.candidate_pages = {256 * KiB};
  cfg.probe_accesses = 10000;
  GranularityTuner tuner(cfg);
  const TunerOutcome out =
      tuner.tune([](std::uint64_t s) { return make_specjbb(s); }, 5);
  EXPECT_EQ(out.best_page_bytes, 256 * KiB);
}

}  // namespace
}  // namespace hmm
