// Runner subsystem tests: the determinism contract (jobs=1 == jobs=8,
// bit-identical), failure isolation (a throwing job becomes a failed cell,
// the pool survives), seed derivation, the thread pool, and the JSON
// writer's output format.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/units.hh"
#include "fault/sim_error.hh"
#include "runner/json.hh"
#include "runner/result_sink.hh"
#include "runner/runner.hh"
#include "runner/thread_pool.hh"
#include "trace/workloads.hh"

namespace hmm::runner {
namespace {

// --- seed derivation --------------------------------------------------------

TEST(DeriveSeed, DependsOnlyOnBaseSeedAndKey) {
  EXPECT_EQ(derive_seed(42, "fig13/FT/64KB"), derive_seed(42, "fig13/FT/64KB"));
  EXPECT_NE(derive_seed(42, "fig13/FT/64KB"), derive_seed(42, "fig13/FT/4KB"));
  EXPECT_NE(derive_seed(42, "fig13/FT/64KB"), derive_seed(43, "fig13/FT/64KB"));
  EXPECT_NE(derive_seed(0, ""), derive_seed(1, ""));
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.wait_idle();  // idle pool: returns immediately
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SurvivesThrowingTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("escaped"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

// --- runner determinism -----------------------------------------------------

// A 3x3 grid (3 pages x 3 swap intervals) over a scaled-down Section IV
// geometry; small trace so the whole matrix replays twice in seconds.
[[nodiscard]] std::vector<ExperimentSpec> small_grid() {
  WorkloadInfo w{"pgbench", "", 0, make_pgbench};
  std::vector<ExperimentSpec> grid;
  for (const std::uint64_t page : {64 * KiB, 256 * KiB, 1 * MiB}) {
    for (const std::uint64_t interval : {500ull, 1000ull, 4000ull}) {
      ExperimentSpec s;
      s.key = "test/" + format_size(page) + "/i" + std::to_string(interval);
      s.seed_key = "test/pgbench";
      s.workload = w;
      s.config.controller.geom = Geometry{4 * GiB, 512 * MiB, page, 4 * KiB};
      s.config.controller.design = MigrationDesign::LiveMigration;
      s.config.controller.migration_enabled = true;
      s.config.controller.swap_interval = interval;
      s.accesses = 6000;
      grid.push_back(std::move(s));
    }
  }
  return grid;
}

void expect_bit_identical(const CellResult& a, const CellResult& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.ok, b.ok);
  const RunResult &ra = a.result, &rb = b.result;
  EXPECT_EQ(ra.accesses, rb.accesses);
  EXPECT_EQ(ra.avg_latency, rb.avg_latency);  // exact: same FP computation
  EXPECT_EQ(ra.avg_read_latency, rb.avg_read_latency);
  EXPECT_EQ(ra.avg_write_latency, rb.avg_write_latency);
  EXPECT_EQ(ra.p99_latency, rb.p99_latency);
  EXPECT_EQ(ra.on_package_fraction, rb.on_package_fraction);
  EXPECT_EQ(ra.swaps, rb.swaps);
  EXPECT_EQ(ra.migrated_bytes, rb.migrated_bytes);
  EXPECT_EQ(ra.demand_bytes_on, rb.demand_bytes_on);
  EXPECT_EQ(ra.demand_bytes_off, rb.demand_bytes_off);
  EXPECT_EQ(ra.energy_pj, rb.energy_pj);
  EXPECT_EQ(ra.end_time, rb.end_time);
}

TEST(ExperimentRunner, SerialAndParallelAreBitIdentical) {
  const std::vector<ExperimentSpec> grid = small_grid();
  ExperimentRunner serial({.jobs = 1});
  ExperimentRunner parallel({.jobs = 8});
  const std::vector<CellResult> a = serial.run(grid);
  const std::vector<CellResult> b = parallel.run(grid);
  ASSERT_EQ(a.size(), grid.size());
  ASSERT_EQ(b.size(), grid.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(grid[i].key);
    EXPECT_TRUE(a[i].ok) << a[i].error;
    expect_bit_identical(a[i], b[i]);
  }
  // Cells sharing a seed_key replay one stream; distinct configs still
  // produce distinct dynamics.
  EXPECT_EQ(a[0].seed, a[1].seed);
  EXPECT_NE(a[0].result.swaps, a[2].result.swaps);
}

TEST(ExperimentRunner, ResultsComeBackInGridOrder) {
  std::vector<ExperimentSpec> grid(16);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].key = "cell" + std::to_string(i);
    grid[i].job = [i](std::uint64_t) {
      // Reverse-staggered sleeps force out-of-order completion.
      std::this_thread::sleep_for(std::chrono::milliseconds(16 - i));
      RunResult r;
      r.accesses = i;
      return r;
    };
  }
  const std::vector<CellResult> out = ExperimentRunner({.jobs = 8}).run(grid);
  ASSERT_EQ(out.size(), grid.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, grid[i].key);
    EXPECT_EQ(out[i].result.accesses, i);
  }
}

TEST(ExperimentRunner, ThrowingJobIsAFailedCellNotADeadlock) {
  std::vector<ExperimentSpec> grid(6);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].key = "cell" + std::to_string(i);
    if (i == 3) {
      grid[i].job = [](std::uint64_t) -> RunResult {
        throw std::runtime_error("boom");
      };
    } else {
      grid[i].job = [](std::uint64_t) { return RunResult{}; };
    }
  }
  const std::vector<CellResult> out = ExperimentRunner({.jobs = 4}).run(grid);
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i == 3) {
      EXPECT_FALSE(out[i].ok);
      EXPECT_EQ(out[i].error, "boom");
    } else {
      EXPECT_TRUE(out[i].ok);
    }
  }
}

TEST(ExperimentRunner, Jobs1RunsInlineOnTheCallingThread) {
  std::vector<ExperimentSpec> grid(2);
  std::vector<std::thread::id> ran_on;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].key = "cell" + std::to_string(i);
    grid[i].job = [&ran_on](std::uint64_t) {
      ran_on.push_back(std::this_thread::get_id());
      return RunResult{};
    };
  }
  (void)ExperimentRunner({.jobs = 1}).run(grid);
  ASSERT_EQ(ran_on.size(), 2u);
  EXPECT_EQ(ran_on[0], std::this_thread::get_id());
  EXPECT_EQ(ran_on[1], std::this_thread::get_id());
}

TEST(ExperimentRunner, ObserverSeesEveryCellAndTheSummary) {
  struct Recorder : ProgressObserver {
    std::size_t started = 0, cells = 0;
    double elapsed = -1;
    std::uint64_t wall_count = 0;
    void on_start(std::size_t total, unsigned) override { started = total; }
    void on_cell_done(const CellResult&, std::size_t, std::size_t) override {
      ++cells;
    }
    void on_finish(const RunningStat& wall, double e) override {
      wall_count = wall.count();
      elapsed = e;
    }
  } rec;
  std::vector<ExperimentSpec> grid(5);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].key = "cell" + std::to_string(i);
    grid[i].job = [](std::uint64_t) { return RunResult{}; };
  }
  (void)ExperimentRunner({.jobs = 3, .base_seed = 42, .observer = &rec})
      .run(grid);
  EXPECT_EQ(rec.started, 5u);
  EXPECT_EQ(rec.cells, 5u);
  EXPECT_EQ(rec.wall_count, 5u);
  EXPECT_GE(rec.elapsed, 0.0);
}

// --- failure classification, retry, per-cell deadline -----------------------

TEST(ExperimentRunner, FailedCellRetriesOnceWithTheIdenticalSeed) {
  std::vector<ExperimentSpec> grid(1);
  grid[0].key = "flaky";
  auto seeds = std::make_shared<std::vector<std::uint64_t>>();
  grid[0].job = [seeds](std::uint64_t seed) -> RunResult {
    seeds->push_back(seed);
    if (seeds->size() == 1) throw std::runtime_error("transient");
    return RunResult{};
  };
  const std::vector<CellResult> out = ExperimentRunner({.jobs = 1}).run(grid);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].ok);
  EXPECT_EQ(out[0].status, "ok");
  EXPECT_EQ(out[0].attempts, 2u);
  ASSERT_EQ(seeds->size(), 2u);
  EXPECT_EQ((*seeds)[0], (*seeds)[1]);  // the retry replays, not reseeds
}

TEST(ExperimentRunner, RetryCanBeDisabled) {
  std::vector<ExperimentSpec> grid(1);
  grid[0].key = "doomed";
  auto calls = std::make_shared<std::atomic<int>>(0);
  grid[0].job = [calls](std::uint64_t) -> RunResult {
    ++*calls;
    throw std::runtime_error("always");
  };
  const std::vector<CellResult> out =
      ExperimentRunner({.jobs = 1, .retry_failed = false}).run(grid);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].ok);
  EXPECT_EQ(out[0].status, "failed");
  EXPECT_EQ(out[0].attempts, 1u);
  EXPECT_EQ(out[0].error, "always");
  EXPECT_EQ(calls->load(), 1);
}

TEST(ExperimentRunner, SimErrorTimeoutIsClassifiedAsTimeout) {
  std::vector<ExperimentSpec> grid(2);
  grid[0].key = "slow";
  grid[0].job = [](std::uint64_t) -> RunResult {
    throw fault::SimError(fault::SimErrorKind::Timeout, "budget spent");
  };
  grid[1].key = "wedged";
  grid[1].job = [](std::uint64_t) -> RunResult {
    throw fault::SimError(fault::SimErrorKind::Watchdog, "cannot advance");
  };
  const std::vector<CellResult> out = ExperimentRunner({.jobs = 1}).run(grid);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].status, "timeout");
  EXPECT_EQ(out[0].attempts, 2u);  // a timeout still earns one retry
  EXPECT_EQ(out[1].status, "failed");
  EXPECT_NE(out[1].error.find("[watchdog]"), std::string::npos);
}

TEST(ExperimentRunner, CellTimeoutOptionBoundsARealReplay) {
  // A real (non-job) cell with a nanosecond budget: the MemSim deadline
  // fires and the runner reports status "timeout", not a hang.
  ExperimentSpec s;
  s.key = "deadline";
  s.workload = WorkloadInfo{"pgbench", "", 0, make_pgbench};
  s.config.controller.geom = Geometry{4 * GiB, 512 * MiB, 256 * KiB, 4 * KiB};
  s.config.controller.design = MigrationDesign::LiveMigration;
  s.config.controller.migration_enabled = true;
  s.config.controller.swap_interval = 1000;
  s.accesses = 40000;
  const std::vector<CellResult> out =
      ExperimentRunner(
          {.jobs = 1, .cell_timeout_seconds = 1e-9, .retry_failed = false})
          .run({s});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].ok);
  EXPECT_EQ(out[0].status, "timeout");
  EXPECT_NE(out[0].error.find("[timeout]"), std::string::npos);
}

// --- result sink: status fields ---------------------------------------------

TEST(ResultSink, JsonCarriesStatusAttemptsAndErrors) {
  const char* saved = std::getenv("HMM_RESULTS_DIR");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::setenv("HMM_RESULTS_DIR", "/tmp/hmm_sink_test", 1);

  ResultSink sink("sink_status_test");
  CellResult ok;
  ok.key = "good";
  ok.ok = true;
  ok.status = "ok";
  ok.attempts = 1;
  CellResult bad;
  bad.key = "bad";
  bad.ok = false;
  bad.status = "timeout";
  bad.attempts = 2;
  bad.error = "[timeout] budget spent";
  const std::string path = sink.write_json({ok, bad});
  ASSERT_FALSE(path.empty());

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"[timeout] budget spent\""),
            std::string::npos);
  EXPECT_NE(json.find("\"retried\": 1"), std::string::npos);

  if (saved != nullptr)
    ::setenv("HMM_RESULTS_DIR", saved_value.c_str(), 1);
  else
    ::unsetenv("HMM_RESULTS_DIR");
}

// --- JSON writer ------------------------------------------------------------

TEST(JsonWriter, EmitsWellFormedNestedDocument) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  j.kv("name", "fig13");
  j.kv("cells", std::uint64_t{2});
  j.key("metrics").begin_object();
  j.kv("avg_latency", 123.25);
  j.kv("ok", true);
  j.end_object();
  j.key("tags").begin_array();
  j.value("a\"b");
  j.value(std::uint64_t{7});
  j.end_array();
  j.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"fig13\",\n"
            "  \"cells\": 2,\n"
            "  \"metrics\": {\n"
            "    \"avg_latency\": 123.25,\n"
            "    \"ok\": true\n"
            "  },\n"
            "  \"tags\": [\n"
            "    \"a\\\"b\",\n"
            "    7\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriter, EscapesControlCharacters) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_array();
  j.value("line\nbreak\ttab\x01");
  j.end_array();
  EXPECT_NE(os.str().find("line\\nbreak\\ttab\\u0001"), std::string::npos);
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  j.key("empty_obj").begin_object().end_object();
  j.key("empty_arr").begin_array().end_array();
  j.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"empty_obj\": {},\n"
            "  \"empty_arr\": []\n"
            "}\n");
}

}  // namespace
}  // namespace hmm::runner
