// Companion fixture: the approved dialect — SimError throws, a
// rethrowing catch-all, and one annotated deliberate swallow.
namespace hmm::fault {
struct SimError {
  explicit SimError(const char*) {}
};
}  // namespace hmm::fault
using hmm::fault::SimError;

void raise_structured() { throw SimError("structured"); }

int translate() {
  try {
    raise_structured();
  } catch (...) {
    throw;  // rethrow: the boundary above classifies it
  }
  return 0;
}

struct Guard {
  ~Guard() {
    try {
      raise_structured();
      // analyze: allow(errors): destructor must not throw
    } catch (...) {
    }
  }
};
