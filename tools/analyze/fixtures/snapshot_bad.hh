// Sabotage fixture: the snapshot checker must flag dropped_ (never
#pragma once
// saved) and half_ (saved but never restored). WILL_FAIL ctest.
namespace snap {
class Writer {
 public:
  void u64(unsigned long) {}
};
class Reader {
 public:
  unsigned long u64() { return 0; }
};
}  // namespace snap

class Cursor {
 public:
  void save(snap::Writer& w) const {
    w.u64(kept_);
    w.u64(half_);
  }
  void restore(snap::Reader& r) { kept_ = r.u64(); }

 private:
  unsigned long kept_ = 0;
  unsigned long half_ = 0;
  unsigned long dropped_ = 0;
};
