#include "fault/fault_injector.hh"

namespace hmm {

struct Injector {
  bool fires(fault::FaultSite) { return false; }
};

bool step(Injector& inj) {
  return inj.fires(fault::FaultSite::Armed);
}

}  // namespace hmm
