#pragma once
// Companion fixture: one fully covered site, one waived-by-annotation
// site (hook lands in a later PR) — the checker must stay silent.

namespace hmm::fault {

enum class FaultSite : unsigned char {
  Armed,
  Ghost,  // analyze: allow(fault-coverage): hook lands with PCM tier
};
inline constexpr unsigned kFaultSiteCount = 2;

constexpr const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::Armed: return "armed";
    case FaultSite::Ghost: return "ghost";
  }
  return "?";
}

}  // namespace hmm::fault
