#include "fault/fault_injector.hh"

int main() {
  return hmm::fault::FaultSite::Armed == hmm::fault::FaultSite::Armed
             ? 0
             : 1;
}
