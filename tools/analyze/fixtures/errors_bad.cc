// Sabotage fixture: every error-discipline rule must fire. WILL_FAIL.
extern "C" void abort(void);

struct Boom {};

void explode() { throw Boom{}; }  // not a SimError

int swallow() {
  try {
    explode();
  } catch (...) {
    // Swallows every error class, reports nothing.
  }
  return 0;
}

void die() { abort(); }  // vanishing-invariant idiom
