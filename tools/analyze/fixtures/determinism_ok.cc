// Companion fixture: the same constructs as determinism_bad.cc, each
// either rewritten the approved way or carrying an annotated
// suppression — the self-test proves allow(determinism) suppresses.
#include <algorithm>
#include <ctime>
#include <unordered_map>
#include <utility>
#include <vector>

struct Stats {
  std::unordered_map<unsigned long, unsigned long> page_counts_;

  unsigned long emit_sum() const {
    std::vector<std::pair<unsigned long, unsigned long>> v(
        page_counts_.begin(), page_counts_.end());
    std::sort(v.begin(), v.end());
    unsigned long out = 0;
    for (const auto& kv : v) out = out * 31 + kv.second;
    return out;
  }

  unsigned long min_key() const {
    unsigned long best = ~0ul;
    // analyze: allow(determinism): min-scan, total order on keys
    for (const auto& kv : page_counts_)
      if (kv.first < best) best = kv.first;
    return best;
  }

  unsigned long stamp() const {
    // analyze: allow(determinism): fixture watchdog, not sim output
    return static_cast<unsigned long>(time(nullptr));
  }
};
