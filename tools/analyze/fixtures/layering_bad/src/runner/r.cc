// Sabotage: runner must never include dram/ (cells fork the whole
// sim; the orchestrator never touches timing).
#include "dram/d.hh"

int runner_r() { return dram_d(); }
