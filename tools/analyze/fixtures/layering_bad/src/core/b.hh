#pragma once
#include "core/a.hh"

inline int core_b() { return 2; }
