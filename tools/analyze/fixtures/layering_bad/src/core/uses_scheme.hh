#pragma once
// Sabotage: core must never include schemes/ (the zoo plugs into
// core, not the reverse).
#include "schemes/s.hh"
