#pragma once
// Sabotage: a <-> b is a file-level include cycle.
#include "core/b.hh"

inline int core_a() { return 1; }
