#pragma once

inline int scheme_s() { return 3; }
