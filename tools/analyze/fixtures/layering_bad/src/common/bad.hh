#pragma once
// Sabotage: common is the leaf layer — this include must be flagged.
#include "core/a.hh"

inline int common_bad() { return core_a(); }
