#pragma once

inline int dram_d() { return 4; }
