// Sabotage fixture: every determinism rule must fire on this file.
// Registered as a WILL_FAIL ctest — if the checker ever goes blind,
// this test passing unexpectedly turns CI red (non-vacuity).
#include <ctime>
#include <map>
#include <unordered_map>

struct Stats {
  std::unordered_map<unsigned long, unsigned long> page_counts_;
  std::map<int*, int> by_ptr_;  // pointer-valued key

  unsigned long emit_sum() const {
    unsigned long out = 0;
    // Iteration order leaks straight into the emitted sequence.
    for (const auto& kv : page_counts_) out = out * 31 + kv.second;
    return out;
  }

  unsigned long stamp() const {
    return static_cast<unsigned long>(time(nullptr));  // wall clock
  }
};
