// Names only the armed site; Ghost stays untested on purpose.
#include "fault/fault_injector.hh"

int main() {
  return hmm::fault::FaultSite::Armed == hmm::fault::FaultSite::Armed
             ? 0
             : 1;
}
