#pragma once
// Sabotage fixture: Ghost is declared but never armed at a fires()
// call site and never named in a test — both rules must fire.

namespace hmm::fault {

enum class FaultSite : unsigned char {
  Armed,
  Ghost,
};
inline constexpr unsigned kFaultSiteCount = 2;

constexpr const char* to_string(FaultSite s) noexcept {
  switch (s) {
    case FaultSite::Armed: return "armed";
    case FaultSite::Ghost: return "ghost";
  }
  return "?";
}

}  // namespace hmm::fault
