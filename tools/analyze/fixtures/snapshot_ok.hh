// Companion fixture: full coverage, an annotated constant, and an
#pragma once
// unowned pointer — the snapshot checker must stay silent.
namespace snap {
class Writer {
 public:
  void u64(unsigned long) {}
};
class Reader {
 public:
  unsigned long u64() { return 0; }
};
}  // namespace snap

class Cursor {
 public:
  void save(snap::Writer& w) const { w.u64(kept_); }
  void restore(snap::Reader& r) { kept_ = r.u64(); }

 private:
  unsigned long kept_ = 0;
  unsigned long cfg_ = 0;  // no-snapshot(construction-time config)
  const Cursor* parent_ = nullptr;  // not owned
};
