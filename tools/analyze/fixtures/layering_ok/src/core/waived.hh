#pragma once
// A rule violation carrying a suppression: the self-test proves
// allow(layering) suppresses (one-off seams must be visible in-line).
#include "ras/r.hh"  // analyze: allow(layering): migration shim

inline int core_waived() { return ras_r(); }
