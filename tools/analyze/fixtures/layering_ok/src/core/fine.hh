#pragma once
// core -> common is an allowed downward edge.
#include "common/base.hh"

inline int core_fine() { return common_base(); }
