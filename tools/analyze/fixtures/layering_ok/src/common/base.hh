#pragma once

inline int common_base() { return 1; }
