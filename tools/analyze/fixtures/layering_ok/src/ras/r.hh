#pragma once
#include "common/base.hh"

inline int ras_r() { return common_base(); }
