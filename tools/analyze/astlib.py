"""libclang loading and translation-unit plumbing for the AST backend.

The suite is driven by the build tree's compile_commands.json
(CMAKE_EXPORT_COMPILE_COMMANDS is on by default and in every preset),
so each .cc is parsed with its real flags. Standalone files (sabotage
fixtures) parse with a minimal `-std=c++20 -I src` fallback.

libclang discovery order:
  1. HMM_LIBCLANG=/path/to/libclang.so (explicit override)
  2. clang.cindex's own default resolution
  3. common distro sonames/globs (libclang-14 ... libclang-18)

When none resolves, available() returns False and the driver runs the
text backend instead — a skip notice, never a crash (the repo must stay
checkable in containers that only carry a compiler and python3).
"""

import glob
import json
import os
import shlex

_clang = None          # the clang.cindex module once loaded
_load_error = None     # why loading failed, for the skip notice


def _try_load():
    global _clang, _load_error
    if _clang is not None or _load_error is not None:
        return
    try:
        from clang import cindex
    except ImportError as e:
        _load_error = f"python module clang.cindex not importable ({e})"
        return
    override = os.environ.get("HMM_LIBCLANG")
    candidates = [override] if override else [None]
    if not override:
        for pat in ("libclang-*.so*", "libclang.so*", "libclang-*.dylib",
                    "libclang.dylib"):
            for d in ("/usr/lib/llvm-*/lib", "/usr/lib/x86_64-linux-gnu",
                      "/usr/lib", "/usr/local/lib"):
                candidates.extend(sorted(glob.glob(os.path.join(d, pat)),
                                         reverse=True))
    last = None
    for cand in candidates:
        try:
            if cand is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
            idx = cindex.Index.create()
            del idx
            _clang = cindex
            return
        except Exception as e:  # cindex raises raw LibclangError
            last = e
            continue
    _load_error = f"libclang shared library not loadable ({last})"


def available():
    _try_load()
    return _clang is not None


def load_error():
    _try_load()
    return _load_error or ""


def cindex():
    """The clang.cindex module; call available() first."""
    _try_load()
    return _clang


def compile_args(build_dir, root):
    """Maps absolute source path -> argument list, from the build tree's
    compile_commands.json. Empty when the file is missing."""
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        return {}
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    out = {}
    for e in entries:
        src = e["file"]
        if not os.path.isabs(src):
            src = os.path.join(e.get("directory", root), src)
        if "arguments" in e:
            args = list(e["arguments"])
        else:
            args = shlex.split(e.get("command", ""))
        # Drop the compiler, the input file, and output options: libclang
        # wants only the flags.
        cleaned = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if os.path.abspath(a) == os.path.abspath(src):
                continue
            cleaned.append(a)
        out[os.path.abspath(src)] = cleaned
    return out


FALLBACK_ARGS = ["-std=c++20", "-xc++"]


class TuCache:
    """Parses translation units on demand, remembering failures."""

    def __init__(self, build_dir, root):
        self.root = root
        self.args = compile_args(build_dir, root)
        self.index = cindex().Index.create()
        self.errors = []

    def parse(self, path):
        """Returns a TranslationUnit or None (error recorded)."""
        apath = os.path.abspath(os.path.join(self.root, path))
        args = self.args.get(apath)
        if args is None:
            args = FALLBACK_ARGS + ["-I", os.path.join(self.root, "src")]
        try:
            tu = self.index.parse(apath, args=args)
        except Exception as e:
            self.errors.append(f"{path}: parse failed: {e}")
            return None
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            self.errors.append(f"{path}: {fatal[0].spelling}")
            return None
        return tu


def walk(cursor):
    """Depth-first traversal yielding every descendant cursor."""
    stack = [cursor]
    while stack:
        c = stack.pop()
        yield c
        stack.extend(reversed(list(c.get_children())))


def location_of(cursor, root):
    """(repo-relative-path, line) for a cursor, or (None, 0) when the
    location is outside the repo (system headers)."""
    loc = cursor.location
    if loc.file is None:
        return None, 0
    path = os.path.abspath(loc.file.name)
    rroot = os.path.abspath(root) + os.sep
    if not path.startswith(rroot):
        return None, 0
    return path[len(rroot):].replace(os.sep, "/"), loc.line
