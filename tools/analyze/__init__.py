"""hmm semantic analysis suite (tools/analyze).

Importable as the `analyze` package with tools/ on sys.path; the CLI
entry point is analyze.py in this directory. scripts/lint.py imports
this package for its AST snapshot backend; this package imports
scripts/lint.py for its regex snapshot fallback (both imports are
lazy, so neither tool needs the other's dependencies to start).
"""
