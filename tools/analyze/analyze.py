#!/usr/bin/env python3
"""Semantic analysis suite for the hmm codebase.

Five repo-specific checkers over the source tree (see checks/*.py for
the full contracts):

  determinism      unordered-iteration order, pointer keys, wall clocks
  snapshot         AST-accurate save()/restore() member coverage
  errors           SimError-only throws, no swallowing catch(...),
                   no bare assert/abort
  layering         include-graph module rules + file-level cycles
  fault-coverage   every FaultSite armed at an injector call site and
                   named in a test

Backends:
  ast    libclang (python clang.cindex) driven by the build tree's
         compile_commands.json — authoritative where it applies.
  text   degraded token/regex scan — always available, never
         false-positives by construction (it skips what it cannot
         prove), so a container without libclang still gates.

Default is `--backend auto`: text always runs; the AST passes are
layered on top when libclang loads, and findings dedupe by
(path, line, check). `--backend ast` hard-fails when libclang is
missing (CI uses it so the strong backend can never silently degrade).

Suppression: `// analyze: allow(<check>)[: reason]` on the offending
line or the line above. Non-vacuity: every checker has a sabotage
fixture under tools/analyze/fixtures/ registered as a WILL_FAIL ctest,
plus `--self-test` proving each checker fires and each suppression
suppresses under every available backend.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

from analyze import astlib                      # noqa: E402
from analyze import checks as checks_pkg        # noqa: E402
from analyze.textlib import (CXX_EXTENSIONS,    # noqa: E402
                             SourceFile)

FIXTURE_DIR = "tools/analyze/fixtures"


class Context:
    """Everything a checker sees: the scanned files, the repo root, and
    (in AST mode) parsed translation units."""

    def __init__(self, root, files, explicit, build_dir, use_ast):
        self.root = root
        self.files = files
        self.explicit = set(explicit)
        self.build_dir = build_dir
        self._by_path = {sf.path: sf for sf in files}
        self._tu_cache = None
        self.use_ast = use_ast
        if use_ast:
            self.cindex = astlib.cindex()
            self.walk = astlib.walk

    def file_at(self, path):
        return self._by_path.get(path)

    def location_of(self, cursor):
        return astlib.location_of(cursor, self.root)

    def tus(self):
        """Yields (TranslationUnit, path) for every scanned .cc file,
        plus headers that no scanned .cc includes (parsed standalone),
        so header-only classes are still visited."""
        if self._tu_cache is None:
            cache = astlib.TuCache(self.build_dir, self.root)
            tus = []
            covered = set()
            cc_files = [sf.path for sf in self.files
                        if sf.path.endswith((".cc", ".cpp"))]
            rroot = os.path.abspath(self.root) + os.sep
            for path in cc_files:
                tu = cache.parse(path)
                if tu is None:
                    continue
                for inc in tu.get_includes():
                    if inc.include is None:
                        continue
                    ipath = os.path.abspath(inc.include.name)
                    if ipath.startswith(rroot):
                        covered.add(ipath[len(rroot):].replace(
                            os.sep, "/"))
                tus.append((tu, path))
            for sf in self.files:
                if sf.path.endswith((".hh", ".h", ".hpp")) and \
                        sf.path not in covered:
                    tu = cache.parse(sf.path)
                    if tu is not None:
                        tus.append((tu, sf.path))
            self.parse_errors = cache.errors
            self._tu_cache = tus
        return self._tu_cache


def git_files(root):
    out = subprocess.run(["git", "ls-files"], cwd=root,
                         capture_output=True, text=True, check=True)
    return [f for f in out.stdout.splitlines()
            if f.endswith(CXX_EXTENSIONS)]


def load_files(root, paths):
    files = []
    for p in sorted(set(paths)):
        full = os.path.join(root, p)
        try:
            with open(full, encoding="utf-8") as f:
                files.append(SourceFile(p, f.read()))
        except OSError as e:
            print(f"analyze: {p}: unreadable: {e}", file=sys.stderr)
            sys.exit(2)
    return files


def run_checks(ctx, selected):
    findings = []
    for mod in checks_pkg.ALL:
        if mod.NAME not in selected:
            continue
        found = list(mod.run_text(ctx))
        # The AST pass re-derives what the text pass already proved, in
        # stronger form — dedupe it against text by (path, line, check).
        # Within a backend, distinct messages on one line all stand.
        text_keys = {(f.path, f.line, f.check) for f in found}
        if ctx.use_ast and mod.run_ast is not None:
            found.extend(f for f in mod.run_ast(ctx)
                         if (f.path, f.line, f.check) not in text_keys)
        seen = set()
        for f in found:
            key = (f.path, f.line, f.check, f.message)
            if key in seen:
                continue
            seen.add(key)
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings


def make_context(root, file_args, build_dir, use_ast):
    if file_args:
        rel = [os.path.relpath(os.path.join(root, p), root).replace(
            os.sep, "/") for p in file_args]
        # Explicit files (fixtures) are checked unconditionally, but
        # checkers that correlate across the tree (fault-coverage,
        # snapshot sibling lookup) still see the file set as given.
        return Context(root, load_files(root, rel), rel, build_dir,
                       use_ast)
    tracked = [p for p in git_files(root)
               if (p.startswith("src/") or p.startswith("tests/"))
               and not p.startswith(FIXTURE_DIR)]
    return Context(root, load_files(root, tracked), [], build_dir,
                   use_ast)


def resolve_backend(requested):
    """Returns (use_ast, notice)."""
    if requested == "text":
        return False, "text backend requested"
    if astlib.available():
        return True, ""
    if requested == "ast":
        print("analyze: --backend ast but libclang is unavailable: "
              f"{astlib.load_error()}", file=sys.stderr)
        sys.exit(2)
    return False, (f"libclang unavailable ({astlib.load_error()}); "
                   "running the degraded text backend — pip install "
                   "libclang (or set HMM_LIBCLANG) for AST-accurate "
                   "analysis")


def self_test(backend):
    from analyze.selftest import run as selftest_run
    return selftest_run(backend)


def main():
    ap = argparse.ArgumentParser(
        description="hmm semantic analysis suite")
    ap.add_argument("--root", default=os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..")))
    ap.add_argument("--build-dir", default="build",
                    help="build tree holding compile_commands.json")
    ap.add_argument("--checks", default="all",
                    help="comma-separated checker names (default all)")
    ap.add_argument("--backend", choices=("auto", "ast", "text"),
                    default="auto")
    ap.add_argument("--report", metavar="FILE",
                    help="also write findings as JSON")
    ap.add_argument("--self-test", action="store_true",
                    help="prove every checker fires on its sabotage "
                    "fixture and every suppression suppresses")
    ap.add_argument("files", nargs="*",
                    help="explicit files to scan (default: tracked "
                    "src/ + tests/ sources)")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.backend)

    names = [m.NAME for m in checks_pkg.ALL]
    selected = set(names) if args.checks == "all" else \
        set(args.checks.split(","))
    unknown = selected - set(names)
    if unknown:
        print(f"analyze: unknown check(s): {', '.join(sorted(unknown))}"
              f" (valid: {', '.join(names)})", file=sys.stderr)
        return 2

    use_ast, notice = resolve_backend(args.backend)
    if notice:
        print(f"analyze: NOTE: {notice}", file=sys.stderr)

    root = os.path.abspath(args.root)
    build_dir = args.build_dir if os.path.isabs(args.build_dir) else \
        os.path.join(root, args.build_dir)
    ctx = make_context(root, args.files, build_dir, use_ast)
    findings = run_checks(ctx, selected)

    for f in findings:
        print(f)
    for e in getattr(ctx, "parse_errors", []):
        print(f"analyze: NOTE: {e}", file=sys.stderr)

    if args.report:
        payload = {
            "backend": "ast" if use_ast else "text",
            "checks": sorted(selected),
            "files_scanned": len(ctx.files),
            "findings": [f.to_json() for f in findings],
        }
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    mode = "ast+text" if use_ast else "text"
    if findings:
        print(f"analyze[{mode}]: {len(findings)} finding(s) in "
              f"{len(ctx.files)} files", file=sys.stderr)
        return 1
    print(f"analyze[{mode}]: clean ({len(ctx.files)} files, "
          f"checks: {', '.join(sorted(selected))})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
