"""--self-test: non-vacuity proof for every checker and suppression.

Mirrors the model checker's sabotage modes: each checker must fire on
its `*_bad` fixture (with the expected finding count floor) and stay
silent on its `*_ok` companion, which re-states the same constructs
either rewritten the approved way or carrying allow() annotations. A
checker edit that goes blind — or a suppression parser that stops
suppressing — fails this test instead of silently passing the tree.

Runs under the text backend always, and again under the AST backend
when libclang is available, so CI proves both paths.
"""

import os
import sys

from . import astlib
from . import checks as checks_pkg

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.normpath(os.path.join(HERE, "..", ".."))
FIX = "tools/analyze/fixtures"

# (check, bad file-set or root, ok file-set or root, min bad findings)
CASES = [
    ("determinism", [f"{FIX}/determinism_bad.cc"],
     [f"{FIX}/determinism_ok.cc"], 3),
    ("snapshot", [f"{FIX}/snapshot_bad.hh"],
     [f"{FIX}/snapshot_ok.hh"], 2),
    ("errors", [f"{FIX}/errors_bad.cc"],
     [f"{FIX}/errors_ok.cc"], 3),
    ("layering", f"{FIX}/layering_bad", f"{FIX}/layering_ok", 4),
    ("fault-coverage", f"{FIX}/fault_bad", f"{FIX}/fault_ok", 2),
]


def _context(target, use_ast):
    # Imported here to dodge the analyze.py <-> selftest import knot.
    from .analyze import make_context
    if isinstance(target, list):
        return make_context(ROOT, target, os.path.join(ROOT, "build"),
                            use_ast)
    return make_context(os.path.join(ROOT, target), [],
                        os.path.join(ROOT, "build"), use_ast)


def _run(check, target, use_ast):
    from .analyze import run_checks
    return run_checks(_context(target, use_ast), {check})


def _backend_pass(use_ast, label):
    failures = []
    for check, bad, ok, floor in CASES:
        got = _run(check, bad, use_ast)
        wrong = [f for f in got if f.check != check]
        if len(got) < floor:
            failures.append(
                f"[{label}] {check}: expected >= {floor} findings on "
                f"its sabotage fixture, got {len(got)} — the checker "
                "has gone blind")
        if wrong:
            failures.append(
                f"[{label}] {check}: fixture raised a foreign check "
                f"id: {wrong[0]}")
        clean = _run(check, ok, use_ast)
        if clean:
            failures.append(
                f"[{label}] {check}: the ok/suppressed fixture still "
                f"raised: {clean[0]} — suppressions are broken")
    return failures


def run(backend):
    failures = _backend_pass(False, "text")
    ran = ["text"]
    if backend != "text":
        if astlib.available():
            failures += _backend_pass(True, "ast")
            ran.append("ast")
        elif backend == "ast":
            print("analyze --self-test: --backend ast but libclang is "
                  f"unavailable: {astlib.load_error()}",
                  file=sys.stderr)
            return 2
        else:
            print("analyze --self-test: NOTE: libclang unavailable "
                  f"({astlib.load_error()}); AST pass skipped",
                  file=sys.stderr)
    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    verdict = "FAIL" if failures else "PASS"
    print(f"analyze --self-test: {verdict} "
          f"({len(CASES)} checkers x {{{', '.join(ran)}}} backends)",
          file=sys.stderr)
    return 1 if failures else 0
