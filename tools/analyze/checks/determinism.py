"""determinism — unordered-iteration order, pointer keys, wall clocks.

The repo's bit-identity guarantees (serial == parallel sweeps, golden
snapshot CRCs, byte-compared SEC-DED outcomes) all die the moment an
`std::unordered_map`/`unordered_set` iteration order, a pointer value,
or the host clock leaks into simulation output. Three rules:

  unordered-iter   any iteration over an unordered container in src/
                   (range-for or explicit `.begin()` iterator loop).
                   This deliberately over-approximates "flows into a
                   snapshot / JSON / stat emission / migration
                   decision": proving order-insensitivity (collect then
                   sort; min-scan with a total tie-break) is exactly
                   what the required allow(determinism) annotation
                   documents, one reason per site.
  pointer-key      a map/set keyed on a raw pointer: iteration order and
                   any ordering comparisons follow the allocator, which
                   no seed controls.
  wall-clock       steady/system/high_resolution clock, time(), clock(),
                   rand() inside deterministic sim paths (all of src/
                   except src/runner/, whose wall-clock use — deadlines,
                   ETA, throughput — is orchestration by design).

The AST backend types the range expression itself; the text backend
tracks names declared with an unordered type anywhere in the scanned
set and skips names that are ambiguous (also declared as an ordered
container elsewhere), so it never false-positives — libclang narrows,
text never widens wrongly.
"""

import re

from ..textlib import Finding

NAME = "determinism"

SIM_PATH_EXCLUDES = ("src/runner/",)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*"
    r"(\w+)\s*(?:;|=|\{)")
ORDERED_DECL_RE = re.compile(
    r"\b(?:vector|array|deque|list|map|set|multimap|multiset|string|"
    r"span|optional)\s*<[^;{}()]*>\s*(\w+)\s*(?:;|=|\{)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([A-Za-z_]\w*)\s*\)")
ITER_LOOP_RE = re.compile(r"\bfor\s*\([^;)]*=\s*([A-Za-z_]\w*)\.begin\(\)")
# First template argument of a map/set ends in `*` -> pointer key.
PTR_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"[A-Za-z_][\w:<>\s]*\*\s*[,>]")
WALL_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"
    r"|(?<![\w:])(?:time|clock)\s*\(\s*(?:NULL|nullptr)?\s*\)"
    r"|(?<![\w:])s?rand\s*\(")


def in_sim_path(path):
    return path.startswith("src/") and \
        not path.startswith(SIM_PATH_EXCLUDES)


def _unambiguous_unordered_names(files):
    """Names declared with an unordered container type somewhere and
    never with an ordered container type anywhere (text mode cannot
    resolve scopes, so a name like `counts_` that is an unordered map in
    one class and a vector in another is left to the AST backend)."""
    unordered, ordered = set(), set()
    for sf in files:
        for i, code in enumerate(sf.code):
            joined = code if ">" in code else code + " " + \
                (sf.code[i + 1] if i + 1 < len(sf.code) else "")
            for m in UNORDERED_DECL_RE.finditer(joined):
                unordered.add(m.group(1))
            for m in ORDERED_DECL_RE.finditer(joined):
                ordered.add(m.group(1))
    return unordered - ordered


def run_text(ctx):
    findings = []
    names = _unambiguous_unordered_names(ctx.files)
    for sf in ctx.files:
        explicit = sf.path in ctx.explicit
        if not (explicit or sf.path.startswith("src/")):
            continue
        for i, code in enumerate(sf.code):
            lineno = i + 1
            for rx in (RANGE_FOR_RE, ITER_LOOP_RE):
                m = rx.search(code)
                if m and m.group(1) in names and \
                        not sf.allowed(lineno, NAME):
                    findings.append(Finding(
                        sf.path, lineno, NAME,
                        f"iteration over unordered container "
                        f"'{m.group(1)}': bucket order is not part of "
                        "the seed; sort first or annotate "
                        "// analyze: allow(determinism): <why the "
                        "order cannot leak>"))
            if PTR_KEY_RE.search(code) and not sf.allowed(lineno, NAME):
                findings.append(Finding(
                    sf.path, lineno, NAME,
                    "pointer-valued map/set key: ordering follows the "
                    "allocator, not the seed; key on a stable id"))
            if (explicit or in_sim_path(sf.path)) and \
                    WALL_CLOCK_RE.search(code) and \
                    not sf.allowed(lineno, NAME):
                findings.append(Finding(
                    sf.path, lineno, NAME,
                    "wall-clock / unseeded randomness in a sim path: "
                    "simulated behaviour must be a pure function of the "
                    "seed (watchdog-style uses need an annotated "
                    "reason)"))
    return findings


def _is_unordered_type(type_spelling):
    return "unordered_map<" in type_spelling or \
        "unordered_set<" in type_spelling or \
        "unordered_multimap<" in type_spelling or \
        "unordered_multiset<" in type_spelling


def _pointer_key(type_spelling):
    m = re.search(
        r"(?:unordered_)?(?:map|set|multimap|multiset)<([^,>]*)[,>]",
        type_spelling)
    return m is not None and m.group(1).rstrip().endswith("*")


def run_ast(ctx):
    ci = ctx.cindex
    findings = []
    seen = set()

    def emit(path, line, message):
        key = (path, line, message[:40])
        if key in seen:
            return
        seen.add(key)
        sf = ctx.file_at(path)
        if sf is not None and sf.allowed(line, NAME):
            return
        findings.append(Finding(path, line, NAME, message))

    for tu, _tu_path in ctx.tus():
        for c in ctx.walk(tu.cursor):
            path, line = ctx.location_of(c)
            if path is None:
                continue
            explicit = path in ctx.explicit
            if not (explicit or path.startswith("src/")):
                continue
            kind = c.kind
            if kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(c.get_children())
                if not children:
                    continue
                range_expr = children[-2] if len(children) >= 2 else None
                if range_expr is None:
                    continue
                spelled = range_expr.type.get_canonical().spelling
                if _is_unordered_type(spelled):
                    emit(path, line,
                         "iteration over unordered container "
                         f"(range type: {range_expr.type.spelling}): "
                         "bucket order is not part of the seed; sort "
                         "first or annotate // analyze: "
                         "allow(determinism): <why>")
            elif kind in (ci.CursorKind.FIELD_DECL,
                          ci.CursorKind.VAR_DECL):
                spelled = c.type.get_canonical().spelling
                if _pointer_key(spelled):
                    emit(path, line,
                         f"'{c.spelling}' keys a map/set on a raw "
                         "pointer: ordering follows the allocator, not "
                         "the seed; key on a stable id")
            elif kind == ci.CursorKind.CALL_EXPR and \
                    (explicit or in_sim_path(path)):
                if c.spelling in ("time", "clock", "rand", "srand"):
                    emit(path, line,
                         f"{c.spelling}() in a sim path: simulated "
                         "behaviour must be a pure function of the "
                         "seed")
        # Clock type references are cheaper to catch textually per TU
        # file set; the text backend already covers them, so the AST
        # pass reuses it for wall-clock only via the driver (both
        # backends run the text wall-clock rule; findings dedupe).
    return findings
