"""errors — structured-error discipline in shipped simulation code.

One catch site in the runner classifies any cell outcome; that only
works if src/ speaks exactly one exception dialect. Three rules:

  throw-type     only `SimError` (any qualification) may be thrown from
                 src/; bare `throw;` rethrows are fine. Internal
                 control-flow exceptions caught in the same subsystem
                 need an annotated reason.
  catch-all      `catch (...)` must rethrow (`throw;`) somewhere in its
                 body or carry an allow(errors) annotation explaining
                 what swallowing buys (destructor guards, fork-child
                 boundaries, pool survival).
  bare-assert    assert()/abort() outside tests vanish in release
                 builds / kill the process; invariants use HMM_CHECK
                 (always evaluated, throws SimError).

The AST backend resolves the thrown expression's type; the text backend
matches the spelled throw target, so both agree on every idiom the
repo uses.
"""

import re

from ..textlib import Finding, find_matching_brace

NAME = "errors"

THROW_RE = re.compile(r"(?<![\w_])throw\s+([A-Za-z_][\w:]*)")
SIM_ERROR_NAMES = re.compile(
    r"^(?:::)?(?:hmm::)?(?:fault::)?SimError$")
CATCH_ALL_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
RETHROW_RE = re.compile(r"(?<![\w_])throw\s*;")
ASSERT_RE = re.compile(r"(?<![\w_])(assert|abort)\s*\(")


def _scoped(ctx, sf):
    return sf.path in ctx.explicit or sf.path.startswith("src/")


def run_text(ctx):
    findings = []
    for sf in ctx.files:
        if not _scoped(ctx, sf):
            continue
        joined = "\n".join(sf.code)
        for i, code in enumerate(sf.code):
            lineno = i + 1
            m = THROW_RE.search(code)
            if m and not SIM_ERROR_NAMES.match(m.group(1)) and \
                    m.group(1) != "throw" and \
                    not sf.allowed(lineno, NAME):
                findings.append(Finding(
                    sf.path, lineno, NAME,
                    f"throw of '{m.group(1)}': src/ throws only "
                    "SimError so the runner can classify every "
                    "outcome (annotate internal control-flow "
                    "exceptions with a reason)"))
            m = CATCH_ALL_RE.search(code)
            if m and not sf.allowed(lineno, NAME):
                # Find the catch block and demand a rethrow inside.
                start = sum(len(l) + 1 for l in sf.code[:i]) + m.end()
                brace = joined.find("{", start)
                close = find_matching_brace(joined, brace) \
                    if brace >= 0 else -1
                body = joined[brace:close + 1] if close > 0 else ""
                if not RETHROW_RE.search(body):
                    findings.append(Finding(
                        sf.path, lineno, NAME,
                        "catch (...) that never rethrows swallows "
                        "every error class; rethrow or annotate "
                        "// analyze: allow(errors): <what swallowing "
                        "buys here>"))
            m = ASSERT_RE.search(code)
            if m and "static_assert" not in code and \
                    not sf.allowed(lineno, NAME):
                findings.append(Finding(
                    sf.path, lineno, NAME,
                    f"{m.group(1)}() vanishes in release builds / "
                    "kills the process; use HMM_CHECK so the "
                    "invariant throws a structured SimError"))
    return findings


def run_ast(ctx):
    ci = ctx.cindex
    findings = []
    seen = set()

    def emit(path, line, message):
        key = (path, line, message[:30])
        if key in seen:
            return
        seen.add(key)
        sf = ctx.file_at(path)
        if sf is not None and sf.allowed(line, NAME):
            return
        findings.append(Finding(path, line, NAME, message))

    for tu, _ in ctx.tus():
        for c in ctx.walk(tu.cursor):
            path, line = ctx.location_of(c)
            if path is None:
                continue
            if not (path in ctx.explicit or path.startswith("src/")):
                continue
            if c.kind == ci.CursorKind.CXX_THROW_EXPR:
                kids = list(c.get_children())
                if not kids:
                    continue  # bare rethrow
                spelled = kids[0].type.get_canonical().spelling
                if "SimError" not in spelled:
                    emit(path, line,
                         f"throw of '{kids[0].type.spelling}': src/ "
                         "throws only SimError so the runner can "
                         "classify every outcome")
            elif c.kind == ci.CursorKind.CXX_CATCH_STMT:
                kids = list(c.get_children())
                has_decl = any(k.kind == ci.CursorKind.VAR_DECL
                               for k in kids)
                if has_decl:
                    continue  # typed catch
                rethrows = any(
                    k.kind == ci.CursorKind.CXX_THROW_EXPR and
                    not list(k.get_children())
                    for k in ctx.walk(c))
                if not rethrows:
                    emit(path, line,
                         "catch (...) that never rethrows swallows "
                         "every error class; rethrow or annotate "
                         "with a reason")
    # assert()/abort() are macros/libc calls the token stream sees more
    # reliably than the AST (assert expands away under NDEBUG); the
    # text rule is authoritative for them and already ran.
    return findings
