"""Checker registry for the semantic analysis suite.

Each checker module exposes:
  NAME       the check id used in findings and allow() suppressions
  run_text   degraded backend over SourceFile objects (always available)
  run_ast    AST backend over libclang TUs (None = text is authoritative)

Order here is the report order.
"""

from . import determinism
from . import snapshot
from . import errors
from . import layering
from . import fault_coverage

ALL = [determinism, snapshot, errors, layering, fault_coverage]

BY_NAME = {m.NAME: m for m in ALL}
