"""fault-coverage — every FaultSite is armed and exercised.

The fault-injection layer is only as honest as its coverage: an enum
value nobody calls `fires()` with is a fault the resilience suite
*claims* to model but never injects (vacuous coverage — the same trap
the model checker's sabotage modes guard against). Three rules, all
driven from the real `enum class FaultSite` declaration:

  armed       every enumerator appears at >= 1 injector call site
              (`fires(... FaultSite::X ...)`) in src/ outside the
              declaring header.
  tested      every enumerator is named in >= 1 file under tests/ —
              either as `FaultSite::X` or by its to_string() name.
  to-string   to_string() maps every enumerator to a distinct name and
              the declared kFaultSiteCount matches the enumerator
              count (the array-of-site-states indexing depends on it).

Suppression: `// analyze: allow(fault-coverage)` on the enumerator's
declaration line (for a site that is intentionally bench-only while
its hook lands in a later PR).
"""

import re

from ..textlib import Finding

NAME = "fault-coverage"

ENUM_FILE = "src/fault/fault_injector.hh"
ENUM_RE = re.compile(
    r"enum\s+class\s+FaultSite[^{]*\{([^}]*)\}", re.DOTALL)
ENUMERATOR_RE = re.compile(r"^\s*(\w+)\s*[,=}]?", re.MULTILINE)
TO_STRING_RE = re.compile(
    r"case\s+FaultSite::(\w+)\s*:\s*return\s+\"([^\"]+)\"")
COUNT_RE = re.compile(r"kFaultSiteCount\s*=\s*(\d+)")


def _enum_decl(ctx):
    sf = ctx.file_at(ENUM_FILE)
    if sf is None:
        return None, []
    m = ENUM_RE.search(sf.text)
    if m is None:
        return sf, []
    body_start_line = sf.text.count("\n", 0, m.start(1)) + 1
    enumerators = []
    for line_off, line in enumerate(m.group(1).split("\n")):
        em = re.match(r"\s*(\w+)\s*(?:=[^,]*)?,?\s*(?://.*)?$", line)
        if em and em.group(1):
            enumerators.append((em.group(1),
                                body_start_line + line_off))
    return sf, enumerators


def run_text(ctx):
    findings = []
    sf, enumerators = _enum_decl(ctx)
    if sf is None:
        return findings  # fixture trees without a fault module
    if not enumerators:
        findings.append(Finding(
            ENUM_FILE, 0, NAME,
            "could not parse enum class FaultSite (checker and enum "
            "must move together)"))
        return findings

    names = {e for e, _ in enumerators}
    to_string = dict(TO_STRING_RE.findall(sf.text))

    # Where is each site armed? Join each line with its predecessor so
    # a call split across two lines still pairs `fires(` with its site.
    armed = set()
    for other in ctx.files:
        if not other.path.startswith("src/") or other.path == ENUM_FILE:
            continue
        prev = ""
        for code in other.code:
            window = prev + " " + code
            if "fires(" in window:
                for m in re.finditer(r"FaultSite::(\w+)", window):
                    armed.add(m.group(1))
            prev = code
    tested = set()
    for other in ctx.files:
        if not other.path.startswith("tests/"):
            continue
        for m in re.finditer(r"FaultSite::(\w+)", other.text):
            tested.add(m.group(1))
        for e, _ in enumerators:
            name = to_string.get(e)
            if name and f'"{name}"' in other.text:
                tested.add(e)

    for e, line in enumerators:
        if sf.allowed(line, NAME):
            continue
        if e not in armed:
            findings.append(Finding(
                ENUM_FILE, line, NAME,
                f"FaultSite::{e} is never armed: no fires(FaultSite::"
                f"{e}) call site exists in src/ — the resilience "
                "suite claims a fault it cannot inject"))
        if e not in tested:
            findings.append(Finding(
                ENUM_FILE, line, NAME,
                f"FaultSite::{e} is named in no test: nothing under "
                "tests/ mentions the enumerator or its "
                "to_string() name"))
        if e not in to_string:
            findings.append(Finding(
                ENUM_FILE, line, NAME,
                f"FaultSite::{e} has no to_string() case (site "
                "names round-trip through bench flags and JSON)"))

    cm = COUNT_RE.search(sf.text)
    if cm and int(cm.group(1)) != len(enumerators):
        findings.append(Finding(
            ENUM_FILE, 0, NAME,
            f"kFaultSiteCount = {cm.group(1)} but the enum declares "
            f"{len(enumerators)} sites (per-site state arrays index "
            "by this)"))
    dup = len(set(to_string.values())) != len(to_string)
    if dup:
        findings.append(Finding(
            ENUM_FILE, 0, NAME,
            "to_string() maps two sites to the same name"))
    return findings


run_ast = None  # enum + call-site matching is already exact textually
