"""layering — include-graph rules and cycle detection over src/.

The module DAG this repo grew into (PRs 1-7) is load-bearing: the
runner forks cells without dragging DRAM timing in, the scheme zoo
plugs into core without core knowing any scheme, and RAS rides the
schemes' own machinery. The checker pins that shape:

  module rules   every `src/<module>/` has an explicit allowlist of
                 modules it may include (below). Three named rules get
                 their own messages because violating them unwinds a
                 deliberate design seam:
                   - common is a leaf (utility layer, includes nothing)
                   - core must not include schemes/ or ras/ (core
                     exposes core/ras_view.hh instead, so the
                     dependency points up, never down)
                   - runner must not include dram/ (cells fork the
                     whole sim; the orchestrator never touches timing)
  base-files     src/fault/sim_error.hh is mapped into the base layer
                 with common (the error contract sits *below* common by
                 construction), and the checker enforces that claim: a
                 base-layer file must include no repo header outside
                 the base layer.
  cycles         the file-level include graph must be acyclic (SCC
                 detection). fault <-> core is a module-level cycle by
                 design (the auditor reaches up into core); the
                 file-level graph is what must stay a DAG.

Suppression: `// analyze: allow(layering)` on the #include line.
"""

import os
import re

from ..textlib import Finding

NAME = "layering"

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

# Files that belong to the base layer regardless of their directory.
BASE_FILES = {"src/fault/sim_error.hh"}
BASE_MODULE = "common"

# module -> modules it may include (itself always allowed).
ALLOWED = {
    "common": set(),
    "power": {"common"},
    "fault": {"common", "core"},  # auditor.cc reaches up, no file cycle
    "dram": {"common", "fault"},
    "trace": {"common", "fault"},
    "cache": {"common", "fault"},
    "core": {"common", "dram", "fault"},
    "ras": {"common", "core", "fault"},
    "schemes": {"common", "core", "fault", "ras"},
    "sim": {"cache", "common", "core", "fault", "power", "ras",
            "schemes", "trace"},
    "runner": {"common", "fault", "sim", "trace"},
    "verify": {"common", "core", "dram", "fault"},
}

NAMED_RULES = {
    ("common", None): "src/common/ is the leaf utility layer: it may "
                      "include nothing above the base files",
    ("core", "schemes"): "core must not include schemes/: the zoo "
                         "plugs into core, never the reverse",
    ("core", "ras"): "core must not include ras/: use the "
                     "core/ras_view.hh seam",
    ("runner", "dram"): "runner must not include dram/: cells fork the "
                        "whole sim, the orchestrator never touches "
                        "timing",
}


def _module_of(path):
    if path in BASE_FILES:
        return BASE_MODULE
    parts = path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def _resolve(inc, root):
    cand = "src/" + inc
    if os.path.isfile(os.path.join(root, cand)):
        return cand
    return None


def run_text(ctx):
    findings = []
    edges = {}  # path -> [(lineno, target-path)]
    for sf in ctx.files:
        if not sf.path.startswith("src/"):
            continue
        for i, code in enumerate(sf.code):
            m = INCLUDE_RE.match(sf.raw_lines[i]) if code.strip() else None
            if not m:
                continue
            target = _resolve(m.group(1), ctx.root)
            if target is None:
                continue
            edges.setdefault(sf.path, []).append((i + 1, target))

    # --- module allowlist -------------------------------------------------
    for path, incs in sorted(edges.items()):
        mod = _module_of(path)
        if mod is None:
            continue
        sf = ctx.file_at(path)
        for lineno, target in incs:
            tmod = _module_of(target)
            if tmod is None or tmod == mod:
                continue
            if path in BASE_FILES and target not in BASE_FILES:
                findings.append(Finding(
                    path, lineno, NAME,
                    f"base-layer file includes {target}: "
                    "fault/sim_error.hh must stay below common "
                    "(no repo includes outside the base layer)"))
                continue
            if tmod in ALLOWED.get(mod, set()):
                continue
            if sf is not None and sf.allowed(lineno, NAME):
                continue
            named = NAMED_RULES.get((mod, tmod)) or \
                NAMED_RULES.get((mod, None))
            detail = named or (f"module '{mod}' may include only "
                               f"{{{', '.join(sorted(ALLOWED.get(mod, set()) | {mod}))}}}")  # noqa: E501  // analyze-self: long
            findings.append(Finding(
                path, lineno, NAME,
                f"include of {target} breaks layering: {detail}"))

    # --- file-level cycle detection (iterative Tarjan SCC) ----------------
    graph = {p: [t for _, t in incs] for p, incs in edges.items()}
    for tgts in list(graph.values()):
        for t in tgts:
            graph.setdefault(t, [])
    index = {}
    low = {}
    on_stack = set()
    stack = []
    counter = [0]
    sccs = []

    for start in sorted(graph):
        if start in index:
            continue
        work = [(start, iter(graph[start]))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(graph[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for scc in sorted(sccs):
        findings.append(Finding(
            scc[0], 0, NAME,
            "include cycle: " + " <-> ".join(scc)))
    return findings


run_ast = None  # the include graph is already exact at the text level
