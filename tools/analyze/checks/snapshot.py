"""snapshot — AST-accurate member coverage of save()/restore() pairs.

Every class declaring both `save(snap::Writer&)` and
`restore(snap::Reader&)` must reference each of its own non-static data
members in both bodies. A member added to a class but not to its codecs
silently rots every checkpoint — the golden bit-identity tests cannot
catch a field that is *consistently* dropped.

Exemptions (same contract as scripts/lint.py, which this checker
replaces when libclang is available):
  - pointer / reference members (not owned, rewired on restore)
  - members whose declaration (or the line above) carries a
    `no-snapshot(<why>)` annotation
  - abstract interfaces whose save/restore are both pure virtual
  - `// analyze: allow(snapshot)` on the member declaration line

The text backend delegates to the regex implementation in
scripts/lint.py — one shared fallback, self-tested both ways — so the
two tools can never disagree about the contract.
"""

import os
import re
import sys

from ..textlib import Finding

NAME = "snapshot"

NO_SNAPSHOT_RE = re.compile(r"no-snapshot\(|not owned")


def _lint_module(root):
    sys.path.insert(0, os.path.join(root, "scripts"))
    try:
        import lint
        return lint
    finally:
        sys.path.pop(0)


def run_text(ctx):
    """Regex fallback: reuse scripts/lint.py's snapshot-coverage pass."""
    lint = _lint_module(ctx.root)
    all_files = {sf.path: sf.text for sf in ctx.files}
    raw = []
    for sf in ctx.files:
        if not (sf.path in ctx.explicit or sf.path.startswith("src/")):
            continue
        lint.check_snapshot_coverage(sf.path, sf.text, raw, all_files)
    findings = []
    for f in raw:
        if f.rule != "snapshot-coverage":
            continue
        sf = ctx.file_at(f.path)
        if sf is not None and sf.allowed(f.line, NAME):
            continue
        findings.append(Finding(f.path, f.line, NAME, f.message))
    return findings


def _method(cursor, ci, name, param_type):
    for c in cursor.get_children():
        if c.kind == ci.CursorKind.CXX_METHOD and c.spelling == name:
            params = [a for a in c.get_arguments()]
            if len(params) == 1 and param_type in params[0].type.spelling:
                return c
    return None


def _member_refs(body_cursor, ci, walk):
    refs = set()
    for c in walk(body_cursor):
        if c.kind in (ci.CursorKind.MEMBER_REF_EXPR,
                      ci.CursorKind.MEMBER_REF,
                      ci.CursorKind.DECL_REF_EXPR):
            refs.add(c.spelling)
    return refs


def _decl_exempt(sf, line):
    if sf is None:
        return False
    for ln in (line, line - 1):
        if 1 <= ln <= len(sf.raw_lines) and \
                NO_SNAPSHOT_RE.search(sf.raw_lines[ln - 1]):
            return True
    return False


def run_ast(ctx):
    ci = ctx.cindex
    findings = []
    seen_classes = set()
    for tu, _ in ctx.tus():
        for c in ctx.walk(tu.cursor):
            if c.kind not in (ci.CursorKind.CLASS_DECL,
                              ci.CursorKind.STRUCT_DECL):
                continue
            if not c.is_definition():
                continue
            path, line = ctx.location_of(c)
            if path is None or not (path in ctx.explicit or
                                    path.startswith("src/")):
                continue
            key = (path, line, c.spelling)
            if key in seen_classes:
                continue
            seen_classes.add(key)
            save = _method(c, ci, "save", "snap::Writer")
            restore = _method(c, ci, "restore", "snap::Reader")
            if save is None or restore is None:
                continue
            if save.is_pure_virtual_method() and \
                    restore.is_pure_virtual_method():
                continue
            save_def = save.get_definition()
            restore_def = restore.get_definition()
            if save_def is None or restore_def is None:
                # Out-of-line bodies live in the sibling .cc, which is
                # its own TU; that TU re-visits this class definition
                # with the bodies resolvable, so skip here rather than
                # false-positive. A class whose codec bodies exist in
                # *no* TU never had them compiled at all.
                seen_classes.discard(key)
                continue
            save_refs = _member_refs(save_def, ci, ctx.walk)
            restore_refs = _member_refs(restore_def, ci, ctx.walk)
            sf = ctx.file_at(path)
            for field in c.get_children():
                if field.kind != ci.CursorKind.FIELD_DECL:
                    continue
                ft = field.type.get_canonical()
                if ft.kind in (ci.TypeKind.POINTER,
                               ci.TypeKind.LVALUEREFERENCE,
                               ci.TypeKind.RVALUEREFERENCE):
                    continue  # not owned: never serialized
                fpath, fline = ctx.location_of(field)
                fsf = ctx.file_at(fpath) if fpath else sf
                if _decl_exempt(fsf, fline):
                    continue
                if fsf is not None and fsf.allowed(fline, NAME):
                    continue
                member = field.spelling
                if member not in save_refs:
                    findings.append(Finding(
                        fpath or path, fline or line, NAME,
                        f"{c.spelling}::{member} is not written by "
                        "save() — a checkpoint would silently drop it "
                        "(mark the decl no-snapshot(<why>) if "
                        "intentional)"))
                elif member not in restore_refs:
                    findings.append(Finding(
                        fpath or path, fline or line, NAME,
                        f"{c.spelling}::{member} is written by save() "
                        "but never read back by restore()"))
    return findings
