"""Shared text-level scanning helpers for the semantic analysis suite.

The AST backend (astlib) is authoritative when libclang is importable;
these helpers power the degraded text backend that keeps every checker
running — and every sabotage fixture firing — in containers without
libclang. Both backends share the Finding type and the suppression
syntax so a site annotated once is silent under either backend:

    // analyze: allow(<check>)[: reason]

on the offending line or on the line immediately above it.
"""

import re

ALLOW_RE = re.compile(r"//\s*analyze:\s*allow\(([a-z\-]+)\)")

CXX_EXTENSIONS = (".cc", ".hh", ".h", ".cpp", ".hpp")


class Finding:
    """One checker hit. `line` is 1-based; 0 means whole-file."""

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.check}] {self.message}"

    def to_json(self):
        return {"path": self.path, "line": self.line,
                "check": self.check, "message": self.message}


def strip_comments_and_strings(line):
    """Blanks // comments and string/char literal contents so token
    scans never fire on documentation or log text."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def code_lines(text):
    """Returns a list of code-only lines (1-based access via index+1):
    block comments, // comments, and literal contents blanked."""
    out = []
    in_block = False
    for raw in text.split("\n"):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        out.append(strip_comments_and_strings(line))
    return out


def allowed(lines, lineno, check):
    """True when line `lineno` (1-based) or the line above carries an
    `// analyze: allow(<check>)` suppression in `lines` (raw text)."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines):
            m = ALLOW_RE.search(lines[ln - 1])
            if m is not None and m.group(1) == check:
                return True
    return False


def find_matching_brace(text, open_pos):
    """Index of the `}` closing the `{` at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


class SourceFile:
    """A scanned file: raw text plus cached raw/code line views."""

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.raw_lines = text.split("\n")
        self.code = code_lines(text)

    def allowed(self, lineno, check):
        return allowed(self.raw_lines, lineno, check)
