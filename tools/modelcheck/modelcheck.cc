// modelcheck — exhaustive verification of the Fig-8 swap choreography.
//
// Enumerates every reachable state of the swap state machine for the
// requested migration design(s) on a small-but-complete model geometry:
// every legal (hot, cold) swap from every reachable placement, every
// critical-first start sub-block, every intra-step copy boundary, and an
// injected crash/abort at each of those boundaries. See
// src/verify/choreography.hh for the invariants and the soundness
// argument of the state-space canonicalization.
//
// Exit status: 0 if every design verified clean, 1 on any invariant
// violation (or lost coverage), 2 on usage errors.
//
// Design nomad defaults to a 2-slot model (unless --slots is given): its
// hole wanders over every machine page, so the reachable placement count
// is factorial in the page count and 4 slots would blow the state cap.
//
//   ./modelcheck                 # all four designs, default geometry
//   ./modelcheck --design Live   # one design
//   ./modelcheck --slots 8 --sub-blocks 8   # a bigger model
//   ./modelcheck --sabotage drop-clear-pending --design N-1   # must FAIL
//   ./modelcheck --sabotage commit-despite-dirty --design nomad  # must FAIL
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "verify/choreography.hh"

namespace {

using hmm::MigrationDesign;
using hmm::verify::CheckerConfig;
using hmm::verify::CheckerReport;
using hmm::verify::Sabotage;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--design N|N-1|Live|nomad|all] [--slots K]\n"
      "          [--sub-blocks K] [--no-aborts] [--max-states K]\n"
      "          [--sabotage MODE] [--quiet]\n"
      "  MODE: none|apply-mutations-early|drop-clear-pending|"
      "mark-sub-block-early|\n"
      "        commit-despite-dirty\n",
      argv0);
  return 2;
}

bool parse_design(const std::string& v, std::vector<MigrationDesign>& out) {
  if (v == "all") {
    out = {MigrationDesign::N, MigrationDesign::NMinus1,
           MigrationDesign::LiveMigration, MigrationDesign::Nomad};
  } else if (v == "N") {
    out = {MigrationDesign::N};
  } else if (v == "N-1") {
    out = {MigrationDesign::NMinus1};
  } else if (v == "Live") {
    out = {MigrationDesign::LiveMigration};
  } else if (v == "nomad") {
    out = {MigrationDesign::Nomad};
  } else {
    return false;
  }
  return true;
}

bool parse_sabotage(const std::string& v, Sabotage& out) {
  if (v == "none") {
    out = Sabotage::None;
  } else if (v == "apply-mutations-early") {
    out = Sabotage::ApplyMutationsEarly;
  } else if (v == "drop-clear-pending") {
    out = Sabotage::DropClearPending;
  } else if (v == "mark-sub-block-early") {
    out = Sabotage::MarkSubBlockEarly;
  } else if (v == "commit-despite-dirty") {
    out = Sabotage::CommitDespiteDirty;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<MigrationDesign> designs = {
      MigrationDesign::N, MigrationDesign::NMinus1,
      MigrationDesign::LiveMigration, MigrationDesign::Nomad};
  CheckerConfig base;
  std::uint64_t slots = 4;
  bool slots_given = false;
  std::uint64_t sub_blocks = 4;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--design") {
      const char* v = value();
      if (v == nullptr || !parse_design(v, designs)) return usage(argv[0]);
    } else if (a == "--slots") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      slots = std::strtoull(v, nullptr, 10);
      slots_given = true;
    } else if (a == "--sub-blocks") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      sub_blocks = std::strtoull(v, nullptr, 10);
    } else if (a == "--max-states") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      base.max_states = std::strtoull(v, nullptr, 10);
    } else if (a == "--sabotage") {
      const char* v = value();
      if (v == nullptr || !parse_sabotage(v, base.sabotage))
        return usage(argv[0]);
    } else if (a == "--no-aborts") {
      base.explore_aborts = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  bool all_ok = true;
  std::uint64_t total_states = 0;
  for (const MigrationDesign d : designs) {
    CheckerConfig cfg = base;
    cfg.design = d;
    // Geometry scaled from the slot / sub-block counts: twice as many
    // macro pages as slots (so OS/MS/MF cases all exist), sub-block
    // granularity from the fill-unit count. Counts must be powers of two
    // (Geometry). Nomad defaults to 2 slots (see the header comment).
    const std::uint64_t design_slots =
        slots_given ? slots : (d == MigrationDesign::Nomad ? 2 : slots);
    cfg.geom.sub_block_bytes = 1 * hmm::KiB;
    cfg.geom.page_bytes = sub_blocks * hmm::KiB;
    cfg.geom.on_package_bytes = design_slots * cfg.geom.page_bytes;
    cfg.geom.total_bytes = 2 * cfg.geom.on_package_bytes;
    CheckerReport r;
    try {
      r = hmm::verify::check_choreography(cfg);
    } catch (const std::exception& e) {
      // An invalid --slots/--sub-blocks combination fails geometry
      // validation inside the model — a usage error, not a violation.
      std::fprintf(stderr, "modelcheck: %s\n", e.what());
      return 2;
    }
    total_states += r.states_explored;
    all_ok = all_ok && r.ok();
    if (!quiet || !r.ok())
      std::fputs(hmm::verify::format_report(r).c_str(), stdout);
  }
  if (!quiet)
    std::printf("total: %llu states across %zu design(s) — %s\n",
                static_cast<unsigned long long>(total_states),
                designs.size(), all_ok ? "all invariants hold" : "FAILED");
  return all_ok ? 0 : 1;
}
