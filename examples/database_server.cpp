// Example: capacity planning for a transaction-processing server.
//
// A database operator wants to know how much on-package DRAM the paper's
// heterogeneous memory needs before a TPC-B-style workload stops feeling
// the off-package DIMMs. This sweeps the on-package capacity (Fig 15
// style) and macro-page granularity for the pgbench model and prints the
// resulting average memory latency, on-package hit share, and power.
//
//   ./build/examples/database_server [accesses]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

using namespace hmm;

namespace {

RunResult run_config(std::uint64_t on_cap, std::uint64_t page,
                     std::uint64_t accesses) {
  MemSimConfig cfg;
  cfg.controller.geom =
      Geometry{4 * GiB, on_cap, page, std::min<std::uint64_t>(4 * KiB, page)};
  cfg.controller.design = MigrationDesign::LiveMigration;
  cfg.controller.swap_interval = 1'000;

  MemSim sim(cfg);
  auto w = make_pgbench(7);
  sim.controller().set_instant_migration(true);
  sim.run(*w, accesses / 2);
  sim.controller().set_instant_migration(false);
  sim.reset_stats();
  sim.run(*w, accesses / 2);
  sim.finish();
  return sim.result();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400'000;

  std::printf("database server capacity planning — pgbench model, "
              "%llu accesses per configuration\n\n",
              static_cast<unsigned long long>(n));

  TextTable t({"On-package", "Page", "Avg latency", "On-pkg share",
               "Swaps", "Power vs off-only"});
  for (const std::uint64_t cap : {128 * MiB, 256 * MiB, 512 * MiB}) {
    for (const std::uint64_t page : {16 * KiB, 256 * KiB, 4 * MiB}) {
      const RunResult r = run_config(cap, page, n);
      t.add_row({format_size(cap), format_size(page),
                 TextTable::num(r.avg_latency) + " cyc",
                 TextTable::pct(r.on_package_fraction),
                 std::to_string(r.swaps),
                 TextTable::num(r.normalized_power(), 2) + "x"});
    }
  }
  t.print(std::cout);
  std::printf("\nreading: latency falls as capacity grows; finer pages "
              "track the hot set\nmore precisely but pay more table/OS "
              "overhead (Fig 10's trade-off).\n");
  return 0;
}
