// Trace utility: generate workload traces to the binary file format,
// inspect/characterize them, and replay a trace file through the
// heterogeneous memory simulator — the workflow for anyone bringing
// their own traces to this library.
//
//   trace_tool generate <workload> <path> [n]     write a trace file
//   trace_tool info <path>                        characterize a trace
//   trace_tool replay <path> [page_bytes]         simulate it
//
// <workload> is one of: FT MG pgbench indexer SPECjbb SPEC2006
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/memsim.hh"
#include "trace/characterize.hh"
#include "trace/io.hh"
#include "trace/workloads.hh"

using namespace hmm;

namespace {

const WorkloadInfo* find_workload(const std::string& name) {
  for (const WorkloadInfo& w : section4_workloads())
    if (w.name == name) return &w;
  return nullptr;
}

int cmd_generate(const std::string& name, const std::string& path,
                 std::uint64_t n) {
  const WorkloadInfo* w = find_workload(name);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 2;
  }
  auto gen = w->make(1);
  TraceWriter out(path, w->name);
  for (std::uint64_t i = 0; i < n; ++i) out.write(gen->next());
  out.close();
  std::printf("wrote %llu records of %s to %s\n",
              static_cast<unsigned long long>(out.written()),
              w->name.c_str(), path.c_str());
  return 0;
}

int cmd_info(const std::string& path) {
  TraceReader in(path);
  TraceCharacterizer chr(64 * KiB,
                         {128 * MiB, 256 * MiB, 512 * MiB, 1 * GiB});
  while (auto r = in.next()) chr.add(*r);
  const TraceProfile p = chr.profile();

  std::printf("trace       %s (%s)\n", path.c_str(),
              in.workload_name().c_str());
  std::printf("accesses    %llu\n",
              static_cast<unsigned long long>(p.accesses));
  std::printf("footprint   %s (64KB pages touched)\n",
              format_size(p.footprint_bytes).c_str());
  std::printf("reads       %.1f%%\n", p.read_fraction * 100);
  std::printf("mean gap    %.1f cycles\n", p.mean_gap_cycles);
  for (std::size_t i = 0; i < p.coverage_points.size(); ++i)
    std::printf("hot %-6s  %.1f%% of traffic\n",
                format_size(p.coverage_points[i]).c_str(),
                p.traffic_share[i] * 100);
  return 0;
}

int cmd_replay(const std::string& path, std::uint64_t page) {
  TraceReader in(path);
  MemSimConfig cfg;
  cfg.controller.geom =
      Geometry{4 * GiB, 512 * MiB, page,
               std::min<std::uint64_t>(4 * KiB, page)};
  cfg.controller.design = MigrationDesign::LiveMigration;
  cfg.controller.swap_interval = 1'000;
  MemSim sim(cfg);
  while (auto r = in.next()) sim.step(*r);
  sim.finish();
  const RunResult res = sim.result();
  std::printf("replayed %llu accesses at %s granularity\n",
              static_cast<unsigned long long>(res.accesses),
              format_size(page).c_str());
  std::printf("avg latency   %.1f cycles (p99 %.0f)\n", res.avg_latency,
              res.p99_latency);
  std::printf("on-package    %.1f%%\n", res.on_package_fraction * 100);
  std::printf("swaps         %llu (%.1f MB migrated)\n",
              static_cast<unsigned long long>(res.swaps),
              static_cast<double>(res.migrated_bytes) / (1024.0 * 1024.0));
  std::printf("power         %.2fx of off-package-only\n",
              res.normalized_power());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s generate <workload> <path> [n]\n"
                 "       %s info <path>\n"
                 "       %s replay <path> [page_bytes]\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate" && argc >= 4) {
      const std::uint64_t n =
          argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200'000;
      return cmd_generate(argv[2], argv[3], n);
    }
    if (cmd == "info") return cmd_info(argv[2]);
    if (cmd == "replay") {
      const std::uint64_t page =
          argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64 * KiB;
      return cmd_replay(argv[2], page);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
