// Example: the paper's proposed extension — adaptively choosing the
// migration granularity per workload (Section IV-B) — plus the trace
// characterization that explains each choice.
//
// For every Section IV workload this (1) profiles the reference stream's
// hot-set concentration at 64KB granularity, then (2) runs the
// successive-halving granularity tuner and reports the page size it
// settles on.
//
//   ./build/examples/adaptive_tuning [probe_accesses]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/tuner.hh"
#include "trace/characterize.hh"
#include "trace/workloads.hh"

using namespace hmm;

int main(int argc, char** argv) {
  const std::uint64_t probe =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;

  std::printf("adaptive migration granularity — characterization + tuner\n"
              "(probe window %llu accesses, doubling per round)\n\n",
              static_cast<unsigned long long>(probe));

  TextTable t({"Workload", "Footprint", "Hot 128MB", "Hot 512MB",
               "Tuned page", "Tuned latency", "Probes"});
  for (const WorkloadInfo& w : section4_workloads()) {
    // 1. Characterize the stream at 64KB granularity.
    TraceCharacterizer chr(64 * KiB, {128 * MiB, 512 * MiB});
    auto gen = w.make(11);
    for (int i = 0; i < 150'000; ++i) chr.add(gen->next());
    const TraceProfile p = chr.profile();

    // 2. Tune the granularity on a fresh stream.
    TunerConfig cfg;
    cfg.probe_accesses = probe;
    GranularityTuner tuner(cfg);
    const TunerOutcome out = tuner.tune(w.make, /*seed=*/23);

    t.add_row({w.name, format_size(w.footprint_bytes),
               TextTable::pct(p.traffic_share[0]),
               TextTable::pct(p.traffic_share[1]),
               format_size(out.best_page_bytes),
               TextTable::num(out.best_latency) + " cyc",
               std::to_string(out.probes.size())});
  }
  t.print(std::cout);
  std::printf("\nreading: 'Hot 512MB' is the traffic share the on-package "
              "region could capture\nwith perfect placement — the ceiling "
              "on the paper's effectiveness metric. The\ntuner picks finer "
              "pages for scattered hot sets and coarser ones for\n"
              "slab-structured workloads.\n");
  return 0;
}
