// Example: an HPC user's view — does migration help a multigrid solver?
//
// MG-like codes have nested working sets (each coarser grid level is 8x
// smaller but visited every V-cycle). This example compares the three
// migration designs (N / N-1 / Live) on the MG model at a fixed
// granularity, showing why overlapping the copy with execution matters
// (Section IV-A), and prints the per-design migration statistics.
//
//   ./build/examples/hpc_stencil [accesses]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "sim/memsim.hh"
#include "trace/workloads.hh"

using namespace hmm;

namespace {

struct Row {
  RunResult result;
  MigrationEngine::Stats engine;
};

Row run_design(MigrationDesign d, std::uint64_t accesses) {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 1 * MiB, 4 * KiB};
  cfg.controller.design = d;
  cfg.controller.swap_interval = 1'000;

  MemSim sim(cfg);
  auto w = make_mg(3);
  // Deliberately measured from a cold start: the design differences (halt
  // vs overlap vs live forwarding) appear while migration is in full
  // swing, which is exactly the regime Fig 11 compares.
  sim.run(*w, accesses);
  sim.finish();
  return Row{sim.result(), sim.controller().engine().stats()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400'000;

  std::printf("multigrid solver on heterogeneous memory — MG model, 1MB "
              "macro pages, %llu accesses per design\n\n",
              static_cast<unsigned long long>(n));

  TextTable t({"Design", "Avg latency", "On-pkg share", "Swaps",
               "MB migrated", "Engine busy (Mcyc)"});
  for (const MigrationDesign d :
       {MigrationDesign::N, MigrationDesign::NMinus1,
        MigrationDesign::LiveMigration}) {
    const Row r = run_design(d, n);
    t.add_row({to_string(d), TextTable::num(r.result.avg_latency) + " cyc",
               TextTable::pct(r.result.on_package_fraction),
               std::to_string(r.engine.swaps_completed),
               TextTable::num(static_cast<double>(r.engine.bytes_copied) /
                              (1024.0 * 1024.0)),
               TextTable::num(static_cast<double>(r.engine.busy_cycles) /
                              1e6)});
  }
  t.print(std::cout);
  std::printf("\nreading: the basic N design halts execution for every "
              "swap; N-1 hides the\ncopy behind the P-bit choreography; "
              "Live migration additionally serves the\nhot page from the "
              "partially filled slot (F bit + sub-block bitmap).\n");
  return 0;
}
