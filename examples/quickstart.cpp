// Quickstart: build a heterogeneous main memory (512MB on-package of a 4GB
// space), replay a skewed synthetic workload, and compare no-migration
// static mapping against live migration.
//
//   ./build/examples/quickstart [accesses]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/memsim.hh"
#include "trace/workloads.hh"

using namespace hmm;

namespace {

RunResult run_once(bool migration, MigrationDesign design,
                   std::uint64_t accesses) {
  MemSimConfig cfg;
  cfg.controller.geom = Geometry{4 * GiB, 512 * MiB, 64 * KiB, 4 * KiB};
  cfg.controller.migration_enabled = migration;
  cfg.controller.design = design;
  cfg.controller.swap_interval = 1'000;

  MemSim sim(cfg);
  auto workload = make_pgbench(/*seed=*/42);
  // Fast-forward placement to steady state, then measure with real
  // migration dynamics (see EXPERIMENTS.md, "warm-up methodology").
  sim.controller().set_instant_migration(true);
  sim.run(*workload, accesses / 2);
  sim.controller().set_instant_migration(false);
  sim.reset_stats();
  sim.run(*workload, accesses / 2);
  sim.finish();
  return sim.result();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 600'000;

  std::printf("heterogeneous main memory quickstart — pgbench model, %llu "
              "accesses\n\n",
              static_cast<unsigned long long>(n));

  const RunResult base =
      run_once(false, MigrationDesign::LiveMigration, n);
  const RunResult live = run_once(true, MigrationDesign::LiveMigration, n);

  std::printf("static mapping (no migration):\n");
  std::printf("  avg latency        %.1f cycles (on %.1f / off %.1f, "
              "qd on %.1f / off %.1f)\n",
              base.avg_latency, base.avg_on_latency, base.avg_off_latency,
              base.on_queue_delay, base.off_queue_delay);
  std::printf("  on-package share   %.1f%%\n",
              base.on_package_fraction * 100.0);
  std::printf("\nlive migration (1MB macro pages, 10K-access epochs):\n");
  std::printf("  avg latency        %.1f cycles (on %.1f / off %.1f, "
              "qd on %.1f / off %.1f)\n",
              live.avg_latency, live.avg_on_latency, live.avg_off_latency,
              live.on_queue_delay, live.off_queue_delay);
  std::printf("  on-package share   %.1f%%\n",
              live.on_package_fraction * 100.0);
  std::printf("  swaps completed    %llu\n",
              static_cast<unsigned long long>(live.swaps));
  std::printf("  bytes migrated     %.1f MB\n",
              static_cast<double>(live.migrated_bytes) / (1024.0 * 1024.0));
  std::printf("  normalized power   %.2fx of off-package-only\n",
              live.normalized_power());
  std::printf("\neffectiveness eta  %.1f%%  (paper reports 83%% on average)\n",
              RunResult::effectiveness(base.avg_latency, live.avg_latency) *
                  100.0);
  return 0;
}
