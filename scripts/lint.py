#!/usr/bin/env python3
"""Repo-specific structural linter for the hmm codebase.

Checks that generic tools cannot express, because they encode this
repository's own correctness contracts:

  bare-assert        assert()/abort() in non-test code. Release builds
                     compile assert() away, so invariants must use
                     HMM_CHECK (always evaluated, throws a structured
                     SimError) — see src/fault/sim_error.hh.
  unseeded-rng       rand()/srand()/std::random_device/
                     default_random_engine in non-test code. Simulation
                     must be deterministic and platform-stable; use the
                     seeded Pcg32 from src/common/random.hh.
  snapshot-coverage  every serialized member of a snapshot-capable class
                     (one declaring both save(snap::Writer&) and
                     restore(snap::Reader&)) must be written by save()
                     AND read by restore(). A member added to a class
                     but not to its codecs silently rots every
                     checkpoint. With --snapshot-backend auto (the
                     default) this rule delegates to the AST-accurate
                     checker in tools/analyze when libclang is
                     importable, falling back to the regex pass below
                     otherwise; `ast` demands libclang, `regex` forces
                     the fallback. Both backends honor the same
                     exemptions: references and pointers (not owned) and
                     a "no-snapshot(<why>)" comment.
  include-hygiene    headers start with #pragma once; a .cc includes its
                     own header first (catches headers that silently
                     depend on prior includes); no file-scope
                     `using namespace` in headers.
  style              no tabs, no trailing whitespace, no CRLF, files end
                     with exactly one newline, lines fit in 80 columns.

Suppression: append  // lint: allow(<rule>)  to the offending line.

Usage: scripts/lint.py [--root DIR] [files...]   (default: git ls-files)
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import subprocess
import sys

CXX_EXTENSIONS = (".cc", ".hh", ".h", ".cpp", ".hpp")
# Directories holding shipped (non-test) code, held to the strictest rules.
SHIPPED_DIRS = ("src/", "tools/")
# Test code may use bare asserts (gtest has its own) and ad-hoc RNG.
TEST_DIRS = ("tests/",)
# Sabotage fixtures deliberately violate every rule; the analyzer's own
# WILL_FAIL ctests prove they still fire.
FIXTURE_DIR = "tools/analyze/fixtures/"

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z\-]+)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based; 0 = whole file
        self.rule = rule
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string/char literals so
    token checks do not fire on documentation or log text. (Block
    comments spanning lines are handled by the caller's state.)"""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def iter_code_lines(text):
    """Yields (lineno, raw_line, code_line) with block comments blanked."""
    in_block = False
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Blank any /* ... */ segments (possibly several, possibly open).
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        yield lineno, raw, strip_comments_and_strings(line)


def allowed(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    return m is not None and m.group(1) == rule


def is_shipped(path):
    return path.startswith(SHIPPED_DIRS)


def is_test(path):
    return path.startswith(TEST_DIRS)


# --- rule: bare-assert / unseeded-rng ---------------------------------------

ASSERT_RE = re.compile(r"(?<![\w_])(assert|abort)\s*\(")
RNG_RE = re.compile(
    r"(?<![\w_:])(rand|srand)\s*\(|std::random_device|default_random_engine"
)


def check_banned_calls(path, text, findings):
    if not is_shipped(path):
        return
    for lineno, raw, code in iter_code_lines(text):
        m = ASSERT_RE.search(code)
        if m and "static_assert" not in code and not allowed(raw,
                                                            "bare-assert"):
            findings.append(Finding(
                path, lineno, "bare-assert",
                f"{m.group(1)}() vanishes in release builds / kills the "
                "process; use HMM_CHECK (src/fault/sim_error.hh) so the "
                "invariant throws a structured SimError in every build"))
        m = RNG_RE.search(code)
        if m and not allowed(raw, "unseeded-rng"):
            findings.append(Finding(
                path, lineno, "unseeded-rng",
                "non-deterministic / platform-dependent RNG; use the "
                "seeded Pcg32 from src/common/random.hh"))


# --- rule: snapshot-coverage -------------------------------------------------

CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+(\w+)[^;{]*\{", re.MULTILINE)
MEMBER_RE = re.compile(
    r"""^\s*
        (?!return|delete|typedef|using|friend|static|constexpr|if|for|while)
        [\w:<>,\s]+?               # type tokens (no * or & anywhere)
        \s([a-z]\w*_)\s*           # member name, trailing underscore
        (?:=[^;]*|\{[^;]*\})?;     # optional initializer
        """,
    re.VERBOSE,
)
NO_SNAPSHOT_RE = re.compile(r"no-snapshot\(|not owned")


def find_matching_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def extract_function_body(text, sig_re):
    """Returns the body of the first function whose signature matches.
    A declaration (signature followed by `;`) is skipped, not mistaken
    for a definition."""
    for m in sig_re.finditer(text):
        i = m.end()
        while i < len(text) and text[i] not in "{;":
            i += 1
        if i >= len(text) or text[i] == ";":
            continue
        close = find_matching_brace(text, i)
        if close > 0:
            return text[i:close + 1]
    return None


def class_bodies(text):
    """Yields (name, body, header_offset_line) for each class/struct."""
    for m in CLASS_RE.finditer(text):
        open_pos = text.find("{", m.start())
        close = find_matching_brace(text, open_pos)
        if close < 0:
            continue
        yield m.group(1), text[open_pos:close + 1], \
            text.count("\n", 0, m.start()) + 1


def check_snapshot_coverage(path, text, findings, all_files):
    if not path.endswith((".hh", ".h")) or not is_shipped(path):
        return
    sibling = path[: path.rfind(".")] + ".cc"
    impl = all_files.get(sibling, "")
    for name, body, base_line in class_bodies(text):
        if "save(snap::Writer" not in body or \
           "restore(snap::Reader" not in body:
            continue
        # Abstract interfaces (pure-virtual save/restore, e.g. the
        # MemoryScheme contract) have no body and no state of their own;
        # every concrete implementation is checked at its own definition.
        if re.search(r"save\s*\(snap::Writer[^)]*\)\s*const\s*=\s*0", body) \
           and re.search(r"restore\s*\(snap::Reader[^)]*\)\s*=\s*0", body):
            continue
        save_body = (
            extract_function_body(body, re.compile(
                r"void\s+save\s*\(snap::Writer[^)]*\)\s*const"))
            or extract_function_body(impl, re.compile(
                rf"void\s+{name}::save\s*\(snap::Writer")))
        restore_body = (
            extract_function_body(body, re.compile(
                r"void\s+restore\s*\(snap::Reader[^)]*\)"))
            or extract_function_body(impl, re.compile(
                rf"void\s+{name}::restore\s*\(snap::Reader")))
        if save_body is None or restore_body is None:
            findings.append(Finding(
                path, base_line, "snapshot-coverage",
                f"{name} declares save/restore but a body was not found "
                f"(looked inline and in {sibling})"))
            continue
        # Only the class's own top-level members: blank nested classes.
        flat_lines = []
        depth = 0
        for line in body[1:-1].split("\n"):
            starts_nested = depth == 0 and re.match(
                r"\s*(?:class|struct|enum|union)\s+\w+[^;]*$", line)
            depth += line.count("{") - line.count("}")
            if starts_nested or depth > 0 or "}" in line and depth == 0 \
               and re.match(r"\s*}", line):
                flat_lines.append("")
            else:
                flat_lines.append(line)
        prev = ""
        for offset, line in enumerate(flat_lines):
            m = MEMBER_RE.match(line)
            if m:
                member = m.group(1)
                lineno = base_line + offset + 1
                if "*" in line.split("//")[0] or "&" in line.split("//")[0]:
                    prev = line
                    continue  # not owned: never serialized
                if NO_SNAPSHOT_RE.search(line) or NO_SNAPSHOT_RE.search(prev):
                    prev = line
                    continue
                if member not in save_body:
                    findings.append(Finding(
                        path, lineno, "snapshot-coverage",
                        f"{name}::{member} is not written by save() — a "
                        "checkpoint would silently drop it (mark the decl "
                        "no-snapshot(<why>) if that is intentional)"))
                elif member not in restore_body:
                    findings.append(Finding(
                        path, lineno, "snapshot-coverage",
                        f"{name}::{member} is written by save() but never "
                        "read back by restore()"))
            prev = line


# --- rule: include-hygiene ---------------------------------------------------

def check_include_hygiene(path, text, findings, all_files):
    if path.endswith((".hh", ".h", ".hpp")):
        first_code = next(
            (code for _, _, code in iter_code_lines(text) if code.strip()),
            "")
        if first_code.strip() != "#pragma once":
            findings.append(Finding(
                path, 1, "include-hygiene",
                "header must open with #pragma once (after the file "
                "comment)"))
        for lineno, raw, code in iter_code_lines(text):
            if re.match(r"\s*using\s+namespace\s", code) and \
               not allowed(raw, "include-hygiene"):
                findings.append(Finding(
                    path, lineno, "include-hygiene",
                    "file-scope `using namespace` in a header leaks into "
                    "every includer"))
        return
    if path.endswith((".cc", ".cpp")) and is_shipped(path):
        own = os.path.basename(path)
        own = own[: own.rfind(".")]
        # Binaries without a header of their own (tool main files) have
        # nothing to prove self-contained.
        has_header = any(
            os.path.basename(p)[: os.path.basename(p).rfind(".")] == own
            and p.endswith((".hh", ".h", ".hpp"))
            for p in all_files)
        if not has_header:
            return
        first_include = None
        for lineno, raw, code in iter_code_lines(text):
            # Match against the raw line: the code view blanks string
            # literals, which would erase quoted include paths.
            m = re.match(r'\s*#\s*include\s+["<]([^">]+)[">]', raw)
            if m and code.strip():
                first_include = (lineno, raw, m.group(1))
                break
        if first_include is None:
            return
        lineno, raw, inc = first_include
        base = os.path.basename(inc)
        if base[: base.rfind(".")] != own and not allowed(raw,
                                                          "include-hygiene"):
            findings.append(Finding(
                path, lineno, "include-hygiene",
                "a .cc must include its own header first, so the header "
                "is proven self-contained"))


# --- rule: style -------------------------------------------------------------

MAX_COLUMNS = 80


def check_style(path, text, findings):
    if "\r" in text:
        findings.append(Finding(path, 0, "style", "CRLF line endings"))
    if text and not text.endswith("\n"):
        findings.append(Finding(path, 0, "style",
                                "file does not end with a newline"))
    if text.endswith("\n\n"):
        findings.append(Finding(path, 0, "style",
                                "file ends with blank lines"))
    for lineno, raw in enumerate(text.split("\n"), start=1):
        if "\t" in raw:
            findings.append(Finding(path, lineno, "style",
                                    "tab character (indent is spaces)"))
        if raw != raw.rstrip():
            findings.append(Finding(path, lineno, "style",
                                    "trailing whitespace"))
        if len(raw) > MAX_COLUMNS and not allowed(raw, "style"):
            findings.append(Finding(
                path, lineno, "style",
                f"line is {len(raw)} columns (limit {MAX_COLUMNS})"))


# --- self-test ---------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule expected to fire, path, source)
    ("bare-assert", "src/x/a.cc",
     '#include "x/a.hh"\nvoid f() { assert(1 > 0); }\n'),
    ("unseeded-rng", "src/x/b.cc",
     '#include "x/b.hh"\nint g() { return rand(); }\n'),
    ("snapshot-coverage", "src/x/c.hh",
     "#pragma once\nclass C {\n public:\n"
     "  void save(snap::Writer& w) const {}\n"
     "  void restore(snap::Reader& r) {}\n private:\n"
     "  int dropped_ = 0;\n};\n"),
    # A non-abstract class whose save() body exists but skips a member
    # still fires even when an abstract interface sits in the same file
    # (the pure-virtual exemption must not leak onto implementations).
    ("snapshot-coverage", "src/x/f.hh",
     "#pragma once\nclass Iface {\n public:\n"
     "  virtual void save(snap::Writer& w) const = 0;\n"
     "  virtual void restore(snap::Reader& r) = 0;\n};\n"
     "class Impl : public Iface {\n public:\n"
     "  void save(snap::Writer& w) const override {}\n"
     "  void restore(snap::Reader& r) override {}\n private:\n"
     "  int dropped_ = 0;\n};\n"),
    ("include-hygiene", "src/x/d.hh",
     "#include <vector>\nusing namespace std;\n"),
    ("style", "src/x/e.cc",
     '#include "x/e.hh"\nint h() { return 1; }   \n'),
]


def self_test(root):
    """Every rule must fire on its synthetic bad input and stay silent on
    the clean equivalent — a linter edit that breaks detection fails CI
    instead of silently passing everything. The snapshot rule is proven
    under BOTH engines: the regex pass on its synthetic case, and the
    AST delegation on the analyzer's sabotage fixture when libclang is
    importable (skipped with a note otherwise, so a container without
    libclang still validates the fallback it actually runs)."""
    failures = []
    for rule, path, source in SELF_TEST_CASES:
        findings = []
        files = {path: source, "src/x/a.hh": "#pragma once\n",
                 "src/x/b.hh": "#pragma once\n",
                 "src/x/e.hh": "#pragma once\n"}
        check_banned_calls(path, source, findings)
        check_snapshot_coverage(path, source, findings, files)
        check_include_hygiene(path, source, findings, files)
        check_style(path, source, findings)
        if not any(f.rule == rule for f in findings):
            failures.append(f"rule '{rule}' did not fire on its synthetic "
                            f"bad input ({path})")
    clean = ('#include "x/a.hh"\n\n'
             '#include "fault/sim_error.hh"\n\n'
             "void f() { HMM_CHECK(1 > 0, \"ok\"); }\n")
    findings = []
    check_banned_calls("src/x/a.cc", clean, findings)
    check_style("src/x/a.cc", clean, findings)
    if findings:
        failures.append(f"clean input raised: {findings[0]}")
    # The pure-virtual exemption: an abstract save/restore contract with
    # no state must stay silent (it has no body to check anywhere).
    iface = ("#pragma once\nclass Iface {\n public:\n"
             "  virtual void save(snap::Writer& w) const = 0;\n"
             "  virtual void restore(snap::Reader& r) = 0;\n};\n")
    findings = []
    check_snapshot_coverage("src/x/g.hh", iface, findings,
                            {"src/x/g.hh": iface})
    if findings:
        failures.append(f"abstract interface raised: {findings[0]}")
    # The AST delegation path: the analyzer's sabotage fixture must come
    # back with both of its planted coverage holes.
    err = ast_backend_error(root)
    if err is None:
        delegated = []
        ok = run_ast_snapshot(
            root, [FIXTURE_DIR + "snapshot_bad.hh"], delegated)
        if not ok:
            failures.append("AST snapshot delegation errored out")
        elif len(delegated) < 2:
            failures.append(
                "AST snapshot delegation found "
                f"{len(delegated)} finding(s) on the sabotage fixture "
                "(expected >= 2) — the delegated backend has gone blind")
    else:
        print(f"lint --self-test: NOTE: libclang unavailable ({err}); "
              "AST delegation case skipped", file=sys.stderr)
    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    print("lint --self-test: " +
          ("FAIL" if failures else
           f"all {len(SELF_TEST_CASES)} rules fire"), file=sys.stderr)
    return 1 if failures else 0


# --- AST delegation (tools/analyze) ------------------------------------------

def ast_backend_error(root):
    """Returns None when the tools/analyze AST backend can load libclang,
    else a one-line reason string."""
    sys.path.insert(0, os.path.join(root, "tools"))
    try:
        from analyze import astlib
        return None if astlib.available() else astlib.load_error()
    except Exception as e:  # noqa: BLE001 — any import failure degrades
        return str(e)


def run_ast_snapshot(root, files, findings):
    """Delegates snapshot-coverage to the AST-accurate checker in
    tools/analyze (subprocess, so the two tools' lazy two-way imports
    never tangle) and merges its findings. Returns False on an
    infrastructure failure (callers fall back to the regex pass)."""
    import json
    import tempfile
    with tempfile.NamedTemporaryFile("r", suffix=".json") as tmp:
        cmd = [sys.executable,
               os.path.join(root, "tools", "analyze", "analyze.py"),
               "--root", root, "--checks", "snapshot", "--backend", "ast",
               "--report", tmp.name] + files
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode not in (0, 1):
            print(f"lint: AST snapshot delegation failed:\n{proc.stderr}",
                  file=sys.stderr)
            return False
        report = json.load(tmp)
    for f in report["findings"]:
        findings.append(Finding(f["path"], f["line"], "snapshot-coverage",
                                f["message"]))
    return True


# --- driver ------------------------------------------------------------------

def list_files(root):
    out = subprocess.run(
        ["git", "ls-files"], cwd=root, capture_output=True, text=True,
        check=True)
    return [f for f in out.stdout.splitlines()
            if f.endswith(CXX_EXTENSIONS)
            and not f.startswith(FIXTURE_DIR)]


def main():
    ap = argparse.ArgumentParser(
        description="hmm repo-specific structural linter")
    ap.add_argument("--root", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."))
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: all tracked C++ sources)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on synthetic bad input")
    ap.add_argument("--snapshot-backend", choices=("auto", "ast", "regex"),
                    default="auto",
                    help="snapshot-coverage engine: the AST checker in "
                    "tools/analyze, the regex pass here, or auto "
                    "(AST when libclang imports, else regex)")
    args = ap.parse_args()
    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root)

    use_ast = False
    if args.snapshot_backend != "regex":
        err = ast_backend_error(root)
        if err is None:
            use_ast = True
        elif args.snapshot_backend == "ast":
            print("lint: --snapshot-backend ast but libclang is "
                  f"unavailable: {err}", file=sys.stderr)
            return 2
        else:
            print(f"lint: NOTE: libclang unavailable ({err}); "
                  "snapshot-coverage runs the regex fallback",
                  file=sys.stderr)

    paths = args.files or list_files(root)
    paths = [os.path.relpath(os.path.join(root, p), root).replace(
        os.sep, "/") for p in paths]

    all_files = {}
    for p in paths:
        try:
            with open(os.path.join(root, p), encoding="utf-8") as f:
                all_files[p] = f.read()
        except OSError as e:
            print(f"{p}: unreadable: {e}", file=sys.stderr)
            return 2

    findings = []
    if use_ast:
        use_ast = run_ast_snapshot(
            root, [p for p in all_files if is_shipped(p)], findings)
    for p, text in all_files.items():
        check_banned_calls(p, text, findings)
        if not use_ast:
            check_snapshot_coverage(p, text, findings, all_files)
        check_include_hygiene(p, text, findings, all_files)
        check_style(p, text, findings)

    findings.sort(key=lambda f: (f.path, f.line))
    for f in findings:
        print(f)
    n_files = len(all_files)
    if findings:
        print(f"\nlint: {len(findings)} finding(s) in {n_files} files",
              file=sys.stderr)
        return 1
    print(f"lint: clean ({n_files} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
