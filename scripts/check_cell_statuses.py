#!/usr/bin/env python3
"""Assert a sweep artifact's cells all ended in a sanctioned terminal state.

The resilience claim (DESIGN.md §10, README failure-modes table) is that
no fault ever wedges or crashes a run: every cell of a fault-injection
sweep must finish "ok", or "failed" carrying a *structured* SimError
(whose message is "[kind] ..." — e.g. the design-N "[watchdog] ..."
wedge detection, or an "[audit] ..." invariant hit). Raw crashes,
supervisor timeouts, and unstructured errors ("crashed" / "timeout" /
"error" statuses, or a "failed" cell whose message lacks the "[kind]"
prefix) mean a fault escaped the recovery choreography, and fail this
check.

Usage: check_cell_statuses.py BENCH_*.json [more.json ...]
Exit: 0 when every cell of every artifact is sanctioned, 1 otherwise.
"""

import json
import sys


def check_artifact(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    cells = doc.get("cells", [])
    if not cells:
        print(f"{path}: no cells in artifact", file=sys.stderr)
        return 1
    bad = 0
    for cell in cells:
        key = cell.get("key", "<unkeyed>")
        status = cell.get("status", "<missing>")
        error = cell.get("error", "")
        if status == "ok":
            continue
        if status == "failed" and error.startswith("["):
            # A structured SimError: the run *detected* the fault and
            # reported it — the sanctioned non-ok ending.
            continue
        print(f"{path}: cell {key}: unsanctioned terminal state "
              f"status={status!r} error={error!r}", file=sys.stderr)
        bad += 1
    schemes = {c.get("key", "").rsplit("/", 1)[-1] for c in cells}
    print(f"{path}: {len(cells)} cells across {len(schemes)} schemes, "
          f"{bad} unsanctioned")
    return 1 if bad else 0


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_artifact(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
