#!/usr/bin/env python3
"""Assert a sweep artifact's cells all ended in a sanctioned terminal state.

The resilience claim (DESIGN.md §10, README failure-modes table) is that
no fault ever wedges or crashes a run: every cell of a fault-injection
sweep must finish "ok", or "failed" carrying a *structured* SimError
(whose message is "[kind] ..." — e.g. the design-N "[watchdog] ..."
wedge detection, or an "[audit] ..." invariant hit). Raw crashes,
supervisor timeouts, and unstructured errors ("crashed" / "timeout" /
"error" statuses, or a "failed" cell whose message lacks the "[kind]"
prefix) mean a fault escaped the recovery choreography, and fail this
check.

Cells carrying a RAS metrics block (the ras_availability sweep, or any
fault sweep with the RAS layer enabled) are additionally gated on the
retirement bookkeeping: healthy_frames must stay positive (a
capacity-floor breach is a structured "[capacity-exhausted]" failure,
never an ok cell with zero capacity), the retirement log must not
exceed the retired-frame count, and spares consumed must not exceed
frames retired.

Usage: check_cell_statuses.py BENCH_*.json [more.json ...]
Exit: 0 when every cell of every artifact is sanctioned, 1 otherwise.
"""

import json
import sys


def check_ras_block(path: str, key: str, cell: dict) -> int:
    ras = cell.get("metrics", {}).get("ras")
    if ras is None:
        return 0
    bad = 0
    if ras.get("healthy_frames", 0) <= 0:
        print(f"{path}: cell {key}: ok cell with no healthy frames "
              f"(healthy_frames={ras.get('healthy_frames')!r})",
              file=sys.stderr)
        bad += 1
    retired = ras.get("frames_retired", 0)
    if len(ras.get("retirements", [])) > retired:
        print(f"{path}: cell {key}: retirement log longer than "
              f"frames_retired={retired}", file=sys.stderr)
        bad += 1
    # +1: a run may end with one evacuation still in flight (spare
    # consumed, retirement not yet closed out by ras_service).
    if ras.get("spares_used", 0) > retired + 1:
        print(f"{path}: cell {key}: spares_used="
              f"{ras.get('spares_used')} exceeds frames_retired={retired}",
              file=sys.stderr)
        bad += 1
    return bad


def check_artifact(path: str) -> int:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    cells = doc.get("cells", [])
    if not cells:
        print(f"{path}: no cells in artifact", file=sys.stderr)
        return 1
    bad = 0
    ras_cells = 0
    for cell in cells:
        key = cell.get("key", "<unkeyed>")
        status = cell.get("status", "<missing>")
        error = cell.get("error", "")
        if status == "ok":
            if "ras" in cell.get("metrics", {}):
                ras_cells += 1
                bad += check_ras_block(path, key, cell)
            continue
        if status == "failed" and error.startswith("["):
            # A structured SimError: the run *detected* the fault and
            # reported it — the sanctioned non-ok ending.
            continue
        print(f"{path}: cell {key}: unsanctioned terminal state "
              f"status={status!r} error={error!r}", file=sys.stderr)
        bad += 1
    schemes = {c.get("key", "").rsplit("/", 1)[-1] for c in cells}
    ras_note = f", {ras_cells} with RAS metrics" if ras_cells else ""
    print(f"{path}: {len(cells)} cells across {len(schemes)} schemes"
          f"{ras_note}, {bad} unsanctioned")
    return 1 if bad else 0


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_artifact(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
