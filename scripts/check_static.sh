#!/usr/bin/env bash
# Static-analysis gate: everything that can judge the tree without
# running it. Run from anywhere; operates on the repo root.
#
#   scripts/check_static.sh [build-dir]
#
# Stages:
#   1. scripts/lint.py          repo-specific structural rules (always)
#   2. tools/analyze            semantic suite: determinism, snapshot,
#                               errors, layering, fault-coverage (always;
#                               AST backend when libclang imports, the
#                               degraded text backend otherwise)
#   3. scripts/format.sh --check  clang-format conformance   (if installed)
#   4. clang-tidy               curated .clang-tidy set      (if installed)
#   5. cppcheck                 whole-program analysis       (if installed)
#
# Missing optional tools produce a SKIP line, not a failure: the repo
# must stay checkable in minimal containers that only carry a compiler
# and python3. Stages 1 and 2 are the enforced backbone and never skip.
set -uo pipefail
cd "$(dirname "$0")/.." || exit 2

BUILD_DIR="${1:-build}"
failures=0

note() { echo "== $*" >&2; }
skip() { echo "-- SKIP: $*" >&2; }
fail() { echo "-- FAIL: $*" >&2; failures=$((failures + 1)); }

# The list-driven stages (clang-tidy, cppcheck) share one source list,
# gathered once and checked non-empty. Feeding them straight from a
# command substitution let a failing `git ls-files` hand clang-tidy an
# empty list — which exits 0, silently passing an entire stage on
# nothing. Sabotage fixtures are excluded: they violate rules on
# purpose, and the analyzer's WILL_FAIL ctests are what prove they
# still fire.
if sources_out=$(git ls-files 'src/*.cc' 'tools/*.cc' \
                 ':!tools/analyze/fixtures'); then
  mapfile -t cxx_sources <<<"$sources_out"
else
  cxx_sources=()
  fail "git ls-files failed; cannot enumerate C++ sources"
fi
if [[ ${#cxx_sources[@]} -eq 0 || -z "${cxx_sources[0]}" ]]; then
  cxx_sources=()
  fail "source enumeration returned no files (tree layout changed?)"
fi

# --- 1. repo linter (mandatory) ---------------------------------------------
note "lint.py"
if ! python3 scripts/lint.py; then
  fail "scripts/lint.py reported findings"
fi

# --- 2. semantic analysis suite (mandatory) ---------------------------------
note "analyze (semantic suite)"
if ! python3 tools/analyze/analyze.py --build-dir "$BUILD_DIR"; then
  fail "tools/analyze reported findings"
fi

# --- 3. formatting ----------------------------------------------------------
note "format --check"
if command -v "${CLANG_FORMAT:-clang-format}" >/dev/null 2>&1; then
  if ! scripts/format.sh --check; then
    fail "clang-format check"
  fi
else
  skip "clang-format not installed"
fi

# --- 4. clang-tidy ----------------------------------------------------------
note "clang-tidy"
if ! command -v clang-tidy >/dev/null 2>&1; then
  skip "clang-tidy not installed"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  skip "no $BUILD_DIR/compile_commands.json (configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
elif [[ ${#cxx_sources[@]} -gt 0 ]]; then
  if ! clang-tidy -p "$BUILD_DIR" --quiet "${cxx_sources[@]}"; then
    fail "clang-tidy"
  fi
fi

# --- 5. cppcheck ------------------------------------------------------------
note "cppcheck"
if ! command -v cppcheck >/dev/null 2>&1; then
  skip "cppcheck not installed"
elif [[ ${#cxx_sources[@]} -gt 0 ]]; then
  if ! cppcheck --std=c++20 --language=c++ --enable=warning,performance \
       --error-exitcode=1 --inline-suppr --quiet \
       --suppress=missingIncludeSystem -I src \
       "${cxx_sources[@]}"; then
    fail "cppcheck"
  fi
fi

if [[ $failures -ne 0 ]]; then
  echo "check_static: $failures stage(s) failed" >&2
  exit 1
fi
echo "check_static: all stages passed (or skipped for missing tools)" >&2
