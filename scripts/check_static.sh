#!/usr/bin/env bash
# Static-analysis gate: everything that can judge the tree without
# running it. Run from anywhere; operates on the repo root.
#
#   scripts/check_static.sh [build-dir]
#
# Stages:
#   1. scripts/lint.py          repo-specific structural rules (always)
#   2. scripts/format.sh --check  clang-format conformance   (if installed)
#   3. clang-tidy               curated .clang-tidy set      (if installed)
#   4. cppcheck                 whole-program analysis       (if installed)
#
# Missing optional tools produce a SKIP line, not a failure: the repo
# must stay checkable in minimal containers that only carry a compiler
# and python3. Stage 1 is the enforced backbone and never skips.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
failures=0

note() { echo "== $*" >&2; }
skip() { echo "-- SKIP: $*" >&2; }
fail() { echo "-- FAIL: $*" >&2; failures=$((failures + 1)); }

# --- 1. repo linter (mandatory) ---------------------------------------------
note "lint.py"
if ! python3 scripts/lint.py; then
  fail "scripts/lint.py reported findings"
fi

# --- 2. formatting ----------------------------------------------------------
note "format --check"
if command -v "${CLANG_FORMAT:-clang-format}" >/dev/null 2>&1; then
  if ! scripts/format.sh --check; then
    fail "clang-format check"
  fi
else
  skip "clang-format not installed"
fi

# --- 3. clang-tidy ----------------------------------------------------------
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
    mapfile -t tidy_files < <(git ls-files 'src/*.cc' 'tools/*.cc')
    if ! clang-tidy -p "$BUILD_DIR" --quiet "${tidy_files[@]}"; then
      fail "clang-tidy"
    fi
  else
    skip "no $BUILD_DIR/compile_commands.json (configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
  fi
else
  skip "clang-tidy not installed"
fi

# --- 4. cppcheck ------------------------------------------------------------
note "cppcheck"
if command -v cppcheck >/dev/null 2>&1; then
  if ! cppcheck --std=c++20 --language=c++ --enable=warning,performance \
       --error-exitcode=1 --inline-suppr --quiet \
       --suppress=missingIncludeSystem -I src \
       $(git ls-files 'src/*.cc' 'tools/*.cc'); then
    fail "cppcheck"
  fi
else
  skip "cppcheck not installed"
fi

if [[ $failures -ne 0 ]]; then
  echo "check_static: $failures stage(s) failed" >&2
  exit 1
fi
echo "check_static: all stages passed (or skipped for missing tools)" >&2
