#!/usr/bin/env bash
# clang-format wrapper over every tracked C++ source.
#
#   scripts/format.sh           rewrite files in place
#   scripts/format.sh --check   exit 1 if any file would change (CI mode)
#
# Exits 0 with a skip notice when clang-format is not installed — the
# container used for CI gates on tool presence rather than failing
# (scripts/lint.py still enforces the mechanical pieces of the style:
# tabs, trailing whitespace, line length, final newline).
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format.sh: $CLANG_FORMAT not found; skipping (lint.py still" \
       "enforces whitespace/line-length style)" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.hh' '*.h' '*.cpp' '*.hpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format.sh: no C++ sources tracked" >&2
  exit 0
fi

if [[ "${1:-}" == "--check" ]]; then
  bad=0
  for f in "${files[@]}"; do
    if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
      echo "format.sh: would reformat $f" >&2
      bad=1
    fi
  done
  if [[ $bad -ne 0 ]]; then
    echo "format.sh: run scripts/format.sh to fix" >&2
    exit 1
  fi
  echo "format.sh: ${#files[@]} files clean" >&2
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files" >&2
fi
