#!/usr/bin/env bash
# End-to-end kill-and-resume check for the durability layer.
#
# Runs one real sweep (fig13, scaled down) three ways:
#   1. reference  — uninterrupted, results into $WORK/ref
#   2. killed     — same sweep into $WORK/res, SIGKILL'd mid-flight (no
#                   clean shutdown: only the journal's completed cells and
#                   any auto-checkpoints survive, which is the point)
#   3. resumed    — rerun with --resume into the same $WORK/res
# and then diffs the two JSON artifacts modulo the documented
# non-deterministic fields (wall clock, attempts, resumed markers). Any
# other difference means resume broke the determinism contract.
#
# Also runs `ctest -L durability` first, so the unit layer gates the
# end-to-end layer.
#
# Usage: scripts/check_durability.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
BENCH_NAME="fig13_granularity_10k"
BENCH="$BUILD_DIR/bench/$BENCH_NAME"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target "$BENCH_NAME" \
      hmm_durability_tests >/dev/null

ctest --test-dir "$BUILD_DIR" -L durability -j "$JOBS" --output-on-failure

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Strip the fields that legitimately differ between an uninterrupted run
# and a killed+resumed one (the JSON is pretty-printed, one field per line).
normalize() {
  grep -vE '"(wall_seconds|wall_seconds_total|attempts|resumed|retried)"' "$1"
}

echo "[durability] reference sweep"
HMM_BENCH_SCALE="${HMM_BENCH_SCALE:-0.25}" HMM_RESULTS_DIR="$WORK/ref" \
  "$BENCH" --jobs "$JOBS" >"$WORK/ref_stdout" 2>/dev/null

echo "[durability] killed sweep (SIGKILL mid-flight)"
set +e
HMM_BENCH_SCALE="${HMM_BENCH_SCALE:-0.25}" HMM_RESULTS_DIR="$WORK/res" \
  HMM_CKPT_INTERVAL=1 setsid "$BENCH" --jobs "$JOBS" \
  >"$WORK/kill_stdout" 2>/dev/null &
PID=$!
sleep 2
kill -KILL -- "-$PID" 2>/dev/null || kill -KILL "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
set -e

if [[ ! -f "$WORK/res/$BENCH_NAME.journal" ]]; then
  echo "[durability] note: sweep finished before the kill landed;" \
       "resume below degenerates to a no-op pass (raise HMM_BENCH_SCALE" \
       "to slow the sweep down)"
fi

echo "[durability] resumed sweep (--resume)"
HMM_BENCH_SCALE="${HMM_BENCH_SCALE:-0.25}" HMM_RESULTS_DIR="$WORK/res" \
  "$BENCH" --jobs "$JOBS" --resume >"$WORK/res_stdout" 2>/dev/null

if [[ -f "$WORK/res/$BENCH_NAME.journal" ]]; then
  echo "[durability] FAIL: journal still present after a completed resume"
  exit 1
fi

if ! diff <(normalize "$WORK/ref/$BENCH_NAME.json") \
          <(normalize "$WORK/res/$BENCH_NAME.json"); then
  echo "[durability] FAIL: resumed sweep diverged from the reference"
  exit 1
fi
if ! diff "$WORK/ref_stdout" "$WORK/res_stdout"; then
  echo "[durability] FAIL: resumed sweep printed a different table"
  exit 1
fi
echo "[durability] OK: killed+resumed sweep is identical to the reference"
