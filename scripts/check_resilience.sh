#!/usr/bin/env bash
# Sanitizer pass over the robustness suite: build the tree with
# HMM_SANITIZE=ON (address+undefined) and run every `resilience`-labeled
# test plus the bench smoke runs, so the injected-fault paths — abort
# rollback, wedge/watchdog, audit throws, runner retry — are ASan/UBSan
# clean, not just green. The `durability` label (checkpoint/restore,
# journal, crash-isolated cells) rides along: fork/waitpid reaping and the
# snapshot codecs deserve the same sanitizer scrutiny.
#
# Usage: scripts/check_resilience.sh [build-dir]   (default: build-san)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-san}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DHMM_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L 'resilience|durability|bench_smoke' \
      -j "$JOBS" --output-on-failure
