#!/usr/bin/env bash
# Sanitizer pass over the robustness suite: build the tree with
# HMM_SANITIZE=ON (address+undefined) and run every `resilience`-labeled
# test plus the bench smoke runs, so the injected-fault paths — abort
# rollback, wedge/watchdog, audit throws, runner retry — are ASan/UBSan
# clean, not just green. The `durability` label (checkpoint/restore,
# journal, crash-isolated cells) rides along: fork/waitpid reaping and the
# snapshot codecs deserve the same sanitizer scrutiny.
#
# After ctest, runs the fault_resilience sweep across the *whole* scheme
# registry (N, N-1, Live, nomad, Alloy, flat-HMA, MemCache) under
# injected faults and the ras_availability sweep (media errors + ECC +
# scrub + page retirement), then asserts via
# scripts/check_cell_statuses.py that every cell ended "ok" or "failed"
# with a structured SimError — never crashed, timed out, or wedged —
# and that the RAS cells' retirement bookkeeping is sane.
#
# Usage: scripts/check_resilience.sh [build-dir]   (default: build-san)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-san}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DHMM_SANITIZE=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L 'resilience|durability|bench_smoke|ras' \
      -j "$JOBS" --output-on-failure

RESULTS_DIR="$BUILD_DIR/bench/results"
HMM_BENCH_SCALE=0.05 HMM_RESULTS_DIR="$RESULTS_DIR" \
  "$BUILD_DIR/bench/fault_resilience" --smoke --jobs 2 --keep-going
HMM_BENCH_SCALE=0.05 HMM_RESULTS_DIR="$RESULTS_DIR" \
  "$BUILD_DIR/bench/ras_availability" --smoke --jobs 2 --keep-going
python3 scripts/check_cell_statuses.py \
  "$RESULTS_DIR/BENCH_fault_resilience.json" \
  "$RESULTS_DIR/BENCH_ras_availability.json"
