
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/hmm_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/hmm_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/controller_test.cc" "tests/CMakeFiles/hmm_tests.dir/controller_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/controller_test.cc.o.d"
  "/root/repo/tests/dram_test.cc" "tests/CMakeFiles/hmm_tests.dir/dram_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/dram_test.cc.o.d"
  "/root/repo/tests/energy_overhead_test.cc" "tests/CMakeFiles/hmm_tests.dir/energy_overhead_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/energy_overhead_test.cc.o.d"
  "/root/repo/tests/hotness_test.cc" "tests/CMakeFiles/hmm_tests.dir/hotness_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/hotness_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/hmm_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/memsim_test.cc" "tests/CMakeFiles/hmm_tests.dir/memsim_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/memsim_test.cc.o.d"
  "/root/repo/tests/migration_engine_test.cc" "tests/CMakeFiles/hmm_tests.dir/migration_engine_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/migration_engine_test.cc.o.d"
  "/root/repo/tests/migration_plan_test.cc" "tests/CMakeFiles/hmm_tests.dir/migration_plan_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/migration_plan_test.cc.o.d"
  "/root/repo/tests/stack_distance_test.cc" "tests/CMakeFiles/hmm_tests.dir/stack_distance_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/stack_distance_test.cc.o.d"
  "/root/repo/tests/swap_fuzz_test.cc" "tests/CMakeFiles/hmm_tests.dir/swap_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/swap_fuzz_test.cc.o.d"
  "/root/repo/tests/system_sim_test.cc" "tests/CMakeFiles/hmm_tests.dir/system_sim_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/system_sim_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/hmm_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/translation_table_test.cc" "tests/CMakeFiles/hmm_tests.dir/translation_table_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/translation_table_test.cc.o.d"
  "/root/repo/tests/tuner_characterize_test.cc" "tests/CMakeFiles/hmm_tests.dir/tuner_characterize_test.cc.o" "gcc" "tests/CMakeFiles/hmm_tests.dir/tuner_characterize_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hmm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hmm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
