# Empty dependencies file for hmm_tests.
# This may be replaced when dependencies are built.
