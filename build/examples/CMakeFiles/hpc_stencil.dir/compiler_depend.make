# Empty compiler generated dependencies file for hpc_stencil.
# This may be replaced when dependencies are built.
