file(REMOVE_RECURSE
  "CMakeFiles/hpc_stencil.dir/hpc_stencil.cpp.o"
  "CMakeFiles/hpc_stencil.dir/hpc_stencil.cpp.o.d"
  "hpc_stencil"
  "hpc_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
