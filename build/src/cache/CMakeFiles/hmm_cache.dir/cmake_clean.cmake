file(REMOVE_RECURSE
  "CMakeFiles/hmm_cache.dir/cache.cc.o"
  "CMakeFiles/hmm_cache.dir/cache.cc.o.d"
  "CMakeFiles/hmm_cache.dir/dram_cache.cc.o"
  "CMakeFiles/hmm_cache.dir/dram_cache.cc.o.d"
  "CMakeFiles/hmm_cache.dir/hierarchy.cc.o"
  "CMakeFiles/hmm_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/hmm_cache.dir/stack_distance.cc.o"
  "CMakeFiles/hmm_cache.dir/stack_distance.cc.o.d"
  "libhmm_cache.a"
  "libhmm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
