# Empty compiler generated dependencies file for hmm_cache.
# This may be replaced when dependencies are built.
