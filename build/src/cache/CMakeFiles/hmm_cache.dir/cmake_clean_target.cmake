file(REMOVE_RECURSE
  "libhmm_cache.a"
)
