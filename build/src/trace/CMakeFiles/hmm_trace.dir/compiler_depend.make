# Empty compiler generated dependencies file for hmm_trace.
# This may be replaced when dependencies are built.
