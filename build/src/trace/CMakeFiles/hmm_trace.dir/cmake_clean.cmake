file(REMOVE_RECURSE
  "CMakeFiles/hmm_trace.dir/characterize.cc.o"
  "CMakeFiles/hmm_trace.dir/characterize.cc.o.d"
  "CMakeFiles/hmm_trace.dir/generator.cc.o"
  "CMakeFiles/hmm_trace.dir/generator.cc.o.d"
  "CMakeFiles/hmm_trace.dir/io.cc.o"
  "CMakeFiles/hmm_trace.dir/io.cc.o.d"
  "CMakeFiles/hmm_trace.dir/workloads.cc.o"
  "CMakeFiles/hmm_trace.dir/workloads.cc.o.d"
  "libhmm_trace.a"
  "libhmm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
