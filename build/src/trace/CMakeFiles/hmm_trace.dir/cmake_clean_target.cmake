file(REMOVE_RECURSE
  "libhmm_trace.a"
)
