file(REMOVE_RECURSE
  "libhmm_core.a"
)
