file(REMOVE_RECURSE
  "CMakeFiles/hmm_core.dir/controller.cc.o"
  "CMakeFiles/hmm_core.dir/controller.cc.o.d"
  "CMakeFiles/hmm_core.dir/hotness.cc.o"
  "CMakeFiles/hmm_core.dir/hotness.cc.o.d"
  "CMakeFiles/hmm_core.dir/migration.cc.o"
  "CMakeFiles/hmm_core.dir/migration.cc.o.d"
  "CMakeFiles/hmm_core.dir/translation_table.cc.o"
  "CMakeFiles/hmm_core.dir/translation_table.cc.o.d"
  "libhmm_core.a"
  "libhmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
