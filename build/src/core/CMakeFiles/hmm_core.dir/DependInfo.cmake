
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/hmm_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/hmm_core.dir/controller.cc.o.d"
  "/root/repo/src/core/hotness.cc" "src/core/CMakeFiles/hmm_core.dir/hotness.cc.o" "gcc" "src/core/CMakeFiles/hmm_core.dir/hotness.cc.o.d"
  "/root/repo/src/core/migration.cc" "src/core/CMakeFiles/hmm_core.dir/migration.cc.o" "gcc" "src/core/CMakeFiles/hmm_core.dir/migration.cc.o.d"
  "/root/repo/src/core/translation_table.cc" "src/core/CMakeFiles/hmm_core.dir/translation_table.cc.o" "gcc" "src/core/CMakeFiles/hmm_core.dir/translation_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hmm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hmm_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
