# Empty compiler generated dependencies file for hmm_core.
# This may be replaced when dependencies are built.
