file(REMOVE_RECURSE
  "libhmm_common.a"
)
