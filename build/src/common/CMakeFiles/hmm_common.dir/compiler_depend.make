# Empty compiler generated dependencies file for hmm_common.
# This may be replaced when dependencies are built.
