file(REMOVE_RECURSE
  "CMakeFiles/hmm_common.dir/table.cc.o"
  "CMakeFiles/hmm_common.dir/table.cc.o.d"
  "libhmm_common.a"
  "libhmm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
