# Empty dependencies file for hmm_sim.
# This may be replaced when dependencies are built.
