file(REMOVE_RECURSE
  "libhmm_sim.a"
)
