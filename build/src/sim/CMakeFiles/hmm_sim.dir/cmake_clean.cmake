file(REMOVE_RECURSE
  "CMakeFiles/hmm_sim.dir/memsim.cc.o"
  "CMakeFiles/hmm_sim.dir/memsim.cc.o.d"
  "CMakeFiles/hmm_sim.dir/system.cc.o"
  "CMakeFiles/hmm_sim.dir/system.cc.o.d"
  "CMakeFiles/hmm_sim.dir/tuner.cc.o"
  "CMakeFiles/hmm_sim.dir/tuner.cc.o.d"
  "libhmm_sim.a"
  "libhmm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
