file(REMOVE_RECURSE
  "CMakeFiles/hmm_dram.dir/channel.cc.o"
  "CMakeFiles/hmm_dram.dir/channel.cc.o.d"
  "CMakeFiles/hmm_dram.dir/dram_system.cc.o"
  "CMakeFiles/hmm_dram.dir/dram_system.cc.o.d"
  "libhmm_dram.a"
  "libhmm_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
