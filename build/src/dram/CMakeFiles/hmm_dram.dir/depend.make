# Empty dependencies file for hmm_dram.
# This may be replaced when dependencies are built.
