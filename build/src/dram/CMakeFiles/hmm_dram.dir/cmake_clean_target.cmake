file(REMOVE_RECURSE
  "libhmm_dram.a"
)
