# Empty dependencies file for fig11_swap_algorithms.
# This may be replaced when dependencies are built.
