file(REMOVE_RECURSE
  "CMakeFiles/fig11_swap_algorithms.dir/fig11_swap_algorithms.cc.o"
  "CMakeFiles/fig11_swap_algorithms.dir/fig11_swap_algorithms.cc.o.d"
  "fig11_swap_algorithms"
  "fig11_swap_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_swap_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
