# Empty dependencies file for fig13_granularity_10k.
# This may be replaced when dependencies are built.
