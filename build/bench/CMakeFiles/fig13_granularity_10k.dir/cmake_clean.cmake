file(REMOVE_RECURSE
  "CMakeFiles/fig13_granularity_10k.dir/fig13_granularity_10k.cc.o"
  "CMakeFiles/fig13_granularity_10k.dir/fig13_granularity_10k.cc.o.d"
  "fig13_granularity_10k"
  "fig13_granularity_10k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_granularity_10k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
