file(REMOVE_RECURSE
  "CMakeFiles/table4_effectiveness.dir/table4_effectiveness.cc.o"
  "CMakeFiles/table4_effectiveness.dir/table4_effectiveness.cc.o.d"
  "table4_effectiveness"
  "table4_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
