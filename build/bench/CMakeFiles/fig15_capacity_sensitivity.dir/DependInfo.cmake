
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig15_capacity_sensitivity.cc" "bench/CMakeFiles/fig15_capacity_sensitivity.dir/fig15_capacity_sensitivity.cc.o" "gcc" "bench/CMakeFiles/fig15_capacity_sensitivity.dir/fig15_capacity_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/hmm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hmm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hmm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
