file(REMOVE_RECURSE
  "CMakeFiles/fig15_capacity_sensitivity.dir/fig15_capacity_sensitivity.cc.o"
  "CMakeFiles/fig15_capacity_sensitivity.dir/fig15_capacity_sensitivity.cc.o.d"
  "fig15_capacity_sensitivity"
  "fig15_capacity_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_capacity_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
