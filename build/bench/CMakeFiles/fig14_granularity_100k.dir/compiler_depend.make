# Empty compiler generated dependencies file for fig14_granularity_100k.
# This may be replaced when dependencies are built.
