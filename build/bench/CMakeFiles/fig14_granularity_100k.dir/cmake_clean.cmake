file(REMOVE_RECURSE
  "CMakeFiles/fig14_granularity_100k.dir/fig14_granularity_100k.cc.o"
  "CMakeFiles/fig14_granularity_100k.dir/fig14_granularity_100k.cc.o.d"
  "fig14_granularity_100k"
  "fig14_granularity_100k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_granularity_100k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
