# Empty dependencies file for fig12_granularity_1k.
# This may be replaced when dependencies are built.
