file(REMOVE_RECURSE
  "CMakeFiles/fig12_granularity_1k.dir/fig12_granularity_1k.cc.o"
  "CMakeFiles/fig12_granularity_1k.dir/fig12_granularity_1k.cc.o.d"
  "fig12_granularity_1k"
  "fig12_granularity_1k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_granularity_1k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
