# Empty compiler generated dependencies file for fig04_llc_missrate.
# This may be replaced when dependencies are built.
