file(REMOVE_RECURSE
  "CMakeFiles/fig05_ipc_comparison.dir/fig05_ipc_comparison.cc.o"
  "CMakeFiles/fig05_ipc_comparison.dir/fig05_ipc_comparison.cc.o.d"
  "fig05_ipc_comparison"
  "fig05_ipc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ipc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
