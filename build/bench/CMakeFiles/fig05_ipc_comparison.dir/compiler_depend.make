# Empty compiler generated dependencies file for fig05_ipc_comparison.
# This may be replaced when dependencies are built.
